#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file written by --metrics-prom.

Usage:
    check_prom.py metrics.prom [--require NAME ...]

Checks (stdlib only, text exposition format version 0.0.4):
  * every non-comment line parses as `name{labels} value` or `name value`
    with a float-parseable value and a metric name matching
    [a-zA-Z_:][a-zA-Z0-9_:]*;
  * every sample family (after stripping the _bucket/_sum/_count histogram
    suffixes) is declared by a preceding `# TYPE family counter|gauge|
    histogram` line, and families are declared at most once;
  * counter samples are non-negative and finite;
  * every histogram family has _sum, _count, and a `le="+Inf"` bucket;
    bucket `le` thresholds are sorted, cumulative counts are
    non-decreasing, and the +Inf bucket equals _count;
  * the exporter's own scrape timestamp gauge rta_scrape_time_seconds is
    present and positive;
  * each --require NAME names a family that must be present.

Exit status: 0 when the file validates, 1 otherwise.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)$")
LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(name, types):
    """Map a sample name to its declared family, histogram suffixes aside."""
    if name in types:
        return name
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)
    except ValueError:
        return None


def check(path, required):
    errors = []
    types = {}      # family -> declared type
    samples = []    # (line_no, name, labels dict, value)
    with open(path, "r", encoding="utf-8") as f:
        for n, raw in enumerate(f, start=1):
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("#"):
                parts = line.split()
                if len(parts) >= 2 and parts[1] == "TYPE":
                    if len(parts) != 4 or parts[3] not in (
                            "counter", "gauge", "histogram"):
                        errors.append(f"line {n}: malformed TYPE line")
                        continue
                    family = parts[2]
                    if family in types:
                        errors.append(f"line {n}: duplicate TYPE for "
                                      f"{family!r}")
                    types[family] = parts[3]
                continue
            m = SAMPLE_RE.match(line)
            if m is None:
                errors.append(f"line {n}: unparseable sample: {line[:60]}")
                continue
            name, _, label_text, value_text = m.groups()
            value = parse_value(value_text)
            if value is None:
                errors.append(f"line {n}: bad value {value_text!r}")
                continue
            labels = dict(LABEL_RE.findall(label_text or ""))
            samples.append((n, name, labels, value))

    families_seen = set()
    buckets = {}  # family -> list of (le, cumulative count)
    sums = {}
    counts = {}
    for n, name, labels, value in samples:
        family = family_of(name, types)
        if family is None:
            errors.append(f"line {n}: sample {name!r} has no TYPE "
                          f"declaration")
            continue
        families_seen.add(family)
        kind = types[family]
        if kind == "counter" and not value >= 0:
            errors.append(f"line {n}: counter {name!r} negative or NaN")
        if kind == "histogram":
            if name == family + "_bucket":
                le = parse_value(labels.get("le", ""))
                if le is None:
                    errors.append(f"line {n}: bucket without numeric 'le'")
                else:
                    buckets.setdefault(family, []).append((le, value))
            elif name == family + "_sum":
                sums[family] = value
            elif name == family + "_count":
                counts[family] = value
            else:
                errors.append(f"line {n}: bare sample {name!r} for "
                              f"histogram family {family!r}")

    for family, kind in types.items():
        if kind != "histogram" or family not in families_seen:
            continue
        series = buckets.get(family, [])
        if not series:
            errors.append(f"histogram {family!r}: no _bucket samples")
            continue
        les = [le for le, _ in series]
        if les != sorted(les):
            errors.append(f"histogram {family!r}: 'le' thresholds not "
                          f"sorted")
        cumulative = [c for _, c in series]
        if any(b > a for a, b in zip(cumulative[1:], cumulative)):
            errors.append(f"histogram {family!r}: bucket counts not "
                          f"cumulative")
        if les[-1] != float("inf"):
            errors.append(f"histogram {family!r}: missing le=\"+Inf\" "
                          f"bucket")
        if family not in counts:
            errors.append(f"histogram {family!r}: missing _count")
        elif les[-1] == float("inf") and cumulative[-1] != counts[family]:
            errors.append(f"histogram {family!r}: +Inf bucket "
                          f"{cumulative[-1]} != _count {counts[family]}")
        if family not in sums:
            errors.append(f"histogram {family!r}: missing _sum")

    scrape = [v for _, name, _, v in samples
              if name == "rta_scrape_time_seconds"]
    if not scrape:
        errors.append("missing rta_scrape_time_seconds gauge")
    elif not scrape[-1] > 0:
        errors.append(f"rta_scrape_time_seconds not positive: {scrape[-1]}")

    for family in required:
        if family not in families_seen:
            errors.append(f"required family {family!r} not present")
    if not samples:
        errors.append("no samples found")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", help="Prometheus text exposition file")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="metric family that must be present "
                             "(repeatable)")
    args = parser.parse_args()
    try:
        errors = check(args.file, args.require)
    except OSError as exc:
        errors = [str(exc)]
    if errors:
        print(f"prometheus {args.file}: INVALID", file=sys.stderr)
        for e in errors[:20]:
            print(f"  - {e}", file=sys.stderr)
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more", file=sys.stderr)
        return 1
    print(f"prometheus {args.file}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
