#!/usr/bin/env python3
"""Compare a bench JSON result against a committed baseline (stdlib only).

Usage:
    compare_bench.py --baseline bench/baselines/BENCH_service.json \\
                     --current BENCH_service.json [--tolerance 0.5] [--strict]

Walks both JSON trees in parallel and reports, per leaf:
  * numeric leaves whose relative difference exceeds the tolerance band
    (|cur - base| / max(|base|, epsilon) > tolerance);
  * keys present in one tree but not the other;
  * non-numeric leaves that changed value.

Timing leaves are inherently machine- and load-dependent, so the default
tolerance is wide (50%) and the default exit status is 0 even when drifts
are found -- the step is advisory, a trend signal in CI logs, not a gate.
--strict turns any reported drift into exit 1 (for local perf work on a
quiet machine). Structural mismatches (missing keys, type changes) always
exit 1: those mean the bench's schema changed without the baseline being
regenerated.

Exit status: 0 ok / advisory drift, 1 structural mismatch or (with
--strict) any drift.
"""

import argparse
import json
import sys

EPSILON = 1e-9


def walk(base, cur, path, drifts, structural):
    if isinstance(base, dict) and isinstance(cur, dict):
        for key in sorted(set(base) | set(cur)):
            where = f"{path}.{key}" if path else key
            if key not in base:
                structural.append(f"{where}: only in current")
            elif key not in cur:
                structural.append(f"{where}: only in baseline")
            else:
                walk(base[key], cur[key], where, drifts, structural)
        return
    if isinstance(base, list) and isinstance(cur, list):
        if len(base) != len(cur):
            structural.append(
                f"{path}: length {len(base)} -> {len(cur)}")
        for i, (b, c) in enumerate(zip(base, cur)):
            walk(b, c, f"{path}[{i}]", drifts, structural)
        return
    base_num = isinstance(base, (int, float)) and not isinstance(base, bool)
    cur_num = isinstance(cur, (int, float)) and not isinstance(cur, bool)
    if base_num and cur_num:
        rel = abs(cur - base) / max(abs(base), EPSILON)
        drifts.append((path, base, cur, rel))
        return
    if type(base) is not type(cur):
        structural.append(
            f"{path}: type {type(base).__name__} -> {type(cur).__name__}")
    elif base != cur:
        drifts.append((path, base, cur, None))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--current", required=True,
                        help="freshly produced bench JSON")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="relative tolerance band (default 0.5 = 50%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any drift outside the band")
    args = parser.parse_args()

    try:
        with open(args.baseline, "r", encoding="utf-8") as f:
            base = json.load(f)
        with open(args.current, "r", encoding="utf-8") as f:
            cur = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"compare_bench: {exc}", file=sys.stderr)
        return 1

    drifts = []
    structural = []
    walk(base, cur, "", drifts, structural)

    out_of_band = []
    for path, b, c, rel in drifts:
        if rel is None:
            out_of_band.append(f"{path}: {b!r} -> {c!r}")
        elif rel > args.tolerance:
            out_of_band.append(f"{path}: {b:g} -> {c:g} ({100 * rel:+.0f}%)")

    name = args.current
    if structural:
        print(f"bench {name}: SCHEMA MISMATCH vs {args.baseline}",
              file=sys.stderr)
        for s in structural[:20]:
            print(f"  - {s}", file=sys.stderr)
        return 1
    if out_of_band:
        print(f"bench {name}: {len(out_of_band)} leaf/leaves outside the "
              f"{100 * args.tolerance:.0f}% band vs {args.baseline}"
              f"{' (advisory)' if not args.strict else ''}")
        for s in out_of_band:
            print(f"  - {s}")
        return 1 if args.strict else 0
    checked = sum(1 for _, _, _, rel in drifts if rel is not None)
    print(f"bench {name}: {checked} numeric leaves within "
          f"{100 * args.tolerance:.0f}% of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
