#!/usr/bin/env python3
"""Plot the bench CSVs as the paper's figures.

Usage:
    python3 scripts/plot_figures.py [--dir results] [--out figures]

Reads fig3_periodic.csv / fig4_aperiodic.csv (written by the bench binaries)
and renders one PNG per figure with the paper's panel layout: admission
probability vs utilization, one line per analysis method, panels (a)-(f).
Also plots tightness_vs_stages.csv and breakdown.csv when present.

Requires matplotlib (not needed to build or test the library itself).
"""

import argparse
import collections
import csv
import os
import sys


def read_panels(path):
    """-> {panel: {method: [(util, prob), ...]}}, sorted by utilization."""
    panels = collections.defaultdict(lambda: collections.defaultdict(list))
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            panels[row["panel"]][row["method"]].append(
                (float(row["utilization"]),
                 float(row["admission_probability"])))
    for methods in panels.values():
        for series in methods.values():
            series.sort()
    return panels


def plot_admission(path, out_png, title, plt):
    panels = read_panels(path)
    names = sorted(panels)
    cols = 2
    rows = (len(names) + cols - 1) // cols
    fig, axes = plt.subplots(rows, cols, figsize=(9, 3 * rows),
                             sharex=True, sharey=True, squeeze=False)
    for i, name in enumerate(names):
        ax = axes[i // cols][i % cols]
        for method, series in sorted(panels[name].items()):
            xs, ys = zip(*series)
            ax.plot(xs, ys, marker="o", markersize=3, label=method)
        ax.set_title(name, fontsize=9)
        ax.set_ylim(-0.05, 1.05)
        ax.grid(True, alpha=0.3)
    for ax in axes[-1]:
        ax.set_xlabel("utilization knob")
    for row in axes:
        row[0].set_ylabel("admission probability")
    axes[0][0].legend(fontsize=7)
    fig.suptitle(title)
    fig.tight_layout()
    fig.savefig(out_png, dpi=150)
    print(f"wrote {out_png}")


def plot_by_stages(path, out_png, value_col, ylabel, title, plt):
    data = collections.defaultdict(list)
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            data[row["method"]].append(
                (int(row["stages"]), float(row[value_col])))
    fig, ax = plt.subplots(figsize=(6, 4))
    for method, series in sorted(data.items()):
        series.sort()
        xs, ys = zip(*series)
        ax.plot(xs, ys, marker="o", label=method)
    ax.set_xlabel("stages")
    ax.set_ylabel(ylabel)
    ax.set_title(title)
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(out_png, dpi=150)
    print(f"wrote {out_png}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--dir", default="results",
                        help="directory containing the bench CSVs")
    parser.add_argument("--out", default="figures",
                        help="output directory for PNGs")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    os.makedirs(args.out, exist_ok=True)

    jobs = [
        ("fig3_periodic.csv",
         lambda p, o: plot_admission(
             p, o, "Figure 3: periodic arrivals (Eq. 25/26)", plt)),
        ("fig4_aperiodic.csv",
         lambda p, o: plot_admission(
             p, o, "Figure 4: bursty arrivals (Eq. 27/28)", plt)),
        ("ablation_spp.csv",
         lambda p, o: plot_admission(p, o, "Ablation: SPP analyses", plt)),
        ("tightness_vs_stages.csv",
         lambda p, o: plot_by_stages(
             p, o, "mean_tightness", "bound / observed",
             "Bound tightness vs stage count", plt)),
        ("breakdown.csv",
         lambda p, o: plot_by_stages(
             p, o, "mean_breakdown", "breakdown utilization (knob)",
             "Breakdown utilization per method", plt)),
    ]
    plotted = 0
    for fname, fn in jobs:
        path = os.path.join(args.dir, fname)
        if not os.path.exists(path):
            print(f"skip {fname} (not found in {args.dir})")
            continue
        out = os.path.join(args.out, fname.replace(".csv", ".png"))
        fn(path, out)
        plotted += 1
    if not plotted:
        sys.exit(f"no bench CSVs found under {args.dir}; "
                 "run the bench binaries first")


if __name__ == "__main__":
    main()
