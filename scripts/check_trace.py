#!/usr/bin/env python3
"""Validate rta_cli observability exports (stdlib only).

Usage:
    check_trace.py --trace t.json [--metrics m.json]
    check_trace.py t.json [m.json]          # positional: trace then metrics

Trace JSON (Chrome trace_event format, as written by --trace-json):
  * top level is an object with a "traceEvents" list;
  * every event has name/ph/ts/pid/tid, ph is one of B E i X M C;
  * per tid, timestamps are strictly increasing;
  * per tid, B/E events are properly nested and balanced
    (X events carry dur >= 0 instead).

Metrics JSON (as written by --metrics-json):
  * top level has "counters", "gauges", "histograms" objects;
  * counters are non-negative integers, gauges are numbers;
  * every histogram has bounds/counts/count/sum/max with
    len(counts) == len(bounds) + 1 and sum(counts) == count.

Exit status: 0 when every given file validates, 1 otherwise.
"""

import argparse
import json
import sys

ALLOWED_PHASES = {"B", "E", "i", "X", "M", "C"}


def fail(errors, message):
    errors.append(message)


def check_trace(path):
    errors = []
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict) or "traceEvents" not in data:
        return ["top level must be an object with a 'traceEvents' list"]
    events = data["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]

    last_ts = {}     # tid -> last timestamp seen
    open_spans = {}  # tid -> stack of open B names
    for n, ev in enumerate(events):
        where = f"event #{n}"
        if not isinstance(ev, dict):
            fail(errors, f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                fail(errors, f"{where}: missing '{key}'")
        ph = ev.get("ph")
        if ph not in ALLOWED_PHASES:
            fail(errors, f"{where}: bad phase {ph!r}")
            continue
        ts = ev.get("ts")
        tid = ev.get("tid")
        if not isinstance(ts, (int, float)):
            fail(errors, f"{where}: non-numeric ts {ts!r}")
            continue
        if tid in last_ts and ts <= last_ts[tid]:
            fail(errors,
                 f"{where}: ts {ts} not strictly increasing on tid {tid} "
                 f"(previous {last_ts[tid]})")
        last_ts[tid] = ts
        if ph == "B":
            open_spans.setdefault(tid, []).append(ev.get("name"))
        elif ph == "E":
            stack = open_spans.get(tid, [])
            if not stack:
                fail(errors, f"{where}: 'E' with no open span on tid {tid}")
            else:
                begun = stack.pop()
                name = ev.get("name")
                if name and name != begun:
                    fail(errors,
                         f"{where}: 'E' for {name!r} but innermost open "
                         f"span on tid {tid} is {begun!r}")
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(errors, f"{where}: 'X' needs dur >= 0, got {dur!r}")
    for tid, stack in open_spans.items():
        if stack:
            fail(errors, f"tid {tid}: unclosed spans {stack}")
    return errors


def check_metrics(path):
    errors = []
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict):
        return ["top level must be an object"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(data.get(section), dict):
            fail(errors, f"missing or non-object '{section}'")
    if errors:
        return errors
    for name, value in data["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(errors, f"counter {name!r}: not a non-negative int: {value!r}")
    for name, value in data["gauges"].items():
        if not isinstance(value, (int, float)):
            fail(errors, f"gauge {name!r}: not a number: {value!r}")
    for name, h in data["histograms"].items():
        if not isinstance(h, dict):
            fail(errors, f"histogram {name!r}: not an object")
            continue
        bounds = h.get("bounds")
        counts = h.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            fail(errors, f"histogram {name!r}: bounds/counts must be lists")
            continue
        if len(counts) != len(bounds) + 1:
            fail(errors,
                 f"histogram {name!r}: {len(counts)} counts for "
                 f"{len(bounds)} bounds (want bounds+1)")
        if bounds != sorted(bounds):
            fail(errors, f"histogram {name!r}: bounds not sorted")
        if any(not isinstance(c, int) or c < 0 for c in counts):
            fail(errors, f"histogram {name!r}: negative/non-int bucket count")
        total = h.get("count")
        if sum(c for c in counts if isinstance(c, int)) != total:
            fail(errors,
                 f"histogram {name!r}: sum(counts) != count ({total!r})")
        for key in ("sum", "max"):
            if not isinstance(h.get(key), (int, float)):
                fail(errors, f"histogram {name!r}: missing numeric '{key}'")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", help="Chrome trace_event JSON to validate")
    parser.add_argument("--metrics", help="metrics JSON to validate")
    parser.add_argument("files", nargs="*",
                        help="positional fallback: trace.json [metrics.json]")
    args = parser.parse_args()

    trace = args.trace
    metrics = args.metrics
    if args.files:
        if trace is None:
            trace = args.files[0]
            if metrics is None and len(args.files) > 1:
                metrics = args.files[1]
        elif metrics is None:
            metrics = args.files[0]
    if trace is None and metrics is None:
        parser.error("give --trace and/or --metrics (or positional files)")

    status = 0
    for kind, path, checker in (("trace", trace, check_trace),
                                ("metrics", metrics, check_metrics)):
        if path is None:
            continue
        try:
            errors = checker(path)
        except (OSError, json.JSONDecodeError) as exc:
            errors = [str(exc)]
        if errors:
            status = 1
            print(f"{kind} {path}: INVALID", file=sys.stderr)
            for e in errors[:20]:
                print(f"  - {e}", file=sys.stderr)
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more", file=sys.stderr)
        else:
            print(f"{kind} {path}: ok")
    return status


if __name__ == "__main__":
    sys.exit(main())
