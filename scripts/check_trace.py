#!/usr/bin/env python3
"""Validate rta_cli observability exports (stdlib only).

Usage:
    check_trace.py --trace t.json [--metrics m.json]
                   [--responses r.jsonl] [--jsonl t.jsonl]
    check_trace.py t.json [m.json]          # positional: trace then metrics

Trace JSON (Chrome trace_event format, as written by --trace-json):
  * top level is an object with a "traceEvents" list;
  * every event has name/ph/ts/pid/tid, ph is one of B E i X M C;
  * per tid, timestamps are strictly increasing;
  * per tid, B/E events are properly nested and balanced
    (X events carry dur >= 0 instead).

With --responses (the serve JSONL output that produced the trace), the
per-request span tree is cross-checked against the response stream:
  * every response carries a non-empty string trace_id;
  * every service.request span carries args.trace_id, and that id appears
    in the response stream (a subset check: coalesced, shed, and
    parse-error requests answer without opening a span);
  * at least one service.request span exists and nests a service.read or
    service.mutate child on the same tid.

Trace JSONL (as written by --trace-jsonl): one event object per line with
numeric ts_us/tid, ph in B E i, a non-empty name, and per tid balanced
B/E nesting.

Metrics JSON (as written by --metrics-json):
  * top level has "counters", "gauges", "histograms" objects;
  * counters are non-negative integers, gauges are numbers;
  * every histogram has bounds/counts/count/sum/max with
    len(counts) == len(bounds) + 1 and sum(counts) == count.

Exit status: 0 when every given file validates, 1 otherwise.
"""

import argparse
import json
import sys

ALLOWED_PHASES = {"B", "E", "i", "X", "M", "C"}


def fail(errors, message):
    errors.append(message)


def check_trace(path):
    errors = []
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict) or "traceEvents" not in data:
        return ["top level must be an object with a 'traceEvents' list"]
    events = data["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]

    last_ts = {}     # tid -> last timestamp seen
    open_spans = {}  # tid -> stack of open B names
    for n, ev in enumerate(events):
        where = f"event #{n}"
        if not isinstance(ev, dict):
            fail(errors, f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                fail(errors, f"{where}: missing '{key}'")
        ph = ev.get("ph")
        if ph not in ALLOWED_PHASES:
            fail(errors, f"{where}: bad phase {ph!r}")
            continue
        ts = ev.get("ts")
        tid = ev.get("tid")
        if not isinstance(ts, (int, float)):
            fail(errors, f"{where}: non-numeric ts {ts!r}")
            continue
        if tid in last_ts and ts <= last_ts[tid]:
            fail(errors,
                 f"{where}: ts {ts} not strictly increasing on tid {tid} "
                 f"(previous {last_ts[tid]})")
        last_ts[tid] = ts
        if ph == "B":
            open_spans.setdefault(tid, []).append(ev.get("name"))
        elif ph == "E":
            stack = open_spans.get(tid, [])
            if not stack:
                fail(errors, f"{where}: 'E' with no open span on tid {tid}")
            else:
                begun = stack.pop()
                name = ev.get("name")
                if name and name != begun:
                    fail(errors,
                         f"{where}: 'E' for {name!r} but innermost open "
                         f"span on tid {tid} is {begun!r}")
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(errors, f"{where}: 'X' needs dur >= 0, got {dur!r}")
    for tid, stack in open_spans.items():
        if stack:
            fail(errors, f"tid {tid}: unclosed spans {stack}")
    return errors


def check_request_spans(trace_path, responses_path):
    """Cross-check service.request spans against the serve response stream."""
    errors = []
    response_ids = set()
    with open(responses_path, "r", encoding="utf-8") as f:
        for n, raw in enumerate(f, start=1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                resp = json.loads(stripped)
            except json.JSONDecodeError:
                fail(errors, f"{responses_path}:{n}: invalid JSON")
                continue
            trace_id = resp.get("trace_id") if isinstance(resp, dict) else None
            if not isinstance(trace_id, str) or not trace_id:
                fail(errors,
                     f"{responses_path}:{n}: missing non-empty 'trace_id'")
            else:
                response_ids.add(trace_id)

    with open(trace_path, "r", encoding="utf-8") as f:
        events = json.load(f).get("traceEvents", [])
    open_request = {}   # tid -> depth of the innermost open service.request
    depth = {}          # tid -> current B/E depth
    request_spans = 0
    nested_children = 0
    for n, ev in enumerate(events):
        if not isinstance(ev, dict):
            continue
        tid = ev.get("tid")
        ph = ev.get("ph")
        name = ev.get("name")
        if ph == "B":
            if name == "service.request":
                request_spans += 1
                open_request[tid] = depth.get(tid, 0)
                trace_id = (ev.get("args") or {}).get("trace_id")
                if not isinstance(trace_id, str) or not trace_id:
                    fail(errors,
                         f"event #{n}: service.request span without "
                         f"args.trace_id")
                elif trace_id not in response_ids:
                    fail(errors,
                         f"event #{n}: service.request trace_id {trace_id!r} "
                         f"not in the response stream")
            elif (name in ("service.read", "service.mutate")
                  and tid in open_request):
                nested_children += 1
            depth[tid] = depth.get(tid, 0) + 1
        elif ph == "E":
            depth[tid] = depth.get(tid, 0) - 1
            if tid in open_request and depth[tid] <= open_request[tid]:
                del open_request[tid]
    if request_spans == 0:
        fail(errors, "no service.request spans in the trace")
    elif nested_children == 0:
        fail(errors,
             "no service.read/service.mutate child nested under any "
             "service.request span")
    return errors


def check_trace_jsonl(path):
    """Validate the --trace-jsonl structured event log."""
    errors = []
    open_spans = {}  # tid -> stack of open B names
    events = 0
    with open(path, "r", encoding="utf-8") as f:
        for n, raw in enumerate(f, start=1):
            stripped = raw.strip()
            if not stripped:
                continue
            where = f"line {n}"
            try:
                ev = json.loads(stripped)
            except json.JSONDecodeError:
                fail(errors, f"{where}: invalid JSON")
                continue
            if not isinstance(ev, dict):
                fail(errors, f"{where}: not an object")
                continue
            events += 1
            if not isinstance(ev.get("ts_us"), (int, float)):
                fail(errors, f"{where}: missing numeric 'ts_us'")
            if not isinstance(ev.get("tid"), int):
                fail(errors, f"{where}: missing integer 'tid'")
            name = ev.get("name")
            if not isinstance(name, str) or not name:
                fail(errors, f"{where}: missing non-empty 'name'")
            ph = ev.get("ph")
            tid = ev.get("tid")
            if ph == "B":
                open_spans.setdefault(tid, []).append(name)
            elif ph == "E":
                stack = open_spans.get(tid, [])
                if not stack:
                    fail(errors, f"{where}: 'E' with no open span on "
                                 f"tid {tid}")
                elif stack.pop() != name:
                    fail(errors, f"{where}: mismatched 'E' for {name!r}")
            elif ph != "i":
                fail(errors, f"{where}: bad phase {ph!r}")
    for tid, stack in open_spans.items():
        if stack:
            fail(errors, f"tid {tid}: unclosed spans {stack}")
    if events == 0:
        fail(errors, "no events found")
    return errors


def check_metrics(path):
    errors = []
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict):
        return ["top level must be an object"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(data.get(section), dict):
            fail(errors, f"missing or non-object '{section}'")
    if errors:
        return errors
    for name, value in data["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(errors, f"counter {name!r}: not a non-negative int: {value!r}")
    for name, value in data["gauges"].items():
        if not isinstance(value, (int, float)):
            fail(errors, f"gauge {name!r}: not a number: {value!r}")
    for name, h in data["histograms"].items():
        if not isinstance(h, dict):
            fail(errors, f"histogram {name!r}: not an object")
            continue
        bounds = h.get("bounds")
        counts = h.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            fail(errors, f"histogram {name!r}: bounds/counts must be lists")
            continue
        if len(counts) != len(bounds) + 1:
            fail(errors,
                 f"histogram {name!r}: {len(counts)} counts for "
                 f"{len(bounds)} bounds (want bounds+1)")
        if bounds != sorted(bounds):
            fail(errors, f"histogram {name!r}: bounds not sorted")
        if any(not isinstance(c, int) or c < 0 for c in counts):
            fail(errors, f"histogram {name!r}: negative/non-int bucket count")
        total = h.get("count")
        if sum(c for c in counts if isinstance(c, int)) != total:
            fail(errors,
                 f"histogram {name!r}: sum(counts) != count ({total!r})")
        for key in ("sum", "max"):
            if not isinstance(h.get(key), (int, float)):
                fail(errors, f"histogram {name!r}: missing numeric '{key}'")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", help="Chrome trace_event JSON to validate")
    parser.add_argument("--metrics", help="metrics JSON to validate")
    parser.add_argument("--responses",
                        help="serve response JSONL to cross-check "
                             "service.request trace_ids against "
                             "(requires --trace)")
    parser.add_argument("--jsonl", help="trace JSONL event log to validate")
    parser.add_argument("files", nargs="*",
                        help="positional fallback: trace.json [metrics.json]")
    args = parser.parse_args()
    if args.responses and not args.trace:
        parser.error("--responses requires --trace")

    trace = args.trace
    metrics = args.metrics
    if args.files:
        if trace is None:
            trace = args.files[0]
            if metrics is None and len(args.files) > 1:
                metrics = args.files[1]
        elif metrics is None:
            metrics = args.files[0]
    if trace is None and metrics is None:
        parser.error("give --trace and/or --metrics (or positional files)")

    status = 0
    checks = [("trace", trace, check_trace),
              ("metrics", metrics, check_metrics),
              ("trace-jsonl", args.jsonl, check_trace_jsonl)]
    if args.responses:
        checks.append(("request-spans", trace,
                       lambda p: check_request_spans(p, args.responses)))
    for kind, path, checker in checks:
        if path is None:
            continue
        try:
            errors = checker(path)
        except (OSError, json.JSONDecodeError) as exc:
            errors = [str(exc)]
        if errors:
            status = 1
            print(f"{kind} {path}: INVALID", file=sys.stderr)
            for e in errors[:20]:
                print(f"  - {e}", file=sys.stderr)
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more", file=sys.stderr)
        else:
            print(f"{kind} {path}: ok")
    return status


if __name__ == "__main__":
    sys.exit(main())
