#!/usr/bin/env python3
"""Validate an rta_lint / rta_archcheck JSON report (stdlib only).

Usage:
    check_lint_report.py report.json [--max-new N] [--tool NAME]

Report JSON (as written by `rta_lint.py --json`):
  * top level names the tool (--tool, default "rta-lint"), an integer
    version, the scan
    root, and a non-negative files_scanned;
  * "rules" is a non-empty list of {name, description} objects with
    unique names;
  * every finding has file/line/rule/message/snippet plus boolean
    suppressed/baselined flags; its rule appears in "rules"; line >= 1;
    a finding is never both suppressed and baselined;
  * findings are sorted by (file, line, rule);
  * "counts" has new/baselined/suppressed, each matching a recount of
    the findings list.

--max-new fails the check when counts.new exceeds N (default 0), so CI
can gate on "no new findings" while still archiving the full report.

Exit status: 0 when the report validates, 1 otherwise.
"""

import argparse
import json
import sys

FINDING_KEYS = ("file", "line", "rule", "message", "snippet",
                "suppressed", "baselined")


def check_report(path, max_new, tool):
    errors = []

    def fail(message):
        errors.append(message)

    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"cannot read report: {e}"]

    if not isinstance(data, dict):
        return ["top level must be an object"]

    if data.get("tool") != tool:
        fail(f"'tool' must be {tool!r}, got {data.get('tool')!r}")
    if not isinstance(data.get("version"), int):
        fail("'version' must be an integer")
    if not isinstance(data.get("root"), str):
        fail("'root' must be a string")
    files = data.get("files_scanned")
    if not isinstance(files, int) or files < 0:
        fail("'files_scanned' must be a non-negative integer")

    rules = data.get("rules")
    rule_names = set()
    if not isinstance(rules, list) or not rules:
        fail("'rules' must be a non-empty list")
    else:
        for n, rule in enumerate(rules):
            if not isinstance(rule, dict) or not rule.get("name") \
                    or not rule.get("description"):
                fail(f"rule #{n}: needs non-empty 'name' and 'description'")
                continue
            if rule["name"] in rule_names:
                fail(f"rule #{n}: duplicate name {rule['name']!r}")
            rule_names.add(rule["name"])

    findings = data.get("findings")
    recount = {"new": 0, "baselined": 0, "suppressed": 0}
    if not isinstance(findings, list):
        fail("'findings' must be a list")
        findings = []
    prev_key = None
    for n, f in enumerate(findings):
        where = f"finding #{n}"
        if not isinstance(f, dict):
            fail(f"{where}: not an object")
            continue
        for key in FINDING_KEYS:
            if key not in f:
                fail(f"{where}: missing '{key}'")
        if not isinstance(f.get("line"), int) or f.get("line", 0) < 1:
            fail(f"{where}: 'line' must be a positive integer")
        for key in ("suppressed", "baselined"):
            if not isinstance(f.get(key), bool):
                fail(f"{where}: '{key}' must be a boolean")
        if f.get("suppressed") and f.get("baselined"):
            fail(f"{where}: cannot be both suppressed and baselined")
        if rule_names and f.get("rule") not in rule_names:
            fail(f"{where}: rule {f.get('rule')!r} not in 'rules'")
        key = (f.get("file", ""), f.get("line", 0), f.get("rule", ""))
        if prev_key is not None and key < prev_key:
            fail(f"{where}: findings not sorted by (file, line, rule)")
        prev_key = key
        if f.get("suppressed"):
            recount["suppressed"] += 1
        elif f.get("baselined"):
            recount["baselined"] += 1
        else:
            recount["new"] += 1

    counts = data.get("counts")
    if not isinstance(counts, dict):
        fail("'counts' must be an object")
    else:
        for key in ("new", "baselined", "suppressed"):
            if counts.get(key) != recount[key]:
                fail(f"counts.{key} is {counts.get(key)!r}, recount says "
                     f"{recount[key]}")

    if recount["new"] > max_new:
        fail(f"{recount['new']} new finding(s) exceed --max-new {max_new}")

    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="rta_lint JSON report to validate")
    parser.add_argument("--max-new", type=int, default=0,
                        help="maximum allowed new findings (default 0)")
    parser.add_argument("--tool", default="rta-lint",
                        help="expected 'tool' name in the report "
                             "(default rta-lint)")
    args = parser.parse_args()

    errors = check_report(args.report, args.max_new, args.tool)
    if errors:
        for e in errors:
            print(f"check_lint_report: {args.report}: {e}", file=sys.stderr)
        return 1
    print(f"check_lint_report: {args.report}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
