#!/bin/sh
# Run every lint layer the static-analysis CI job runs, in the same
# order: fixture goldens first (the linters' own tests), then src/
# against the committed baselines, then the report-shape gates.
#
# Usage: scripts/lint_all.sh [report-dir]
# Reports land in report-dir (default: a lint-reports/ next to the
# build tree is NOT assumed -- plain ./lint-reports). Exit nonzero on
# the first failing layer.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
out=${1:-"$root/lint-reports"}
mkdir -p "$out"

echo "== rta-lint fixture goldens =="
python3 "$root/tools/lint/test_rta_lint.py"

echo "== rta-archcheck fixture goldens =="
python3 "$root/tools/lint/test_rta_archcheck.py"

echo "== rta-lint src =="
python3 "$root/tools/lint/rta_lint.py" \
  --json "$out/lint_report.json" "$root/src"
python3 "$root/scripts/check_lint_report.py" "$out/lint_report.json"

echo "== rta-archcheck src =="
python3 "$root/tools/lint/rta_archcheck.py" \
  --json "$out/archcheck_report.json" "$root/src"
python3 "$root/scripts/check_lint_report.py" "$out/archcheck_report.json" \
  --tool rta-archcheck --max-new 0

echo "lint_all: all layers clean (reports in $out)"
