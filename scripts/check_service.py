#!/usr/bin/env python3
"""Validate `rta_cli serve` JSONL responses (stdlib only).

Usage:
    check_service.py --responses out.jsonl [--requests in.jsonl]
                     [--expect-schema {1,2}] [--multi-tenant]
                     [--tenant NAME=REFERENCE.jsonl ...]

The service speaks two envelopes (docs/api.md "Request schema v2"):

  * v2 (default): every response leads with "schema_version": 2 and
    reports failures as an 'error' OBJECT {code, message, retryable}
    with code drawn from a closed set and retryable true only for
    overloaded/timeout.  The legacy top-level retry/timeout markers
    are forbidden.
  * v1 (`rta_cli serve --compat-v1`): no schema_version, failures are
    a non-empty error STRING, backpressure/timeout are signalled by
    the top-level 'retry'/'timeout': true markers.

Each line is classified by the presence of schema_version, so mixed
files validate too; --expect-schema pins every line to one envelope.

Envelope-independent checks, per response line:
  * valid JSON object with request (1-based, consecutive), line, op;
  * trace_id is a non-empty string on EVERY response (parse errors
    included) -- the service echoes the propagated id or mints one;
  * ok is a bool; ok=false responses carry an error (string or object
    per the envelope);
  * admit/what_if/remove responses with ok=true carry admitted/committed/
    incremental bools, integer job_id/dirty_subjobs/total_subjobs, and
    numeric schedulable/max_wcrt/horizon fields ("inf" allowed for wcrt);
  * admit/what_if responses with ok=true carry an 'explain' object with
    numeric wcrt/deadline, integer dominant_hop/doublings, and a per-hop
    bound provenance list (docs/observability.md);
  * what_if never commits; admit commits iff admitted;
  * what_if_region responses with ok=true carry a 'region' object with
    an axes list, integer probes/incremental_probes, and exactly one of
    a 'boundary' object or a 'columns' array of {value, boundary};
  * query responses carry jobs/schedulable/max_wcrt/horizon;
  * stats responses with ok=true carry counters/gauges/histograms objects
    plus a numeric cache_hit_rate; each histogram summary has numeric
    count/p50/p90/p99/max with p50 <= p90 <= p99;
  * latency_us is a non-negative number on EVERY response (parse errors
    included).

With --requests, additionally checks that the number of responses equals
the number of request lines (blank and '#' lines skipped) and that the ops
match line by line.

Multi-tenant mode (`rta_cli serve --tenants-from`, docs/api.md):

  * --multi-tenant: the 'request'/'line' indices count within each
    response's 'tenant' bucket (responses without a tenant echo form the
    "untenanted" bucket), each bucket 1-based and consecutive, while the
    global op order still matches the request file line by line.
  * --tenant NAME=REFERENCE.jsonl (repeatable): the NAME bucket's
    responses must be byte-identical -- modulo the latency_us field --
    to REFERENCE.jsonl, a plain single-tenant serve of just that
    tenant's request lines.  This is the determinism contract of the
    sharded front end, checked end to end.

Exit status: 0 when everything validates, 1 otherwise.
"""

import argparse
import json
import re
import sys

KNOWN_OPS = {"admit", "what_if", "what_if_region", "remove", "query", "stats"}

# Closed error-code vocabulary of the v2 envelope (docs/api.md).
ERROR_CODES = {
    "bad_request", "not_found", "conflict", "invalid_argument",
    "unavailable", "overloaded", "timeout", "internal",
}
RETRYABLE_CODES = {"overloaded", "timeout"}


def load_jsonl(path):
    """Yield (line_number, parsed_or_None, raw) for non-comment lines."""
    with open(path, "r", encoding="utf-8") as f:
        for n, raw in enumerate(f, start=1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                yield n, json.loads(stripped), stripped
            except json.JSONDecodeError:
                yield n, None, stripped


def is_time(value):
    return isinstance(value, (int, float)) or value == "inf"


def check_envelope(resp, where, expect_schema, errors):
    """Classify the line's envelope and validate its error shape.

    Returns the detected schema (1 or 2).  Error-shape problems are
    appended to `errors`; the envelope-independent "ok=false must carry
    an error" check lives here too since its form depends on the schema.
    """
    schema = 2 if "schema_version" in resp else 1
    if schema == 2 and resp.get("schema_version") != 2:
        errors.append(
            f"{where}: schema_version {resp.get('schema_version')!r}, "
            f"expected 2")
    if expect_schema is not None and schema != expect_schema:
        errors.append(
            f"{where}: v{schema} envelope, --expect-schema {expect_schema}")
    ok = resp.get("ok")
    if schema == 2:
        for marker in ("retry", "timeout"):
            if marker in resp:
                errors.append(
                    f"{where}: legacy '{marker}' marker in a v2 response")
        err = resp.get("error")
        if ok is False:
            if not isinstance(err, dict):
                errors.append(f"{where}: ok=false without an error object")
            else:
                code = err.get("code")
                if code not in ERROR_CODES:
                    errors.append(f"{where}: unknown error code {code!r}")
                message = err.get("message")
                if not isinstance(message, str) or not message:
                    errors.append(
                        f"{where}: error missing non-empty 'message'")
                retryable = err.get("retryable")
                if not isinstance(retryable, bool):
                    errors.append(f"{where}: error missing bool 'retryable'")
                elif retryable and code not in RETRYABLE_CODES:
                    errors.append(
                        f"{where}: retryable=true with code {code!r}")
        elif err is not None:
            errors.append(f"{where}: 'error' on an ok response")
    else:
        for marker in ("retry", "timeout"):
            if marker in resp:
                if resp[marker] is not True:
                    errors.append(f"{where}: '{marker}' must be true")
                if ok:
                    errors.append(f"{where}: '{marker}' on an ok response")
        if ok is False:
            if not (isinstance(resp.get("error"), str) and resp["error"]):
                errors.append(f"{where}: ok=false without an error string")
    return schema


def check_decision_fields(resp, where, errors):
    for key in ("admitted", "committed", "incremental"):
        if not isinstance(resp.get(key), bool):
            errors.append(f"{where}: missing bool '{key}'")
    for key in ("job_id", "dirty_subjobs", "total_subjobs"):
        if not isinstance(resp.get(key), (int, float)):
            errors.append(f"{where}: missing numeric '{key}'")
    if not isinstance(resp.get("schedulable"), bool):
        errors.append(f"{where}: missing bool 'schedulable'")
    if not is_time(resp.get("max_wcrt")):
        errors.append(f"{where}: missing time 'max_wcrt'")
    if not isinstance(resp.get("horizon"), (int, float)):
        errors.append(f"{where}: missing numeric 'horizon'")
    op = resp.get("op")
    if op == "what_if" and resp.get("committed"):
        errors.append(f"{where}: what_if must never commit")
    if op == "admit" and resp.get("committed") != resp.get("admitted"):
        errors.append(f"{where}: admit must commit iff admitted")
    if op in ("admit", "what_if"):
        check_explain(resp.get("explain"), where, errors)


def check_explain(explain, where, errors):
    """Bound-provenance payload on ok admit/what_if (docs/observability.md)."""
    if not isinstance(explain, dict):
        errors.append(f"{where}: missing 'explain' object")
        return
    for key in ("wcrt", "deadline"):
        if not is_time(explain.get(key)):
            errors.append(f"{where}: explain missing time '{key}'")
    for key in ("dominant_hop", "doublings"):
        if not isinstance(explain.get(key), int):
            errors.append(f"{where}: explain missing integer '{key}'")
    hops = explain.get("hops")
    if not isinstance(hops, list) or not hops:
        errors.append(f"{where}: explain needs a non-empty 'hops' list")
        return
    for i, hop in enumerate(hops):
        if not isinstance(hop, dict):
            errors.append(f"{where}: explain hop {i} is not an object")
            continue
        if hop.get("hop") != i:
            errors.append(f"{where}: explain hop {i} has index "
                          f"{hop.get('hop')!r}")
        if not isinstance(hop.get("processor"), int):
            errors.append(f"{where}: explain hop {i} missing 'processor'")
        if not is_time(hop.get("bound")):
            errors.append(f"{where}: explain hop {i} missing time 'bound'")
    dom = explain.get("dominant_hop")
    if isinstance(dom, int) and not 0 <= dom < len(hops):
        errors.append(f"{where}: dominant_hop {dom} outside hops")


def check_boundary(boundary, where, errors):
    """1-D feasibility boundary (docs/api.md what_if_region contract)."""
    if not isinstance(boundary, dict):
        errors.append(f"{where}: boundary is not an object")
        return
    for key in ("empty", "open"):
        if not isinstance(boundary.get(key), bool):
            errors.append(f"{where}: boundary missing bool '{key}'")
    if not isinstance(boundary.get("probes"), int):
        errors.append(f"{where}: boundary missing integer 'probes'")
    # feasible is reported unless the region is empty; infeasible unless
    # it is open (the bracket's hi end was still feasible).
    if boundary.get("empty") is False and \
            not isinstance(boundary.get("feasible"), (int, float)):
        errors.append(f"{where}: non-empty boundary missing 'feasible'")
    if boundary.get("open") is False and \
            not isinstance(boundary.get("infeasible"), (int, float)):
        errors.append(f"{where}: closed boundary missing 'infeasible'")


def check_region_fields(resp, where, errors):
    region = resp.get("region")
    if not isinstance(region, dict):
        errors.append(f"{where}: missing 'region' object")
        return
    axes = region.get("axes")
    if not isinstance(axes, list) or not axes:
        errors.append(f"{where}: region needs a non-empty 'axes' list")
    else:
        for i, axis in enumerate(axes):
            if not isinstance(axis, dict) or \
                    not isinstance(axis.get("param"), str):
                errors.append(f"{where}: region axis {i} missing 'param'")
    for key in ("probes", "incremental_probes"):
        if not isinstance(region.get(key), int):
            errors.append(f"{where}: region missing integer '{key}'")
    if not isinstance(region.get("horizon"), (int, float)):
        errors.append(f"{where}: region missing numeric 'horizon'")
    boundary = region.get("boundary")
    columns = region.get("columns")
    if (boundary is None) == (columns is None):
        errors.append(
            f"{where}: region needs exactly one of 'boundary'/'columns'")
    elif boundary is not None:
        check_boundary(boundary, where, errors)
    elif not isinstance(columns, list) or not columns:
        errors.append(f"{where}: region 'columns' must be a non-empty list")
    else:
        for i, col in enumerate(columns):
            if not isinstance(col, dict) or \
                    not isinstance(col.get("value"), (int, float)):
                errors.append(f"{where}: region column {i} missing 'value'")
                continue
            check_boundary(col.get("boundary"), f"{where} column {i}", errors)


def check_stats_fields(resp, where, errors):
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(resp.get(section), dict):
            errors.append(f"{where}: stats missing object '{section}'")
    rate = resp.get("cache_hit_rate")
    if not isinstance(rate, (int, float)) or not 0 <= rate <= 1:
        errors.append(f"{where}: stats cache_hit_rate not in [0,1]: {rate!r}")
    for name, h in (resp.get("histograms") or {}).items():
        if not isinstance(h, dict):
            errors.append(f"{where}: stats histogram {name!r} not an object")
            continue
        for key in ("count", "p50", "p90", "p99", "max"):
            if not isinstance(h.get(key), (int, float)):
                errors.append(
                    f"{where}: stats histogram {name!r} missing '{key}'")
        quantiles = [h.get("p50"), h.get("p90"), h.get("p99")]
        if all(isinstance(q, (int, float)) for q in quantiles):
            if not quantiles[0] <= quantiles[1] <= quantiles[2]:
                errors.append(
                    f"{where}: stats histogram {name!r} quantiles not "
                    f"monotone: {quantiles}")
            if h.get("count", 0) > 0 and quantiles[2] <= 0:
                errors.append(
                    f"{where}: stats histogram {name!r} has observations "
                    f"but p99 <= 0")


def check_responses(path, expected_ops, expect_schema, multi_tenant=False):
    errors = []
    seen = 0
    bucket_seen = {}  # tenant name (or "" = untenanted) -> responses so far
    for n, resp, raw in load_jsonl(path):
        where = f"{path}:{n}"
        if resp is None:
            errors.append(f"{where}: invalid JSON: {raw[:60]}")
            continue
        if not isinstance(resp, dict):
            errors.append(f"{where}: response is not an object")
            continue
        seen += 1
        if multi_tenant:
            tenant = resp.get("tenant")
            if tenant is not None and not isinstance(tenant, str):
                errors.append(f"{where}: non-string 'tenant' echo")
                tenant = None
            bucket = tenant or ""
            bucket_seen[bucket] = bucket_seen.get(bucket, 0) + 1
            expected_index = bucket_seen[bucket]
        else:
            expected_index = seen
        if resp.get("request") != expected_index:
            errors.append(
                f"{where}: request index {resp.get('request')!r}, "
                f"expected {expected_index}")
        if not isinstance(resp.get("line"), int):
            errors.append(f"{where}: missing integer 'line'")
        trace_id = resp.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            errors.append(f"{where}: missing non-empty 'trace_id'")
        op = resp.get("op")
        ok = resp.get("ok")
        if not isinstance(ok, bool):
            errors.append(f"{where}: missing bool 'ok'")
            continue
        latency = resp.get("latency_us")
        if not isinstance(latency, (int, float)) or latency < 0:
            errors.append(f"{where}: bad latency_us {latency!r}")
        check_envelope(resp, where, expect_schema, errors)
        if not isinstance(op, str):
            # op is omitted only for requests too malformed to echo one.
            if ok:
                errors.append(f"{where}: ok=true without 'op'")
            continue
        if expected_ops is not None:
            if seen > len(expected_ops):
                errors.append(f"{where}: more responses than requests")
            elif expected_ops[seen - 1] != "?" and op != expected_ops[seen - 1]:
                errors.append(
                    f"{where}: op {op!r}, request file says "
                    f"{expected_ops[seen - 1]!r}")
        if not ok:
            continue
        if op not in KNOWN_OPS:
            errors.append(f"{where}: ok=true for unknown op {op!r}")
        elif op == "query":
            if not isinstance(resp.get("jobs"), int):
                errors.append(f"{where}: query missing integer 'jobs'")
            if not isinstance(resp.get("schedulable"), bool):
                errors.append(f"{where}: query missing bool 'schedulable'")
            if not is_time(resp.get("max_wcrt")):
                errors.append(f"{where}: query missing time 'max_wcrt'")
        elif op == "stats":
            check_stats_fields(resp, where, errors)
        elif op == "what_if_region":
            check_region_fields(resp, where, errors)
        else:
            check_decision_fields(resp, where, errors)
    if seen == 0:
        errors.append(f"{path}: no responses found")
    if expected_ops is not None and seen < len(expected_ops):
        errors.append(
            f"{path}: {seen} responses for {len(expected_ops)} requests")
    return errors


LATENCY_RE = re.compile(r',"latency_us":[^,}]+')


def check_tenant_identity(responses_path, name, reference_path):
    """Byte-compare one tenant's responses against its solo reference run,
    with the (wall-clock) latency_us field stripped from both sides."""
    errors = []
    got = []
    for n, resp, raw in load_jsonl(responses_path):
        if isinstance(resp, dict) and resp.get("tenant") == name:
            got.append((n, LATENCY_RE.sub("", raw)))
    want = [(n, LATENCY_RE.sub("", raw))
            for n, _, raw in load_jsonl(reference_path)]
    if len(got) != len(want):
        errors.append(
            f"tenant {name!r}: {len(got)} responses in {responses_path}, "
            f"reference {reference_path} has {len(want)}")
    for (gn, g), (wn, w) in zip(got, want):
        if g != w:
            errors.append(
                f"tenant {name!r}: {responses_path}:{gn} differs from "
                f"{reference_path}:{wn}\n      got:  {g[:120]}\n"
                f"      want: {w[:120]}")
            break  # one divergence pins the bug; later diffs are cascade
    return errors


def request_ops(path):
    ops = []
    for n, req, raw in load_jsonl(path):
        if isinstance(req, dict) and isinstance(req.get("op"), str):
            ops.append(req["op"])
        else:
            ops.append("?")  # malformed request still yields one response
    return ops


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--responses", required=True,
                        help="JSONL written by `rta_cli serve --out`")
    parser.add_argument("--requests",
                        help="the request JSONL that produced the responses")
    parser.add_argument("--expect-schema", type=int, choices=(1, 2),
                        help="require every response to use this envelope "
                             "(default: classify per line)")
    parser.add_argument("--multi-tenant", action="store_true",
                        help="responses come from `serve --tenants-from`: "
                             "request/line indices count per tenant bucket")
    parser.add_argument("--tenant", action="append", default=[],
                        metavar="NAME=REFERENCE.jsonl",
                        help="check the NAME bucket byte-identical (modulo "
                             "latency_us) to this single-tenant reference "
                             "run; implies --multi-tenant")
    args = parser.parse_args()
    if args.tenant:
        args.multi_tenant = True

    expected = request_ops(args.requests) if args.requests else None
    try:
        errors = check_responses(args.responses, expected, args.expect_schema,
                                 multi_tenant=args.multi_tenant)
        for spec in args.tenant:
            name, sep, reference = spec.partition("=")
            if not sep or not name or not reference:
                errors.append(f"bad --tenant spec {spec!r}, "
                              f"want NAME=REFERENCE.jsonl")
                continue
            errors.extend(
                check_tenant_identity(args.responses, name, reference))
    except OSError as exc:
        errors = [str(exc)]
    if errors:
        print(f"service responses {args.responses}: INVALID", file=sys.stderr)
        for e in errors[:20]:
            print(f"  - {e}", file=sys.stderr)
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more", file=sys.stderr)
        return 1
    print(f"service responses {args.responses}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
