#!/usr/bin/env python3
"""Validate `rta_cli serve` JSONL responses (stdlib only).

Usage:
    check_service.py --responses out.jsonl [--requests in.jsonl]

Checks, per response line:
  * valid JSON object with request (1-based, consecutive), line, op;
  * trace_id is a non-empty string on EVERY response (parse errors
    included) -- the service echoes the propagated id or mints one;
  * ok is a bool; ok=false responses carry a non-empty error string;
  * admit/what_if/remove responses with ok=true carry admitted/committed/
    incremental bools, integer job_id/dirty_subjobs/total_subjobs, and
    numeric schedulable/max_wcrt/horizon fields ("inf" allowed for wcrt);
  * admit/what_if responses with ok=true carry an 'explain' object with
    numeric wcrt/deadline, integer dominant_hop/doublings, and a per-hop
    bound provenance list (docs/observability.md);
  * what_if never commits; admit commits iff admitted;
  * query responses carry jobs/schedulable/max_wcrt/horizon;
  * stats responses with ok=true carry counters/gauges/histograms objects
    plus a numeric cache_hit_rate; each histogram summary has numeric
    count/p50/p90/p99/max with p50 <= p90 <= p99;
  * latency_us is a non-negative number on EVERY response (parse errors
    included);
  * the backpressure/timeout markers 'retry' and 'timeout' only appear on
    ok=false responses, and only with value true (docs/api.md schema).

With --requests, additionally checks that the number of responses equals
the number of request lines (blank and '#' lines skipped) and that the ops
match line by line.

Exit status: 0 when everything validates, 1 otherwise.
"""

import argparse
import json
import sys

KNOWN_OPS = {"admit", "what_if", "remove", "query", "stats"}


def load_jsonl(path):
    """Yield (line_number, parsed_or_None, raw) for non-comment lines."""
    with open(path, "r", encoding="utf-8") as f:
        for n, raw in enumerate(f, start=1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                yield n, json.loads(stripped), stripped
            except json.JSONDecodeError:
                yield n, None, stripped


def is_time(value):
    return isinstance(value, (int, float)) or value == "inf"


def check_decision_fields(resp, where, errors):
    for key in ("admitted", "committed", "incremental"):
        if not isinstance(resp.get(key), bool):
            errors.append(f"{where}: missing bool '{key}'")
    for key in ("job_id", "dirty_subjobs", "total_subjobs"):
        if not isinstance(resp.get(key), (int, float)):
            errors.append(f"{where}: missing numeric '{key}'")
    if not isinstance(resp.get("schedulable"), bool):
        errors.append(f"{where}: missing bool 'schedulable'")
    if not is_time(resp.get("max_wcrt")):
        errors.append(f"{where}: missing time 'max_wcrt'")
    if not isinstance(resp.get("horizon"), (int, float)):
        errors.append(f"{where}: missing numeric 'horizon'")
    op = resp.get("op")
    if op == "what_if" and resp.get("committed"):
        errors.append(f"{where}: what_if must never commit")
    if op == "admit" and resp.get("committed") != resp.get("admitted"):
        errors.append(f"{where}: admit must commit iff admitted")
    if op in ("admit", "what_if"):
        check_explain(resp.get("explain"), where, errors)


def check_explain(explain, where, errors):
    """Bound-provenance payload on ok admit/what_if (docs/observability.md)."""
    if not isinstance(explain, dict):
        errors.append(f"{where}: missing 'explain' object")
        return
    for key in ("wcrt", "deadline"):
        if not is_time(explain.get(key)):
            errors.append(f"{where}: explain missing time '{key}'")
    for key in ("dominant_hop", "doublings"):
        if not isinstance(explain.get(key), int):
            errors.append(f"{where}: explain missing integer '{key}'")
    hops = explain.get("hops")
    if not isinstance(hops, list) or not hops:
        errors.append(f"{where}: explain needs a non-empty 'hops' list")
        return
    for i, hop in enumerate(hops):
        if not isinstance(hop, dict):
            errors.append(f"{where}: explain hop {i} is not an object")
            continue
        if hop.get("hop") != i:
            errors.append(f"{where}: explain hop {i} has index "
                          f"{hop.get('hop')!r}")
        if not isinstance(hop.get("processor"), int):
            errors.append(f"{where}: explain hop {i} missing 'processor'")
        if not is_time(hop.get("bound")):
            errors.append(f"{where}: explain hop {i} missing time 'bound'")
    dom = explain.get("dominant_hop")
    if isinstance(dom, int) and not 0 <= dom < len(hops):
        errors.append(f"{where}: dominant_hop {dom} outside hops")


def check_stats_fields(resp, where, errors):
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(resp.get(section), dict):
            errors.append(f"{where}: stats missing object '{section}'")
    rate = resp.get("cache_hit_rate")
    if not isinstance(rate, (int, float)) or not 0 <= rate <= 1:
        errors.append(f"{where}: stats cache_hit_rate not in [0,1]: {rate!r}")
    for name, h in (resp.get("histograms") or {}).items():
        if not isinstance(h, dict):
            errors.append(f"{where}: stats histogram {name!r} not an object")
            continue
        for key in ("count", "p50", "p90", "p99", "max"):
            if not isinstance(h.get(key), (int, float)):
                errors.append(
                    f"{where}: stats histogram {name!r} missing '{key}'")
        quantiles = [h.get("p50"), h.get("p90"), h.get("p99")]
        if all(isinstance(q, (int, float)) for q in quantiles):
            if not quantiles[0] <= quantiles[1] <= quantiles[2]:
                errors.append(
                    f"{where}: stats histogram {name!r} quantiles not "
                    f"monotone: {quantiles}")
            if h.get("count", 0) > 0 and quantiles[2] <= 0:
                errors.append(
                    f"{where}: stats histogram {name!r} has observations "
                    f"but p99 <= 0")


def check_responses(path, expected_ops):
    errors = []
    seen = 0
    for n, resp, raw in load_jsonl(path):
        where = f"{path}:{n}"
        if resp is None:
            errors.append(f"{where}: invalid JSON: {raw[:60]}")
            continue
        if not isinstance(resp, dict):
            errors.append(f"{where}: response is not an object")
            continue
        seen += 1
        if resp.get("request") != seen:
            errors.append(
                f"{where}: request index {resp.get('request')!r}, "
                f"expected {seen}")
        if not isinstance(resp.get("line"), int):
            errors.append(f"{where}: missing integer 'line'")
        trace_id = resp.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            errors.append(f"{where}: missing non-empty 'trace_id'")
        op = resp.get("op")
        ok = resp.get("ok")
        if not isinstance(ok, bool):
            errors.append(f"{where}: missing bool 'ok'")
            continue
        latency = resp.get("latency_us")
        if not isinstance(latency, (int, float)) or latency < 0:
            errors.append(f"{where}: bad latency_us {latency!r}")
        for marker in ("retry", "timeout"):
            if marker in resp:
                if resp[marker] is not True:
                    errors.append(f"{where}: '{marker}' must be true")
                if ok:
                    errors.append(f"{where}: '{marker}' on an ok response")
        if not isinstance(op, str):
            # op is omitted only for requests too malformed to echo one.
            if ok:
                errors.append(f"{where}: ok=true without 'op'")
            elif not (isinstance(resp.get("error"), str) and resp["error"]):
                errors.append(f"{where}: ok=false without an error string")
            continue
        if expected_ops is not None:
            if seen > len(expected_ops):
                errors.append(f"{where}: more responses than requests")
            elif expected_ops[seen - 1] != "?" and op != expected_ops[seen - 1]:
                errors.append(
                    f"{where}: op {op!r}, request file says "
                    f"{expected_ops[seen - 1]!r}")
        if not ok:
            if not (isinstance(resp.get("error"), str) and resp["error"]):
                errors.append(f"{where}: ok=false without an error string")
            continue
        if op not in KNOWN_OPS:
            errors.append(f"{where}: ok=true for unknown op {op!r}")
        elif op == "query":
            if not isinstance(resp.get("jobs"), int):
                errors.append(f"{where}: query missing integer 'jobs'")
            if not isinstance(resp.get("schedulable"), bool):
                errors.append(f"{where}: query missing bool 'schedulable'")
            if not is_time(resp.get("max_wcrt")):
                errors.append(f"{where}: query missing time 'max_wcrt'")
        elif op == "stats":
            check_stats_fields(resp, where, errors)
        else:
            check_decision_fields(resp, where, errors)
    if seen == 0:
        errors.append(f"{path}: no responses found")
    if expected_ops is not None and seen < len(expected_ops):
        errors.append(
            f"{path}: {seen} responses for {len(expected_ops)} requests")
    return errors


def request_ops(path):
    ops = []
    for n, req, raw in load_jsonl(path):
        if isinstance(req, dict) and isinstance(req.get("op"), str):
            ops.append(req["op"])
        else:
            ops.append("?")  # malformed request still yields one response
    return ops


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--responses", required=True,
                        help="JSONL written by `rta_cli serve --out`")
    parser.add_argument("--requests",
                        help="the request JSONL that produced the responses")
    args = parser.parse_args()

    expected = request_ops(args.requests) if args.requests else None
    try:
        errors = check_responses(args.responses, expected)
    except OSError as exc:
        errors = [str(exc)]
    if errors:
        print(f"service responses {args.responses}: INVALID", file=sys.stderr)
        for e in errors[:20]:
            print(f"  - {e}", file=sys.stderr)
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more", file=sys.stderr)
        return 1
    print(f"service responses {args.responses}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
