#!/usr/bin/env python3
"""Golden test for rta_lint over the fixture corpus.

Checks, in order:
  1. The fixture corpus reproduces exactly the findings in
     fixtures/expected.json (file, line, rule, suppressed) and exits 1.
  2. A file with no findings exits 0.
  3. --write-baseline followed by a baselined run exits 0 with every
     finding accounted as baselined.
  4. Removing one fingerprint from the baseline resurfaces exactly that
     finding as new (exit 1).
  5. --rules selects a subset (plus bad-suppression, which is always on).
  6. An unknown rule name is a usage error (exit 2).

Stdlib only; run directly or through ctest (lint_fixtures).
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "rta_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
FIXTURE_SRC = os.path.join(FIXTURES, "src")
EXPECTED = os.path.join(FIXTURES, "expected.json")

failures = []


def check(name, cond, detail=""):
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {name}" + (f": {detail}" if detail and not cond else ""))
    if not cond:
        failures.append(name)


def run_lint(*extra, json_to=None):
    cmd = [sys.executable, LINT, "--root", FIXTURES, "-q"]
    if json_to is not None:
        cmd += ["--json", json_to]
    cmd += list(extra)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def key(f):
    return (f["file"], f["line"], f["rule"], f["suppressed"])


def main():
    with open(EXPECTED, "r", encoding="utf-8") as f:
        expected = json.load(f)
    exp_keys = sorted(key(f) for f in expected["findings"])

    with tempfile.TemporaryDirectory(prefix="rta_lint_test_") as tmp:
        report_path = os.path.join(tmp, "report.json")
        baseline_path = os.path.join(tmp, "baseline.json")

        # 1. Golden corpus match.
        print("golden corpus:")
        proc = run_lint("--no-baseline", FIXTURE_SRC, json_to=report_path)
        check("exit code 1 (new findings)", proc.returncode == 1,
              f"got {proc.returncode}: {proc.stderr}")
        rep = load_report(report_path)
        got_keys = sorted(key(f) for f in rep["findings"])
        check("findings match expected.json", got_keys == exp_keys,
              f"\n  expected: {exp_keys}\n  got:      {got_keys}")
        check("counts match", rep["counts"] == expected["counts"],
              f"expected {expected['counts']}, got {rep['counts']}")
        check("report names the tool", rep.get("tool") == "rta-lint")
        check("every rule documented", all(
            r.get("name") and r.get("description") for r in rep["rules"]))

        # 2. A clean file exits 0.
        print("clean file:")
        clean = os.path.join(FIXTURE_SRC, "obs", "wallclock_ok.cpp")
        proc = run_lint("--no-baseline", clean, json_to=report_path)
        check("exit code 0", proc.returncode == 0,
              f"got {proc.returncode}: {proc.stderr}")
        rep = load_report(report_path)
        check("no findings", rep["findings"] == [])

        # 3. Baseline roundtrip: everything baselined, exit 0.
        print("baseline roundtrip:")
        proc = run_lint("--write-baseline", "--baseline", baseline_path,
                        FIXTURE_SRC)
        check("--write-baseline exits 0", proc.returncode == 0,
              f"got {proc.returncode}: {proc.stderr}")
        proc = run_lint("--baseline", baseline_path, FIXTURE_SRC,
                        json_to=report_path)
        check("baselined run exits 0", proc.returncode == 0,
              f"got {proc.returncode}: {proc.stderr}")
        rep = load_report(report_path)
        check("no new findings", rep["counts"]["new"] == 0, str(rep["counts"]))
        n_unsuppressed = sum(1 for f in expected["findings"]
                             if not f["suppressed"])
        check("all unsuppressed findings baselined",
              rep["counts"]["baselined"] == n_unsuppressed,
              f"expected {n_unsuppressed}, got {rep['counts']['baselined']}")

        # 4. Dropping one fingerprint resurfaces exactly that finding.
        print("baseline regression:")
        with open(baseline_path, "r", encoding="utf-8") as f:
            base = json.load(f)
        check("baseline is v2 (occurrence-indexed list)",
              base.get("version") == 2
              and isinstance(base["fingerprints"], list)
              and all("#" in fp for fp in base["fingerprints"]))
        dropped_fp = sorted(base["fingerprints"])[0]
        base["fingerprints"].remove(dropped_fp)
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump(base, f)
        proc = run_lint("--baseline", baseline_path, FIXTURE_SRC,
                        json_to=report_path)
        check("exit code 1 after dropping a fingerprint",
              proc.returncode == 1, f"got {proc.returncode}")
        rep = load_report(report_path)
        check("exactly the dropped finding is new",
              rep["counts"]["new"] == 1,
              f"new {rep['counts']['new']}")

        # 4b. A legacy v1 baseline ({fingerprint: count}) still loads.
        print("v1 baseline migration:")
        counts = {}
        for fp in base["fingerprints"] + [dropped_fp]:
            root_fp = fp.rsplit("#", 1)[0]
            counts[root_fp] = counts.get(root_fp, 0) + 1
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump({"version": 1, "fingerprints": counts}, f)
        proc = run_lint("--baseline", baseline_path, FIXTURE_SRC,
                        json_to=report_path)
        check("v1 baseline still suppresses all findings",
              proc.returncode == 0,
              f"got {proc.returncode}: {proc.stderr}")

        # 5. Rule subset.
        print("rule subset:")
        proc = run_lint("--no-baseline", "--rules", "float-eq", FIXTURE_SRC,
                        json_to=report_path)
        rep = load_report(report_path)
        rules_seen = {f["rule"] for f in rep["findings"]}
        check("only float-eq and bad-suppression reported",
              rules_seen <= {"float-eq", "bad-suppression"}, str(rules_seen))
        check("float-eq findings present", "float-eq" in rules_seen)

        # 6. Usage errors.
        print("usage errors:")
        proc = run_lint("--rules", "no-such-rule", FIXTURE_SRC)
        check("unknown rule exits 2", proc.returncode == 2,
              f"got {proc.returncode}")
        proc = run_lint(os.path.join(FIXTURES, "does-not-exist"))
        check("missing path exits 2", proc.returncode == 2,
              f"got {proc.returncode}")

    if failures:
        print(f"\ntest_rta_lint: {len(failures)} check(s) FAILED: "
              + ", ".join(failures))
        return 1
    print("\ntest_rta_lint: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
