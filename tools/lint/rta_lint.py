#!/usr/bin/env python3
"""rta-lint: static determinism checks for the bursty-rta codebase.

The engine's reproducibility contract (bit-identical results at any thread
count, byte-identical service responses) can be silently broken by a handful
of C++ idioms that no compiler warning covers: reading the wall clock in
analysis code, iterating an unordered container into serialized output,
comparing doubles with ==, or locking a mutex outside the annotated RAII
vocabulary of util/thread_annotations.hpp. This linter bans those idioms with
a small token-aware scanner -- no libclang, stdlib only -- so it runs
anywhere ctest runs.

Rules (see docs/static-analysis.md for the catalog with rationale):
  wallclock       wall-clock / ambient-randomness calls outside src/obs/
                  and bench/
  unordered-iter  iteration over unordered_{map,set} in output-producing
                  functions or anywhere under src/io/
  float-eq        == / != on float-typed operands outside the approved
                  epsilon helpers (util/time.hpp)
  naked-lock      .lock()/.unlock()/.try_lock() member calls outside
                  src/util/ (use rta::MutexLock)
  raw-mutex       std::mutex / std::lock_guard / std::unique_lock /
                  std::condition_variable outside src/util/ (use the
                  annotated rta::Mutex vocabulary)
  unchecked-json-field  as_object()[...] / as_array()[...] subscripting
                  outside src/io/ (go through the checked find()/at()
                  accessors)
  bad-suppression an `rta-lint: allow(...)` comment with no reason text

Suppressions: `// rta-lint: allow(<rule>[, <rule>...]) <reason>` suppresses
findings of those rules on the same line, or on the next line when the
comment stands alone. The reason is mandatory.

Baseline: findings fingerprinted in the baseline file (default
tools/lint/rta_lint_baseline.json) are reported but do not fail the run, so
the rule set can tighten without blocking on legacy code. Regenerate with
--write-baseline after deliberate changes. Fingerprints are line-move
tolerant: path + rule + normalized snippet content + an occurrence index,
never a line number. The v2 baseline stores them as a list; the legacy v1
format ({fingerprint: count}) is migrated transparently on load.

Exit status: 0 when no new (non-baselined, non-suppressed) findings,
1 when there are new findings, 2 on usage errors.
"""

import argparse
import hashlib
import json
import os
import re
import sys

RULE_DOCS = {
    "wallclock": "wall-clock or ambient-randomness call in deterministic code",
    "unordered-iter": "unordered-container iteration feeding an output path",
    "float-eq": "== / != on floating-point operands (use util/time.hpp)",
    "naked-lock": "naked mutex .lock()/.unlock() (use rta::MutexLock)",
    "raw-mutex": "raw std mutex primitive (use util/thread_annotations.hpp)",
    "unchecked-json-field": "unchecked JSON subscript access (use the "
                            "checked find()/at() accessors)",
    "bad-suppression": "rta-lint: allow(...) comment without a reason",
}

# Paths (relative to the repo root, prefix match) where a rule does not
# apply. The obs layer measures wall time by design; bench binaries report
# it; the Prometheus exporter stamps scrape time (src/service/metrics_export
# renders wall-clock-derived payloads, never analysis inputs); util/time.hpp
# *is* the approved epsilon helper; util/ implements the annotated lock
# vocabulary the other rules push everyone toward.
RULE_EXEMPT_PREFIXES = {
    "wallclock": ("src/obs/", "bench/", "src/service/metrics_export"),
    "float-eq": ("src/util/time.hpp",),
    "naked-lock": ("src/util/",),
    "raw-mutex": ("src/util/",),
    "unchecked-json-field": ("src/io/",),
}

WALLCLOCK_IDS = {
    "system_clock",
    "utc_clock",
    "random_device",
    "gettimeofday",
    "localtime",
    "gmtime",
    "timespec_get",
}
# Banned only when spelled as a call (`rand()`, `std::time(...)`): the bare
# words are common as member names (`Span::finish` is fine, `.time()` on a
# struct is fine).
WALLCLOCK_CALLS = {"rand", "srand", "time", "clock"}

UNORDERED_TYPES = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
}

FLOAT_TYPES = {"double", "float", "Time"}

# A function is an output path when its name says it produces serialized /
# printed / exported bytes. Files under src/io/ are output paths wholesale.
OUTPUT_FN_RE = re.compile(
    r"(json|csv|dump|write|print|serial|export|chrome|snapshot|report|emit|"
    r"save|to_string|str)",
    re.IGNORECASE,
)
OUTPUT_PATH_PREFIXES = ("src/io/",)

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return", "do"}

SUPPRESS_RE = re.compile(
    r"rta-lint:\s*allow\(([a-z*][a-z0-9_*,\s-]*)\)\s*(.*)", re.IGNORECASE
)

TOKEN_RE = re.compile(
    r"""
      (?P<id>[A-Za-z_]\w*)
    | (?P<num>
        0[xX][0-9a-fA-F'.pP+-]+
      | (?:\d[\d']*\.?[\d']*|\.\d[\d']*)(?:[eE][+-]?\d+)?[fFlLuU]*
      )
    | (?P<punct>->|::|==|!=|<=|>=|&&|\|\||<<|>>|[{}()\[\];,<>=!&|*+\-/.:?%^~#])
    """,
    re.VERBOSE,
)


class Token:
    __slots__ = ("kind", "value", "line")

    def __init__(self, kind, value, line):
        self.kind = kind
        self.value = value
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, L{self.line})"


def lex(text):
    """Token stream plus per-line comment text and code-bearing line set.

    Strings and character literals are collapsed to single `str`/`chr`
    tokens; comments are stripped from the stream but recorded (joined per
    line) so suppression comments survive.
    """
    tokens = []
    comments = {}  # line -> comment text
    code_lines = set()
    i, n, line = 0, len(text), 1

    def add_comment(start_line, body):
        if start_line in comments:
            comments[start_line] += " " + body
        else:
            comments[start_line] = body

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("//", i):
            end = text.find("\n", i)
            if end == -1:
                end = n
            add_comment(line, text[i + 2 : end].strip())
            i = end
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                end = n
            add_comment(line, text[i + 2 : end].strip())
            line += text.count("\n", i, end)
            i = end + 2
            continue
        if c == '"' or text.startswith(('R"', 'u8R"', 'uR"', 'UR"', 'LR"'), i):
            # Raw string: R"delim( ... )delim"
            if c != '"':
                q = text.find('"', i)
                paren = text.find("(", q)
                delim = text[q + 1 : paren]
                closer = ")" + delim + '"'
                end = text.find(closer, paren)
                if end == -1:
                    end = n
                else:
                    end += len(closer)
                tokens.append(Token("str", text[i:end], line))
                code_lines.add(line)
                line += text.count("\n", i, end)
                i = end
                continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("str", text[i : j + 1], line))
            code_lines.add(line)
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("chr", text[i : j + 1], line))
            code_lines.add(line)
            i = j + 1
            continue
        m = TOKEN_RE.match(text, i)
        if m is None:
            i += 1
            continue
        kind = m.lastgroup
        tokens.append(Token(kind, m.group(), line))
        code_lines.add(line)
        i = m.end()
    return tokens, comments, code_lines


def is_float_literal(value):
    if value.startswith(("0x", "0X")):
        return "p" in value or "P" in value
    base = value.rstrip("fFlLuU")
    stripped = value.replace("'", "")
    return ("." in base) or (
        ("e" in stripped or "E" in stripped) and not stripped.endswith(("u", "U"))
    )


def match_forward(tokens, i, open_p="(", close_p=")"):
    """Index just past the bracket pair opening at tokens[i], or None."""
    depth = 0
    j = i
    while j < len(tokens):
        v = tokens[j].value
        if v == open_p:
            depth += 1
        elif v == close_p:
            depth -= 1
            if depth == 0:
                return j + 1
        j += 1
    return None


def skip_template_args(tokens, i):
    """Index just past a template argument list opening at tokens[i] ('<')."""
    depth = 0
    j = i
    while j < len(tokens):
        v = tokens[j].value
        if v == "<":
            depth += 1
        elif v == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif v == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif v in (";", "{"):
            return None  # not a template list after all
        j += 1
    return None


def function_spans(tokens):
    """For each token index, the name of the innermost enclosing function.

    Heuristic: a `{` preceded (modulo trailing qualifiers) by a `(...)`
    parameter list whose head is an identifier that is not a control keyword
    opens a function body named after that identifier. Braces that do not
    match the pattern (namespaces, classes, lambdas, initializers) inherit
    the surrounding name. Good enough for rule scoping; it does not need to
    be a parser.
    """
    names = [None] * len(tokens)
    stack = []  # (name or None) per open brace
    qualifier_ok = {"const", "noexcept", "override", "final", "mutable",
                    "&", "&&", "->", "try"}
    for i, tok in enumerate(tokens):
        if tok.value == "{" and tok.kind == "punct":
            name = stack[-1] if stack else None
            j = i - 1
            # Skip trailing return types conservatively: walk back over
            # qualifier tokens and simple type names until a ')' or give up.
            steps = 0
            while j >= 0 and steps < 8 and (
                tokens[j].value in qualifier_ok or tokens[j].kind == "id"
            ):
                if tokens[j].value == ")":
                    break
                j -= 1
                steps += 1
            if j >= 0 and tokens[j].value == ")":
                depth = 0
                k = j
                while k >= 0:
                    if tokens[k].value == ")":
                        depth += 1
                    elif tokens[k].value == "(":
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                if k > 0 and tokens[k - 1].kind == "id" and (
                    tokens[k - 1].value not in CONTROL_KEYWORDS
                ):
                    name = tokens[k - 1].value
            stack.append(name)
        elif tok.value == "}" and tok.kind == "punct":
            if stack:
                stack.pop()
        names[i] = stack[-1] if stack else None
    return names


class Finding:
    def __init__(self, path, line, rule, message, snippet):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.snippet = snippet
        self.suppressed = False
        self.baselined = False

    def fingerprint(self):
        norm = " ".join(self.snippet.split())
        digest = hashlib.sha1(norm.encode("utf-8")).hexdigest()[:16]
        return f"{self.path}:{self.rule}:{digest}"

    def as_json(self):
        return {
            "file": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }


class FileLint:
    def __init__(self, path, rel, text, rules):
        self.path = path
        self.rel = rel
        self.text = text
        self.rules = rules
        self.lines = text.splitlines()
        self.tokens, self.comments, self.code_lines = lex(text)
        self.findings = []

    def exempt(self, rule):
        return self.rel.startswith(RULE_EXEMPT_PREFIXES.get(rule, ()))

    def snippet(self, line):
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def report(self, line, rule, message):
        if rule in self.rules and not self.exempt(rule):
            self.findings.append(
                Finding(self.rel, line, rule, message, self.snippet(line))
            )

    # --- rules ----------------------------------------------------------

    def check_wallclock(self):
        toks = self.tokens
        for i, tok in enumerate(toks):
            if tok.kind != "id":
                continue
            if tok.value in WALLCLOCK_IDS:
                self.report(
                    tok.line,
                    "wallclock",
                    f"'{tok.value}' is nondeterministic; analysis code uses "
                    "steady_clock durations (src/obs/) or seeded util/rng.hpp "
                    "streams only",
                )
            elif tok.value in WALLCLOCK_CALLS:
                nxt = toks[i + 1] if i + 1 < len(toks) else None
                prv = toks[i - 1] if i > 0 else None
                if nxt is None or nxt.value != "(":
                    continue
                if prv is not None and prv.value in (".", "->"):
                    continue  # member call on some object, not libc
                if prv is not None and prv.value == "::" and (
                    i < 2 or toks[i - 2].value != "std"
                ):
                    continue  # qualified by something other than std
                self.report(
                    tok.line,
                    "wallclock",
                    f"'{tok.value}()' reads ambient state; derive time from "
                    "steady_clock (obs layer only) and randomness from "
                    "util/rng.hpp",
                )

    def _unordered_vars(self):
        names = set()
        toks = self.tokens
        i = 0
        while i < len(toks):
            if toks[i].kind == "id" and toks[i].value in UNORDERED_TYPES:
                j = i + 1
                if j < len(toks) and toks[j].value == "<":
                    j = skip_template_args(toks, j)
                    if j is None:
                        i += 1
                        continue
                while j < len(toks) and toks[j].value in ("&", "*", "const"):
                    j += 1
                if j < len(toks) and toks[j].kind == "id":
                    names.add(toks[j].value)
            i += 1
        return names

    def check_unordered_iter(self):
        unordered = self._unordered_vars()
        if not unordered:
            return
        toks = self.tokens
        fn_names = function_spans(toks)
        file_is_output = self.rel.startswith(OUTPUT_PATH_PREFIXES)
        for i, tok in enumerate(toks):
            if tok.kind != "id" or tok.value != "for":
                continue
            if i + 1 >= len(toks) or toks[i + 1].value != "(":
                continue
            end = match_forward(toks, i + 1)
            if end is None:
                continue
            # Range-for: a top-level ':' inside the parens.
            colon = None
            depth = 0
            for j in range(i + 1, end - 1):
                v = toks[j].value
                if v in ("(", "[", "{"):
                    depth += 1
                elif v in (")", "]", "}"):
                    depth -= 1
                elif v == ":" and depth == 1:
                    colon = j
                    break
            if colon is None:
                continue
            iterated = [
                t.value
                for t in toks[colon + 1 : end - 1]
                if t.kind == "id" and t.value in unordered
            ]
            if not iterated:
                continue
            fn = fn_names[i]
            in_output = file_is_output or (
                fn is not None and OUTPUT_FN_RE.search(fn)
            )
            if in_output:
                where = f"'{fn}'" if fn else "an output path"
                self.report(
                    tok.line,
                    "unordered-iter",
                    f"iterating unordered container '{iterated[0]}' in "
                    f"{where}: hash order is unspecified and breaks "
                    "byte-identical output; sort first or use an ordered "
                    "container",
                )

    def _float_vars(self):
        names = set()
        toks = self.tokens
        for i, tok in enumerate(toks):
            if tok.kind != "id" or tok.value not in FLOAT_TYPES:
                continue
            j = i + 1
            while j < len(toks) and toks[j].value in ("&", "*", "const"):
                j += 1
            while j < len(toks) and toks[j].kind == "id":
                name = toks[j].value
                nxt = toks[j + 1] if j + 1 < len(toks) else None
                if nxt is not None and nxt.value == "(":
                    break  # function returning double, not a variable
                if nxt is not None and nxt.kind == "id":
                    break  # `double x, OtherType y`: toks[j] is a type name
                names.add(name)
                if nxt is not None and nxt.value == ",":  # double a, b;
                    j += 2
                    continue
                break
        return names

    def check_float_eq(self):
        float_vars = self._float_vars()
        toks = self.tokens
        for i, tok in enumerate(toks):
            if tok.value not in ("==", "!=") or tok.kind != "punct":
                continue
            prv = toks[i - 1] if i > 0 else None
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            # Skip a unary minus/plus in front of a literal operand.
            if nxt is not None and nxt.value in ("-", "+") and i + 2 < len(toks):
                nxt = toks[i + 2]
            operand_hits = []
            for t in (prv, nxt):
                if t is None:
                    continue
                if t.kind == "num" and is_float_literal(t.value):
                    operand_hits.append(t.value)
                elif t.kind == "id" and t.value in float_vars:
                    operand_hits.append(t.value)
            if operand_hits:
                self.report(
                    tok.line,
                    "float-eq",
                    f"'{tok.value}' on floating-point operand "
                    f"'{operand_hits[0]}': exact double comparison is "
                    "representation-sensitive; use time_eq/time_le "
                    "(util/time.hpp) or compare bit patterns explicitly",
                )

    def check_naked_lock(self):
        toks = self.tokens
        for i, tok in enumerate(toks):
            if tok.kind != "id" or tok.value not in ("lock", "unlock",
                                                     "try_lock"):
                continue
            prv = toks[i - 1] if i > 0 else None
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            if prv is None or prv.value not in (".", "->"):
                continue
            if nxt is None or nxt.value != "(":
                continue
            self.report(
                tok.line,
                "naked-lock",
                f"naked '.{tok.value}()' call: scope the capability with "
                "rta::MutexLock so Clang's -Wthread-safety can prove the "
                "protocol",
            )

    def check_raw_mutex(self):
        toks = self.tokens
        banned = {
            "mutex",
            "recursive_mutex",
            "shared_mutex",
            "timed_mutex",
            "lock_guard",
            "unique_lock",
            "scoped_lock",
            "shared_lock",
            "condition_variable",
            "condition_variable_any",
        }
        for i, tok in enumerate(toks):
            if tok.kind != "id" or tok.value not in banned:
                continue
            if i < 2 or toks[i - 1].value != "::" or toks[i - 2].value != "std":
                continue
            self.report(
                tok.line,
                "raw-mutex",
                f"'std::{tok.value}' outside util/: use the annotated "
                "rta::Mutex / rta::MutexLock / rta::CondVar vocabulary "
                "(util/thread_annotations.hpp)",
            )

    def check_unchecked_json_field(self):
        toks = self.tokens
        for i, tok in enumerate(toks):
            if tok.kind != "id" or tok.value not in ("as_object", "as_array"):
                continue
            prv = toks[i - 1] if i > 0 else None
            if prv is None or prv.value not in (".", "->"):
                continue
            if i + 2 >= len(toks) or toks[i + 1].value != "(" \
                    or toks[i + 2].value != ")":
                continue
            if i + 3 >= len(toks) or toks[i + 3].value != "[":
                continue
            self.report(
                tok.line,
                "unchecked-json-field",
                f"subscripting '.{tok.value}()[...]' bypasses bounds/key "
                "checking; use find()/at() so malformed input fails loudly "
                "instead of corrupting the response",
            )

    # --- suppression ----------------------------------------------------

    def apply_suppressions(self):
        allow = {}  # line -> set of rules
        for line, text in self.comments.items():
            m = SUPPRESS_RE.search(text)
            if m is None:
                continue
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            reason = m.group(2).strip()
            # A standalone comment (possibly spanning several comment-only
            # lines) suppresses the next line that carries code.
            target = line
            if target not in self.code_lines:
                last = len(self.lines)
                target += 1
                while target <= last and target not in self.code_lines:
                    target += 1
            if not reason:
                self.report(
                    line,
                    "bad-suppression",
                    "suppression without a reason: write "
                    "`rta-lint: allow(<rule>) <why this is safe>`",
                )
                continue
            allow.setdefault(target, set()).update(rules)
        for f in self.findings:
            rules = allow.get(f.line)
            if rules and ("*" in rules or f.rule in rules):
                f.suppressed = True

    def run(self):
        self.check_wallclock()
        self.check_unordered_iter()
        self.check_float_eq()
        self.check_naked_lock()
        self.check_raw_mutex()
        self.check_unchecked_json_field()
        self.apply_suppressions()
        return self.findings


def iter_source_files(paths):
    exts = (".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h")
    for p in paths:
        if os.path.isfile(p):
            yield p
        elif os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(exts):
                        yield os.path.join(dirpath, name)
        else:
            raise FileNotFoundError(p)


def indexed_fingerprints(findings):
    """(fingerprint, finding) pairs with occurrence indices.

    Findings sharing (path, rule, normalized snippet) get `#0`, `#1`, ... in
    sorted (line) order, so identity survives line moves but duplicate
    findings on distinct lines stay distinct.
    """
    counts = {}
    out = []
    for f in findings:
        base = f.fingerprint()
        k = counts.get(base, 0)
        counts[base] = k + 1
        out.append((f"{base}#{k}", f))
    return out


def load_baseline(path):
    """Fingerprint set from a v1 (counts) or v2 (indexed list) baseline."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict) or "fingerprints" not in data:
        raise ValueError(f"{path}: not a baseline file")
    fps = data["fingerprints"]
    if isinstance(fps, dict):
        # v1 stored {fingerprint: count}; expand each count to occurrence
        # indices so old baselines keep working unchanged.
        out = set()
        for fp, count in fps.items():
            for k in range(int(count)):
                out.add(f"{fp}#{k}")
        return out
    if isinstance(fps, list):
        return set(fps)
    raise ValueError(f"{path}: 'fingerprints' must be an object or a list")


def write_baseline(path, findings):
    fps = sorted(fp for fp, f in indexed_fingerprints(findings)
                 if not f.suppressed)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"version": 2, "fingerprints": fps}, fh, indent=2,
                  sort_keys=True)
        fh.write("\n")
    return len(fps)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="rta_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src)")
    parser.add_argument("--root", default=None,
                        help="repo root for path normalization and rule "
                             "exemptions (default: two levels above this "
                             "script)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule subset to run")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: "
                             "<root>/tools/lint/rta_lint_baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from this run's findings")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write a JSON report to this path ('-' stdout)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-finding human output")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULE_DOCS):
            print(f"{name:15s} {RULE_DOCS[name]}")
        return 0

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root or os.path.join(script_dir, "..", ".."))
    paths = args.paths or [os.path.join(root, "src")]

    rules = set(RULE_DOCS)
    if args.rules:
        rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = rules - set(RULE_DOCS)
        if unknown:
            print(f"rta-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules.add("bad-suppression")

    baseline_path = args.baseline or os.path.join(
        root, "tools", "lint", "rta_lint_baseline.json")
    baseline = set()
    if not args.no_baseline and not args.write_baseline:
        if os.path.exists(baseline_path):
            try:
                baseline = load_baseline(baseline_path)
            except (ValueError, json.JSONDecodeError) as e:
                print(f"rta-lint: bad baseline: {e}", file=sys.stderr)
                return 2

    findings = []
    files_scanned = 0
    try:
        for path in iter_source_files(paths):
            abspath = os.path.abspath(path)
            rel = os.path.relpath(abspath, root)
            if rel.startswith(".."):
                rel = abspath
            rel = rel.replace(os.sep, "/")
            with open(abspath, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
            files_scanned += 1
            findings.extend(FileLint(abspath, rel, text, rules).run())
    except FileNotFoundError as e:
        print(f"rta-lint: no such path: {e}", file=sys.stderr)
        return 2

    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.write_baseline:
        count = write_baseline(baseline_path, findings)
        print(f"rta-lint: baseline written: {baseline_path} "
              f"({count} fingerprints)")
        return 0

    for fp, f in indexed_fingerprints(findings):
        if not f.suppressed and fp in baseline:
            f.baselined = True

    new = [f for f in findings if not f.suppressed and not f.baselined]
    suppressed = [f for f in findings if f.suppressed]
    baselined = [f for f in findings if f.baselined]

    if not args.quiet:
        for f in new:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
            if f.snippet:
                print(f"    {f.snippet}")
        print(f"rta-lint: {files_scanned} files, {len(new)} new finding(s), "
              f"{len(baselined)} baselined, {len(suppressed)} suppressed")

    if args.json_out:
        report = {
            "tool": "rta-lint",
            "version": 1,
            "root": root,
            "files_scanned": files_scanned,
            "rules": [
                {"name": name, "description": RULE_DOCS[name]}
                for name in sorted(rules)
            ],
            "findings": [f.as_json() for f in findings],
            "counts": {
                "new": len(new),
                "baselined": len(baselined),
                "suppressed": len(suppressed),
            },
        }
        payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
        if args.json_out == "-":
            sys.stdout.write(payload)
        else:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                fh.write(payload)

    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
