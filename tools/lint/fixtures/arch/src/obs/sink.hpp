// Fixture: band-2 observability header, target of curve/shape.hpp's illegal
// upward include.
#pragma once

#include "util/base.hpp"

namespace fix {

struct Sink {
  int events = 0;
};

}  // namespace fix
