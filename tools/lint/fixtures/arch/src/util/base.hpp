// Fixture: band-0 utility header. Nothing here violates anything; the other
// fixture files include it to exercise downward (allowed) edges.
#pragma once

namespace fix {

inline int identity(int x) { return x; }

}  // namespace fix
