// Fixture: band-1 curve header that reaches up into band-2 obs -- the exact
// shape of the curve -> obs kernel-sink dependency this rule exists to stop.
#pragma once

#include "obs/sink.hpp"
#include "util/base.hpp"

namespace fix {

struct Shape {
  Sink* sink = nullptr;
};

}  // namespace fix
