// Fixture: band-2 analysis header including band-3 service -- an upward edge
// AND one half of an include cycle (service/api.hpp includes this file back).
#pragma once

#include "service/api.hpp"
#include "util/base.hpp"

namespace fix {

struct Engine {
  int analyze() { return identity(1); }
};

}  // namespace fix
