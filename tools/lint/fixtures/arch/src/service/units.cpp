// Fixture: unit pass seeds. `mixed` combines _ms with _us bare; `scaled`
// multiplies a _ms value by a naked 1000.0; `converted` shows the compliant
// helper shape; `tolerated` carries a reasoned suppression; `unreasoned`
// carries a suppression with no reason (bad-suppression) that therefore does
// not suppress its unit-factor hit.
#include "util/base.hpp"

namespace fix {

double mixed(double budget_ms, double elapsed_us) {
  return budget_ms - elapsed_us;
}

double scaled(double interval_ms) {
  return interval_ms * 1000.0;
}

double converted(double interval_ms, double elapsed_us) {
  return rta::ms_to_us(interval_ms) - elapsed_us;
}

double tolerated(double budget_ms, double elapsed_us) {
  // rta-archcheck: allow(unit-mix) fixture: demonstrates the suppression flow
  return budget_ms + elapsed_us;
}

// rta-archcheck: allow(unit-factor)
double unreasoned(double interval_ms) { return interval_ms / 1000.0; }

}  // namespace fix
