// Fixture: band-3 service header. Including analysis from service is a legal
// downward edge, but analysis/engine.hpp includes this file right back, so
// the pair forms a file-level include cycle.
#pragma once

#include "analysis/engine.hpp"

namespace fix {

struct Api {
  int serve() { return 2; }
};

}  // namespace fix
