// Fixture: schema pass seeds. `ok` is documented in docs/api.md's field
// reference; `mystery` is emitted here but undocumented
// (schema-undocumented); the doc also lists `phantom_field`, which nothing
// emits (schema-phantom, reported against the doc).
#include "util/base.hpp"

namespace fix {

void emit(Response& response) {
  response.set("ok", true);
  response.set("mystery", 1);
}

}  // namespace fix
