// Fixture: lock-order pass seeds. `forward` and `backward` acquire the two
// mutexes in opposite orders (a classic AB/BA deadlock); `sloppy` writes a
// guarded field with no lock held; `proper` and `annotated` show the two
// compliant shapes.
#include "util/base.hpp"

namespace fix {

struct State {
  rta::Mutex a_mutex;
  rta::Mutex b_mutex;
  int hits RTA_GUARDED_BY(a_mutex) = 0;
};

void forward(State& s) {
  rta::MutexLock lock_a(s.a_mutex);
  rta::MutexLock lock_b(s.b_mutex);
  ++s.hits;
}

void backward(State& s) {
  rta::MutexLock lock_b(s.b_mutex);
  rta::MutexLock lock_a(s.a_mutex);
}

void sloppy(State& s) {
  s.hits = 7;
}

void proper(State& s) {
  rta::MutexLock lock_a(s.a_mutex);
  s.hits += 1;
}

void annotated(State& s) RTA_REQUIRES(s.a_mutex) {
  s.hits -= 1;
}

}  // namespace fix
