// Fixture: src/util/ implements the annotated lock vocabulary, so it is
// exempt from naked-lock and raw-mutex.
#pragma once

#include <mutex>

namespace rta {

class Wrapper {
 public:
  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

}  // namespace rta
