// Fixture: unchecked-json-field seeds. Subscripting the raw containers
// behind as_object()/as_array() bypasses the checked accessors; the
// suppressed site and the find() shape show the two compliant outs. A
// mirror of this file under src/io/ would be exempt wholesale.
#include <string>

namespace fix {

void read(Value& v) {
  auto& first = v.as_array()[0];
  auto& pair = v.as_object()[2];
  (void)first;
  (void)pair;
}

void read_suppressed(Value& v) {
  // rta-lint: allow(unchecked-json-field) index proven in bounds by caller
  auto& first = v.as_array()[0];
  (void)first;
}

const Value* read_checked(const Value& v) { return v.find("key"); }

}  // namespace fix
