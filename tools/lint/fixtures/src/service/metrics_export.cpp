// Fixture: the Prometheus exporter stamps scrape time -- exempt from
// wallclock (prefix src/service/metrics_export; the rest of src/service/
// stays under the rule).
#include <chrono>

namespace rta::service {

double scrape_time_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace rta::service
