// Fixture: naked-lock and raw-mutex outside src/util/.
#include <mutex>
#include <vector>

namespace rta {

class Queue {
 public:
  void push(int v) {
    mu_.lock();  // finding: naked-lock
    items_.push_back(v);
    mu_.unlock();  // finding: naked-lock
  }

  int size() {
    std::lock_guard<std::mutex> lock(mu_);  // findings: raw-mutex (x2)
    return static_cast<int>(items_.size());
  }

 private:
  std::mutex mu_;  // finding: raw-mutex
  std::vector<int> items_;
};

}  // namespace rta
