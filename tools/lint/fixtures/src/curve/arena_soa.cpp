// Fixture: flat SoA arena code shape. Raw-pointer iteration over the
// contiguous knot arrays (times / rights) must produce no findings; the one
// deliberate exact comparison -- bitwise canonical-storage equality -- is a
// float-eq finding that carries a documented suppression; an exact compare
// against a literal without one is still flagged.
namespace rta {

struct View {
  const double* t;
  const double* r;
  unsigned long n;
};

double flat_sum(const View& v) {
  double acc = 0.0;
  for (unsigned long i = 0; i < v.n; ++i) acc += v.t[i] + v.r[i];
  return acc;  // raw-pointer SoA walk: no findings
}

bool storage_identical(const View& a, const View& b) {
  if (a.n != b.n) return false;  // size_t compare next to float arrays: clean
  for (unsigned long i = 0; i < a.n; ++i) {
    const double lhs = a.t[i];
    const double rhs = b.t[i];
    // rta-lint: allow(float-eq) canonical storage equality is bitwise by
    // contract; a tolerance would break cache hit verification
    if (lhs != rhs) return false;  // suppressed
  }
  return true;
}

bool anchored(const View& v) {
  return v.t[0] == 0.0;  // finding: float-eq (exact compare, no suppression)
}

}  // namespace rta
