// Fixture: unordered-iter keys on the enclosing function name outside
// src/io/ -- only output-producing functions are flagged.
#include <unordered_map>
#include <vector>

namespace rta {

int count_entries(const std::unordered_map<int, double>& by_id) {
  int n = 0;
  for (const auto& kv : by_id) {  // not an output path: no finding
    (void)kv;
    ++n;
  }
  return n;
}

std::vector<char> write_json_report(
    const std::unordered_map<int, double>& by_id) {
  std::vector<char> out;
  for (const auto& kv : by_id) {  // finding: unordered-iter
    out.push_back(static_cast<char>(kv.first));
  }
  return out;
}

}  // namespace rta
