// Fixture: wallclock calls in analysis code (src/analysis/ is not exempt).
#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/trace.hpp"

namespace rta {

double sample_now() {
  auto t = std::chrono::system_clock::now();  // finding: system_clock
  return static_cast<double>(t.time_since_epoch().count());
}

int jitter() {
  return std::rand() % 7;  // finding: rand()
}

long long stamp() {
  return std::time(nullptr);  // finding: time()
}

long long member_call_is_fine(const Span& span) {
  return span.clock();  // member call on an object: no finding
}

std::string strings_and_comments_are_fine() {
  // a comment naming system_clock is not a finding
  return "neither is rand() inside a string literal";
}

}  // namespace rta
