// Fixture: src/obs/ measures wall time by design -- exempt from wallclock.
#include <chrono>

namespace rta {

double wall_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace rta
