// Fixture: float-eq findings, a documented suppression, and a suppression
// with no reason (which is itself a finding and suppresses nothing).
namespace rta {

bool converged(double prev, double cur) {
  return prev == cur;  // finding: float-eq (declared double)
}

bool at_origin(double x) {
  return x == 0.0;  // finding: float-eq (float literal)
}

bool same_id(int ia, int ib) {
  return ia == ib;  // integers: no finding
}

bool tie_break(double ka, double kb) {
  // rta-lint: allow(float-eq) deliberate exact compare: an epsilon would
  // make the comparator's ordering intransitive
  return ka != kb;  // suppressed
}

bool sloppy(double v) {
  // rta-lint: allow(float-eq)
  return v == 1.0;  // still a finding: the reason-less allow is ignored
}

}  // namespace rta
