// Fixture: everything under src/io/ is an output path, so any unordered
// iteration here is a determinism bug regardless of the function name.
#include <string>
#include <unordered_map>

namespace rta {

std::string collect(const std::unordered_map<int, double>& cells) {
  std::string out;
  for (const auto& kv : cells) {  // finding: unordered-iter (src/io/ path)
    out += std::to_string(kv.first);
  }
  return out;
}

}  // namespace rta
