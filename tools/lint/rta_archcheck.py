#!/usr/bin/env python3
"""rta-archcheck: whole-program architecture checks for the bursty-rta codebase.

Where rta-lint bans single-line idioms, this tool checks invariants that only
exist across files: the layer DAG of the include graph, the global lock-order
graph, unit discipline across arithmetic, and the wire contract between the
service layer and docs/api.md. Same engineering envelope as rta-lint: token
aware, stdlib only, no libclang, runs anywhere ctest runs.

Passes and rules (see docs/static-analysis.md for the catalog):
  layering     layer-upward    an #include from a lower layer to a higher one
                               (the DAG is util -> {model, curve} ->
                               {envelope, analysis, sim, workload, io, obs} ->
                               service -> rta/eval; within-layer includes are
                               fine)
               include-cycle   any cycle in the file-level include graph
  lock-order   lock-order-cycle  a cycle in the global mutex acquisition-order
                               graph built from rta::MutexLock sites plus
                               RTA_REQUIRES / RTA_ACQUIRE annotations
               guarded-write   a write to an RTA_GUARDED_BY field outside any
                               scope that holds (or is annotated to require)
                               the guard
  units        unit-mix        identifiers with different time-unit suffixes
                               (_ns/_us/_ms/_s) combined in one expression
                               without a util/time.hpp conversion helper
               unit-factor     a unit-suffixed identifier scaled by a bare
                               power-of-1000 literal instead of a conversion
                               helper
  schema       schema-undocumented  a response field emitted by the service
                               layer but missing from the field reference in
                               docs/api.md
               schema-phantom  a field documented in docs/api.md that no
                               service code emits
  (always on)  bad-suppression an `rta-archcheck: allow(...)` comment with no
                               reason text

Suppressions: `// rta-archcheck: allow(<rule>[, <rule>...]) <reason>` works
exactly like rta-lint's, on the same line or the next code line.

Baseline: same fingerprint workflow as rta-lint (v2 format: occurrence-indexed
content fingerprints, line-move tolerant). The checked-in expectation is an
EMPTY baseline -- violations get fixed, not baselined; the file exists for
emergencies and migrations.

Exit status: 0 when no new (non-baselined, non-suppressed) findings,
1 when there are new findings, 2 on usage errors.
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from rta_lint import (  # noqa: E402
    Finding,
    function_spans,
    indexed_fingerprints,
    iter_source_files,
    lex,
    load_baseline,
    write_baseline,
)

RULE_DOCS = {
    "layer-upward": "#include against the layer DAG (lower layer includes "
                    "higher)",
    "include-cycle": "cycle in the file-level #include graph",
    "lock-order-cycle": "cycle in the global mutex acquisition-order graph",
    "guarded-write": "write to an RTA_GUARDED_BY field outside the guard's "
                     "scope",
    "unit-mix": "mixed time-unit suffixes in one expression without a "
                "conversion helper",
    "unit-factor": "unit-suffixed identifier scaled by a bare power-of-1000 "
                   "literal",
    "schema-undocumented": "service response field missing from docs/api.md",
    "schema-phantom": "documented response field no service code emits",
    "bad-suppression": "rta-archcheck: allow(...) comment without a reason",
}

# Layer ranks of the directories under src/. An #include may only point at
# the same rank or lower. Unknown directories (and files directly in src/)
# are exempt from the layering pass.
LAYER_RANK = {
    "util": 0,
    "model": 1,
    "curve": 1,
    "envelope": 2,
    "analysis": 2,
    "sim": 2,
    "workload": 2,
    "io": 2,
    "obs": 2,
    "service": 3,
    "rta": 4,
    "eval": 4,
}

# The lock-order pass models the annotation vocabulary, so the header that
# defines it (raw .lock() calls under RTA_ACQUIRE) is out of scope.
LOCK_EXEMPT_PREFIXES = ("src/util/thread_annotations.hpp",)

# util/time.hpp implements the conversion helpers, so its bodies legitimately
# contain bare factors.
UNIT_EXEMPT_PREFIXES = ("src/util/time.hpp",)

UNIT_SUFFIXES = ("_ns", "_us", "_ms", "_s")
CONVERSION_HELPERS = {"ms_to_us", "us_to_ms", "s_to_us", "us_to_s",
                      "ns_to_us"}
POWER_OF_1000 = {"1000", "1000.0", "1e3", "1e6", "1e9", "1000000",
                 "1000000000", "0.001", "1e-3", "1e-6", "1e-9", "1'000",
                 "1'000'000"}
ARITH_OPS = {"+", "-", "*", "/", "<", ">", "<=", ">=", "==", "!="}

# Directories whose .set("...") calls constitute the wire contract.
SCHEMA_EMIT_PREFIXES = ("src/service/",)

MUTATING_CALLS = {"push_back", "emplace_back", "pop_back", "clear", "erase",
                  "insert", "emplace", "resize", "assign", "reserve", "swap",
                  "reset"}

SUPPRESS_RE = re.compile(
    r"rta-archcheck:\s*allow\(([a-z*][a-z0-9_*,\s-]*)\)\s*(.*)", re.IGNORECASE
)

DOC_FIELD_RE = re.compile(r"^[-*]\s+`([A-Za-z_][A-Za-z0-9_.]*)`")
MARK_BEGIN = "<!-- archcheck:fields:begin -->"
MARK_END = "<!-- archcheck:fields:end -->"


def unit_of(name):
    """The time-unit suffix of an identifier, or None."""
    stem = name.rstrip("_")
    for suf in ("_ns", "_us", "_ms"):
        if stem.endswith(suf):
            return suf
    if stem.endswith("_s") and len(stem) > 2:
        return "_s"
    return None


def normalize_expr(tokens):
    """Canonical text of a mutex expression: `this->` stripped, `&` dropped."""
    parts = [t.value for t in tokens if t.value not in ("&",)]
    text = "".join(parts)
    if text.startswith("this->"):
        text = text[len("this->"):]
    return text


def last_component(expr):
    """The final identifier of an access path (`impl_->mutex` -> `mutex`)."""
    return re.split(r"->|\.", expr)[-1]


def guard_matches(guard, held):
    """Whether holding `held` satisfies guard expression `guard`.

    Last components must agree; a qualifier mismatch only counts when both
    sides carry one (a guard declared as plain `mutex` is satisfied by
    `impl_->mutex` -- the declaration sits inside the struct the qualifier
    navigates to).
    """
    if last_component(guard) != last_component(held):
        return False
    gq = guard[: -len(last_component(guard))]
    hq = held[: -len(last_component(held))]
    return gq == hq or not gq or not hq


class SourceFile:
    """A lexed source file plus its per-pass extraction results."""

    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tokens, self.comments, self.code_lines = lex(text)
        self.stem = os.path.splitext(os.path.basename(rel))[0]

    def snippet(self, line):
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def includes(self):
        """Quoted includes as (line, path) pairs."""
        out = []
        for i, line in enumerate(self.lines, start=1):
            m = re.match(r'\s*#\s*include\s+"([^"]+)"', line)
            if m:
                out.append((i, m.group(1)))
        return out


class Analyzer:
    def __init__(self, files, rules, api_doc_path, api_doc_rel, root):
        self.files = files
        self.rules = rules
        self.api_doc_path = api_doc_path
        self.api_doc_rel = api_doc_rel
        self.root = root
        self.findings = []
        self.errors = []

    def report(self, src, line, rule, message, snippet=None):
        if rule not in self.rules:
            return
        if snippet is None:
            snippet = src.snippet(line) if src is not None else ""
        rel = src.rel if src is not None else self.api_doc_rel
        self.findings.append(Finding(rel, line, rule, message, snippet))

    # --- layering -------------------------------------------------------

    @staticmethod
    def layer_of(rel):
        parts = rel.split("/")
        if len(parts) >= 3 and parts[0] == "src":
            return parts[1]
        return None

    def check_layering(self):
        by_include_path = {}
        for src in self.files:
            if src.rel.startswith("src/"):
                by_include_path[src.rel[len("src/"):]] = src

        graph = {}  # rel -> list of (line, target rel)
        for src in self.files:
            own_layer = self.layer_of(src.rel)
            edges = []
            for line, inc in src.includes():
                target = by_include_path.get(inc)
                if target is not None:
                    edges.append((line, target.rel))
                inc_layer = inc.split("/")[0] if "/" in inc else None
                if (
                    own_layer in LAYER_RANK
                    and inc_layer in LAYER_RANK
                    and LAYER_RANK[inc_layer] > LAYER_RANK[own_layer]
                ):
                    self.report(
                        src, line, "layer-upward",
                        f"'{src.rel}' (layer {own_layer}) includes "
                        f"'{inc}' (layer {inc_layer}): the layer DAG is "
                        "util -> {model, curve} -> {envelope, analysis, sim, "
                        "workload, io, obs} -> service -> rta/eval; invert "
                        "the dependency or move the file",
                    )
            graph[src.rel] = edges

        # File-level include cycles: iterative DFS with colors; report each
        # cycle once, at its first file in scan order.
        color = {}  # rel -> 1 visiting, 2 done
        reported = set()

        def visit(start):
            stack = [(start, iter(graph.get(start, ())))]
            color[start] = 1
            path = [start]
            while stack:
                node, it = stack[-1]
                advanced = False
                for line, nxt in it:
                    if color.get(nxt) == 1:
                        cycle = tuple(path[path.index(nxt):] + [nxt])
                        if frozenset(cycle) not in reported:
                            reported.add(frozenset(cycle))
                            src = next(
                                f for f in self.files if f.rel == node)
                            self.report(
                                src, line, "include-cycle",
                                "include cycle: " + " -> ".join(cycle),
                            )
                    elif color.get(nxt) is None:
                        color[nxt] = 1
                        path.append(nxt)
                        stack.append((nxt, iter(graph.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = 2
                    path.pop()
                    stack.pop()

        for src in self.files:
            if color.get(src.rel) is None:
                visit(src.rel)

    # --- lock order -----------------------------------------------------

    def _lock_walk(self, src, on_acquire, on_write=None, guarded=None):
        """Walk `src` tracking brace depth and held MutexLock scopes.

        Calls on_acquire(tok_index, mutex_name, held_list) at each
        acquisition; when on_write is given, calls
        on_write(tok_index, field, held_list, fn_name) for each write to a
        field in `guarded`.
        """
        toks = src.tokens
        fn_names = function_spans(toks)
        depth = 0
        held = []  # list of (depth, qualified mutex expr)
        pending = []  # REQUIRES/ACQUIRE exprs awaiting the next '{'
        i = 0
        while i < len(toks):
            tok = toks[i]
            v = tok.value
            if tok.kind == "punct":
                if v == "{":
                    depth += 1
                    for expr in pending:
                        held.append((depth, expr))
                    pending = []
                elif v == "}":
                    while held and held[-1][0] >= depth:
                        held.pop()
                    depth -= 1
                elif v == ";":
                    pending = []
                i += 1
                continue
            if tok.kind == "id" and v in ("RTA_REQUIRES", "RTA_ACQUIRE"):
                j = i + 1
                if j < len(toks) and toks[j].value == "(":
                    k = j + 1
                    d = 1
                    start = k
                    while k < len(toks) and d > 0:
                        if toks[k].value == "(":
                            d += 1
                        elif toks[k].value == ")":
                            d -= 1
                        k += 1
                    expr = normalize_expr(toks[start:k - 1])
                    if expr:
                        pending.append(expr)
                    i = k
                    continue
            if tok.kind == "id" and v == "MutexLock":
                j = i + 1
                if j < len(toks) and toks[j].kind == "id" \
                        and j + 1 < len(toks) and toks[j + 1].value == "(":
                    k = j + 2
                    d = 1
                    start = k
                    while k < len(toks) and d > 0:
                        if toks[k].value == "(":
                            d += 1
                        elif toks[k].value == ")":
                            d -= 1
                        k += 1
                    expr = normalize_expr(toks[start:k - 1])
                    if expr:
                        on_acquire(i, expr, [h for _, h in held])
                        held.append((depth, expr))
                    i = k
                    continue
            if on_write is not None and tok.kind == "id" and guarded \
                    and v in guarded:
                if self._is_write(toks, i):
                    prefix = self._access_prefix(toks, i)
                    on_write(i, v, prefix, [h for _, h in held], fn_names[i])
            i += 1

    @staticmethod
    def _is_write(toks, i):
        """Whether the identifier at i is the target of a mutation."""
        nxt = toks[i + 1] if i + 1 < len(toks) else None
        prv = toks[i - 1] if i > 0 else None
        if prv is not None and prv.value in ("++", "--"):
            return True
        if nxt is None:
            return False
        if nxt.value in ("=", "+=", "-=", "*=", "/=", "++", "--", "|=", "&=",
                         "^=", "%=", "<<=", ">>="):
            return nxt.value != "=" or (
                i + 2 >= len(toks) or toks[i + 2].value != "="
            )  # exclude `==`
        if nxt.value in (".", "->") and i + 2 < len(toks):
            m = toks[i + 2]
            if m.kind == "id" and m.value in MUTATING_CALLS \
                    and i + 3 < len(toks) and toks[i + 3].value == "(":
                return True
        return False

    @staticmethod
    def _access_prefix(toks, i):
        """The access path leading to the identifier at i (may be '')."""
        parts = []
        j = i - 1
        while j > 0 and toks[j].value in (".", "->") \
                and toks[j - 1].kind == "id":
            parts.append(toks[j].value)
            parts.append(toks[j - 1].value)
            j -= 2
        return "".join(reversed(parts))

    def _guarded_fields(self, src):
        """{field name: guard expr} from RTA_GUARDED_BY declarations."""
        out = {}
        toks = src.tokens
        for i, tok in enumerate(toks):
            if tok.kind != "id" or tok.value != "RTA_GUARDED_BY":
                continue
            prv = toks[i - 1] if i > 0 else None
            if prv is None or prv.kind != "id":
                continue
            j = i + 1
            if j >= len(toks) or toks[j].value != "(":
                continue
            k = j + 1
            d = 1
            start = k
            while k < len(toks) and d > 0:
                if toks[k].value == "(":
                    d += 1
                elif toks[k].value == ")":
                    d -= 1
                k += 1
            expr = normalize_expr(toks[start:k - 1])
            if expr:
                out[prv.value] = expr
        return out

    def _class_names(self, src):
        names = set()
        toks = src.tokens
        for i, tok in enumerate(toks):
            if tok.kind == "id" and tok.value in ("class", "struct") \
                    and i + 1 < len(toks) and toks[i + 1].kind == "id":
                names.add(toks[i + 1].value)
        return names

    def check_locks(self):
        # Mutex nodes are qualified by file stem: `mutex_` in metrics.cpp and
        # `mutex_` in analyzer.cpp are different objects and must not share a
        # node in the order graph. Header/impl pairs share a stem.
        edges = {}  # (a, b) -> (src, line)
        for src in self.files:
            if src.rel.startswith(LOCK_EXEMPT_PREFIXES):
                continue
            guarded = self._guarded_fields(src)
            classes = self._class_names(src)
            node = lambda expr: f"{src.stem}:{expr}"  # noqa: E731

            def on_acquire(i, expr, held, src=src, node=node):
                for h in held:
                    a, b = node(h), node(expr)
                    if a != b and (a, b) not in edges:
                        edges[(a, b)] = (src, src.tokens[i].line)

            def on_write(i, field, prefix, held, fn,
                         src=src, guarded=guarded, classes=classes):
                guard = guarded[field]
                if any(guard_matches(guard, h) for h in held):
                    return
                if fn is None:
                    return  # declaration-scope token, not a function body
                if fn in classes or fn == src.stem:
                    return  # constructor/destructor: single-owner phase
                tok = src.tokens[i]
                self.report(
                    src, tok.line, "guarded-write",
                    f"'{field}' is RTA_GUARDED_BY({guard}) but '{fn}' "
                    "writes it without holding the guard (take a "
                    "rta::MutexLock or annotate RTA_REQUIRES)",
                )

            self._lock_walk(src, on_acquire,
                            on_write if guarded else None, guarded)

        # Cycle detection over the acquisition-order graph.
        adj = {}
        for (a, b), site in edges.items():
            adj.setdefault(a, []).append(b)
        color = {}

        def visit(start):
            stack = [(start, iter(adj.get(start, ())))]
            color[start] = 1
            path = [start]
            while stack:
                nodename, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color.get(nxt) == 1:
                        cycle = path[path.index(nxt):] + [nxt]
                        src, line = edges[(nodename, nxt)]
                        self.report(
                            src, line, "lock-order-cycle",
                            "potential deadlock: lock order cycle "
                            + " -> ".join(cycle),
                        )
                    elif color.get(nxt) is None:
                        color[nxt] = 1
                        path.append(nxt)
                        stack.append((nxt, iter(adj.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    color[nodename] = 2
                    path.pop()
                    stack.pop()

        for a in adj:
            if color.get(a) is None:
                visit(a)

    # --- units ----------------------------------------------------------

    def check_units(self):
        for src in self.files:
            if src.rel.startswith(UNIT_EXEMPT_PREFIXES):
                continue
            toks = src.tokens
            # Split into statements at ; { } boundaries.
            start = 0
            for i in range(len(toks) + 1):
                boundary = i == len(toks) or (
                    toks[i].kind == "punct" and toks[i].value in (";", "{",
                                                                  "}")
                )
                if not boundary:
                    continue
                stmt = toks[start:i]
                start = i + 1
                if not stmt:
                    continue
                ids = [t for t in stmt if t.kind == "id"]
                if any(t.value in CONVERSION_HELPERS for t in ids):
                    continue
                units = {}
                for t in ids:
                    u = unit_of(t.value)
                    if u is not None:
                        units.setdefault(u, t)
                has_arith = any(
                    t.kind == "punct" and t.value in ARITH_OPS for t in stmt
                )
                if len(units) > 1 and has_arith:
                    offenders = sorted(
                        units.values(), key=lambda t: (t.line, t.value))
                    names = ", ".join(f"'{t.value}'" for t in offenders)
                    self.report(
                        src, offenders[0].line, "unit-mix",
                        f"mixed time units in one expression ({names}): "
                        "convert explicitly with the util/time.hpp helpers "
                        "(ms_to_us, ns_to_us, ...)",
                    )
                    continue
                # Bare power-of-1000 factor on a unit-carrying identifier.
                for j, t in enumerate(stmt):
                    if t.kind != "punct" or t.value not in ("*", "/"):
                        continue
                    a = stmt[j - 1] if j > 0 else None
                    b = stmt[j + 1] if j + 1 < len(stmt) else None
                    for x, y in ((a, b), (b, a)):
                        if x is None or y is None:
                            continue
                        if x.kind == "id" and unit_of(x.value) \
                                and y.kind == "num" \
                                and y.value in POWER_OF_1000:
                            self.report(
                                src, t.line, "unit-factor",
                                f"'{x.value}' scaled by bare literal "
                                f"{y.value}: use a util/time.hpp conversion "
                                "helper so the unit change is explicit",
                            )
                            break

    # --- schema ---------------------------------------------------------

    def _emitted_fields(self):
        """{key: [(src, line), ...]} for every .set("key") in the service."""
        out = {}
        for src in self.files:
            if not src.rel.startswith(SCHEMA_EMIT_PREFIXES):
                continue
            toks = src.tokens
            for i, tok in enumerate(toks):
                if tok.kind != "id" or tok.value != "set":
                    continue
                prv = toks[i - 1] if i > 0 else None
                if prv is None or prv.value not in (".", "->"):
                    continue
                if i + 2 >= len(toks) or toks[i + 1].value != "(":
                    continue
                arg = toks[i + 2]
                if arg.kind != "str" or not arg.value.startswith('"'):
                    continue
                key = arg.value.strip('"')
                out.setdefault(key, []).append((src, arg.line))
        return out

    def _documented_fields(self):
        """{field: doc line} from the fenced reference in docs/api.md."""
        try:
            with open(self.api_doc_path, "r", encoding="utf-8") as f:
                lines = f.read().splitlines()
        except OSError as e:
            self.errors.append(f"cannot read api doc: {e}")
            return None
        fields = {}
        inside = False
        saw_markers = False
        for n, line in enumerate(lines, start=1):
            if MARK_BEGIN in line:
                inside = True
                saw_markers = True
                continue
            if MARK_END in line:
                inside = False
                continue
            if inside:
                m = DOC_FIELD_RE.match(line.strip())
                if m:
                    fields[m.group(1)] = n
        if not saw_markers:
            self.errors.append(
                f"{self.api_doc_rel}: no '{MARK_BEGIN}' marker; the schema "
                "pass needs the fenced response-field reference")
            return None
        return fields

    def check_schema(self):
        if not (self.rules & {"schema-undocumented", "schema-phantom"}):
            return
        emitted = self._emitted_fields()
        if not any(
            src.rel.startswith(SCHEMA_EMIT_PREFIXES) for src in self.files
        ):
            return  # nothing in scope (e.g. linting a single non-service dir)
        documented = self._documented_fields()
        if documented is None:
            return
        for key in sorted(emitted):
            if key in documented:
                continue
            src, line = emitted[key][0]
            self.report(
                src, line, "schema-undocumented",
                f"response field '{key}' is emitted but not documented in "
                f"{self.api_doc_rel}'s response field reference",
            )
        for key in sorted(documented):
            if key in emitted:
                continue
            self.report(
                None, documented[key], "schema-phantom",
                f"documented response field '{key}' is never emitted by "
                "the service layer (stale docs or dead contract)",
                snippet=f"`{key}`",
            )

    # --- suppression ----------------------------------------------------

    def apply_suppressions(self):
        allow = {}  # (rel, line) -> rules
        for src in self.files:
            for line, text in src.comments.items():
                m = SUPPRESS_RE.search(text)
                if m is None:
                    continue
                rules = {r.strip() for r in m.group(1).split(",")
                         if r.strip()}
                reason = m.group(2).strip()
                target = line
                if target not in src.code_lines:
                    last = len(src.lines)
                    target += 1
                    while target <= last and target not in src.code_lines:
                        target += 1
                if not reason:
                    self.report(
                        src, line, "bad-suppression",
                        "suppression without a reason: write "
                        "`rta-archcheck: allow(<rule>) <why this is safe>`",
                    )
                    continue
                allow.setdefault((src.rel, target), set()).update(rules)
        for f in self.findings:
            rules = allow.get((f.path, f.line))
            if rules and ("*" in rules or f.rule in rules):
                f.suppressed = True

    def run(self):
        self.check_layering()
        self.check_locks()
        self.check_units()
        self.check_schema()
        self.apply_suppressions()
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return self.findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="rta_archcheck", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to check (default: src)")
    parser.add_argument("--root", default=None,
                        help="repo root for path normalization (default: two "
                             "levels above this script)")
    parser.add_argument("--api-doc", default=None,
                        help="API doc with the response field reference "
                             "(default: <root>/docs/api.md)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule subset to run")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: "
                             "<root>/tools/lint/rta_archcheck_baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from this run's findings")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write a JSON report to this path ('-' stdout)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-finding human output")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULE_DOCS):
            print(f"{name:20s} {RULE_DOCS[name]}")
        return 0

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root or os.path.join(script_dir, "..", ".."))
    paths = args.paths or [os.path.join(root, "src")]
    api_doc = os.path.abspath(
        args.api_doc or os.path.join(root, "docs", "api.md"))
    api_doc_rel = os.path.relpath(api_doc, root).replace(os.sep, "/")
    if api_doc_rel.startswith(".."):
        api_doc_rel = api_doc

    rules = set(RULE_DOCS)
    if args.rules:
        rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = rules - set(RULE_DOCS)
        if unknown:
            print("rta-archcheck: unknown rule(s): "
                  + ", ".join(sorted(unknown)), file=sys.stderr)
            return 2
        rules.add("bad-suppression")

    baseline_path = args.baseline or os.path.join(
        root, "tools", "lint", "rta_archcheck_baseline.json")
    baseline = set()
    if not args.no_baseline and not args.write_baseline:
        if os.path.exists(baseline_path):
            try:
                baseline = load_baseline(baseline_path)
            except (ValueError, json.JSONDecodeError) as e:
                print(f"rta-archcheck: bad baseline: {e}", file=sys.stderr)
                return 2

    files = []
    try:
        for path in iter_source_files(paths):
            abspath = os.path.abspath(path)
            rel = os.path.relpath(abspath, root)
            if rel.startswith(".."):
                rel = abspath
            rel = rel.replace(os.sep, "/")
            with open(abspath, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
            files.append(SourceFile(abspath, rel, text))
    except FileNotFoundError as e:
        print(f"rta-archcheck: no such path: {e}", file=sys.stderr)
        return 2

    analyzer = Analyzer(files, rules, api_doc, api_doc_rel, root)
    findings = analyzer.run()
    if analyzer.errors:
        for e in analyzer.errors:
            print(f"rta-archcheck: {e}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(baseline_path, findings)
        print(f"rta-archcheck: baseline written: {baseline_path} "
              f"({count} fingerprints)")
        return 0

    for fp, f in indexed_fingerprints(findings):
        if not f.suppressed and fp in baseline:
            f.baselined = True

    new = [f for f in findings if not f.suppressed and not f.baselined]
    suppressed = [f for f in findings if f.suppressed]
    baselined = [f for f in findings if f.baselined]

    if not args.quiet:
        for f in new:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
            if f.snippet:
                print(f"    {f.snippet}")
        print(f"rta-archcheck: {len(files)} files, {len(new)} new "
              f"finding(s), {len(baselined)} baselined, "
              f"{len(suppressed)} suppressed")

    if args.json_out:
        report = {
            "tool": "rta-archcheck",
            "version": 1,
            "root": root,
            "files_scanned": len(files),
            "rules": [
                {"name": name, "description": RULE_DOCS[name]}
                for name in sorted(rules)
            ],
            "findings": [f.as_json() for f in findings],
            "counts": {
                "new": len(new),
                "baselined": len(baselined),
                "suppressed": len(suppressed),
            },
        }
        payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
        if args.json_out == "-":
            sys.stdout.write(payload)
        else:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                fh.write(payload)

    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
