#!/usr/bin/env python3
"""Golden test for rta_archcheck over the arch fixture corpus.

Checks, in order:
  1. The fixture corpus reproduces exactly the findings in
     fixtures/arch/expected.json (file, line, rule, suppressed) and
     exits 1.
  2. Each of the four passes individually catches its seeded violation
     (layering, lock-order, units, schema) under --rules subsetting.
  3. The real tree (src/ + docs/api.md) is clean: exit 0, no findings.
  4. --write-baseline followed by a baselined run exits 0 with every
     finding accounted as baselined; dropping one fingerprint from the
     v2 list resurfaces exactly that finding as new (exit 1).
  5. A v1 (counts) baseline is migrated on load and still matches.
  6. Usage errors: unknown rule and a doc without the field-reference
     markers both exit 2.

Stdlib only; run directly or through ctest (archcheck_fixtures).
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
TOOL = os.path.join(HERE, "rta_archcheck.py")
ROOT = os.path.abspath(os.path.join(HERE, "..", ".."))
FIXTURES = os.path.join(HERE, "fixtures", "arch")
EXPECTED = os.path.join(FIXTURES, "expected.json")

failures = []


def check(name, cond, detail=""):
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {name}"
          + (f": {detail}" if detail and not cond else ""))
    if not cond:
        failures.append(name)


def run_tool(*extra, json_to=None):
    cmd = [sys.executable, TOOL, "-q"]
    if json_to is not None:
        cmd += ["--json", json_to]
    cmd += list(extra)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc


def run_fixture(*extra, json_to=None):
    return run_tool("--root", FIXTURES, *extra, json_to=json_to)


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def key(f):
    return (f["file"], f["line"], f["rule"], f["suppressed"])


def main():
    with open(EXPECTED, "r", encoding="utf-8") as f:
        expected = json.load(f)
    exp_keys = sorted(key(f) for f in expected["findings"])

    with tempfile.TemporaryDirectory(prefix="rta_archcheck_test_") as tmp:
        report_path = os.path.join(tmp, "report.json")
        baseline_path = os.path.join(tmp, "baseline.json")

        # 1. Golden corpus match.
        print("golden corpus:")
        proc = run_fixture("--no-baseline", json_to=report_path)
        check("exit code 1 (new findings)", proc.returncode == 1,
              f"got {proc.returncode}: {proc.stderr}")
        rep = load_report(report_path)
        got_keys = sorted(key(f) for f in rep["findings"])
        check("findings match expected.json", got_keys == exp_keys,
              f"\n  expected: {exp_keys}\n  got:      {got_keys}")
        check("counts match", rep["counts"] == expected["counts"],
              f"expected {expected['counts']}, got {rep['counts']}")
        check("report names the tool", rep.get("tool") == "rta-archcheck")
        check("every rule documented", all(
            r.get("name") and r.get("description") for r in rep["rules"]))

        # 2. Each pass catches its seeded violation in isolation.
        print("per-pass detection:")
        for rules, expect in [
            ("layer-upward", {"layer-upward"}),
            ("include-cycle", {"include-cycle"}),
            ("lock-order-cycle", {"lock-order-cycle"}),
            ("guarded-write", {"guarded-write"}),
            ("unit-mix,unit-factor", {"unit-mix", "unit-factor"}),
            ("schema-undocumented,schema-phantom",
             {"schema-undocumented", "schema-phantom"}),
        ]:
            proc = run_fixture("--no-baseline", "--rules", rules,
                               json_to=report_path)
            rep = load_report(report_path)
            seen = {f["rule"] for f in rep["findings"]}
            check(f"--rules {rules} catches its seed",
                  expect <= seen and seen <= expect | {"bad-suppression"},
                  f"expected {expect}, saw {seen}")

        # 3. The real tree is clean.
        print("real tree:")
        proc = run_tool("--root", ROOT, os.path.join(ROOT, "src"),
                        json_to=report_path)
        check("src/ exits 0", proc.returncode == 0,
              f"got {proc.returncode}: {proc.stdout}{proc.stderr}")
        rep = load_report(report_path)
        check("src/ has no new findings", rep["counts"]["new"] == 0,
              str(rep["counts"]))

        # 4. Baseline roundtrip on the fixtures.
        print("baseline roundtrip:")
        proc = run_fixture("--write-baseline", "--baseline", baseline_path)
        check("--write-baseline exits 0", proc.returncode == 0,
              f"got {proc.returncode}: {proc.stderr}")
        proc = run_fixture("--baseline", baseline_path, json_to=report_path)
        check("baselined run exits 0", proc.returncode == 0,
              f"got {proc.returncode}: {proc.stderr}")
        rep = load_report(report_path)
        check("no new findings", rep["counts"]["new"] == 0,
              str(rep["counts"]))
        n_unsuppressed = sum(1 for f in expected["findings"]
                             if not f["suppressed"])
        check("all unsuppressed findings baselined",
              rep["counts"]["baselined"] == n_unsuppressed,
              f"expected {n_unsuppressed}, got {rep['counts']['baselined']}")

        with open(baseline_path, "r", encoding="utf-8") as f:
            base = json.load(f)
        check("baseline is v2", base.get("version") == 2
              and isinstance(base["fingerprints"], list))
        dropped = sorted(base["fingerprints"])[0]
        base["fingerprints"].remove(dropped)
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump(base, f)
        proc = run_fixture("--baseline", baseline_path, json_to=report_path)
        check("exit code 1 after dropping a fingerprint",
              proc.returncode == 1, f"got {proc.returncode}")
        rep = load_report(report_path)
        check("exactly the dropped finding is new",
              rep["counts"]["new"] == 1, str(rep["counts"]))

        # 5. v1 (counts) baseline migration.
        print("v1 baseline migration:")
        counts = {}
        for fp in sorted(base["fingerprints"]) + [dropped]:
            root_fp = fp.rsplit("#", 1)[0]
            counts[root_fp] = counts.get(root_fp, 0) + 1
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump({"version": 1, "fingerprints": counts}, f)
        proc = run_fixture("--baseline", baseline_path, json_to=report_path)
        check("v1 baseline still suppresses all findings",
              proc.returncode == 0, f"got {proc.returncode}: {proc.stderr}")

        # 6. Usage errors.
        print("usage errors:")
        proc = run_fixture("--rules", "no-such-rule")
        check("unknown rule exits 2", proc.returncode == 2,
              f"got {proc.returncode}")
        unmarked = os.path.join(tmp, "unmarked.md")
        with open(unmarked, "w", encoding="utf-8") as f:
            f.write("# no markers here\n")
        proc = run_fixture("--no-baseline", "--api-doc", unmarked)
        check("doc without markers exits 2", proc.returncode == 2,
              f"got {proc.returncode}")

    if failures:
        print(f"\ntest_rta_archcheck: {len(failures)} check(s) FAILED: "
              + ", ".join(failures))
        return 1
    print("\ntest_rta_archcheck: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
