// rta_cli -- command-line front end to the bursty-rta analyzers.
//
// Subcommands:
//   analyze  <system.rts> [--method auto|spp-exact|bounds|iterative|holistic]
//            [--priorities keep|pdm|dm|rm] [--verbose]
//   simulate <system.rts> [--horizon H] [--priorities ...]
//   validate <system.rts> [--method ...]       analysis vs simulation
//   curves   <system.rts> --out DIR            per-subjob service-bound CSVs
//   serve    <system.rts> --requests FILE      incremental admission service
//            [--out FILE] [--horizon H] [--threshold F]
//   generate [--stages N --procs N --jobs N --util U --seed S --aperiodic]
//            [--out FILE]                       emit a random job shop
//
// System files ending in ".json" load through the versioned JSON format
// (io/system_json.hpp); everything else through the text format.
//
// The analysis subcommands (analyze, validate, curves, serve) share one flag
// table: --threads, --no-cache, --stats, --metrics-json, --trace-json,
// --trace-jsonl (see docs/observability.md). Unknown flags are rejected with
// the valid set.
//
// Exit status: 0 = ok / schedulable, 1 = not schedulable (serve: some
// request failed), 2 = usage or input error.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "io/curve_csv.hpp"
#include "io/trace_csv.hpp"
#include "io/system_text.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rta/rta.hpp"
#include "service/metrics_export.hpp"
#include "util/options.hpp"

namespace {

using namespace rta;

int usage() {
  std::fprintf(
      stderr,
      "usage: rta_cli <analyze|simulate|validate|curves|trace|serve|generate>"
      " ...\n"
      "  analyze  FILE [--method auto|spp-exact|bounds|iterative|holistic]\n"
      "                [--priorities keep|pdm|dm|rm] [--verbose]\n"
      "  simulate FILE [--horizon H] [--priorities ...]\n"
      "  validate FILE [--method ...] [--priorities ...]\n"
      "  curves   FILE --out DIR [--method ...] [--priorities ...]\n"
      "  trace    FILE --out PREFIX [--horizon H] [--priorities ...]\n"
      "  serve    FILE --requests FILE [--out FILE] [--priorities ...]\n"
      "           [--horizon H] [--threshold F] [--parallel-reads N]\n"
      "           [--max-inflight N] [--request-timeout-ms MS]\n"
      "           [--metrics-prom FILE [--prom-interval-ms MS]]\n"
      "           JSONL admit/remove/what_if/query/stats stream against an\n"
      "           incremental session; reads fan out over snapshots\n"
      "           (docs/api.md); every response echoes a trace_id\n"
      "  generate [--stages N --procs N --jobs N --util U --seed S\n"
      "            --aperiodic --scheduler SPP|SPNP|FCFS] [--out FILE]\n"
      "  FILEs ending in .json use the JSON system format (docs/api.md).\n"
      "  analyze/validate/curves/serve share these flags:\n"
      "  --threads N: bounds-engine worker threads (1 = serial, 0 = all\n"
      "               hardware threads); results are identical for every N.\n"
      "  --no-cache:  disable curve-operation memoization (same results,\n"
      "               slower fixed-point rounds).\n"
      "  --metrics-json FILE: write aggregated engine metrics as JSON.\n"
      "  --trace-json FILE:   write a Chrome trace_event JSON timeline\n"
      "                       (open in chrome://tracing or Perfetto).\n"
      "  --trace-jsonl FILE:  write the same span timeline as structured\n"
      "                       JSONL events (one object per line).\n"
      "  --stats:             print cache/kernel/pool statistics; never\n"
      "                       changes the computed bounds.\n"
      "  serve only: --metrics-prom FILE writes a Prometheus text-format\n"
      "  snapshot every --prom-interval-ms (default 1000), plus a final\n"
      "  flush on every exit path.\n");
  return 2;
}

/// The flag table shared by every analysis subcommand.
constexpr const char* kSharedAnalysisFlags[] = {
    "threads", "no-cache", "stats", "metrics-json", "trace-json",
    "trace-jsonl",
};

/// Reject flags outside `specific` (+ the shared table when `with_shared`).
/// Prints every offender and the valid set; true when all flags are known.
bool check_flags(const char* cmd, const Options& opts,
                 std::vector<const char*> specific, bool with_shared = true) {
  std::vector<std::string> allowed;
  if (with_shared) {
    allowed.insert(allowed.end(), std::begin(kSharedAnalysisFlags),
                   std::end(kSharedAnalysisFlags));
  }
  allowed.insert(allowed.end(), specific.begin(), specific.end());
  std::sort(allowed.begin(), allowed.end());
  bool ok = true;
  for (const std::string& key : opts.keys()) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      std::fprintf(stderr, "rta_cli %s: unknown flag --%s\n", cmd,
                   key.c_str());
      ok = false;
    }
  }
  if (!ok) {
    std::string list;
    for (const std::string& name : allowed) {
      if (!list.empty()) list += ", ";
      list += "--" + name;
    }
    std::fprintf(stderr, "valid flags for '%s': %s\n", cmd, list.c_str());
  }
  return ok;
}

/// Writes `content` to `path`, replacing any existing file.
bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

/// Sinks and export paths behind --metrics-json / --trace-json /
/// --trace-jsonl / --stats. The registry also backs --stats on its own (no
/// file needed): the analyzers flush their cache/pool/kernel counters into
/// it per analyze().
struct ObsSession {
  std::string metrics_path;
  std::string trace_path;
  std::string trace_jsonl_path;
  bool stats = false;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::Tracer> tracer;

  static ObsSession from_options(const Options& opts) {
    ObsSession s;
    s.metrics_path = opts.get("metrics-json", "");
    s.trace_path = opts.get("trace-json", "");
    s.trace_jsonl_path = opts.get("trace-jsonl", "");
    s.stats = opts.get_bool("stats", false);
    if (!s.metrics_path.empty() || s.stats) {
      s.metrics = std::make_unique<obs::MetricsRegistry>();
    }
    if (!s.trace_path.empty() || !s.trace_jsonl_path.empty()) {
      s.tracer = std::make_unique<obs::Tracer>();
    }
    return s;
  }

  [[nodiscard]] obs::Observer observer() const {
    return obs::Observer{metrics.get(), tracer.get()};
  }

  /// `f` lets serve keep stdout clean for JSONL responses (stats -> stderr).
  void print_stats(std::FILE* f = stdout) const {
    if (!stats || metrics == nullptr) return;
    const obs::MetricsSnapshot snap = metrics->snapshot();
    auto c = [&](const char* name) -> unsigned long long {
      const auto it = snap.counters.find(name);
      return it == snap.counters.end() ? 0ULL : it->second;
    };
    auto g = [&](const char* name) -> double {
      const auto it = snap.gauges.find(name);
      return it == snap.gauges.end() ? 0.0 : it->second;
    };
    std::fprintf(f, "-- stats --\n");
    std::fprintf(
        f,
        "curve cache: conv %llu hits / %llu misses, pinv %llu hits / %llu "
        "misses, collisions %llu, verifies %llu\n",
        c("curve_cache.conv_hits"), c("curve_cache.conv_misses"),
        c("curve_cache.pinv_hits"), c("curve_cache.pinv_misses"),
        c("curve_cache.collisions"), c("curve_cache.verifies"));
    std::fprintf(
        f, "kernel ops: conv %llu, deconv %llu, pointwise %llu, pinv %llu\n",
        c("kernel.conv_ops"), c("kernel.deconv_ops"), c("kernel.pointwise_ops"),
        c("kernel.pinv_ops"));
    if (c("bounds.units") > 0) {
      std::fprintf(f, "wavefront: %llu waves, %llu units\n", c("bounds.waves"),
                   c("bounds.units"));
    }
    if (c("iterative.rounds") > 0) {
      std::fprintf(
          f,
          "iterative: %d iterations, %llu passes run, %llu skipped, %llu job "
          "refinements\n",
          static_cast<int>(g("iterative.iterations")),
          c("iterative.passes_run"), c("iterative.passes_skipped"),
          c("iterative.jobs_refined"));
    }
    if (c("service.admit") + c("service.what_if") + c("service.remove") > 0) {
      std::fprintf(
          f,
          "service: %llu admits, %llu what-ifs, %llu removes; %llu "
          "incremental passes (%llu dirty subjobs), %llu full passes\n",
          c("service.admit"), c("service.what_if"), c("service.remove"),
          c("service.incremental"), c("service.dirty_subjobs"),
          c("service.full"));
    }
    std::fprintf(
        f,
        "analysis time by scheduler: spp %llu us, spnp %llu us, fcfs %llu "
        "us\n",
        c("analysis.unit_time_spp_us"), c("analysis.unit_time_spnp_us"),
        c("analysis.unit_time_fcfs_us"));
    std::fprintf(
        f,
        "pool: %llu tasks, %llu indices (%llu abandoned), queue high water "
        "%d, busy %llu us\n",
        c("pool.tasks_executed"), c("pool.indices_executed"),
        c("pool.indices_abandoned"),
        static_cast<int>(g("pool.queue_high_water")),
        c("pool.worker_busy_us"));
  }

  /// Write the requested export files; false (with a message) on failure.
  [[nodiscard]] bool write_exports() const {
    if (metrics != nullptr && !metrics_path.empty() &&
        !write_text_file(metrics_path, metrics->snapshot().to_json())) {
      std::fprintf(stderr, "cannot write '%s'\n", metrics_path.c_str());
      return false;
    }
    if (tracer != nullptr && !trace_path.empty() &&
        !write_text_file(trace_path, tracer->to_chrome_json())) {
      std::fprintf(stderr, "cannot write '%s'\n", trace_path.c_str());
      return false;
    }
    if (tracer != nullptr && !trace_jsonl_path.empty() &&
        !write_text_file(trace_jsonl_path, tracer->to_jsonl())) {
      std::fprintf(stderr, "cannot write '%s'\n", trace_jsonl_path.c_str());
      return false;
    }
    return true;
  }
};

/// Analysis knobs shared by the analyze/validate/curves subcommands.
AnalysisConfig analysis_config(const Options& opts) {
  AnalysisConfig cfg;
  cfg.threads = static_cast<int>(opts.get_int("threads", 1));
  cfg.use_curve_cache = !opts.get_bool("no-cache", false);
  return cfg;
}

bool apply_priorities(System& system, const std::string& policy) {
  if (policy == "keep") return true;
  if (policy == "pdm") {
    assign_proportional_deadline_monotonic(system);
    return true;
  }
  if (policy == "dm") {
    assign_deadline_monotonic(system);
    return true;
  }
  if (policy == "rm") {
    assign_rate_monotonic(system);
    return true;
  }
  std::fprintf(stderr, "unknown priority policy '%s'\n", policy.c_str());
  return false;
}

/// Resolve --method through the rta::Analyzer facade (engine dispatch and
/// kAuto selection live there; docs/api.md).
AnalysisResult run_method(const std::string& method, const System& system,
                          const AnalysisConfig& cfg, std::string* used) {
  const std::optional<EngineKind> kind = parse_engine_kind(method);
  if (!kind) {
    AnalysisResult r;
    r.error = "unknown method '" + method + "'";
    return r;
  }
  return Analyzer(cfg).analyze(system, *kind, used);
}

int cmd_analyze(const Options& opts, System system) {
  if (!check_flags("analyze", opts, {"method", "priorities", "verbose"})) {
    return 2;
  }
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  ObsSession session = ObsSession::from_options(opts);
  AnalysisConfig cfg = analysis_config(opts);
  cfg.observer = session.observer();
  std::string used;
  AnalysisResult r;
  {
    obs::Tracer::Span span =
        obs::Tracer::span_if(session.tracer.get(), "cli.analyze");
    r = run_method(opts.get("method", "auto"), system, cfg, &used);
  }
  if (!r.ok) {
    std::fprintf(stderr, "analysis failed: %s\n", r.error.c_str());
    return 2;
  }
  std::printf("method: %s\n", used.c_str());
  std::printf("%-16s %12s %12s %8s\n", "job", "wcrt", "deadline", "ok?");
  for (int k = 0; k < system.job_count(); ++k) {
    std::printf("%-16s %12.4f %12.4f %8s\n", system.job(k).name.c_str(),
                r.jobs[k].wcrt, system.job(k).deadline,
                r.jobs[k].schedulable ? "yes" : "NO");
    if (opts.get_bool("verbose", false)) {
      for (const SubjobReport& hop : r.jobs[k].hops) {
        std::printf("    hop %d on P%d: local bound %.4f\n", hop.ref.hop,
                    system.subjob(hop.ref).processor, hop.local_bound);
      }
    }
  }
  std::printf("schedulable: %s\n", r.all_schedulable() ? "yes" : "no");
  session.print_stats();
  if (!session.write_exports()) return 2;
  return r.all_schedulable() ? 0 : 1;
}

int cmd_simulate(const Options& opts, System system) {
  if (!check_flags("simulate", opts, {"horizon", "priorities"},
                   /*with_shared=*/false)) {
    return 2;
  }
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  const Time horizon = opts.get_double(
      "horizon", default_horizon(system, AnalysisConfig{}));
  const SimResult s = simulate(system, horizon);
  std::printf("simulated on [0, %.3f]\n", horizon);
  std::printf("%-16s %10s %14s %10s\n", "job", "instances", "worst resp",
              "deadline");
  bool all_meet = true;
  for (int k = 0; k < system.job_count(); ++k) {
    std::printf("%-16s %10zu %14.4f %10.4f\n", system.job(k).name.c_str(),
                s.traces[k].size(), s.worst_response[k],
                system.job(k).deadline);
    if (!(s.worst_response[k] <= system.job(k).deadline)) all_meet = false;
  }
  std::printf("all instances completed: %s; all deadlines met: %s\n",
              s.all_completed ? "yes" : "no", all_meet ? "yes" : "no");
  return all_meet ? 0 : 1;
}

int cmd_validate(const Options& opts, System system) {
  if (!check_flags("validate", opts, {"method", "priorities"})) return 2;
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  ObsSession session = ObsSession::from_options(opts);
  AnalysisConfig cfg = analysis_config(opts);
  cfg.observer = session.observer();
  using Clock = std::chrono::steady_clock;
  std::string used;
  AnalysisResult r;
  const Clock::time_point t0 = Clock::now();
  {
    obs::Tracer::Span span =
        obs::Tracer::span_if(session.tracer.get(), "cli.analyze");
    r = run_method(opts.get("method", "auto"), system, cfg, &used);
  }
  const Clock::time_point t1 = Clock::now();
  if (!r.ok) {
    std::fprintf(stderr, "analysis failed: %s\n", r.error.c_str());
    return 2;
  }
  const Time horizon =
      r.horizon > 0.0 ? r.horizon : default_horizon(system, AnalysisConfig{});
  SimResult s;
  {
    obs::Tracer::Span span =
        obs::Tracer::span_if(session.tracer.get(), "cli.simulate");
    s = simulate(system, horizon);
  }
  const Clock::time_point t2 = Clock::now();
  std::printf("method: %s\n", used.c_str());
  std::printf("%-16s %12s %12s %10s\n", "job", "bound", "simulated",
              "slack");
  bool sound = true;
  for (int k = 0; k < system.job_count(); ++k) {
    const double slack = r.jobs[k].wcrt - s.worst_response[k];
    if (std::isfinite(r.jobs[k].wcrt) && slack < -1e-6) sound = false;
    std::printf("%-16s %12.4f %12.4f %10.4f\n", system.job(k).name.c_str(),
                r.jobs[k].wcrt, s.worst_response[k], slack);
  }
  std::printf("bounds dominate simulation: %s\n", sound ? "yes" : "NO");
  const std::chrono::duration<double, std::milli> analysis_ms = t1 - t0;
  const std::chrono::duration<double, std::milli> sim_ms = t2 - t1;
  std::printf("analysis wall time: %.3f ms; simulation wall time: %.3f ms\n",
              analysis_ms.count(), sim_ms.count());
  session.print_stats();
  if (!session.write_exports()) return 2;
  return sound ? 0 : 1;
}

int cmd_curves(const Options& opts, System system) {
  if (!check_flags("curves", opts, {"out", "method", "priorities"})) return 2;
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  const std::string dir = opts.get("out", "");
  if (dir.empty()) {
    std::fprintf(stderr, "curves: --out DIR is required\n");
    return 2;
  }
  ObsSession session = ObsSession::from_options(opts);
  AnalysisConfig cfg = analysis_config(opts);
  cfg.record_curves = true;
  cfg.observer = session.observer();
  std::string used;
  AnalysisResult r;
  {
    obs::Tracer::Span span =
        obs::Tracer::span_if(session.tracer.get(), "cli.analyze");
    r = run_method(opts.get("method", "auto"), system, cfg, &used);
  }
  if (!r.ok) {
    std::fprintf(stderr, "analysis failed: %s\n", r.error.c_str());
    return 2;
  }
  int written = 0;
  for (int k = 0; k < system.job_count(); ++k) {
    for (std::size_t h = 0; h < r.jobs[k].hops.size(); ++h) {
      if (r.jobs[k].hops[h].curves.empty()) continue;
      const SubjobCurves& c = r.jobs[k].hops[h].curves[0];
      const std::string base = dir + "/" + system.job(k).name + "_hop" +
                               std::to_string(h);
      const bool ok = save_curve_csv(c.service_lower, base + "_svc_lower.csv") &&
                      save_curve_csv(c.service_upper, base + "_svc_upper.csv") &&
                      save_curve_csv(c.arrival_upper, base + "_arr_upper.csv") &&
                      save_curve_csv(c.departure_lower, base + "_dep_lower.csv");
      if (!ok) {
        std::fprintf(stderr, "cannot write under '%s'\n", dir.c_str());
        return 2;
      }
      written += 4;
    }
  }
  std::printf("wrote %d curve CSVs under %s (method: %s)\n", written,
              dir.c_str(), used.c_str());
  session.print_stats();
  if (!session.write_exports()) return 2;
  return 0;
}

int cmd_trace(const Options& opts, System system) {
  if (!check_flags("trace", opts, {"out", "horizon", "priorities"},
                   /*with_shared=*/false)) {
    return 2;
  }
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  const std::string prefix = opts.get("out", "");
  if (prefix.empty()) {
    std::fprintf(stderr, "trace: --out PREFIX is required\n");
    return 2;
  }
  const Time horizon = opts.get_double(
      "horizon", default_horizon(system, AnalysisConfig{}));
  const SimResult s = simulate(system, horizon);
  if (!save_trace_csv(system, s, prefix)) {
    std::fprintf(stderr, "cannot write '%s_*.csv'\n", prefix.c_str());
    return 2;
  }
  std::printf("wrote %s_gantt.csv and %s_instances.csv ([0, %.3f])\n",
              prefix.c_str(), prefix.c_str(), horizon);
  return 0;
}

int cmd_serve(const Options& opts, System system) {
  if (!check_flags("serve", opts,
                   {"requests", "out", "horizon", "threshold", "priorities",
                    "parallel-reads", "max-inflight", "request-timeout-ms",
                    "metrics-prom", "prom-interval-ms"})) {
    return 2;
  }
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  const std::string requests_path = opts.get("requests", "");
  if (requests_path.empty()) {
    std::fprintf(stderr, "serve: --requests FILE is required\n");
    return 2;
  }
  std::ifstream in(requests_path);
  if (!in) {
    std::fprintf(stderr, "cannot read '%s'\n", requests_path.c_str());
    return 2;
  }

  ObsSession session = ObsSession::from_options(opts);
  // --metrics-prom implies a registry: the periodic flusher and the in-band
  // `stats` verb both read from it.
  const std::string prom_path = opts.get("metrics-prom", "");
  if (!prom_path.empty() && session.metrics == nullptr) {
    session.metrics = std::make_unique<obs::MetricsRegistry>();
  }
  service::SessionConfig cfg;
  cfg.analysis = analysis_config(opts);
  cfg.analysis.observer = session.observer();
  // Pin the horizon so edits never shift it and every request can take the
  // incremental path (see admission_session.hpp).
  cfg.analysis.horizon =
      opts.get_double("horizon", default_horizon(system, cfg.analysis));
  cfg.full_analysis_threshold =
      opts.get_double("threshold", cfg.full_analysis_threshold);

  service::AdmissionSession admission(std::move(system), cfg);

  std::unique_ptr<service::PromFlusher> prom;
  if (!prom_path.empty()) {
    prom = std::make_unique<service::PromFlusher>(
        *session.metrics, prom_path,
        opts.get_double("prom-interval-ms", 1000.0));
  }

  // Everything past this point funnels through one exit so the observability
  // exports (--metrics-json/--trace-json/--trace-jsonl/--metrics-prom) are
  // flushed on EVERY path out -- stream write failures and timeout-heavy
  // error runs included, not just the happy path.
  const int stream_rc = [&]() -> int {
    if (!admission.last().ok) {
      std::fprintf(stderr, "base system analysis failed: %s\n",
                   admission.last().error.c_str());
      return 2;
    }

    service::StreamOptions stream;
    stream.parallel_reads = static_cast<int>(
        opts.get_int("parallel-reads", stream.parallel_reads));
    stream.max_inflight =
        static_cast<int>(opts.get_int("max-inflight", stream.max_inflight));
    stream.request_timeout_ms =
        opts.get_double("request-timeout-ms", stream.request_timeout_ms);

    const std::string out_path = opts.get("out", "");
    service::RunnerStats stats;
    if (out_path.empty()) {
      stats = service::run_request_stream(admission, in, std::cout, stream);
      std::cout.flush();
      if (!std::cout) {
        std::fprintf(stderr, "write to stdout failed\n");
        return 2;
      }
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
        return 2;
      }
      stats = service::run_request_stream(admission, in, out, stream);
      out.flush();
      if (!out) {
        std::fprintf(stderr, "write to '%s' failed\n", out_path.c_str());
        return 2;
      }
    }

    // Responses own stdout (JSONL); the human-facing summary goes to stderr.
    std::fprintf(stderr,
                 "served %d requests (%d failed, %d threw, %d timed out, %d "
                 "rejected, %d coalesced); %d jobs admitted\n",
                 stats.requests, stats.errors, stats.failures, stats.timeouts,
                 stats.rejected, stats.coalesced,
                 admission.system().job_count());
    return stats.errors == 0 ? 0 : 1;
  }();

  session.print_stats(stderr);
  bool exported = session.write_exports();
  if (prom != nullptr && !prom->stop_and_flush()) {
    std::fprintf(stderr, "cannot write '%s'\n", prom_path.c_str());
    exported = false;
  }
  if (stream_rc == 0 && !exported) return 2;
  return stream_rc;
}

/// Whether a system path selects the JSON on-disk format (docs/api.md).
bool json_path(const std::string& path) {
  const std::string ext = ".json";
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

int cmd_generate(const Options& opts) {
  if (!check_flags("generate", opts,
                   {"stages", "procs", "jobs", "util", "seed", "aperiodic",
                    "scheduler", "out"},
                   /*with_shared=*/false)) {
    return 2;
  }
  JobShopConfig cfg;
  cfg.stages = opts.get_int("stages", 4);
  cfg.processors_per_stage = opts.get_int("procs", 2);
  cfg.jobs = opts.get_int("jobs", 6);
  cfg.utilization = opts.get_double("util", 0.6);
  cfg.pattern = opts.get_bool("aperiodic", false)
                    ? ArrivalPattern::kAperiodic
                    : ArrivalPattern::kPeriodic;
  const std::string sched = opts.get("scheduler", "SPP");
  if (sched == "SPNP") cfg.scheduler = SchedulerKind::kSpnp;
  else if (sched == "FCFS") cfg.scheduler = SchedulerKind::kFcfs;
  else if (sched != "SPP") {
    std::fprintf(stderr, "unknown scheduler '%s'\n", sched.c_str());
    return 2;
  }
  Rng rng(opts.get_int("seed", 1));
  System system = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(system);

  const std::string out = opts.get("out", "");
  if (out.empty()) {
    std::printf("%s", to_system_text(system).c_str());
  } else if (json_path(out) ? !save_system_json_file(system, out)
                            : !save_system_file(system, out)) {
    std::fprintf(stderr, "cannot write '%s'\n", out.c_str());
    return 2;
  } else {
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

/// Load a system in either on-disk format, chosen by extension.
ParsedSystem load_any_system(const std::string& path) {
  return json_path(path) ? load_system_json_file(path)
                         : load_system_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Options opts = Options::parse(argc - 1, argv + 1);

  if (cmd == "generate") return cmd_generate(opts);

  if (opts.positional().empty()) return usage();
  const ParsedSystem parsed = load_any_system(opts.positional().front());
  if (!parsed.ok) {
    std::fprintf(stderr, "%s\n", parsed.error.c_str());
    return 2;
  }

  if (cmd == "analyze") return cmd_analyze(opts, parsed.system);
  if (cmd == "simulate") return cmd_simulate(opts, parsed.system);
  if (cmd == "validate") return cmd_validate(opts, parsed.system);
  if (cmd == "curves") return cmd_curves(opts, parsed.system);
  if (cmd == "trace") return cmd_trace(opts, parsed.system);
  if (cmd == "serve") return cmd_serve(opts, parsed.system);
  return usage();
}
