// rta_cli -- command-line front end to the bursty-rta analyzers.
//
// Subcommands (run `rta_cli <cmd> --help` for the full flag reference):
//   analyze   response-time bounds for a system
//   simulate  discrete-event simulation of the same system
//   validate  analysis vs simulation soundness check
//   curves    per-subjob service-bound CSVs
//   trace     simulation Gantt / instance CSVs
//   region    parametric schedulability region (feasibility boundary)
//   serve     incremental admission service over a JSONL request stream
//   generate  emit a random job shop
//
// Every subcommand's synopsis, flag list, defaults, and unknown-flag
// rejection are generated from one command table (command_table() below),
// so the help text and the parser can never drift apart.
//
// System files ending in ".json" load through the versioned JSON format
// (io/system_json.hpp); everything else through the text format.
//
// Exit status: 0 = ok / schedulable (region: non-empty), 1 = not
// schedulable (serve: some request failed; region: empty region),
// 2 = usage or input error.
#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "service/region.hpp"
#include "io/curve_csv.hpp"
#include "io/trace_csv.hpp"
#include "io/system_text.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rta/rta.hpp"
#include "service/metrics_export.hpp"
#include "service/sharded_scheduler.hpp"
#include "service/tenant_registry.hpp"
#include "util/options.hpp"

namespace {

using namespace rta;

/// One flag row of the command table: the parser default and the help line
/// come from the same place.
struct FlagSpec {
  const char* name;  ///< without the leading "--"
  const char* arg;   ///< metavar ("N", "FILE", ...); nullptr = boolean flag
  const char* def;   ///< default printed in --help; nullptr = none/required
  const char* help;  ///< one-line description
};

struct CommandSpec {
  const char* name;
  const char* args;     ///< positional synopsis ("FILE" or "")
  const char* summary;  ///< one-line summary for the top-level usage
  bool with_shared;     ///< accepts the shared analysis/observability flags
  std::vector<FlagSpec> flags;
};

/// The observability/engine flags shared by every analysis subcommand
/// (docs/observability.md).
const std::vector<FlagSpec>& shared_analysis_flags() {
  static const std::vector<FlagSpec> kFlags = {
      {"threads", "N", "1",
       "bounds-engine worker threads (0 = all hardware threads); results "
       "are identical for every N"},
      {"no-cache", nullptr, nullptr,
       "disable curve-operation memoization (same results, slower)"},
      {"stats", nullptr, nullptr,
       "print cache/kernel/pool statistics; never changes computed bounds"},
      {"metrics-json", "FILE", nullptr,
       "write aggregated engine metrics as JSON"},
      {"trace-json", "FILE", nullptr,
       "write a Chrome trace_event JSON timeline (chrome://tracing, "
       "Perfetto)"},
      {"trace-jsonl", "FILE", nullptr,
       "write the same span timeline as structured JSONL events"},
  };
  return kFlags;
}

/// The single source of truth for subcommands: usage(), per-command --help,
/// check_flags(), and the cmd_* parsing defaults all read from here.
const std::vector<CommandSpec>& command_table() {
  static const std::vector<CommandSpec> kCommands = {
      {"analyze", "FILE", "response-time bounds for a system", true,
       {
           {"method", "M", "auto",
            "auto|spp-exact|bounds|iterative|holistic"},
           {"priorities", "P", "keep", "keep|pdm|dm|rm"},
           {"verbose", nullptr, nullptr, "print per-hop local bounds"},
       }},
      {"simulate", "FILE", "discrete-event simulation", false,
       {
           {"horizon", "H", "auto", "simulation horizon"},
           {"priorities", "P", "keep", "keep|pdm|dm|rm"},
       }},
      {"validate", "FILE", "analysis vs simulation soundness check", true,
       {
           {"method", "M", "auto",
            "auto|spp-exact|bounds|iterative|holistic"},
           {"priorities", "P", "keep", "keep|pdm|dm|rm"},
       }},
      {"curves", "FILE", "per-subjob service-bound CSVs", true,
       {
           {"out", "DIR", nullptr, "output directory (required)"},
           {"method", "M", "auto",
            "auto|spp-exact|bounds|iterative|holistic"},
           {"priorities", "P", "keep", "keep|pdm|dm|rm"},
       }},
      {"trace", "FILE", "simulation Gantt / instance CSVs", false,
       {
           {"out", "PREFIX", nullptr, "output file prefix (required)"},
           {"horizon", "H", "auto", "simulation horizon"},
           {"priorities", "P", "keep", "keep|pdm|dm|rm"},
       }},
      {"region", "FILE",
       "parametric schedulability region (feasibility boundary)", true,
       {
           {"param", "K", nullptr,
            "exec_scale|burst|rate_scale -- axis-1 parameter (required)"},
           {"target", "JOB", nullptr,
            "job the job-scoped axes transform (required for scope=job)"},
           {"scope", "S", "job", "job|processor|global"},
           {"processor", "N", nullptr, "processor index for scope=processor"},
           {"min", "V", "auto",
            "axis-1 bracket low (exec/rate: 1, burst: 0)"},
           {"max", "V", "auto",
            "axis-1 bracket high (exec/rate: 8, burst: 32)"},
           {"param2", "K", nullptr,
            "axis-2 parameter: makes the query 2-D (axis 1 becomes the "
            "swept grid)"},
           {"scope2", "S", "job", "axis-2 scope"},
           {"processor2", "N", nullptr, "axis-2 processor index"},
           {"min2", "V", "auto", "axis-2 bracket low"},
           {"max2", "V", "auto", "axis-2 bracket high"},
           {"tolerance", "T", "0.001",
            "bisection tolerance (burst snaps to integers)"},
           {"columns", "N", "9", "2-D only: grid points on axis 1"},
           {"format", "F", "table", "table|csv|json"},
           {"out", "FILE", nullptr, "write the report here instead of stdout"},
           {"horizon", "H", "auto", "pinned analysis horizon"},
           {"threshold", "F", "auto",
            "full-analysis fallback threshold (admission_session.hpp)"},
           {"priorities", "P", "keep", "keep|pdm|dm|rm"},
       }},
      {"serve", "FILE", "incremental admission service (JSONL)", true,
       {
           {"requests", "FILE", nullptr, "JSONL request stream (required)"},
           {"out", "FILE", nullptr, "responses here instead of stdout"},
           {"horizon", "H", "auto", "pinned analysis horizon"},
           {"threshold", "F", "auto",
            "full-analysis fallback threshold (admission_session.hpp)"},
           {"priorities", "P", "keep", "keep|pdm|dm|rm"},
           {"parallel-reads", "N", "1",
            "read-batch workers (0 = all hardware threads)"},
           {"max-inflight", "N", "0",
            "shed requests beyond this batch depth (0 = unbounded)"},
           {"request-timeout-ms", "MS", "0",
            "expire requests older than this before execution (0 = never)"},
           {"metrics-prom", "FILE", nullptr,
            "periodic Prometheus text-format metric snapshots"},
           {"prom-interval-ms", "MS", "1000", "snapshot period"},
           {"compat-v1", nullptr, nullptr,
            "emit the legacy v1 response envelope (docs/api.md)"},
           {"tenants-from", "FILE", nullptr,
            "multi-tenant mode: manifest of 'name [system-file]' lines, one "
            "tenant each (docs/api.md)"},
           {"shards", "N", "1",
            "multi-tenant worker shards (0 = hardware; needs --tenants-from)"},
       }},
      {"generate", "", "emit a random job shop", false,
       {
           {"stages", "N", "4", "pipeline stages"},
           {"procs", "N", "2", "processors per stage"},
           {"jobs", "N", "6", "job count"},
           {"util", "U", "0.6", "target utilization"},
           {"seed", "S", "1", "RNG seed"},
           {"aperiodic", nullptr, nullptr,
            "aperiodic arrival pattern (default periodic)"},
           {"scheduler", "S", "SPP", "SPP|SPNP|FCFS"},
           {"out", "FILE", nullptr, "write here instead of stdout"},
       }},
  };
  return kCommands;
}

const CommandSpec* find_command(const std::string& name) {
  for (const CommandSpec& spec : command_table()) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

/// Table-driven default lookup: the cmd_* parsers read literal defaults
/// from the same rows --help prints, so the two cannot drift. Aborts (in
/// debug) on a flag the table doesn't declare a literal default for.
const char* table_default(const char* cmd, const char* flag) {
  const CommandSpec* spec = find_command(cmd);
  assert(spec != nullptr);
  for (const FlagSpec& f : spec->flags) {
    if (std::strcmp(f.name, flag) == 0) {
      assert(f.def != nullptr);
      return f.def;
    }
  }
  assert(false && "flag missing from command table");
  return "";
}

double table_default_double(const char* cmd, const char* flag) {
  return std::atof(table_default(cmd, flag));
}

long long table_default_int(const char* cmd, const char* flag) {
  return std::atoll(table_default(cmd, flag));
}

void print_flag(std::FILE* f, const FlagSpec& flag) {
  std::string head = std::string("--") + flag.name;
  if (flag.arg != nullptr) head += std::string(" ") + flag.arg;
  std::fprintf(f, "  %-24s %s", head.c_str(), flag.help);
  if (flag.def != nullptr) std::fprintf(f, " (default: %s)", flag.def);
  std::fprintf(f, "\n");
}

/// `rta_cli <cmd> --help`: synopsis + every accepted flag, generated from
/// the command table.
int print_command_help(const CommandSpec& spec) {
  std::fprintf(stdout, "usage: rta_cli %s%s%s [flags]\n\n%s\n\nflags:\n",
               spec.name, spec.args[0] != '\0' ? " " : "", spec.args,
               spec.summary);
  for (const FlagSpec& flag : spec.flags) print_flag(stdout, flag);
  if (spec.with_shared) {
    std::fprintf(stdout, "\nshared analysis flags (docs/observability.md):\n");
    for (const FlagSpec& flag : shared_analysis_flags()) {
      print_flag(stdout, flag);
    }
  }
  return 0;
}

int usage() {
  std::fprintf(stderr, "usage: rta_cli <command> [FILE] [flags]\n\n");
  for (const CommandSpec& spec : command_table()) {
    std::fprintf(stderr, "  %-9s %-5s %s\n", spec.name, spec.args,
                 spec.summary);
  }
  std::fprintf(stderr,
               "\nrun 'rta_cli <command> --help' for the flag reference.\n"
               "FILEs ending in .json use the JSON system format "
               "(docs/api.md).\n");
  return 2;
}

/// Reject flags the command table doesn't declare. Prints every offender
/// and the valid set; true when all flags are known.
bool check_flags(const char* cmd, const Options& opts) {
  const CommandSpec* spec = find_command(cmd);
  assert(spec != nullptr);
  std::vector<std::string> allowed = {"help"};
  for (const FlagSpec& flag : spec->flags) allowed.push_back(flag.name);
  if (spec->with_shared) {
    for (const FlagSpec& flag : shared_analysis_flags()) {
      allowed.push_back(flag.name);
    }
  }
  std::sort(allowed.begin(), allowed.end());
  bool ok = true;
  for (const std::string& key : opts.keys()) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      std::fprintf(stderr, "rta_cli %s: unknown flag --%s\n", cmd,
                   key.c_str());
      ok = false;
    }
  }
  if (!ok) {
    std::string list;
    for (const std::string& name : allowed) {
      if (!list.empty()) list += ", ";
      list += "--" + name;
    }
    std::fprintf(stderr, "valid flags for '%s': %s\n", cmd, list.c_str());
  }
  return ok;
}

/// Writes `content` to `path`, replacing any existing file.
bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

/// Sinks and export paths behind --metrics-json / --trace-json /
/// --trace-jsonl / --stats. The registry also backs --stats on its own (no
/// file needed): the analyzers flush their cache/pool/kernel counters into
/// it per analyze().
struct ObsSession {
  std::string metrics_path;
  std::string trace_path;
  std::string trace_jsonl_path;
  bool stats = false;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::Tracer> tracer;

  static ObsSession from_options(const Options& opts) {
    ObsSession s;
    s.metrics_path = opts.get("metrics-json", "");
    s.trace_path = opts.get("trace-json", "");
    s.trace_jsonl_path = opts.get("trace-jsonl", "");
    s.stats = opts.get_bool("stats", false);
    if (!s.metrics_path.empty() || s.stats) {
      s.metrics = std::make_unique<obs::MetricsRegistry>();
    }
    if (!s.trace_path.empty() || !s.trace_jsonl_path.empty()) {
      s.tracer = std::make_unique<obs::Tracer>();
    }
    return s;
  }

  [[nodiscard]] obs::Observer observer() const {
    return obs::Observer{metrics.get(), tracer.get()};
  }

  /// `f` lets serve keep stdout clean for JSONL responses (stats -> stderr).
  void print_stats(std::FILE* f = stdout) const {
    if (!stats || metrics == nullptr) return;
    const obs::MetricsSnapshot snap = metrics->snapshot();
    auto c = [&](const char* name) -> unsigned long long {
      const auto it = snap.counters.find(name);
      return it == snap.counters.end() ? 0ULL : it->second;
    };
    auto g = [&](const char* name) -> double {
      const auto it = snap.gauges.find(name);
      return it == snap.gauges.end() ? 0.0 : it->second;
    };
    std::fprintf(f, "-- stats --\n");
    std::fprintf(
        f,
        "curve cache: conv %llu hits / %llu misses, pinv %llu hits / %llu "
        "misses, collisions %llu, verifies %llu\n",
        c("curve_cache.conv_hits"), c("curve_cache.conv_misses"),
        c("curve_cache.pinv_hits"), c("curve_cache.pinv_misses"),
        c("curve_cache.collisions"), c("curve_cache.verifies"));
    std::fprintf(
        f, "kernel ops: conv %llu, deconv %llu, pointwise %llu, pinv %llu\n",
        c("kernel.conv_ops"), c("kernel.deconv_ops"), c("kernel.pointwise_ops"),
        c("kernel.pinv_ops"));
    if (c("bounds.units") > 0) {
      std::fprintf(f, "wavefront: %llu waves, %llu units\n", c("bounds.waves"),
                   c("bounds.units"));
    }
    if (c("iterative.rounds") > 0) {
      std::fprintf(
          f,
          "iterative: %d iterations, %llu passes run, %llu skipped, %llu job "
          "refinements\n",
          static_cast<int>(g("iterative.iterations")),
          c("iterative.passes_run"), c("iterative.passes_skipped"),
          c("iterative.jobs_refined"));
    }
    if (c("service.admit") + c("service.what_if") + c("service.remove") > 0) {
      std::fprintf(
          f,
          "service: %llu admits, %llu what-ifs, %llu removes; %llu "
          "incremental passes (%llu dirty subjobs), %llu full passes\n",
          c("service.admit"), c("service.what_if"), c("service.remove"),
          c("service.incremental"), c("service.dirty_subjobs"),
          c("service.full"));
    }
    if (c("service.region_probes") > 0) {
      std::fprintf(f, "region: %llu probes\n", c("service.region_probes"));
    }
    std::fprintf(
        f,
        "analysis time by scheduler: spp %llu us, spnp %llu us, fcfs %llu "
        "us\n",
        c("analysis.unit_time_spp_us"), c("analysis.unit_time_spnp_us"),
        c("analysis.unit_time_fcfs_us"));
    std::fprintf(
        f,
        "pool: %llu tasks, %llu indices (%llu abandoned), queue high water "
        "%d, busy %llu us\n",
        c("pool.tasks_executed"), c("pool.indices_executed"),
        c("pool.indices_abandoned"),
        static_cast<int>(g("pool.queue_high_water")),
        c("pool.worker_busy_us"));
  }

  /// Write the requested export files; false (with a message) on failure.
  [[nodiscard]] bool write_exports() const {
    if (metrics != nullptr && !metrics_path.empty() &&
        !write_text_file(metrics_path, metrics->snapshot().to_json())) {
      std::fprintf(stderr, "cannot write '%s'\n", metrics_path.c_str());
      return false;
    }
    if (tracer != nullptr && !trace_path.empty() &&
        !write_text_file(trace_path, tracer->to_chrome_json())) {
      std::fprintf(stderr, "cannot write '%s'\n", trace_path.c_str());
      return false;
    }
    if (tracer != nullptr && !trace_jsonl_path.empty() &&
        !write_text_file(trace_jsonl_path, tracer->to_jsonl())) {
      std::fprintf(stderr, "cannot write '%s'\n", trace_jsonl_path.c_str());
      return false;
    }
    return true;
  }
};

/// Analysis knobs shared by the analyze/validate/curves/region subcommands.
AnalysisConfig analysis_config(const Options& opts) {
  AnalysisConfig cfg;
  cfg.threads = static_cast<int>(opts.get_int("threads", 1));
  cfg.use_curve_cache = !opts.get_bool("no-cache", false);
  return cfg;
}

bool apply_priorities(System& system, const std::string& policy) {
  if (policy == "keep") return true;
  if (policy == "pdm") {
    assign_proportional_deadline_monotonic(system);
    return true;
  }
  if (policy == "dm") {
    assign_deadline_monotonic(system);
    return true;
  }
  if (policy == "rm") {
    assign_rate_monotonic(system);
    return true;
  }
  std::fprintf(stderr, "unknown priority policy '%s'\n", policy.c_str());
  return false;
}

/// Resolve --method through the rta::Analyzer facade (engine dispatch and
/// kAuto selection live there; docs/api.md).
AnalysisResult run_method(const std::string& method, const System& system,
                          const AnalysisConfig& cfg, std::string* used) {
  const std::optional<EngineKind> kind = parse_engine_kind(method);
  if (!kind) {
    AnalysisResult r;
    r.error = "unknown method '" + method + "'";
    return r;
  }
  return Analyzer(cfg).analyze(system, *kind, used);
}

int cmd_analyze(const Options& opts, System system) {
  if (!check_flags("analyze", opts)) return 2;
  if (!apply_priorities(
          system, opts.get("priorities", table_default("analyze", "priorities"))))
    return 2;
  ObsSession session = ObsSession::from_options(opts);
  AnalysisConfig cfg = analysis_config(opts);
  cfg.observer = session.observer();
  std::string used;
  AnalysisResult r;
  {
    obs::Tracer::Span span =
        obs::Tracer::span_if(session.tracer.get(), "cli.analyze");
    r = run_method(opts.get("method", table_default("analyze", "method")),
                   system, cfg, &used);
  }
  if (!r.ok) {
    std::fprintf(stderr, "analysis failed: %s\n", r.error.c_str());
    return 2;
  }
  std::printf("method: %s\n", used.c_str());
  std::printf("%-16s %12s %12s %8s\n", "job", "wcrt", "deadline", "ok?");
  for (int k = 0; k < system.job_count(); ++k) {
    std::printf("%-16s %12.4f %12.4f %8s\n", system.job(k).name.c_str(),
                r.jobs[k].wcrt, system.job(k).deadline,
                r.jobs[k].schedulable ? "yes" : "NO");
    if (opts.get_bool("verbose", false)) {
      for (const SubjobReport& hop : r.jobs[k].hops) {
        std::printf("    hop %d on P%d: local bound %.4f\n", hop.ref.hop,
                    system.subjob(hop.ref).processor, hop.local_bound);
      }
    }
  }
  std::printf("schedulable: %s\n", r.all_schedulable() ? "yes" : "no");
  session.print_stats();
  if (!session.write_exports()) return 2;
  return r.all_schedulable() ? 0 : 1;
}

int cmd_simulate(const Options& opts, System system) {
  if (!check_flags("simulate", opts)) return 2;
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  const Time horizon = opts.get_double(
      "horizon", default_horizon(system, AnalysisConfig{}));
  const SimResult s = simulate(system, horizon);
  std::printf("simulated on [0, %.3f]\n", horizon);
  std::printf("%-16s %10s %14s %10s\n", "job", "instances", "worst resp",
              "deadline");
  bool all_meet = true;
  for (int k = 0; k < system.job_count(); ++k) {
    std::printf("%-16s %10zu %14.4f %10.4f\n", system.job(k).name.c_str(),
                s.traces[k].size(), s.worst_response[k],
                system.job(k).deadline);
    if (!(s.worst_response[k] <= system.job(k).deadline)) all_meet = false;
  }
  std::printf("all instances completed: %s; all deadlines met: %s\n",
              s.all_completed ? "yes" : "no", all_meet ? "yes" : "no");
  return all_meet ? 0 : 1;
}

int cmd_validate(const Options& opts, System system) {
  if (!check_flags("validate", opts)) return 2;
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  ObsSession session = ObsSession::from_options(opts);
  AnalysisConfig cfg = analysis_config(opts);
  cfg.observer = session.observer();
  using Clock = std::chrono::steady_clock;
  std::string used;
  AnalysisResult r;
  const Clock::time_point t0 = Clock::now();
  {
    obs::Tracer::Span span =
        obs::Tracer::span_if(session.tracer.get(), "cli.analyze");
    r = run_method(opts.get("method", table_default("validate", "method")),
                   system, cfg, &used);
  }
  const Clock::time_point t1 = Clock::now();
  if (!r.ok) {
    std::fprintf(stderr, "analysis failed: %s\n", r.error.c_str());
    return 2;
  }
  const Time horizon =
      r.horizon > 0.0 ? r.horizon : default_horizon(system, AnalysisConfig{});
  SimResult s;
  {
    obs::Tracer::Span span =
        obs::Tracer::span_if(session.tracer.get(), "cli.simulate");
    s = simulate(system, horizon);
  }
  const Clock::time_point t2 = Clock::now();
  std::printf("method: %s\n", used.c_str());
  std::printf("%-16s %12s %12s %10s\n", "job", "bound", "simulated",
              "slack");
  bool sound = true;
  for (int k = 0; k < system.job_count(); ++k) {
    const double slack = r.jobs[k].wcrt - s.worst_response[k];
    if (std::isfinite(r.jobs[k].wcrt) && slack < -1e-6) sound = false;
    std::printf("%-16s %12.4f %12.4f %10.4f\n", system.job(k).name.c_str(),
                r.jobs[k].wcrt, s.worst_response[k], slack);
  }
  std::printf("bounds dominate simulation: %s\n", sound ? "yes" : "NO");
  const std::chrono::duration<double, std::milli> analysis_ms = t1 - t0;
  const std::chrono::duration<double, std::milli> sim_ms = t2 - t1;
  std::printf("analysis wall time: %.3f ms; simulation wall time: %.3f ms\n",
              analysis_ms.count(), sim_ms.count());
  session.print_stats();
  if (!session.write_exports()) return 2;
  return sound ? 0 : 1;
}

int cmd_curves(const Options& opts, System system) {
  if (!check_flags("curves", opts)) return 2;
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  const std::string dir = opts.get("out", "");
  if (dir.empty()) {
    std::fprintf(stderr, "curves: --out DIR is required\n");
    return 2;
  }
  ObsSession session = ObsSession::from_options(opts);
  AnalysisConfig cfg = analysis_config(opts);
  cfg.record_curves = true;
  cfg.observer = session.observer();
  std::string used;
  AnalysisResult r;
  {
    obs::Tracer::Span span =
        obs::Tracer::span_if(session.tracer.get(), "cli.analyze");
    r = run_method(opts.get("method", table_default("curves", "method")),
                   system, cfg, &used);
  }
  if (!r.ok) {
    std::fprintf(stderr, "analysis failed: %s\n", r.error.c_str());
    return 2;
  }
  int written = 0;
  for (int k = 0; k < system.job_count(); ++k) {
    for (std::size_t h = 0; h < r.jobs[k].hops.size(); ++h) {
      if (r.jobs[k].hops[h].curves.empty()) continue;
      const SubjobCurves& c = r.jobs[k].hops[h].curves[0];
      const std::string base = dir + "/" + system.job(k).name + "_hop" +
                               std::to_string(h);
      const bool ok = save_curve_csv(c.service_lower, base + "_svc_lower.csv") &&
                      save_curve_csv(c.service_upper, base + "_svc_upper.csv") &&
                      save_curve_csv(c.arrival_upper, base + "_arr_upper.csv") &&
                      save_curve_csv(c.departure_lower, base + "_dep_lower.csv");
      if (!ok) {
        std::fprintf(stderr, "cannot write under '%s'\n", dir.c_str());
        return 2;
      }
      written += 4;
    }
  }
  std::printf("wrote %d curve CSVs under %s (method: %s)\n", written,
              dir.c_str(), used.c_str());
  session.print_stats();
  if (!session.write_exports()) return 2;
  return 0;
}

int cmd_trace(const Options& opts, System system) {
  if (!check_flags("trace", opts)) return 2;
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  const std::string prefix = opts.get("out", "");
  if (prefix.empty()) {
    std::fprintf(stderr, "trace: --out PREFIX is required\n");
    return 2;
  }
  const Time horizon = opts.get_double(
      "horizon", default_horizon(system, AnalysisConfig{}));
  const SimResult s = simulate(system, horizon);
  if (!save_trace_csv(system, s, prefix)) {
    std::fprintf(stderr, "cannot write '%s_*.csv'\n", prefix.c_str());
    return 2;
  }
  std::printf("wrote %s_gantt.csv and %s_instances.csv ([0, %.3f])\n",
              prefix.c_str(), prefix.c_str(), horizon);
  return 0;
}

/// One line of the human-readable region report.
std::string format_boundary(const RegionBoundary& b) {
  char buf[160];
  if (b.empty) {
    std::snprintf(buf, sizeof(buf), "empty (infeasible at %.6g; %d probes)",
                  b.infeasible, b.probes);
  } else if (b.open) {
    std::snprintf(buf, sizeof(buf),
                  "open (feasible through %.6g; %d probes)", b.feasible,
                  b.probes);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "feasible <= %.6g < infeasible <= %.6g (%d probes)",
                  b.feasible, b.infeasible, b.probes);
  }
  return buf;
}

/// One CSV row: empty,open,feasible,infeasible,probes -- feasible /
/// infeasible cells blank when the region is empty / open respectively.
std::string csv_boundary(const RegionBoundary& b) {
  std::ostringstream row;
  row << (b.empty ? 1 : 0) << "," << (b.open ? 1 : 0) << ",";
  char num[40];
  if (!b.empty) {
    std::snprintf(num, sizeof(num), "%.17g", b.feasible);
    row << num;
  }
  row << ",";
  if (!b.open) {
    std::snprintf(num, sizeof(num), "%.17g", b.infeasible);
    row << num;
  }
  row << "," << b.probes;
  return row.str();
}

std::string axis_synopsis(const RegionAxis& axis) {
  std::ostringstream line;
  line << region_param_name(axis.param) << " scope="
       << region_scope_name(axis.scope);
  if (axis.scope == RegionScope::kProcessor) {
    line << " processor=" << axis.processor;
  }
  char range[64];
  std::snprintf(range, sizeof(range), " [%.6g, %.6g]", axis.lo, axis.hi);
  line << range;
  return line.str();
}

int cmd_region(const Options& opts, System system) {
  if (!check_flags("region", opts)) return 2;
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;

  RegionQuery query;
  query.target = opts.get("target", "");
  query.tolerance =
      opts.get_double("tolerance", table_default_double("region", "tolerance"));
  query.columns = static_cast<int>(
      opts.get_int("columns", table_default_int("region", "columns")));

  // Axis flags come in two suffixed families: --param/--scope/... and
  // --param2/--scope2/... for the optional second dimension.
  auto parse_axis = [&](const char* suffix, bool required) -> int {
    const std::string param = opts.get(std::string("param") + suffix, "");
    if (param.empty()) {
      if (!required) return 0;
      std::fprintf(stderr, "region: --param is required\n");
      return -1;
    }
    RegionAxis axis;
    const std::optional<RegionParam> p = parse_region_param(param);
    if (!p) {
      std::fprintf(stderr,
                   "region: unknown param '%s' (exec_scale, burst, "
                   "rate_scale)\n",
                   param.c_str());
      return -1;
    }
    axis.param = *p;
    const std::string scope = opts.get(std::string("scope") + suffix, "job");
    const std::optional<RegionScope> s = parse_region_scope(scope);
    if (!s) {
      std::fprintf(stderr,
                   "region: unknown scope '%s' (job, processor, global)\n",
                   scope.c_str());
      return -1;
    }
    axis.scope = *s;
    axis.processor = static_cast<int>(
        opts.get_int(std::string("processor") + suffix, -1));
    region_default_bracket(axis.param, axis.lo, axis.hi);
    axis.lo = opts.get_double(std::string("min") + suffix, axis.lo);
    axis.hi = opts.get_double(std::string("max") + suffix, axis.hi);
    query.axes.push_back(axis);
    return 1;
  };
  if (parse_axis("", /*required=*/true) < 0) return 2;
  if (parse_axis("2", /*required=*/false) < 0) return 2;

  ObsSession session = ObsSession::from_options(opts);
  service::SessionConfig cfg;
  cfg.analysis = analysis_config(opts);
  cfg.analysis.observer = session.observer();
  // Pinned like serve: every probe evaluates on the same horizon, so the
  // incremental path is always eligible.
  cfg.analysis.horizon =
      opts.get_double("horizon", default_horizon(system, cfg.analysis));
  cfg.full_analysis_threshold =
      opts.get_double("threshold", cfg.full_analysis_threshold);

  RegionAnalyzer analyzer(std::move(system), cfg);
  const RegionResult r = analyzer.run(query);
  if (!r.ok) {
    std::fprintf(stderr, "region: %s\n", r.error.c_str());
    return 2;
  }

  const std::string format =
      opts.get("format", table_default("region", "format"));
  std::ostringstream report;
  bool all_empty = true;
  if (format == "json") {
    report << region_result_value(r).dump() << "\n";
  } else if (format == "csv") {
    if (r.query.axes.size() == 1) {
      report << "empty,open,feasible,infeasible,probes\n"
             << csv_boundary(r.boundary) << "\n";
    } else {
      report << "value,empty,open,feasible,infeasible,probes\n";
      for (const RegionColumn& col : r.columns) {
        char num[40];
        std::snprintf(num, sizeof(num), "%.17g", col.value);
        report << num << "," << csv_boundary(col.boundary) << "\n";
      }
    }
  } else if (format == "table") {
    if (!r.query.target.empty()) report << "target: " << r.query.target << "\n";
    char head[96];
    std::snprintf(head, sizeof(head),
                  "horizon: %.6g; probes: %d (%d incremental)\n", r.horizon,
                  r.probes, r.incremental_probes);
    report << head;
    for (std::size_t i = 0; i < r.query.axes.size(); ++i) {
      report << "axis " << (i + 1) << ": " << axis_synopsis(r.query.axes[i])
             << "\n";
    }
    if (r.query.axes.size() == 1) {
      report << "boundary: " << format_boundary(r.boundary) << "\n";
    } else {
      for (const RegionColumn& col : r.columns) {
        char val[48];
        std::snprintf(val, sizeof(val), "%12.6g  ", col.value);
        report << val << format_boundary(col.boundary) << "\n";
      }
    }
  } else {
    std::fprintf(stderr, "region: unknown format '%s' (table, csv, json)\n",
                 format.c_str());
    return 2;
  }
  if (r.query.axes.size() == 1) {
    all_empty = r.boundary.empty;
  } else {
    for (const RegionColumn& col : r.columns) {
      if (!col.boundary.empty) all_empty = false;
    }
  }

  const std::string out_path = opts.get("out", "");
  if (out_path.empty()) {
    std::fputs(report.str().c_str(), stdout);
  } else if (!write_text_file(out_path, report.str())) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return 2;
  }
  session.print_stats(stderr);
  if (!session.write_exports()) return 2;
  return all_empty ? 1 : 0;
}

bool json_path(const std::string& path);  // defined with the loaders below

/// Parse a tenant manifest ("name [system-file]" per line; '#' comments) and
/// fill `registry`. The base analysis runs once per distinct system source
/// (the positional FILE when the path column is omitted); tenants receive
/// clone_committed() copies, which share the prototype's CurveCache --
/// thread-safe and bit-identical, so 1000 tenants cost one analysis, not
/// 1000. Reports and returns false on any error.
bool build_tenant_registry(const std::string& manifest_path,
                           const Options& opts, const System& base,
                           const service::SessionConfig& base_cfg,
                           service::TenantRegistry& registry) {
  std::ifstream mf(manifest_path);
  if (!mf) {
    std::fprintf(stderr, "cannot read '%s'\n", manifest_path.c_str());
    return false;
  }
  std::map<std::string, std::unique_ptr<service::AdmissionSession>> protos;
  auto proto_for = [&](const std::string& path) -> service::AdmissionSession* {
    const auto it = protos.find(path);
    if (it != protos.end()) return it->second.get();
    System sys;
    service::SessionConfig cfg = base_cfg;
    if (path.empty()) {
      sys = base;
    } else {
      ParsedSystem parsed = json_path(path) ? load_system_json_file(path)
                                            : load_system_file(path);
      if (!parsed.ok) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), parsed.error.c_str());
        return nullptr;
      }
      sys = std::move(parsed.system);
      if (!apply_priorities(sys, opts.get("priorities", "keep"))) {
        return nullptr;
      }
      // Per-source pinned horizon, same rule as the base system's.
      cfg.analysis.horizon =
          opts.get_double("horizon", default_horizon(sys, cfg.analysis));
    }
    auto proto =
        std::make_unique<service::AdmissionSession>(std::move(sys), cfg);
    if (!proto->last().ok) {
      std::fprintf(stderr, "tenant system '%s': base analysis failed: %s\n",
                   path.empty() ? "(base)" : path.c_str(),
                   proto->last().error.c_str());
      return nullptr;
    }
    return protos.emplace(path, std::move(proto)).first->second.get();
  };

  std::string line;
  int line_no = 0;
  while (std::getline(mf, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string name;
    std::string path;
    if (!(fields >> name) || name[0] == '#') continue;
    fields >> path;
    service::AdmissionSession* proto = proto_for(path);
    if (proto == nullptr) return false;
    if (registry.add(name, proto->clone_committed()) < 0) {
      std::fprintf(stderr, "%s:%d: duplicate tenant '%s'\n",
                   manifest_path.c_str(), line_no, name.c_str());
      return false;
    }
  }
  if (registry.count() == 0) {
    std::fprintf(stderr, "%s: no tenants\n", manifest_path.c_str());
    return false;
  }
  return true;
}

int cmd_serve(const Options& opts, System system) {
  if (!check_flags("serve", opts)) return 2;
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  const std::string requests_path = opts.get("requests", "");
  if (requests_path.empty()) {
    std::fprintf(stderr, "serve: --requests FILE is required\n");
    return 2;
  }
  std::ifstream in(requests_path);
  if (!in) {
    std::fprintf(stderr, "cannot read '%s'\n", requests_path.c_str());
    return 2;
  }

  ObsSession session = ObsSession::from_options(opts);
  // --metrics-prom implies a registry: the periodic flusher and the in-band
  // `stats` verb both read from it.
  const std::string prom_path = opts.get("metrics-prom", "");
  if (!prom_path.empty() && session.metrics == nullptr) {
    session.metrics = std::make_unique<obs::MetricsRegistry>();
  }
  service::SessionConfig cfg;
  cfg.analysis = analysis_config(opts);
  cfg.analysis.observer = session.observer();
  // Pin the horizon so edits never shift it and every request can take the
  // incremental path (see admission_session.hpp).
  cfg.analysis.horizon =
      opts.get_double("horizon", default_horizon(system, cfg.analysis));
  cfg.full_analysis_threshold =
      opts.get_double("threshold", cfg.full_analysis_threshold);

  const std::string tenants_path = opts.get("tenants-from", "");
  if (tenants_path.empty() && !opts.get("shards", "").empty()) {
    std::fprintf(stderr, "serve: --shards requires --tenants-from\n");
    return 2;
  }

  std::unique_ptr<service::AdmissionSession> admission;
  service::TenantRegistry registry;
  if (tenants_path.empty()) {
    admission =
        std::make_unique<service::AdmissionSession>(std::move(system), cfg);
  } else if (!build_tenant_registry(tenants_path, opts, system, cfg,
                                    registry)) {
    return 2;
  }

  std::unique_ptr<service::PromFlusher> prom;
  if (!prom_path.empty()) {
    prom = std::make_unique<service::PromFlusher>(
        *session.metrics, prom_path,
        opts.get_double("prom-interval-ms",
                        table_default_double("serve", "prom-interval-ms")));
  }

  // Everything past this point funnels through one exit so the observability
  // exports (--metrics-json/--trace-json/--trace-jsonl/--metrics-prom) are
  // flushed on EVERY path out -- stream write failures and timeout-heavy
  // error runs included, not just the happy path.
  const int stream_rc = [&]() -> int {
    if (admission != nullptr && !admission->last().ok) {
      std::fprintf(stderr, "base system analysis failed: %s\n",
                   admission->last().error.c_str());
      return 2;
    }

    service::StreamOptions stream;
    stream.parallel_reads = static_cast<int>(
        opts.get_int("parallel-reads", stream.parallel_reads));
    stream.max_inflight =
        static_cast<int>(opts.get_int("max-inflight", stream.max_inflight));
    stream.request_timeout_ms =
        opts.get_double("request-timeout-ms", stream.request_timeout_ms);
    stream.envelope = opts.get_bool("compat-v1", false)
                          ? service::Envelope::kV1
                          : service::Envelope::kV2;

    // Responses own stdout (JSONL); the human-facing summary goes to stderr.
    auto run = [&](std::ostream& os) -> int {
      if (admission != nullptr) {
        const service::RunnerStats stats =
            service::run_request_stream(*admission, in, os, stream);
        std::fprintf(stderr,
                     "served %d requests (%d failed, %d threw, %d timed out, "
                     "%d rejected, %d coalesced); %d jobs admitted\n",
                     stats.requests, stats.errors, stats.failures,
                     stats.timeouts, stats.rejected, stats.coalesced,
                     admission->system().job_count());
        return stats.errors == 0 ? 0 : 1;
      }
      // Multi-tenant: read fan-out runs across shards, so each tenant's
      // scheduler stays serial, and --max-inflight becomes the per-tenant
      // routing bound (docs/api.md, sharded_scheduler.hpp).
      service::ShardedOptions sharded;
      sharded.shards = static_cast<int>(opts.get_int("shards", 1));
      sharded.stream = stream;
      sharded.stream.parallel_reads = 1;
      sharded.stream.max_inflight = 0;
      sharded.tenant_max_inflight = stream.max_inflight;
      service::ShardedScheduler sched(registry, os, sharded,
                                      session.observer());
      std::string line;
      while (std::getline(in, line)) sched.submit_line(line);
      sched.finish();
      const service::ShardedStats stats = sched.stats();
      std::fprintf(stderr,
                   "served %d requests for %d tenants on %d shards "
                   "(%d failed, %d threw, %d timed out, %d shed, "
                   "%d coalesced, %llu unrouted, %llu pumps)\n",
                   stats.stream.requests, registry.count(), sched.shards(),
                   stats.stream.errors, stats.stream.failures,
                   stats.stream.timeouts, stats.stream.rejected,
                   stats.stream.coalesced,
                   static_cast<unsigned long long>(stats.unrouted),
                   static_cast<unsigned long long>(stats.pumps));
      return stats.stream.errors == 0 ? 0 : 1;
    };

    const std::string out_path = opts.get("out", "");
    if (out_path.empty()) {
      const int rc = run(std::cout);
      std::cout.flush();
      if (!std::cout) {
        std::fprintf(stderr, "write to stdout failed\n");
        return 2;
      }
      return rc;
    }
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 2;
    }
    const int rc = run(out);
    out.flush();
    if (!out) {
      std::fprintf(stderr, "write to '%s' failed\n", out_path.c_str());
      return 2;
    }
    return rc;
  }();

  session.print_stats(stderr);
  bool exported = session.write_exports();
  if (prom != nullptr && !prom->stop_and_flush()) {
    std::fprintf(stderr, "cannot write '%s'\n", prom_path.c_str());
    exported = false;
  }
  if (stream_rc == 0 && !exported) return 2;
  return stream_rc;
}

/// Whether a system path selects the JSON on-disk format (docs/api.md).
bool json_path(const std::string& path) {
  const std::string ext = ".json";
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

int cmd_generate(const Options& opts) {
  if (!check_flags("generate", opts)) return 2;
  JobShopConfig cfg;
  cfg.stages = opts.get_int("stages", table_default_int("generate", "stages"));
  cfg.processors_per_stage =
      opts.get_int("procs", table_default_int("generate", "procs"));
  cfg.jobs = opts.get_int("jobs", table_default_int("generate", "jobs"));
  cfg.utilization =
      opts.get_double("util", table_default_double("generate", "util"));
  cfg.pattern = opts.get_bool("aperiodic", false)
                    ? ArrivalPattern::kAperiodic
                    : ArrivalPattern::kPeriodic;
  const std::string sched =
      opts.get("scheduler", table_default("generate", "scheduler"));
  if (sched == "SPNP") cfg.scheduler = SchedulerKind::kSpnp;
  else if (sched == "FCFS") cfg.scheduler = SchedulerKind::kFcfs;
  else if (sched != "SPP") {
    std::fprintf(stderr, "unknown scheduler '%s'\n", sched.c_str());
    return 2;
  }
  Rng rng(opts.get_int("seed", table_default_int("generate", "seed")));
  System system = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(system);

  const std::string out = opts.get("out", "");
  if (out.empty()) {
    std::printf("%s", to_system_text(system).c_str());
  } else if (json_path(out) ? !save_system_json_file(system, out)
                            : !save_system_file(system, out)) {
    std::fprintf(stderr, "cannot write '%s'\n", out.c_str());
    return 2;
  } else {
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

/// Load a system in either on-disk format, chosen by extension.
ParsedSystem load_any_system(const std::string& path) {
  return json_path(path) ? load_system_json_file(path)
                         : load_system_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const CommandSpec* spec = find_command(cmd);
  if (spec == nullptr) return usage();
  const Options opts = Options::parse(argc - 1, argv + 1);
  // `rta_cli <cmd> --help` works without a FILE argument.
  if (opts.get_bool("help", false)) return print_command_help(*spec);

  if (cmd == "generate") return cmd_generate(opts);

  if (opts.positional().empty()) return usage();
  const ParsedSystem parsed = load_any_system(opts.positional().front());
  if (!parsed.ok) {
    std::fprintf(stderr, "%s\n", parsed.error.c_str());
    return 2;
  }

  if (cmd == "analyze") return cmd_analyze(opts, parsed.system);
  if (cmd == "simulate") return cmd_simulate(opts, parsed.system);
  if (cmd == "validate") return cmd_validate(opts, parsed.system);
  if (cmd == "curves") return cmd_curves(opts, parsed.system);
  if (cmd == "trace") return cmd_trace(opts, parsed.system);
  if (cmd == "region") return cmd_region(opts, parsed.system);
  if (cmd == "serve") return cmd_serve(opts, parsed.system);
  return usage();
}
