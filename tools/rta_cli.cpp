// rta_cli -- command-line front end to the bursty-rta analyzers.
//
// Subcommands:
//   analyze  <system.rts> [--method auto|spp-exact|bounds|iterative|holistic]
//            [--priorities keep|pdm|dm|rm] [--verbose]
//   simulate <system.rts> [--horizon H] [--priorities ...]
//   validate <system.rts> [--method ...]       analysis vs simulation
//   curves   <system.rts> --out DIR            per-subjob service-bound CSVs
//   generate [--stages N --procs N --jobs N --util U --seed S --aperiodic]
//            [--out FILE]                       emit a random job shop
//
// analyze/validate/curves additionally accept the observability flags
// (docs/observability.md): --metrics-json FILE, --trace-json FILE, --stats.
//
// Exit status: 0 = ok / schedulable, 1 = not schedulable, 2 = usage or
// input error.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "io/curve_csv.hpp"
#include "io/trace_csv.hpp"
#include "io/system_text.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rta/rta.hpp"
#include "util/options.hpp"

namespace {

using namespace rta;

int usage() {
  std::fprintf(
      stderr,
      "usage: rta_cli <analyze|simulate|validate|curves|trace|generate> ...\n"
      "  analyze  FILE [--method auto|spp-exact|bounds|iterative|holistic]\n"
      "                [--priorities keep|pdm|dm|rm] [--verbose]\n"
      "                [--threads N] [--no-cache]\n"
      "  simulate FILE [--horizon H] [--priorities ...]\n"
      "  validate FILE [--method ...] [--priorities ...] [--threads N]\n"
      "           [--no-cache]\n"
      "  curves   FILE --out DIR [--priorities ...] [--threads N] [--no-cache]\n"
      "  trace    FILE --out PREFIX [--horizon H] [--priorities ...]\n"
      "  generate [--stages N --procs N --jobs N --util U --seed S\n"
      "            --aperiodic --scheduler SPP|SPNP|FCFS] [--out FILE]\n"
      "  --threads N: bounds-engine worker threads (1 = serial, 0 = all\n"
      "               hardware threads); results are identical for every N.\n"
      "  --no-cache:  disable curve-operation memoization (same results,\n"
      "               slower fixed-point rounds).\n"
      "  analyze/validate/curves also accept (see docs/observability.md):\n"
      "  --metrics-json FILE: write aggregated engine metrics as JSON.\n"
      "  --trace-json FILE:   write a Chrome trace_event JSON timeline\n"
      "                       (open in chrome://tracing or Perfetto).\n"
      "  --stats:             print cache/kernel/pool statistics; never\n"
      "                       changes the computed bounds.\n");
  return 2;
}

/// Writes `content` to `path`, replacing any existing file.
bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

/// Sinks and export paths behind --metrics-json / --trace-json / --stats.
/// The registry also backs --stats on its own (no file needed): the
/// analyzers flush their cache/pool/kernel counters into it per analyze().
struct ObsSession {
  std::string metrics_path;
  std::string trace_path;
  bool stats = false;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::Tracer> tracer;

  static ObsSession from_options(const Options& opts) {
    ObsSession s;
    s.metrics_path = opts.get("metrics-json", "");
    s.trace_path = opts.get("trace-json", "");
    s.stats = opts.get_bool("stats", false);
    if (!s.metrics_path.empty() || s.stats) {
      s.metrics = std::make_unique<obs::MetricsRegistry>();
    }
    if (!s.trace_path.empty()) s.tracer = std::make_unique<obs::Tracer>();
    return s;
  }

  [[nodiscard]] obs::Observer observer() const {
    return obs::Observer{metrics.get(), tracer.get()};
  }

  void print_stats() const {
    if (!stats || metrics == nullptr) return;
    const obs::MetricsSnapshot snap = metrics->snapshot();
    auto c = [&](const char* name) -> unsigned long long {
      const auto it = snap.counters.find(name);
      return it == snap.counters.end() ? 0ULL : it->second;
    };
    auto g = [&](const char* name) -> double {
      const auto it = snap.gauges.find(name);
      return it == snap.gauges.end() ? 0.0 : it->second;
    };
    std::printf("-- stats --\n");
    std::printf(
        "curve cache: conv %llu hits / %llu misses, pinv %llu hits / %llu "
        "misses, collisions %llu, verifies %llu\n",
        c("curve_cache.conv_hits"), c("curve_cache.conv_misses"),
        c("curve_cache.pinv_hits"), c("curve_cache.pinv_misses"),
        c("curve_cache.collisions"), c("curve_cache.verifies"));
    std::printf(
        "kernel ops: conv %llu, deconv %llu, pointwise %llu, pinv %llu\n",
        c("kernel.conv_ops"), c("kernel.deconv_ops"), c("kernel.pointwise_ops"),
        c("kernel.pinv_ops"));
    if (c("bounds.units") > 0) {
      std::printf("wavefront: %llu waves, %llu units\n", c("bounds.waves"),
                  c("bounds.units"));
    }
    if (c("iterative.rounds") > 0) {
      std::printf(
          "iterative: %d iterations, %llu passes run, %llu skipped, %llu job "
          "refinements\n",
          static_cast<int>(g("iterative.iterations")),
          c("iterative.passes_run"), c("iterative.passes_skipped"),
          c("iterative.jobs_refined"));
    }
    std::printf(
        "analysis time by scheduler: spp %llu us, spnp %llu us, fcfs %llu "
        "us\n",
        c("analysis.unit_time_spp_us"), c("analysis.unit_time_spnp_us"),
        c("analysis.unit_time_fcfs_us"));
    std::printf(
        "pool: %llu tasks, %llu indices (%llu abandoned), queue high water "
        "%d, busy %llu us\n",
        c("pool.tasks_executed"), c("pool.indices_executed"),
        c("pool.indices_abandoned"),
        static_cast<int>(g("pool.queue_high_water")),
        c("pool.worker_busy_us"));
  }

  /// Write the requested export files; false (with a message) on failure.
  [[nodiscard]] bool write_exports() const {
    if (metrics != nullptr && !metrics_path.empty() &&
        !write_text_file(metrics_path, metrics->snapshot().to_json())) {
      std::fprintf(stderr, "cannot write '%s'\n", metrics_path.c_str());
      return false;
    }
    if (tracer != nullptr && !trace_path.empty() &&
        !write_text_file(trace_path, tracer->to_chrome_json())) {
      std::fprintf(stderr, "cannot write '%s'\n", trace_path.c_str());
      return false;
    }
    return true;
  }
};

/// Analysis knobs shared by the analyze/validate/curves subcommands.
AnalysisConfig analysis_config(const Options& opts) {
  AnalysisConfig cfg;
  cfg.threads = static_cast<int>(opts.get_int("threads", 1));
  cfg.use_curve_cache = !opts.get_bool("no-cache", false);
  return cfg;
}

bool apply_priorities(System& system, const std::string& policy) {
  if (policy == "keep") return true;
  if (policy == "pdm") {
    assign_proportional_deadline_monotonic(system);
    return true;
  }
  if (policy == "dm") {
    assign_deadline_monotonic(system);
    return true;
  }
  if (policy == "rm") {
    assign_rate_monotonic(system);
    return true;
  }
  std::fprintf(stderr, "unknown priority policy '%s'\n", policy.c_str());
  return false;
}

/// Pick an analyzer for the system: exact where possible, otherwise bounds,
/// otherwise the iterative fixed point.
AnalysisResult run_method(const std::string& method, const System& system,
                          const AnalysisConfig& cfg, std::string* used) {
  auto all_spp = [&] {
    for (int pr = 0; pr < system.processor_count(); ++pr) {
      if (system.scheduler(pr) != SchedulerKind::kSpp) return false;
    }
    return true;
  };
  if (method == "spp-exact") {
    *used = ExactSppAnalyzer::name();
    return ExactSppAnalyzer(cfg).analyze(system);
  }
  if (method == "bounds") {
    *used = BoundsAnalyzer::name();
    return BoundsAnalyzer(cfg).analyze(system);
  }
  if (method == "iterative") {
    *used = IterativeBoundsAnalyzer::name();
    return IterativeBoundsAnalyzer(cfg).analyze(system);
  }
  if (method == "holistic") {
    *used = HolisticAnalyzer::name();
    return HolisticAnalyzer(cfg).analyze(system);
  }
  if (method == "auto") {
    if (all_spp() && system.dependency_graph_is_acyclic()) {
      *used = ExactSppAnalyzer::name();
      return ExactSppAnalyzer(cfg).analyze(system);
    }
    if (system.dependency_graph_is_acyclic()) {
      *used = BoundsAnalyzer::name();
      return BoundsAnalyzer(cfg).analyze(system);
    }
    *used = IterativeBoundsAnalyzer::name();
    return IterativeBoundsAnalyzer(cfg).analyze(system);
  }
  AnalysisResult r;
  r.error = "unknown method '" + method + "'";
  return r;
}

int cmd_analyze(const Options& opts, System system) {
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  ObsSession session = ObsSession::from_options(opts);
  AnalysisConfig cfg = analysis_config(opts);
  cfg.observer = session.observer();
  std::string used;
  AnalysisResult r;
  {
    obs::Tracer::Span span =
        obs::Tracer::span_if(session.tracer.get(), "cli.analyze");
    r = run_method(opts.get("method", "auto"), system, cfg, &used);
  }
  if (!r.ok) {
    std::fprintf(stderr, "analysis failed: %s\n", r.error.c_str());
    return 2;
  }
  std::printf("method: %s\n", used.c_str());
  std::printf("%-16s %12s %12s %8s\n", "job", "wcrt", "deadline", "ok?");
  for (int k = 0; k < system.job_count(); ++k) {
    std::printf("%-16s %12.4f %12.4f %8s\n", system.job(k).name.c_str(),
                r.jobs[k].wcrt, system.job(k).deadline,
                r.jobs[k].schedulable ? "yes" : "NO");
    if (opts.get_bool("verbose", false)) {
      for (const SubjobReport& hop : r.jobs[k].hops) {
        std::printf("    hop %d on P%d: local bound %.4f\n", hop.ref.hop,
                    system.subjob(hop.ref).processor, hop.local_bound);
      }
    }
  }
  std::printf("schedulable: %s\n", r.all_schedulable() ? "yes" : "no");
  session.print_stats();
  if (!session.write_exports()) return 2;
  return r.all_schedulable() ? 0 : 1;
}

int cmd_simulate(const Options& opts, System system) {
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  const Time horizon = opts.get_double(
      "horizon", default_horizon(system, AnalysisConfig{}));
  const SimResult s = simulate(system, horizon);
  std::printf("simulated on [0, %.3f]\n", horizon);
  std::printf("%-16s %10s %14s %10s\n", "job", "instances", "worst resp",
              "deadline");
  bool all_meet = true;
  for (int k = 0; k < system.job_count(); ++k) {
    std::printf("%-16s %10zu %14.4f %10.4f\n", system.job(k).name.c_str(),
                s.traces[k].size(), s.worst_response[k],
                system.job(k).deadline);
    if (!(s.worst_response[k] <= system.job(k).deadline)) all_meet = false;
  }
  std::printf("all instances completed: %s; all deadlines met: %s\n",
              s.all_completed ? "yes" : "no", all_meet ? "yes" : "no");
  return all_meet ? 0 : 1;
}

int cmd_validate(const Options& opts, System system) {
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  ObsSession session = ObsSession::from_options(opts);
  AnalysisConfig cfg = analysis_config(opts);
  cfg.observer = session.observer();
  using Clock = std::chrono::steady_clock;
  std::string used;
  AnalysisResult r;
  const Clock::time_point t0 = Clock::now();
  {
    obs::Tracer::Span span =
        obs::Tracer::span_if(session.tracer.get(), "cli.analyze");
    r = run_method(opts.get("method", "auto"), system, cfg, &used);
  }
  const Clock::time_point t1 = Clock::now();
  if (!r.ok) {
    std::fprintf(stderr, "analysis failed: %s\n", r.error.c_str());
    return 2;
  }
  const Time horizon =
      r.horizon > 0.0 ? r.horizon : default_horizon(system, AnalysisConfig{});
  SimResult s;
  {
    obs::Tracer::Span span =
        obs::Tracer::span_if(session.tracer.get(), "cli.simulate");
    s = simulate(system, horizon);
  }
  const Clock::time_point t2 = Clock::now();
  std::printf("method: %s\n", used.c_str());
  std::printf("%-16s %12s %12s %10s\n", "job", "bound", "simulated",
              "slack");
  bool sound = true;
  for (int k = 0; k < system.job_count(); ++k) {
    const double slack = r.jobs[k].wcrt - s.worst_response[k];
    if (std::isfinite(r.jobs[k].wcrt) && slack < -1e-6) sound = false;
    std::printf("%-16s %12.4f %12.4f %10.4f\n", system.job(k).name.c_str(),
                r.jobs[k].wcrt, s.worst_response[k], slack);
  }
  std::printf("bounds dominate simulation: %s\n", sound ? "yes" : "NO");
  const std::chrono::duration<double, std::milli> analysis_ms = t1 - t0;
  const std::chrono::duration<double, std::milli> sim_ms = t2 - t1;
  std::printf("analysis wall time: %.3f ms; simulation wall time: %.3f ms\n",
              analysis_ms.count(), sim_ms.count());
  session.print_stats();
  if (!session.write_exports()) return 2;
  return sound ? 0 : 1;
}

int cmd_curves(const Options& opts, System system) {
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  const std::string dir = opts.get("out", "");
  if (dir.empty()) {
    std::fprintf(stderr, "curves: --out DIR is required\n");
    return 2;
  }
  ObsSession session = ObsSession::from_options(opts);
  AnalysisConfig cfg = analysis_config(opts);
  cfg.record_curves = true;
  cfg.observer = session.observer();
  std::string used;
  AnalysisResult r;
  {
    obs::Tracer::Span span =
        obs::Tracer::span_if(session.tracer.get(), "cli.analyze");
    r = run_method(opts.get("method", "auto"), system, cfg, &used);
  }
  if (!r.ok) {
    std::fprintf(stderr, "analysis failed: %s\n", r.error.c_str());
    return 2;
  }
  int written = 0;
  for (int k = 0; k < system.job_count(); ++k) {
    for (std::size_t h = 0; h < r.jobs[k].hops.size(); ++h) {
      if (r.jobs[k].hops[h].curves.empty()) continue;
      const SubjobCurves& c = r.jobs[k].hops[h].curves[0];
      const std::string base = dir + "/" + system.job(k).name + "_hop" +
                               std::to_string(h);
      const bool ok = save_curve_csv(c.service_lower, base + "_svc_lower.csv") &&
                      save_curve_csv(c.service_upper, base + "_svc_upper.csv") &&
                      save_curve_csv(c.arrival_upper, base + "_arr_upper.csv") &&
                      save_curve_csv(c.departure_lower, base + "_dep_lower.csv");
      if (!ok) {
        std::fprintf(stderr, "cannot write under '%s'\n", dir.c_str());
        return 2;
      }
      written += 4;
    }
  }
  std::printf("wrote %d curve CSVs under %s (method: %s)\n", written,
              dir.c_str(), used.c_str());
  session.print_stats();
  if (!session.write_exports()) return 2;
  return 0;
}

int cmd_trace(const Options& opts, System system) {
  if (!apply_priorities(system, opts.get("priorities", "keep"))) return 2;
  const std::string prefix = opts.get("out", "");
  if (prefix.empty()) {
    std::fprintf(stderr, "trace: --out PREFIX is required\n");
    return 2;
  }
  const Time horizon = opts.get_double(
      "horizon", default_horizon(system, AnalysisConfig{}));
  const SimResult s = simulate(system, horizon);
  if (!save_trace_csv(system, s, prefix)) {
    std::fprintf(stderr, "cannot write '%s_*.csv'\n", prefix.c_str());
    return 2;
  }
  std::printf("wrote %s_gantt.csv and %s_instances.csv ([0, %.3f])\n",
              prefix.c_str(), prefix.c_str(), horizon);
  return 0;
}

int cmd_generate(const Options& opts) {
  JobShopConfig cfg;
  cfg.stages = opts.get_int("stages", 4);
  cfg.processors_per_stage = opts.get_int("procs", 2);
  cfg.jobs = opts.get_int("jobs", 6);
  cfg.utilization = opts.get_double("util", 0.6);
  cfg.pattern = opts.get_bool("aperiodic", false)
                    ? ArrivalPattern::kAperiodic
                    : ArrivalPattern::kPeriodic;
  const std::string sched = opts.get("scheduler", "SPP");
  if (sched == "SPNP") cfg.scheduler = SchedulerKind::kSpnp;
  else if (sched == "FCFS") cfg.scheduler = SchedulerKind::kFcfs;
  else if (sched != "SPP") {
    std::fprintf(stderr, "unknown scheduler '%s'\n", sched.c_str());
    return 2;
  }
  Rng rng(opts.get_int("seed", 1));
  System system = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(system);

  const std::string out = opts.get("out", "");
  if (out.empty()) {
    std::printf("%s", to_system_text(system).c_str());
  } else if (!save_system_file(system, out)) {
    std::fprintf(stderr, "cannot write '%s'\n", out.c_str());
    return 2;
  } else {
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Options opts = Options::parse(argc - 1, argv + 1);

  if (cmd == "generate") return cmd_generate(opts);

  if (opts.positional().empty()) return usage();
  const ParsedSystem parsed = load_system_file(opts.positional().front());
  if (!parsed.ok) {
    std::fprintf(stderr, "%s\n", parsed.error.c_str());
    return 2;
  }

  if (cmd == "analyze") return cmd_analyze(opts, parsed.system);
  if (cmd == "simulate") return cmd_simulate(opts, parsed.system);
  if (cmd == "validate") return cmd_validate(opts, parsed.system);
  if (cmd == "curves") return cmd_curves(opts, parsed.system);
  if (cmd == "trace") return cmd_trace(opts, parsed.system);
  return usage();
}
