#include "service/region.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "analysis/bounds.hpp"
#include "analysis/result.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rta {

namespace {

/// Multiply every hop of `job` by the scale factor.
void scale_exec_job(Job& job, double v) {
  for (Subjob& s : job.chain) s.exec_time *= v;
}

/// Compress inter-arrival gaps toward the first release: t' = t1 + (t-t1)/v.
/// v > 1 packs releases tighter (a rate increase); v < 1 stretches them.
void compress_rate(Job& job, double v) {
  const std::vector<Time>& rel = job.arrivals.releases();
  if (rel.size() < 2) return;
  std::vector<Time> out;
  out.reserve(rel.size());
  const Time t1 = rel.front();
  for (const Time t : rel) out.push_back(t1 + (t - t1) / v);
  job.arrivals = ArrivalSequence(std::move(out));
}

/// Inject floor(v) extra releases at the first release instant: the
/// leaky-bucket worst case of `burst` simultaneous arrivals.
void inject_burst(Job& job, double v) {
  const auto b = static_cast<std::size_t>(std::floor(v));
  if (b == 0 || job.arrivals.empty()) return;
  const std::vector<Time>& rel = job.arrivals.releases();
  std::vector<Time> out;
  out.reserve(rel.size() + b);
  out.insert(out.end(), b, rel.front());
  out.insert(out.end(), rel.begin(), rel.end());
  job.arrivals = ArrivalSequence(std::move(out));
}

/// Apply one kJob-scoped axis to the target job.
void transform_target(Job& job, const RegionAxis& axis, double v) {
  switch (axis.param) {
    case RegionParam::kExecScale:
      scale_exec_job(job, v);
      return;
    case RegionParam::kRateScale:
      compress_rate(job, v);
      return;
    case RegionParam::kBurst:
      inject_burst(job, v);
      return;
  }
}

/// Preformatted probe-span args, e.g. {"values": [1.5, 2]}.
std::string probe_args(const std::vector<double>& values) {
  std::string s = "{\"values\": [";
  char buf[40];
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.17g", values[i]);
    if (i > 0) s += ", ";
    s += buf;
  }
  s += "]}";
  return s;
}

}  // namespace

const char* region_param_name(RegionParam param) {
  switch (param) {
    case RegionParam::kExecScale: return "exec_scale";
    case RegionParam::kBurst: return "burst";
    case RegionParam::kRateScale: return "rate_scale";
  }
  return "?";
}

const char* region_scope_name(RegionScope scope) {
  switch (scope) {
    case RegionScope::kJob: return "job";
    case RegionScope::kProcessor: return "processor";
    case RegionScope::kGlobal: return "global";
  }
  return "?";
}

std::optional<RegionParam> parse_region_param(const std::string& name) {
  if (name == "exec_scale") return RegionParam::kExecScale;
  if (name == "burst") return RegionParam::kBurst;
  if (name == "rate_scale") return RegionParam::kRateScale;
  return std::nullopt;
}

std::optional<RegionScope> parse_region_scope(const std::string& name) {
  if (name == "job") return RegionScope::kJob;
  if (name == "processor") return RegionScope::kProcessor;
  if (name == "global") return RegionScope::kGlobal;
  return std::nullopt;
}

void region_default_bracket(RegionParam param, double& lo, double& hi) {
  if (param == RegionParam::kBurst) {
    lo = 0.0;
    hi = 32.0;
  } else {
    lo = 1.0;
    hi = 8.0;
  }
}

/// One column's probe executor: either an incremental session with the
/// target removed (all-kJob queries) or a retained full analyzer over
/// transformed copies of the base system. Single-owner, like the session.
struct RegionAnalyzer::Prober {
  // Incremental path.
  std::unique_ptr<service::AdmissionSession> probe_session;
  Job target;
  // Full-system path.
  const System* base = nullptr;
  std::unique_ptr<BoundsAnalyzer> full;

  const RegionQuery* query = nullptr;
  obs::Counter counter;
  obs::Tracer* tracer = nullptr;
  int probes = 0;
  int incremental = 0;
  std::string error;  ///< first probe failure; poisons the query

  /// Feasibility of the system transformed by `values` (one per axis).
  /// False with `error` set when the probe itself could not run.
  bool probe(const std::vector<double>& values) {
    ++probes;
    counter.inc();
    obs::Tracer::Span span = obs::Tracer::span_if(
        tracer, "region.probe",
        tracer != nullptr ? probe_args(values) : std::string());
    bool feasible = false;
    if (probe_session != nullptr) {
      Job cand = target;
      for (std::size_t i = 0; i < query->axes.size(); ++i) {
        transform_target(cand, query->axes[i], values[i]);
      }
      const service::Decision d = probe_session->what_if(std::move(cand));
      if (!d.ok) {
        error = d.error;
        return false;
      }
      if (d.incremental) ++incremental;
      feasible = d.admitted;
    } else {
      System sys;
      if (!RegionAnalyzer::apply_axes(*base, *query, values, sys, error)) {
        return false;
      }
      const AnalysisResult r = full->analyze(sys);
      if (!r.ok) {
        error = r.error;
        return false;
      }
      feasible = r.all_schedulable();
    }
    span.annotate(feasible ? "{\"feasible\": true}" : "{\"feasible\": false}");
    return feasible;
  }
};

RegionAnalyzer::RegionAnalyzer(System base, service::SessionConfig config) {
  // Pin the horizon so probe edits never shift it and every probe can take
  // the incremental path (admission_session.hpp).
  if (config.analysis.horizon <= 0.0) {
    config.analysis.horizon = default_horizon(base, config.analysis);
  }
  owned_ =
      std::make_unique<service::AdmissionSession>(std::move(base), config);
  session_ = owned_.get();
}

RegionAnalyzer::RegionAnalyzer(const service::AdmissionSession& session)
    : session_(&session) {}

RegionAnalyzer::~RegionAnalyzer() = default;

bool RegionAnalyzer::validate(RegionQuery& query, std::string& error) const {
  const System& sys = session_->system();
  if (query.axes.empty() || query.axes.size() > 2) {
    error = "region needs 1 or 2 axes";
    return false;
  }
  if (!(query.tolerance > 0.0)) query.tolerance = 1e-3;
  bool needs_target = false;
  for (RegionAxis& axis : query.axes) {
    if (!std::isfinite(axis.lo) || !std::isfinite(axis.hi) ||
        !(axis.lo <= axis.hi)) {
      error = "region axis needs finite lo <= hi";
      return false;
    }
    switch (axis.param) {
      case RegionParam::kExecScale:
        if (!(axis.lo > 0.0)) {
          error = "exec_scale lo must be > 0";
          return false;
        }
        break;
      case RegionParam::kRateScale:
        if (!(axis.lo > 0.0)) {
          error = "rate_scale lo must be > 0";
          return false;
        }
        if (axis.scope == RegionScope::kProcessor) {
          error = "rate_scale scope must be job or global";
          return false;
        }
        break;
      case RegionParam::kBurst:
        if (axis.scope != RegionScope::kJob) {
          error = "burst scope must be job";
          return false;
        }
        axis.lo = std::floor(axis.lo);
        axis.hi = std::floor(axis.hi);
        if (axis.lo < 0.0) {
          error = "burst lo must be >= 0";
          return false;
        }
        break;
    }
    if (axis.scope == RegionScope::kProcessor) {
      if (axis.processor < 0 || axis.processor >= sys.processor_count()) {
        error = "region axis processor out of range";
        return false;
      }
    } else {
      axis.processor = -1;
      if (axis.scope == RegionScope::kJob) needs_target = true;
    }
  }
  if (query.axes.size() == 2) {
    if (query.columns < 2 || query.columns > 256) {
      error = "2-D region needs 2 <= columns <= 256";
      return false;
    }
  }
  if (needs_target) {
    if (query.target.empty()) {
      error = "region needs a 'target' job for job-scoped axes";
      return false;
    }
    if (sys.job_index_by_name(query.target) < 0) {
      error = "no job named '" + query.target + "'";
      return false;
    }
  }
  return true;
}

RegionBoundary RegionAnalyzer::bisect(const RegionQuery& query,
                                      std::size_t axis_index,
                                      const std::vector<double>& fixed,
                                      Prober& prober) const {
  const RegionAxis& axis = query.axes[axis_index];
  const bool integral = axis.param == RegionParam::kBurst;
  RegionBoundary b;
  auto probe = [&](double v) {
    std::vector<double> values = fixed;
    values.push_back(v);
    ++b.probes;
    return prober.probe(values);
  };
  // The feasible set is downward-closed (monotone parameters), so two
  // bracket probes classify the region and bisection does the rest. Every
  // reported endpoint carries a certified probe verdict.
  if (!probe(axis.lo)) {
    b.empty = prober.error.empty();
    b.infeasible = axis.lo;
    return b;
  }
  b.feasible = axis.lo;
  if (probe(axis.hi)) {
    b.open = prober.error.empty();
    b.feasible = axis.hi;
    return b;
  }
  if (!prober.error.empty()) return b;
  b.infeasible = axis.hi;
  for (int iter = 0; iter < 64; ++iter) {
    const double gap = b.infeasible - b.feasible;
    if (integral ? gap <= 1.0 : gap <= query.tolerance) break;
    const double mid = integral
                           ? std::floor(0.5 * (b.feasible + b.infeasible))
                           : 0.5 * (b.feasible + b.infeasible);
    if (!(mid > b.feasible) || !(mid < b.infeasible)) break;  // fp exhausted
    if (probe(mid)) {
      b.feasible = mid;
    } else {
      b.infeasible = mid;
    }
    if (!prober.error.empty()) break;
  }
  return b;
}

RegionResult RegionAnalyzer::run(const RegionQuery& query) {
  RegionResult result;
  result.query = query;
  std::string error;
  if (!validate(result.query, error)) {
    result.error = std::move(error);
    return result;
  }
  if (!session_->last().ok) {
    result.error = "base analysis failed: " + session_->last().error;
    return result;
  }
  const RegionQuery& q = result.query;
  const service::SessionConfig& cfg = session_->config();
  obs::Tracer* tracer = cfg.analysis.observer.tracer;
  obs::MetricsRegistry* metrics = cfg.analysis.observer.metrics;
  obs::Counter counter;
  if (metrics != nullptr) counter = metrics->counter("service.region_probes");
  obs::Tracer::Span span = obs::Tracer::span_if(
      tracer, "service.region",
      tracer != nullptr
          ? "{\"axes\": " + std::to_string(q.axes.size()) + "}"
          : std::string());

  result.horizon = session_->last().horizon;

  bool all_job_scoped = true;
  for (const RegionAxis& axis : q.axes) {
    if (axis.scope != RegionScope::kJob) all_job_scoped = false;
  }

  // Incremental probe base: committed clone with the target removed, so a
  // probe is one what_if of the transformed target (dirty closure only) and
  // the bound session stays untouched.
  std::unique_ptr<service::AdmissionSession> probe_base;
  Job target;
  if (all_job_scoped) {
    const int k = session_->system().job_index_by_name(q.target);
    target = session_->system().job(k);
    probe_base = session_->clone_committed();
    const service::Decision removed = probe_base->remove(target.id);
    if (!removed.ok) {
      result.error = removed.error;
      return result;
    }
  }

  auto make_prober = [&](bool clone) {
    Prober p;
    p.query = &q;
    p.counter = counter;
    p.tracer = tracer;
    if (all_job_scoped) {
      p.target = target;
      p.probe_session =
          clone ? probe_base->clone_committed() : std::move(probe_base);
    } else {
      p.base = &session_->system();
      p.full = std::make_unique<BoundsAnalyzer>(cfg.analysis);
    }
    return p;
  };

  if (q.axes.size() == 1) {
    Prober p = make_prober(/*clone=*/false);
    result.boundary = bisect(q, 0, {}, p);
    result.probes = p.probes;
    result.incremental_probes = p.incremental;
    if (!p.error.empty()) {
      result.error = std::move(p.error);
      return result;
    }
    result.ok = true;
    span.annotate("{\"probes\": " + std::to_string(result.probes) + "}");
    return result;
  }

  // 2-D: grid axis 0, bisect axis 1 per column. Columns are independent
  // and each owns its session snapshot, so the pool fan-out is
  // byte-identical to running them in sequence.
  const std::size_t n = static_cast<std::size_t>(q.columns);
  const RegionAxis& a0 = q.axes[0];
  result.columns.resize(n);
  std::vector<Prober> probers;
  probers.reserve(n);
  const double step = (a0.hi - a0.lo) / static_cast<double>(n - 1);
  for (std::size_t c = 0; c < n; ++c) {
    double v = c + 1 == n ? a0.hi : a0.lo + static_cast<double>(c) * step;
    if (a0.param == RegionParam::kBurst) v = std::floor(v);
    result.columns[c].value = v;
    probers.push_back(make_prober(/*clone=*/true));
  }

  const std::size_t workers =
      std::min(analysis_worker_count(cfg.analysis.threads), n);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);
  for_each_index(pool.get(), n, [&](std::size_t c) {
    result.columns[c].boundary =
        bisect(q, 1, {result.columns[c].value}, probers[c]);
  });

  for (Prober& p : probers) {
    result.probes += p.probes;
    result.incremental_probes += p.incremental;
    if (result.error.empty() && !p.error.empty()) result.error = p.error;
  }
  if (!result.error.empty()) return result;
  result.ok = true;
  span.annotate("{\"probes\": " + std::to_string(result.probes) + "}");
  return result;
}

bool RegionAnalyzer::apply_axes(const System& base, const RegionQuery& query,
                                const std::vector<double>& values, System& out,
                                std::string& error) {
  if (values.size() != query.axes.size()) {
    error = "one value per region axis required";
    return false;
  }
  out = base;
  int target = -1;
  for (std::size_t i = 0; i < query.axes.size(); ++i) {
    const RegionAxis& axis = query.axes[i];
    const double v = values[i];
    if (axis.scope == RegionScope::kJob) {
      if (target < 0) {
        target = out.job_index_by_name(query.target);
        if (target < 0) {
          error = "no job named '" + query.target + "'";
          return false;
        }
      }
      transform_target(out.job(target), axis, v);
      continue;
    }
    switch (axis.param) {
      case RegionParam::kExecScale:
        for (int k = 0; k < out.job_count(); ++k) {
          for (Subjob& s : out.job(k).chain) {
            if (axis.scope == RegionScope::kGlobal ||
                s.processor == axis.processor) {
              s.exec_time *= v;
            }
          }
        }
        break;
      case RegionParam::kRateScale:  // kGlobal; validate() rejects the rest
        for (int k = 0; k < out.job_count(); ++k) {
          compress_rate(out.job(k), v);
        }
        break;
      case RegionParam::kBurst:
        error = "burst axis requires job scope";
        return false;
    }
  }
  return true;
}

namespace {

json::Value region_axis_value(const RegionAxis& axis) {
  json::Value v{json::Value::Object{}};
  v.set("param", region_param_name(axis.param));
  v.set("scope", region_scope_name(axis.scope));
  if (axis.scope == RegionScope::kProcessor) v.set("processor", axis.processor);
  v.set("lo", axis.lo);
  v.set("hi", axis.hi);
  return v;
}

json::Value region_boundary_value(const RegionBoundary& b) {
  json::Value v{json::Value::Object{}};
  v.set("empty", b.empty);
  v.set("open", b.open);
  if (!b.empty) v.set("feasible", b.feasible);
  if (!b.open) v.set("infeasible", b.infeasible);
  v.set("probes", b.probes);
  return v;
}

}  // namespace

json::Value region_result_value(const RegionResult& result) {
  json::Value v{json::Value::Object{}};
  if (!result.query.target.empty()) v.set("target", result.query.target);
  v.set("horizon", result.horizon);
  v.set("tolerance", result.query.tolerance);
  json::Value axes{json::Value::Array{}};
  for (const RegionAxis& axis : result.query.axes) {
    axes.as_array().push_back(region_axis_value(axis));
  }
  v.set("axes", std::move(axes));
  v.set("probes", result.probes);
  v.set("incremental_probes", result.incremental_probes);
  if (result.columns.empty()) {
    v.set("boundary", region_boundary_value(result.boundary));
  } else {
    json::Value columns{json::Value::Array{}};
    for (const RegionColumn& col : result.columns) {
      json::Value cv{json::Value::Object{}};
      cv.set("value", col.value);
      cv.set("boundary", region_boundary_value(col.boundary));
      columns.as_array().push_back(std::move(cv));
    }
    v.set("columns", std::move(columns));
  }
  return v;
}

}  // namespace rta
