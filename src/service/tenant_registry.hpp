// Compact tenant-id -> AdmissionSession lookup for the sharded front end.
//
// The registry interns tenant names into dense indices (the sharded
// scheduler's per-tenant state lives in index-aligned vectors) and resolves
// names through a power-of-two open-addressing table of (hash, index) slots
// -- one flat array, linear probing, no per-node allocation. The idiom
// follows the compact route-lookup structures of the related kernel slice
// (net/ipv4/fib_trie.c): the hot path is a cache-friendly scan over a flat
// table, and the full keys live out-of-line, touched only to confirm a
// candidate.
//
// Shard placement is a pure function of the tenant name (shard_of), so a
// tenant lands on the same shard no matter the insertion order, and widths
// 1/2/N route identically per tenant -- which is what keeps the sharded
// scheduler's per-tenant byte-identity contract width-independent.
//
// Concurrency: the registry is built before serving starts and is read-only
// afterwards (the sharded scheduler never adds tenants mid-stream), so
// lookups are safe from any shard worker without locks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "service/admission_session.hpp"

namespace rta::service {

class TenantRegistry {
 public:
  TenantRegistry();
  ~TenantRegistry();

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Intern `name` and take ownership of its session. Returns the new
  /// tenant's dense index, or -1 when the name is already registered (the
  /// session is then discarded).
  int add(std::string name, std::unique_ptr<AdmissionSession> session);

  /// Dense index for `name`, or -1 when absent.
  [[nodiscard]] int find(std::string_view name) const;

  [[nodiscard]] int count() const { return static_cast<int>(names_.size()); }
  [[nodiscard]] const std::string& name(int idx) const { return names_[static_cast<std::size_t>(idx)]; }
  [[nodiscard]] AdmissionSession& session(int idx) const {
    return *sessions_[static_cast<std::size_t>(idx)];
  }

  /// Stable 64-bit hash of a tenant name (FNV-1a mixed through a
  /// splitmix64 finalizer); the single source of truth for placement.
  [[nodiscard]] static std::uint64_t hash(std::string_view name);

  /// Shard placement: hash(name) folded onto [0, shards). Independent of
  /// registration order and of every other tenant.
  [[nodiscard]] static int shard_of(std::string_view name, int shards);

 private:
  struct Slot {
    std::uint64_t hash = 0;
    int index = -1;  ///< -1: empty (the table never deletes)
  };

  void grow();
  [[nodiscard]] std::size_t probe(std::string_view name,
                                  std::uint64_t h) const;

  std::vector<Slot> slots_;  ///< power-of-two open addressing, linear probe
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<AdmissionSession>> sessions_;
};

}  // namespace rta::service
