// Live introspection exporters for the admission service: the `stats` verb
// payload (JSON) and Prometheus text exposition, both rendered from a
// MetricsRegistry snapshot, plus a background flusher that re-renders the
// Prometheus file on a fixed cadence while `serve` streams requests.
//
// Everything in this file is wall-clock territory: latency quantiles come
// from the `_us` histograms, and the Prometheus output stamps the scrape
// time from the system clock so dashboards can spot a stale file. It is
// therefore OUTSIDE the byte-identity contract (like latency_us), and
// src/service/metrics_export.* carries an rta-lint wallclock exemption --
// keep any deterministic response logic out of this file.
#pragma once

#include <string>
#include <thread>

#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace rta::service {

/// The `stats` verb payload: counters and gauges verbatim, every histogram
/// reduced to {count, p50, p90, p99, max} (quantiles via
/// HistogramSnapshot::quantile), and the curve-cache hit rate over both
/// kernel caches (0 when no lookups happened). Schema documented in
/// docs/observability.md.
[[nodiscard]] json::Value stats_payload(const obs::MetricsSnapshot& snap);

/// Prometheus text exposition (text/plain version 0.0.4) of a snapshot.
/// Metric names are prefixed `rta_` with non-alphanumerics mapped to '_';
/// histograms render as classic cumulative `_bucket{le=...}` series plus
/// `_sum`/`_count`. A `rta_scrape_time_seconds` gauge carries the wall
/// clock (unix seconds) at render time.
[[nodiscard]] std::string to_prometheus_text(const obs::MetricsSnapshot& snap);

/// Background thread that writes to_prometheus_text(registry.snapshot()) to
/// `path` every `interval_ms` (atomically: temp file + rename), for as long
/// as the flusher is alive. stop_and_flush() -- also run by the destructor
/// -- joins the thread and writes one final snapshot, so the file is always
/// left complete and current no matter how `serve` exits. A failed write
/// never leaves debris: the `.tmp` staging file is removed on every failure
/// path (including a failed rename), and `path` itself only ever holds a
/// complete exposition.
class PromFlusher {
 public:
  PromFlusher(obs::MetricsRegistry& registry, std::string path,
              double interval_ms);
  ~PromFlusher();

  PromFlusher(const PromFlusher&) = delete;
  PromFlusher& operator=(const PromFlusher&) = delete;

  /// Stop the background thread and write one final snapshot. Idempotent;
  /// returns false when any write (periodic or final) failed.
  bool stop_and_flush();

 private:
  void run();
  bool write_once();

  obs::MetricsRegistry& registry_;
  std::string path_;
  double interval_ms_;

  Mutex mutex_;
  CondVar cv_;
  bool stop_ RTA_GUARDED_BY(mutex_) = false;
  bool write_failed_ RTA_GUARDED_BY(mutex_) = false;

  bool joined_ = false;  ///< owner-thread only
  std::thread thread_;
};

}  // namespace rta::service
