// JSONL request stream for an AdmissionSession: one JSON object per input
// line, one JSON response object per output line (same order).
//
// Requests (docs/api.md has the full reference):
//
//   {"op": "admit",   "job": { ...job object... }}
//   {"op": "what_if", "job": { ...job object... }}
//   {"op": "remove",  "job_id": 3}          // or "name": "telemetry"
//   {"op": "query"}                          // committed-system summary
//
// Job objects follow io/system_json.hpp ("name", "deadline", "chain",
// "arrivals"). When no hop carries an explicit "priority", the service
// assigns lowest priorities (service::assign_lowest_priorities) -- the
// newcomer-must-not-disturb policy.
//
// Responses echo the request index and op, the session Decision fields, and
// the request's wall-clock latency in microseconds. Blank lines and lines
// starting with '#' are skipped. A malformed request produces an
// {"ok": false, "error": ...} response and processing continues.
#pragma once

#include <iosfwd>

#include "service/admission_session.hpp"

namespace rta::service {

struct RunnerStats {
  int requests = 0;  ///< responses emitted (malformed lines included)
  int errors = 0;    ///< responses with ok == false
};

/// Drive `session` with the JSONL stream `in`, writing responses to `out`.
/// Per-request latency is also recorded in the histogram
/// "service.request_us" when the session was configured with a
/// MetricsRegistry.
RunnerStats run_request_stream(AdmissionSession& session, std::istream& in,
                               std::ostream& out);

}  // namespace rta::service
