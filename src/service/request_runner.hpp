// JSONL request stream for an AdmissionSession: one JSON object per input
// line, one JSON response object per output line (same order).
//
// Requests (docs/api.md has the full reference):
//
//   {"op": "admit",   "job": { ...job object... }}
//   {"op": "what_if", "job": { ...job object... }}
//   {"op": "remove",  "job_id": 3}          // or "name": "telemetry"
//   {"op": "query"}                          // committed-system summary
//   {"op": "what_if_region", "target": "telemetry",
//    "axes": [{"param": "exec_scale", "lo": 1, "hi": 8}]}
//                                            // feasibility boundary search
//
// Job objects follow io/system_json.hpp ("name", "deadline", "chain",
// "arrivals"). When no hop carries an explicit "priority", the service
// assigns lowest priorities (service::assign_lowest_priorities) -- the
// newcomer-must-not-disturb policy.
//
// Responses echo the request index and op, the session Decision fields, and
// the request's wall-clock latency in microseconds. Blank lines and lines
// starting with '#' are skipped. A malformed request, an unknown op, or a
// request whose execution throws produces an {"ok": false, "error": ...}
// response for that line and processing continues -- one bad request never
// terminates the stream.
//
// Two drivers share this interface (and the request codec, so their
// responses are byte-identical modulo latency_us):
//   - run_request_stream(session, in, out): the sequential reference
//     runner; every request executes one at a time on the primary session
//     through the general analysis path.
//   - run_request_stream(session, in, out, options): the batching
//     RequestScheduler (request_scheduler.hpp) with read fan-out,
//     backpressure, and per-request timeouts.
#pragma once

#include <iosfwd>

#include "service/admission_session.hpp"

namespace rta::service {

/// Response envelope version (docs/api.md "Request schema v2"). kV2 -- the
/// default -- stamps "schema_version": 2 on every response and reports every
/// failure as one structured {"ok":false,"error":{"code","message",
/// "retryable"}} object. kV1 reproduces the legacy shapes (string "error"
/// plus the ad-hoc "retry"/"timeout" markers, no schema_version) behind
/// `rta_cli serve --compat-v1`.
enum class Envelope { kV1 = 1, kV2 = 2 };

struct RunnerStats {
  int requests = 0;   ///< responses emitted (malformed lines included)
  int errors = 0;     ///< responses with ok == false (supersets the below)
  int failures = 0;   ///< requests whose execution threw (isolated per line)
  int timeouts = 0;   ///< requests expired before execution (scheduler only)
  int rejected = 0;   ///< requests shed by backpressure (scheduler only)
  int coalesced = 0;  ///< identical reads answered from one execution
                      ///< (scheduler only; responses unaffected)
};

/// Scheduler knobs for the 4-argument run_request_stream overload.
struct StreamOptions {
  /// Worker count for read batches: 1 = no fan-out (primary session only),
  /// 0 = hardware concurrency, N = that many workers.
  int parallel_reads = 1;
  /// Upper bound on requests buffered in the current batch; a request
  /// arriving at a full batch is rejected with {"ok":false,"retry":true}.
  /// 0 disables backpressure.
  int max_inflight = 0;
  /// Requests older than this (arrival to execution start) are answered
  /// {"ok":false,"timeout":true} without running. 0 disables timeouts.
  /// Wall-clock based, so responses are not deterministic under timeouts.
  double request_timeout_ms = 0.0;
  /// Response envelope version; both drivers emit the same bytes for a
  /// given version (the byte-identity contract is per-envelope).
  Envelope envelope = Envelope::kV2;
};

/// Drive `session` with the JSONL stream `in`, writing responses to `out`,
/// one request at a time. Per-request latency is recorded in the
/// "service.request_us" histogram when the session was configured with a
/// MetricsRegistry. The three-argument form emits the default (v2)
/// envelope.
RunnerStats run_request_stream(AdmissionSession& session, std::istream& in,
                               std::ostream& out);
RunnerStats run_request_stream(AdmissionSession& session, std::istream& in,
                               std::ostream& out, Envelope envelope);

/// Scheduler-driven variant: classifies requests read-only vs mutating,
/// fans consecutive reads across snapshot replicas, coalesces duplicate
/// reads (singleflight) and consecutive mutations, and applies the
/// backpressure / timeout policy in `options`.
/// Responses are emitted in request order and are byte-identical (modulo
/// latency_us) to the sequential runner for any stream when timeouts and
/// backpressure are disabled. Defined in request_scheduler.cpp.
RunnerStats run_request_stream(AdmissionSession& session, std::istream& in,
                               std::ostream& out,
                               const StreamOptions& options);

}  // namespace rta::service
