// Parametric schedulability regions (ROADMAP item 4).
//
// The paper's admission question is binary: does every job meet its
// deadline under the given arrival envelope? A capacity planner needs the
// *region* instead -- how far can execution times scale, how many extra
// burst releases can land, how much can the arrival rate grow, before some
// job misses. Following the parametric-analysis literature (PAPERS.md) and
// HeRTA's algebraic view of event-bound functions, each supported parameter
// only ever *increases* load: scaling execution times, injecting releases,
// or compressing inter-arrival gaps moves every arrival/demand curve
// pointwise up, and all bound operators in the analysis preserve that
// order. The feasible set is therefore downward-closed in each parameter
// and its boundary is found by monotone binary search -- no parametric
// closed form required.
//
// Probing strategy. A query whose axes are all scoped to one target job is
// answered incrementally: clone the committed AdmissionSession, remove the
// target once, then evaluate every probe as what_if(transformed target) --
// the dirty-closure path recomputes only the subjobs the target can
// influence, not the whole system. Queries with a per-processor or global
// axis transform the full system and re-analyze it per probe (nothing
// smaller is provably clean). 2-D queries sweep a grid of axis-0 values,
// each column binary-searching axis-1; columns are independent and
// deterministic, so fanning them over a ThreadPool against per-column
// session clones returns byte-identical results to sequential probing.
//
// Determinism contract: a probe's verdict equals a fresh
// BoundsAnalyzer(config.analysis) analysis of apply_axes(base, query,
// values) -- the session guarantees bit-identical bounds, and the bounds
// depend only on the job multiset, never on job order. Tests certify
// reported boundaries through exactly that independent path.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "service/admission_session.hpp"
#include "util/time.hpp"

namespace rta {

/// A parameter the region sweeps. Each is monotone: larger value => more
/// load => weakly larger response-time bounds.
enum class RegionParam {
  kExecScale,  ///< multiply execution times by v (v > 0)
  kBurst,      ///< inject floor(v) extra releases at the target's first
               ///< release instant (v >= 0; searched over integers)
  kRateScale,  ///< compress inter-arrival gaps: t' = t1 + (t - t1)/v (v > 0)
};

/// What the parameter applies to.
enum class RegionScope {
  kJob,        ///< the query's target job (default)
  kProcessor,  ///< every subjob on one processor (kExecScale only)
  kGlobal,     ///< every job (kExecScale, kRateScale)
};

[[nodiscard]] const char* region_param_name(RegionParam param);
[[nodiscard]] const char* region_scope_name(RegionScope scope);
[[nodiscard]] std::optional<RegionParam> parse_region_param(
    const std::string& name);
[[nodiscard]] std::optional<RegionScope> parse_region_scope(
    const std::string& name);

/// Default search bracket per parameter (exec_scale / rate_scale: [1, 8];
/// burst: [0, 32]) -- shared by the CLI flag defaults and the service
/// verb's optional "lo"/"hi" fields.
void region_default_bracket(RegionParam param, double& lo, double& hi);

/// One search axis: a parameter, its scope, and the bracket [lo, hi].
struct RegionAxis {
  RegionParam param = RegionParam::kExecScale;
  RegionScope scope = RegionScope::kJob;
  int processor = -1;  ///< kProcessor scope: processor index
  double lo = 1.0;
  double hi = 8.0;
};

struct RegionQuery {
  /// Job name the kJob-scoped axes transform; required iff one exists.
  std::string target;
  std::vector<RegionAxis> axes;  ///< 1 or 2 axes
  /// Absolute bisection tolerance on the axis value (continuous params;
  /// kBurst terminates exactly on integers). <= 0 selects the default.
  double tolerance = 1e-3;
  /// 2-D only: grid points on axes[0] (each one binary-searches axes[1]).
  int columns = 9;
};

/// Boundary of the downward-closed feasible set along one axis. Unless the
/// region is empty (infeasible already at lo) or open (feasible at hi),
/// `feasible` and `infeasible` bracket the true boundary within tolerance,
/// and both carry a certified probe verdict.
struct RegionBoundary {
  bool empty = false;
  bool open = false;
  double feasible = 0.0;    ///< largest probed-feasible value (unless empty)
  double infeasible = 0.0;  ///< smallest probed-infeasible value (unless open)
  int probes = 0;
};

/// One 2-D column: axis-0 fixed at `value`, axis-1 boundary searched.
struct RegionColumn {
  double value = 0.0;
  RegionBoundary boundary;
};

struct RegionResult {
  bool ok = false;
  std::string error;
  RegionQuery query;                  ///< echo of the validated query
  Time horizon = 0.0;                 ///< analysis horizon of the probes
  RegionBoundary boundary;            ///< 1-D queries
  std::vector<RegionColumn> columns;  ///< 2-D queries
  int probes = 0;                     ///< total probe count
  int incremental_probes = 0;         ///< probes on the dirty-closure path
};

class RegionAnalyzer {
 public:
  /// Own the base system: analyzed in full once, then probed per query.
  /// A zero config.analysis.horizon is pinned to the base system's default
  /// horizon so every probe can take the incremental path.
  explicit RegionAnalyzer(System base, service::SessionConfig config = {});

  /// Bind to an existing committed session (the service verb path). The
  /// session is never mutated: probes run on clone_committed() snapshots.
  explicit RegionAnalyzer(const service::AdmissionSession& session);

  ~RegionAnalyzer();
  RegionAnalyzer(const RegionAnalyzer&) = delete;
  RegionAnalyzer& operator=(const RegionAnalyzer&) = delete;

  /// Find the feasibility boundary. Obs (when the session's config carries
  /// an observer): one "service.region" span per query, one "region.probe"
  /// span and a service.region_probes counter tick per probe.
  [[nodiscard]] RegionResult run(const RegionQuery& query);

  /// The transformed system a probe at `values` (one per axis) evaluates.
  /// Exposed so tests and tools can certify a reported boundary with an
  /// independent fresh analysis. False (with `error`) on invalid queries.
  static bool apply_axes(const System& base, const RegionQuery& query,
                         const std::vector<double>& values, System& out,
                         std::string& error);

 private:
  struct Prober;

  [[nodiscard]] bool validate(RegionQuery& query, std::string& error) const;
  RegionBoundary bisect(const RegionQuery& query, std::size_t axis_index,
                        const std::vector<double>& fixed,
                        Prober& prober) const;

  const service::AdmissionSession* session_ = nullptr;  ///< probe source
  std::unique_ptr<service::AdmissionSession> owned_;    ///< when constructed
                                                        ///< from a System
};

/// Serialize a RegionResult into the JSON object the `region` CLI command
/// and the `what_if_region` service verb share (field order fixed; all
/// values deterministic, so responses are byte-identical across drivers).
[[nodiscard]] json::Value region_result_value(const RegionResult& result);

}  // namespace rta
