#include "service/sharded_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "obs/trace_context.hpp"

namespace rta::service {

namespace {

int resolve_shards(int shards) {
  if (shards == 1) return 1;
  if (shards <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return shards;
}

double micros_since(std::chrono::steady_clock::time_point since) {
  const std::chrono::duration<double, std::micro> us =
      std::chrono::steady_clock::now() - since;
  return us.count();
}

void accumulate(RunnerStats& into, const RunnerStats& from) {
  into.requests += from.requests;
  into.errors += from.errors;
  into.failures += from.failures;
  into.timeouts += from.timeouts;
  into.rejected += from.rejected;
  into.coalesced += from.coalesced;
}

}  // namespace

ShardedScheduler::ShardedScheduler(TenantRegistry& registry, std::ostream& out,
                                   ShardedOptions options,
                                   obs::Observer observer)
    : registry_(registry),
      out_(out),
      options_(std::move(options)),
      tracer_(observer.tracer) {
  const int n = resolve_shards(options_.shards);
  shards_.resize(static_cast<std::size_t>(n));
  if (observer.metrics != nullptr) {
    for (int k = 0; k < n; ++k) {
      Shard& sh = shards_[static_cast<std::size_t>(k)];
      const std::string prefix = "service.shard." + std::to_string(k);
      sh.requests_counter = observer.metrics->counter(prefix + ".requests");
      sh.shed_counter = observer.metrics->counter(prefix + ".shed");
      sh.depth_gauge = observer.metrics->gauge(prefix + ".depth");
    }
  }
  tenants_.resize(static_cast<std::size_t>(registry_.count()));
  if (n > 1) pool_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(n - 1));
}

ShardedScheduler::~ShardedScheduler() = default;

ShardedScheduler::Tenant& ShardedScheduler::tenant(int idx) {
  std::unique_ptr<Tenant>& slot = tenants_[static_cast<std::size_t>(idx)];
  if (slot == nullptr) {
    slot = std::make_unique<Tenant>();
    slot->scheduler = std::make_unique<RequestScheduler>(
        registry_.session(idx), slot->buf, options_.stream);
    slot->shard = TenantRegistry::shard_of(registry_.name(idx), shards());
  }
  return *slot;
}

void ShardedScheduler::route_untenanted(const std::string& line,
                                        detail::ParsedRequest req) {
  // The bucket for lines no tenant owns. Same response shape and stamping
  // order as the per-tenant drivers, numbered within this bucket.
  const auto arrival = std::chrono::steady_clock::now();
  ++untenanted_no_;
  json::Value response;
  if (options_.stream.envelope == Envelope::kV2) {
    response.set("schema_version", 2);
  }
  response.set("request", untenanted_no_);
  response.set("line", untenanted_no_);
  if (!req.op.empty()) response.set("op", req.op);
  if (req.has_tenant) response.set("tenant", req.tenant);
  response.set("trace_id", req.trace_id.empty()
                               ? obs::mint_trace_id(untenanted_no_, line)
                               : req.trace_id);
  if (req.cls == detail::RequestClass::kImmediate) {
    detail::set_error(response, options_.stream.envelope, "bad_request",
                      req.error, /*retryable=*/false);
  } else if (!req.has_tenant) {
    detail::set_error(response, options_.stream.envelope, "bad_request",
                      "multi-tenant stream requires a 'tenant' field",
                      /*retryable=*/false);
  } else {
    detail::set_error(response, options_.stream.envelope, "not_found",
                      "no tenant named '" + req.tenant + "'",
                      /*retryable=*/false);
  }
  response.set("latency_us", micros_since(arrival));
  ++unrouted_;
  order_.push_back(-1);
  untenanted_ready_.push_back(response.dump());
}

void ShardedScheduler::submit_line(const std::string& line) {
  if (finished_) {
    throw std::logic_error("ShardedScheduler: submit_line after finish()");
  }
  const std::size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos || line[first] == '#') return;

  detail::ParsedRequest req = detail::parse_request(line);
  const int idx = req.has_tenant ? registry_.find(req.tenant) : -1;
  if (idx < 0) {
    route_untenanted(line, std::move(req));
    emit_ready();
    return;
  }

  Tenant& tn = tenant(idx);
  Shard& sh = shards_[static_cast<std::size_t>(tn.shard)];
  const bool executable = req.cls != detail::RequestClass::kImmediate;

  // Backpressure, decided deterministically from window depths alone. The
  // rejection still flows through the tenant's scheduler so it consumes the
  // tenant's request/line numbering like any accepted line.
  Entry e;
  e.tenant = idx;
  e.line = line;
  if (executable) {
    if (options_.tenant_max_inflight > 0 &&
        tn.queued >= options_.tenant_max_inflight) {
      e.shed = true;
      e.message = "tenant overloaded: tenant_max_inflight exceeded";
    } else if (options_.shard_max_inflight > 0 &&
               sh.depth >= options_.shard_max_inflight) {
      // Fair-share rule: a shard over its bound sheds only tenants at or
      // above an equal split of the bound, so a quiet tenant keeps landing
      // lines while its hot neighbor sheds.
      const int share =
          std::max(1, options_.shard_max_inflight / std::max(1, sh.active));
      if (tn.queued >= share) {
        e.shed = true;
        e.message = "shard overloaded: run queue full";
      }
    }
  }
  e.req = std::move(req);

  if (executable && !e.shed) {
    if (tn.queued == 0) ++sh.active;
    ++tn.queued;
    ++sh.depth;
  }
  if (e.shed) {
    ++sh.shed_total;
    sh.shed_counter.inc();
  }
  if (!tn.touched) {
    tn.touched = true;
    sh.touched.push_back(idx);
  }
  ++sh.requests_total;
  sh.requests_counter.inc();
  order_.push_back(idx);
  sh.queue.push_back(std::move(e));
  ++pending_lines_;
  if (pending_lines_ >= options_.pump_lines) pump();
}

void ShardedScheduler::pump() {
  if (pending_lines_ == 0) return;
  ++pumps_;

  // Drain shards concurrently. The work is partitioned, not locked: a
  // shard's worker touches only that shard's queue and its tenants'
  // sessions/schedulers/buffers, and the pool barrier orders every write
  // before the serial collection below.
  auto run_shard = [&](std::size_t s) {
    Shard& sh = shards_[s];
    if (sh.queue.empty()) return;
    obs::Tracer::Span span = obs::Tracer::span_if(
        tracer_, "service.shard.pump",
        tracer_ != nullptr
            ? "{\"shard\": " + std::to_string(s) +
                  ", \"lines\": " + std::to_string(sh.queue.size()) + "}"
            : std::string());
    for (Entry& e : sh.queue) {
      Tenant& tn = *tenants_[static_cast<std::size_t>(e.tenant)];
      if (e.shed) {
        tn.scheduler->reject_parsed(e.line, std::move(e.req), e.message);
      } else {
        tn.scheduler->submit_parsed(e.line, std::move(e.req));
      }
    }
    for (const int idx : sh.touched) {
      tenants_[static_cast<std::size_t>(idx)]->scheduler->flush();
    }
  };
  if (shards_.size() == 1) {
    run_shard(0);
  } else {
    for_each_index(pool_.get(), shards_.size(), run_shard);
  }

  // Serial epilogue: move flushed responses into the per-tenant ready
  // queues, reset the window accounting, and emit the completed prefix.
  for (Shard& sh : shards_) {
    if (!sh.queue.empty()) sh.depth_gauge.set(static_cast<double>(sh.depth));
    for (const int idx : sh.touched) {
      Tenant& tn = *tenants_[static_cast<std::size_t>(idx)];
      std::string produced = tn.buf.str();
      tn.buf.str(std::string());
      std::size_t begin = 0;
      while (begin < produced.size()) {
        const std::size_t nl = produced.find('\n', begin);
        const std::size_t end = nl == std::string::npos ? produced.size() : nl;
        tn.ready.push_back(produced.substr(begin, end - begin));
        begin = end + 1;
      }
      tn.queued = 0;
      tn.touched = false;
    }
    sh.queue.clear();
    sh.touched.clear();
    sh.depth = 0;
    sh.active = 0;
  }
  pending_lines_ = 0;
  emit_ready();
}

void ShardedScheduler::emit_ready() {
  while (cursor_ < order_.size()) {
    const int bucket = order_[cursor_];
    std::deque<std::string>& ready =
        bucket < 0 ? untenanted_ready_
                   : tenants_[static_cast<std::size_t>(bucket)]->ready;
    if (ready.empty()) return;  // that bucket's batch has not flushed yet
    out_ << ready.front() << "\n";
    ready.pop_front();
    ++cursor_;
  }
}

void ShardedScheduler::finish() {
  if (finished_) return;
  pump();
  for (const std::unique_ptr<Tenant>& tn : tenants_) {
    if (tn != nullptr) tn->scheduler->finish();
  }
  emit_ready();
  out_.flush();
  finished_ = true;
}

ShardedStats ShardedScheduler::stats() const {
  ShardedStats s;
  for (const std::unique_ptr<Tenant>& tn : tenants_) {
    if (tn != nullptr) accumulate(s.stream, tn->scheduler->stats());
  }
  // Every untenanted line answers exactly one error response.
  s.routed = static_cast<std::uint64_t>(s.stream.requests);
  s.stream.requests += static_cast<int>(unrouted_);
  s.stream.errors += static_cast<int>(unrouted_);
  s.unrouted = unrouted_;
  for (const Shard& sh : shards_) s.shed += sh.shed_total;
  s.pumps = pumps_;
  return s;
}

RunnerStats ShardedScheduler::tenant_stats(int idx) const {
  const std::unique_ptr<Tenant>& tn = tenants_[static_cast<std::size_t>(idx)];
  return tn == nullptr ? RunnerStats{} : tn->scheduler->stats();
}

ShardedStats run_sharded_stream(TenantRegistry& registry, std::istream& in,
                                std::ostream& out,
                                const ShardedOptions& options,
                                obs::Observer observer) {
  ShardedScheduler scheduler(registry, out, options, observer);
  std::string line;
  while (std::getline(in, line)) scheduler.submit_line(line);
  scheduler.finish();
  return scheduler.stats();
}

}  // namespace rta::service
