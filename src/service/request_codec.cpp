#include "service/request_codec.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "io/system_json.hpp"
#include "obs/metrics.hpp"
#include "service/metrics_export.hpp"

namespace rta::service::detail {

json::Value time_value(Time t) {
  if (std::isinf(t)) return json::Value("inf");
  return json::Value(t);
}

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Map a session / region error message onto a stable v2 code. The strings
/// are the codec's own deterministic vocabulary, so prefix matching is
/// exact, not heuristic.
const char* classify_error(const std::string& message) {
  if (starts_with(message, "duplicate job id")) return "conflict";
  if (starts_with(message, "no job with id") ||
      starts_with(message, "no job named")) {
    return "not_found";
  }
  return "invalid_argument";
}

/// Parse one axis object of a what_if_region request. Errors mirror the
/// parse_request style ("bad axis: ...") and are deterministic.
bool parse_region_axis(const json::Value& value, RegionAxis& axis,
                       std::string& error) {
  if (!value.is_object()) {
    error = "axis is not an object";
    return false;
  }
  const json::Value* param = value.find("param");
  if (param == nullptr || !param->is_string()) {
    error = "axis needs a string 'param'";
    return false;
  }
  const std::optional<RegionParam> p = parse_region_param(param->as_string());
  if (!p) {
    error = "unknown param '" + param->as_string() +
            "' (exec_scale, burst, rate_scale)";
    return false;
  }
  axis.param = *p;
  axis.scope = RegionScope::kJob;
  if (const json::Value* scope = value.find("scope"); scope != nullptr) {
    if (!scope->is_string()) {
      error = "axis 'scope' must be a string";
      return false;
    }
    const std::optional<RegionScope> s = parse_region_scope(scope->as_string());
    if (!s) {
      error = "unknown scope '" + scope->as_string() +
              "' (job, processor, global)";
      return false;
    }
    axis.scope = *s;
  }
  if (const json::Value* proc = value.find("processor"); proc != nullptr) {
    if (!proc->is_number()) {
      error = "axis 'processor' must be a number";
      return false;
    }
    axis.processor = static_cast<int>(proc->as_number());
  }
  region_default_bracket(axis.param, axis.lo, axis.hi);
  if (const json::Value* lo = value.find("lo"); lo != nullptr) {
    if (!lo->is_number()) {
      error = "axis 'lo' must be a number";
      return false;
    }
    axis.lo = lo->as_number();
  }
  if (const json::Value* hi = value.find("hi"); hi != nullptr) {
    if (!hi->is_number()) {
      error = "axis 'hi' must be a number";
      return false;
    }
    axis.hi = hi->as_number();
  }
  return true;
}

}  // namespace

void set_error(json::Value& response, Envelope envelope, const char* code,
               const std::string& message, bool retryable) {
  response.set("ok", false);
  if (envelope == Envelope::kV1) {
    // The legacy shapes, byte-for-byte: string error plus the ad-hoc
    // markers the v1 clients poll for.
    response.set("error", message);
    if (std::strcmp(code, "overloaded") == 0) response.set("retry", true);
    if (std::strcmp(code, "timeout") == 0) response.set("timeout", true);
    return;
  }
  json::Value err{json::Value::Object{}};
  err.set("code", code);
  err.set("message", message);
  err.set("retryable", retryable);
  response.set("error", std::move(err));
}

ParsedRequest parse_request(const std::string& line) {
  ParsedRequest req;
  auto immediate = [&](std::string message) {
    req.cls = RequestClass::kImmediate;
    req.error = std::move(message);
    return req;
  };

  const json::ParseResult doc = json::parse(line);
  if (!doc.ok) return immediate("bad request json: " + doc.error);
  const json::Value* trace = doc.value.find("trace_id");
  if (trace != nullptr && trace->is_string()) req.trace_id = trace->as_string();
  if (const json::Value* tenant = doc.value.find("tenant"); tenant != nullptr) {
    if (!tenant->is_string() || tenant->as_string().empty()) {
      return immediate("field 'tenant' must be a non-empty string");
    }
    req.tenant = tenant->as_string();
    req.has_tenant = true;
  }
  const json::Value* op = doc.value.find("op");
  if (op == nullptr || !op->is_string()) {
    return immediate("missing string 'op'");
  }
  req.op = op->as_string();

  if (req.op == "admit" || req.op == "what_if") {
    const json::Value* jv = doc.value.find("job");
    std::string error;
    if (jv == nullptr) return immediate("missing 'job'");
    if (!parse_job_json(*jv, req.job, error, &req.saw_priority)) {
      return immediate("bad job: " + error);
    }
    req.cls =
        req.op == "admit" ? RequestClass::kMutate : RequestClass::kRead;
    return req;
  }
  if (req.op == "remove") {
    const json::Value* id = doc.value.find("job_id");
    const json::Value* name = doc.value.find("name");
    if (id != nullptr && id->is_number() && id->as_number() >= 0.0) {
      req.remove_by_id = true;
      req.remove_id = static_cast<std::uint64_t>(id->as_number());
    } else if (name != nullptr && name->is_string()) {
      req.remove_name = name->as_string();
    } else {
      return immediate("remove needs 'job_id' or 'name'");
    }
    req.cls = RequestClass::kMutate;
    return req;
  }
  if (req.op == "what_if_region") {
    if (const json::Value* target = doc.value.find("target");
        target != nullptr && target->is_string()) {
      req.region.target = target->as_string();
    }
    const json::Value* axes = doc.value.find("axes");
    if (axes == nullptr || !axes->is_array() || axes->as_array().empty()) {
      return immediate("what_if_region needs a non-empty 'axes' array");
    }
    std::string error;
    for (const json::Value& av : axes->as_array()) {
      RegionAxis axis;
      if (!parse_region_axis(av, axis, error)) {
        return immediate("bad axis: " + error);
      }
      req.region.axes.push_back(axis);
    }
    if (const json::Value* tol = doc.value.find("tolerance");
        tol != nullptr && tol->is_number()) {
      req.region.tolerance = tol->as_number();
    }
    if (const json::Value* cols = doc.value.find("columns");
        cols != nullptr && cols->is_number()) {
      req.region.columns = static_cast<int>(cols->as_number());
    }
    req.cls = RequestClass::kRead;
    return req;
  }
  if (req.op == "query" || req.op == "stats") {
    req.cls = RequestClass::kRead;
    return req;
  }
  return immediate("unknown op '" + req.op +
                   "' (admit, what_if, what_if_region, remove, query, stats)");
}

void read_decision_into(json::Value& response, const ReadDecision& rd,
                        Envelope envelope) {
  response.set("ok", rd.ok);
  if (!rd.error.empty()) {
    if (envelope == Envelope::kV1) {
      response.set("error", rd.error);
    } else {
      json::Value err{json::Value::Object{}};
      err.set("code", classify_error(rd.error));
      err.set("message", rd.error);
      err.set("retryable", false);
      response.set("error", std::move(err));
    }
  }
  response.set("admitted", rd.admitted);
  response.set("committed", rd.committed);
  response.set("incremental", rd.incremental);
  response.set("job_id", static_cast<double>(rd.job_id));
  response.set("dirty_subjobs", rd.dirty_subjobs);
  response.set("total_subjobs", rd.total_subjobs);
  if (rd.ok) {
    response.set("schedulable", rd.schedulable);
    response.set("max_wcrt", time_value(rd.max_wcrt));
    response.set("horizon", time_value(rd.horizon));
  }
  if (rd.ok && rd.explain.available) {
    json::Value hops{json::Value::Array{}};
    for (const ExplainHop& eh : rd.explain.hops) {
      json::Value hop{json::Value::Object{}};
      hop.set("hop", eh.hop);
      hop.set("processor", eh.processor);
      hop.set("bound", time_value(eh.bound));
      hops.as_array().push_back(std::move(hop));
    }
    json::Value explain{json::Value::Object{}};
    explain.set("wcrt", time_value(rd.explain.wcrt));
    explain.set("deadline", time_value(rd.explain.deadline));
    explain.set("dominant_hop", rd.explain.dominant_hop);
    explain.set("doublings", rd.explain.horizon_doublings);
    explain.set("hops", std::move(hops));
    response.set("explain", std::move(explain));
  }
}

bool execute_request(AdmissionSession& session, const ParsedRequest& req,
                     json::Value& response, bool fast_reads,
                     Envelope envelope) {
  if (req.op == "admit" || req.op == "what_if") {
    Job job = req.job;
    if (!req.saw_priority) assign_lowest_priorities(session.system(), job);
    ReadDecision rd;
    if (req.op == "admit") {
      rd = AdmissionSession::summarize(session.admit(std::move(job)));
    } else if (fast_reads) {
      rd = session.read_what_if(std::move(job));
    } else {
      rd = AdmissionSession::summarize(session.what_if(std::move(job)));
    }
    read_decision_into(response, rd, envelope);
    return rd.ok;
  }
  if (req.op == "remove") {
    std::uint64_t job_id = req.remove_id;
    if (!req.remove_by_id) {
      const int k = session.system().job_index_by_name(req.remove_name);
      if (k < 0) {
        set_error(response, envelope, "not_found",
                  "no job named '" + req.remove_name + "'",
                  /*retryable=*/false);
        return false;
      }
      job_id = session.system().job(k).id;
    }
    const ReadDecision rd = AdmissionSession::summarize(session.remove(job_id));
    read_decision_into(response, rd, envelope);
    return rd.ok;
  }
  if (req.op == "what_if_region") {
    // Read-class sensitivity sweep: probes run on clones of `session`, so
    // the response is a pure function of the committed state and the
    // request -- byte-identical across drivers and widths.
    RegionAnalyzer region(session);
    const RegionResult r = region.run(req.region);
    if (!r.ok) {
      set_error(response, envelope, classify_error(r.error), r.error,
                /*retryable=*/false);
      return false;
    }
    response.set("ok", true);
    response.set("region", region_result_value(r));
    return true;
  }
  if (req.op == "stats") {
    // Live introspection of the shared MetricsRegistry. The payload is
    // wall-clock-derived (latency quantiles, scrape-time counters), so this
    // is the one verb outside the drivers' byte-identity contract -- except
    // for this deterministic error when no registry is attached.
    obs::MetricsRegistry* metrics = session.config().analysis.observer.metrics;
    if (metrics == nullptr) {
      set_error(response, envelope, "unavailable",
                "stats: no metrics registry attached (run serve with "
                "--stats, --metrics-json or --metrics-prom)",
                /*retryable=*/false);
      return false;
    }
    response.set("ok", true);
    const json::Value payload = stats_payload(metrics->snapshot());
    for (const auto& [key, value] : payload.as_object()) {
      response.set(key, value);
    }
    return true;
  }
  // query: committed-system summary straight off the retained analysis.
  const AnalysisResult& r = session.last();
  if (!r.ok) {
    set_error(response, envelope, "internal",
              r.error.empty() ? "base analysis failed" : r.error,
              /*retryable=*/false);
    return false;
  }
  response.set("ok", true);
  response.set("jobs", session.system().job_count());
  response.set("schedulable", r.all_schedulable());
  response.set("max_wcrt", time_value(r.max_wcrt()));
  response.set("horizon", time_value(r.horizon));
  return true;
}

}  // namespace rta::service::detail
