#include "service/request_codec.hpp"

#include <cmath>
#include <utility>

#include "io/system_json.hpp"
#include "obs/metrics.hpp"
#include "service/metrics_export.hpp"

namespace rta::service::detail {

json::Value time_value(Time t) {
  if (std::isinf(t)) return json::Value("inf");
  return json::Value(t);
}

ParsedRequest parse_request(const std::string& line) {
  ParsedRequest req;
  auto immediate = [&](std::string message) {
    req.cls = RequestClass::kImmediate;
    req.error = std::move(message);
    return req;
  };

  const json::ParseResult doc = json::parse(line);
  if (!doc.ok) return immediate("bad request json: " + doc.error);
  const json::Value* trace = doc.value.find("trace_id");
  if (trace != nullptr && trace->is_string()) req.trace_id = trace->as_string();
  const json::Value* op = doc.value.find("op");
  if (op == nullptr || !op->is_string()) {
    return immediate("missing string 'op'");
  }
  req.op = op->as_string();

  if (req.op == "admit" || req.op == "what_if") {
    const json::Value* jv = doc.value.find("job");
    std::string error;
    if (jv == nullptr) return immediate("missing 'job'");
    if (!parse_job_json(*jv, req.job, error, &req.saw_priority)) {
      return immediate("bad job: " + error);
    }
    req.cls =
        req.op == "admit" ? RequestClass::kMutate : RequestClass::kRead;
    return req;
  }
  if (req.op == "remove") {
    const json::Value* id = doc.value.find("job_id");
    const json::Value* name = doc.value.find("name");
    if (id != nullptr && id->is_number() && id->as_number() >= 0.0) {
      req.remove_by_id = true;
      req.remove_id = static_cast<std::uint64_t>(id->as_number());
    } else if (name != nullptr && name->is_string()) {
      req.remove_name = name->as_string();
    } else {
      return immediate("remove needs 'job_id' or 'name'");
    }
    req.cls = RequestClass::kMutate;
    return req;
  }
  if (req.op == "query" || req.op == "stats") {
    req.cls = RequestClass::kRead;
    return req;
  }
  return immediate("unknown op '" + req.op +
                   "' (admit, what_if, remove, query, stats)");
}

void read_decision_into(json::Value& response, const ReadDecision& rd) {
  response.set("ok", rd.ok);
  if (!rd.error.empty()) response.set("error", rd.error);
  response.set("admitted", rd.admitted);
  response.set("committed", rd.committed);
  response.set("incremental", rd.incremental);
  response.set("job_id", static_cast<double>(rd.job_id));
  response.set("dirty_subjobs", rd.dirty_subjobs);
  response.set("total_subjobs", rd.total_subjobs);
  if (rd.ok) {
    response.set("schedulable", rd.schedulable);
    response.set("max_wcrt", time_value(rd.max_wcrt));
    response.set("horizon", time_value(rd.horizon));
  }
  if (rd.ok && rd.explain.available) {
    json::Value hops{json::Value::Array{}};
    for (const ExplainHop& eh : rd.explain.hops) {
      json::Value hop{json::Value::Object{}};
      hop.set("hop", eh.hop);
      hop.set("processor", eh.processor);
      hop.set("bound", time_value(eh.bound));
      hops.as_array().push_back(std::move(hop));
    }
    json::Value explain{json::Value::Object{}};
    explain.set("wcrt", time_value(rd.explain.wcrt));
    explain.set("deadline", time_value(rd.explain.deadline));
    explain.set("dominant_hop", rd.explain.dominant_hop);
    explain.set("doublings", rd.explain.horizon_doublings);
    explain.set("hops", std::move(hops));
    response.set("explain", std::move(explain));
  }
}

bool execute_request(AdmissionSession& session, const ParsedRequest& req,
                     json::Value& response, bool fast_reads) {
  if (req.op == "admit" || req.op == "what_if") {
    Job job = req.job;
    if (!req.saw_priority) assign_lowest_priorities(session.system(), job);
    ReadDecision rd;
    if (req.op == "admit") {
      rd = AdmissionSession::summarize(session.admit(std::move(job)));
    } else if (fast_reads) {
      rd = session.read_what_if(std::move(job));
    } else {
      rd = AdmissionSession::summarize(session.what_if(std::move(job)));
    }
    read_decision_into(response, rd);
    return rd.ok;
  }
  if (req.op == "remove") {
    std::uint64_t job_id = req.remove_id;
    if (!req.remove_by_id) {
      const int k = session.system().job_index_by_name(req.remove_name);
      if (k < 0) {
        response.set("ok", false);
        response.set("error", "no job named '" + req.remove_name + "'");
        return false;
      }
      job_id = session.system().job(k).id;
    }
    const ReadDecision rd = AdmissionSession::summarize(session.remove(job_id));
    read_decision_into(response, rd);
    return rd.ok;
  }
  if (req.op == "stats") {
    // Live introspection of the shared MetricsRegistry. The payload is
    // wall-clock-derived (latency quantiles, scrape-time counters), so this
    // is the one verb outside the drivers' byte-identity contract -- except
    // for this deterministic error when no registry is attached.
    obs::MetricsRegistry* metrics = session.config().analysis.observer.metrics;
    if (metrics == nullptr) {
      response.set("ok", false);
      response.set("error",
                   "stats: no metrics registry attached (run serve with "
                   "--stats, --metrics-json or --metrics-prom)");
      return false;
    }
    response.set("ok", true);
    const json::Value payload = stats_payload(metrics->snapshot());
    for (const auto& [key, value] : payload.as_object()) {
      response.set(key, value);
    }
    return true;
  }
  // query: committed-system summary straight off the retained analysis.
  const AnalysisResult& r = session.last();
  response.set("ok", r.ok);
  if (!r.error.empty()) response.set("error", r.error);
  response.set("jobs", session.system().job_count());
  response.set("schedulable", r.all_schedulable());
  response.set("max_wcrt", time_value(r.max_wcrt()));
  response.set("horizon", time_value(r.horizon));
  return r.ok;
}

}  // namespace rta::service::detail
