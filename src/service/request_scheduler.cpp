#include "service/request_scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/trace_context.hpp"
#include "util/time.hpp"

namespace rta::service {

namespace {

int resolve_read_workers(int parallel_reads) {
  if (parallel_reads == 1) return 1;
  if (parallel_reads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return parallel_reads;
}

double micros_since(std::chrono::steady_clock::time_point since) {
  const std::chrono::duration<double, std::micro> us =
      std::chrono::steady_clock::now() - since;
  return us.count();
}

}  // namespace

RequestScheduler::RequestScheduler(AdmissionSession& session,
                                   std::ostream& out, StreamOptions options)
    : session_(session),
      out_(out),
      options_(options),
      read_workers_(resolve_read_workers(options.parallel_reads)) {
  tracer_ = session.config().analysis.observer.tracer;
  obs::MetricsRegistry* metrics = session.config().analysis.observer.metrics;
  if (metrics != nullptr) {
    const std::vector<double>& buckets =
        obs::MetricsRegistry::latency_buckets_us();
    request_us_ = metrics->histogram("service.request_us", buckets);
    read_us_ = metrics->histogram("service.read_us", buckets);
    mutate_us_ = metrics->histogram("service.mutate_us", buckets);
    queue_depth_ = metrics->gauge("service.queue_depth_max");
    rejected_counter_ = metrics->counter("service.rejected");
    timeout_counter_ = metrics->counter("service.timeouts");
    failure_counter_ = metrics->counter("service.failures");
    coalesced_counter_ = metrics->counter("service.coalesced");
    replica_refresh_counter_ = metrics->counter("service.replica_refresh");
  }
}

RequestScheduler::~RequestScheduler() = default;

void RequestScheduler::complete_at_submit(Pending& p) {
  p.latency_us = micros_since(p.arrival);
  pending_.push_back(std::move(p));
}

RequestScheduler::Pending RequestScheduler::make_pending(
    const std::string& line, detail::ParsedRequest req) {
  ++line_no_;
  Pending p;
  p.arrival = std::chrono::steady_clock::now();
  p.raw = line;
  p.req = std::move(req);
  ++submitted_;
  if (options_.envelope == Envelope::kV2) p.response.set("schema_version", 2);
  p.response.set("request", submitted_);
  p.response.set("line", line_no_);
  if (!p.req.op.empty()) p.response.set("op", p.req.op);
  if (p.req.has_tenant) p.response.set("tenant", p.req.tenant);
  p.trace_id = p.req.trace_id.empty() ? obs::mint_trace_id(line_no_, line)
                                      : p.req.trace_id;
  p.response.set("trace_id", p.trace_id);
  return p;
}

void RequestScheduler::submit_line(const std::string& line) {
  const std::size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos || line[first] == '#') {
    if (finished_) {
      throw std::logic_error("RequestScheduler: submit_line after finish()");
    }
    ++line_no_;
    return;
  }
  submit_parsed(line, detail::parse_request(line));
}

void RequestScheduler::submit_parsed(const std::string& line,
                                     detail::ParsedRequest req) {
  if (finished_) {
    throw std::logic_error("RequestScheduler: submit_line after finish()");
  }
  Pending p = make_pending(line, std::move(req));

  if (p.req.cls == detail::RequestClass::kImmediate) {
    // Parse-time errors never touch a session: buffered in place so the
    // response order matches arrival order, outside the batch depth.
    detail::set_error(p.response, options_.envelope, "bad_request",
                      p.req.error, /*retryable=*/false);
    ++stats_.errors;
    complete_at_submit(p);
    return;
  }

  // Class boundary: reads must observe every earlier mutation and vice
  // versa, so a class change drains the current batch first.
  if (inflight_ > 0 && p.req.cls != batch_class_) flush();

  if (options_.max_inflight > 0 && inflight_ >= options_.max_inflight) {
    detail::set_error(p.response, options_.envelope, "overloaded",
                      "server busy: max_inflight exceeded",
                      /*retryable=*/true);
    ++stats_.errors;
    ++stats_.rejected;
    rejected_counter_.inc();
    complete_at_submit(p);
    return;
  }

  p.executable = true;
  batch_class_ = p.req.cls;
  pending_.push_back(std::move(p));
  ++inflight_;
  queue_depth_.record_max(static_cast<double>(inflight_));
}

void RequestScheduler::reject_parsed(const std::string& line,
                                     detail::ParsedRequest req,
                                     const std::string& message) {
  if (finished_) {
    throw std::logic_error("RequestScheduler: submit_line after finish()");
  }
  Pending p = make_pending(line, std::move(req));
  if (p.req.cls == detail::RequestClass::kImmediate) {
    // A line the reference run would reject at parse time answers its parse
    // error no matter what the front end's queues looked like.
    detail::set_error(p.response, options_.envelope, "bad_request",
                      p.req.error, /*retryable=*/false);
  } else {
    detail::set_error(p.response, options_.envelope, "overloaded", message,
                      /*retryable=*/true);
    ++stats_.rejected;
    rejected_counter_.inc();
  }
  ++stats_.errors;
  complete_at_submit(p);
}

obs::Tracer::Span RequestScheduler::request_span(const Pending& p) {
  // The span tree correlation point: the per-request span carries the
  // trace_id the response echoes, and the queue wait (arrival -> execution
  // start) rides along as args.
  if (tracer_ == nullptr) return {};
  char queue_args[64];
  std::snprintf(queue_args, sizeof(queue_args), ", \"queue_us\": %.3f}",
                micros_since(p.arrival));
  return tracer_->span("service.request",
                       "{\"trace_id\": " + json::Value(p.trace_id).dump() +
                           ", \"op\": \"" + p.req.op + "\"" + queue_args);
}

bool RequestScheduler::expire_if_stale(Pending& p) {
  // Decided at batch-execution start, before any id simulation or
  // execution: an expired request never runs in the sequential reference,
  // so it must neither consume a pre-assigned job id nor touch the session.
  if (options_.request_timeout_ms <= 0.0 ||
      micros_since(p.arrival) <= ms_to_us(options_.request_timeout_ms)) {
    return false;
  }
  obs::Tracer::Span req_span = request_span(p);
  detail::set_error(p.response, options_.envelope, "timeout",
                    "request timed out before execution",
                    /*retryable=*/true);
  p.timed_out = true;
  p.latency_us = micros_since(p.arrival);
  req_span.annotate("{\"timeout\": true}");
  return true;
}

void RequestScheduler::execute_one(AdmissionSession& session, Pending& p) {
  obs::Tracer::Span req_span = request_span(p);
  try {
    obs::Tracer::Span class_span = obs::Tracer::span_if(
        tracer_, p.req.cls == detail::RequestClass::kMutate ? "service.mutate"
                                                            : "service.read");
    p.ok = detail::execute_request(session, p.req, p.response,
                                   /*fast_reads=*/true, options_.envelope);
  } catch (const std::exception& e) {
    detail::set_error(p.response, options_.envelope, "internal",
                      std::string("request failed: ") + e.what(),
                      /*retryable=*/false);
    p.failed = true;
  } catch (...) {
    detail::set_error(p.response, options_.envelope, "internal",
                      "request failed: unknown exception",
                      /*retryable=*/false);
    p.failed = true;
  }
  p.latency_us = micros_since(p.arrival);
}

void RequestScheduler::execute_mutations() {
  for (Pending& p : pending_) {
    if (p.executable && !expire_if_stale(p)) execute_one(session_, p);
  }
  // The committed state moved; snapshots answer from the past now.
  ++commit_epoch_;
}

void RequestScheduler::execute_reads() {
  // Simulate the stable-id counter over the batch in request order: a
  // sequential what_if consumes an id (System::add_job bumps the counter;
  // the rollback does not rewind it), so replicas must receive
  // pre-assigned ids and the primary must land on the same counter value.
  // Expired entries are excluded first (expire_if_stale): they never
  // execute, so they never consume an id.
  std::uint64_t cur = session_.peek_next_job_id();
  std::vector<std::size_t> exec;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    Pending& p = pending_[i];
    if (!p.executable) continue;
    if (expire_if_stale(p)) continue;
    exec.push_back(i);
    if (p.req.op != "what_if") continue;  // query consumes nothing
    Job& job = p.req.job;
    if (job.id == 0) {
      job.id = cur++;
      p.auto_id = true;
    } else if (session_.system().job_index_by_id(job.id) < 0) {
      cur = std::max(cur, job.id + 1);
    }
    // A duplicate explicit id is rejected before add_job: consumes nothing.
  }

  // Coalesce byte-identical request lines: against one committed snapshot
  // they are repeated pure-function calls, so only the first instance runs
  // and the rest copy its answer (id-counter consumption was already
  // simulated per instance above). Disabled under timeouts, where each
  // instance expires on its own wall clock.
  std::vector<std::size_t> primaries;
  std::vector<std::pair<std::size_t, std::size_t>> duplicates;  // dup, prim
  if (options_.request_timeout_ms <= 0.0) {
    std::unordered_map<std::string, std::size_t> first_instance;
    first_instance.reserve(exec.size());
    for (std::size_t idx : exec) {
      const auto [it, inserted] =
          first_instance.emplace(pending_[idx].raw, idx);
      if (inserted) {
        primaries.push_back(idx);
      } else {
        duplicates.emplace_back(idx, it->second);
      }
    }
  } else {
    primaries = exec;
  }

  const std::size_t n = primaries.size();
  const std::size_t chunks =
      std::min<std::size_t>(static_cast<std::size_t>(read_workers_), n);
  if (chunks > 1) {
    if (replica_epoch_ != commit_epoch_) {
      obs::Tracer::Span clone_span = obs::Tracer::span_if(
          tracer_, "service.snapshot_clone",
          "{\"replicas\": " + std::to_string(read_workers_ - 1) + "}");
      replicas_.clear();
      for (int r = 0; r + 1 < read_workers_; ++r) {
        replicas_.push_back(session_.clone_committed());
      }
      replica_epoch_ = commit_epoch_;
      replica_refresh_counter_.inc();
    }
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(
          static_cast<std::size_t>(read_workers_ - 1));
    }
  }

  const std::size_t per = (n + chunks - 1) / chunks;
  auto run_chunk = [&](std::size_t c) {
    AdmissionSession& session = c == 0 ? session_ : *replicas_[c - 1];
    const std::size_t begin = c * per;
    const std::size_t end = std::min(n, begin + per);
    for (std::size_t j = begin; j < end; ++j) {
      execute_one(session, pending_[primaries[j]]);
    }
  };
  if (chunks <= 1) {
    if (n > 0) run_chunk(0);
  } else {
    for_each_index(pool_.get(), chunks, run_chunk);
  }

  // Resolve duplicates from their primaries, re-stamping the per-request
  // echo fields. A simulated (auto) job id is the only decision field that
  // differs between identical lines; explicit-id instances answer
  // identically, patch and all.
  for (const auto& [dup, prim] : duplicates) {
    Pending& d = pending_[dup];
    const Pending& p = pending_[prim];
    const double request_no = d.response.find("request")->as_number();
    const double input_line = d.response.find("line")->as_number();
    d.response = p.response;
    d.response.set("request", request_no);
    d.response.set("line", input_line);
    d.response.set("trace_id", d.trace_id);
    if (d.auto_id && d.response.find("job_id") != nullptr) {
      d.response.set("job_id", static_cast<double>(d.req.job.id));
    }
    d.ok = p.ok;
    d.failed = p.failed;
    d.latency_us = micros_since(d.arrival);
    ++stats_.coalesced;
    coalesced_counter_.inc();
    obs::Tracer::instant_if(
        tracer_, "service.coalesced",
        tracer_ != nullptr
            ? "{\"trace_id\": " + json::Value(d.trace_id).dump() +
                  ", \"primary\": " + json::Value(p.trace_id).dump() + "}"
            : std::string());
  }

  session_.set_next_job_id(cur);
}

void RequestScheduler::flush() {
  if (inflight_ > 0) {
    if (batch_class_ == detail::RequestClass::kMutate) {
      execute_mutations();
    } else {
      execute_reads();
    }
  }
  for (Pending& p : pending_) {
    if (p.executable) {
      if (!p.ok) ++stats_.errors;
      if (p.failed) {
        ++stats_.failures;
        failure_counter_.inc();
      }
      if (p.timed_out) {
        ++stats_.timeouts;
        timeout_counter_.inc();
      }
      const obs::Histogram& per_class =
          batch_class_ == detail::RequestClass::kMutate ? mutate_us_
                                                        : read_us_;
      per_class.observe(p.latency_us);
    }
    request_us_.observe(p.latency_us);
    p.response.set("latency_us", p.latency_us);
    out_ << p.response.dump() << "\n";
    ++stats_.requests;
  }
  pending_.clear();
  inflight_ = 0;
}

void RequestScheduler::finish() {
  if (finished_) return;
  flush();
  out_.flush();
  finished_ = true;
}

RunnerStats run_request_stream(AdmissionSession& session, std::istream& in,
                               std::ostream& out,
                               const StreamOptions& options) {
  RequestScheduler scheduler(session, out, options);
  std::string line;
  while (std::getline(in, line)) scheduler.submit_line(line);
  scheduler.finish();
  return scheduler.stats();
}

}  // namespace rta::service
