// Sharded multi-tenant front end for the JSONL admission service.
//
// A TenantRegistry holds thousands of independent AdmissionSessions; the
// ShardedScheduler hashes each tenant onto one of N worker shards
// (TenantRegistry::shard_of, a pure function of the tenant name) and gives
// every tenant its own RequestScheduler -- so each tenant keeps the full
// single-session machinery: read/mutate classification with class barriers,
// singleflight coalescing, epoch-refreshed snapshot replicas, and the
// simulated stable-id counter.
//
// Data flow: submit_line parses the line once, routes it by its "tenant"
// field, and appends it to its shard's run queue. When the queued lines
// reach pump_lines (or at finish), a pump drains every shard concurrently
// -- shard workers run disjoint tenant sets, so the fan-out is partitioned,
// not locked -- feeding each line to its tenant's scheduler and flushing
// the touched tenants. Responses land in per-tenant buffers and are then
// interleaved back into GLOBAL ARRIVAL ORDER on the calling thread, so the
// output stream is deterministic at every shard width.
//
// Numbering contract: a response's "request"/"line" fields count within its
// tenant's own stream, exactly as if that tenant's lines were served alone.
// That is the determinism contract: for every tenant, the responses in a
// multi-tenant run are byte-identical (modulo latency_us) to running just
// that tenant's lines through the sequential run_request_stream against
// that tenant's session -- at any shard width, any pump size, and any
// interleaving with other tenants. Lines that cannot be routed (missing or
// unknown tenant, unparseable JSON) are answered from an "untenanted"
// bucket with its own numbering: bad_request for missing/invalid fields,
// not_found (v2, non-retryable) for an unknown tenant.
//
// Backpressure is decided at routing time, deterministically, from queue
// depths alone -- never from wall-clock -- and sheds with the v2
// `overloaded` retryable error through the tenant's own scheduler (so the
// rejection consumes the tenant's numbering like any other line):
//   - tenant_max_inflight bounds one tenant's executable lines per pump
//     window: a hot tenant starts shedding while its siblings, below their
//     own bounds, are untouched.
//   - shard_max_inflight bounds a shard's run queue. When the shard is
//     over its bound, only tenants at or above their fair share
//     (shard_max_inflight / active tenants in the window) are shed, so a
//     hot tenant cannot starve a quiet one that shares its shard.
//
// Observability: per-shard counters service.shard.<k>.requests /
// service.shard.<k>.shed and gauge service.shard.<k>.depth (executable
// lines drained by the last pump), plus a shard-tagged service.shard.pump
// span per drained shard per pump (docs/observability.md).
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "service/request_scheduler.hpp"
#include "service/tenant_registry.hpp"
#include "util/thread_pool.hpp"

namespace rta::service {

struct ShardedOptions {
  /// Worker shards (0 = hardware concurrency). Shard placement is
  /// per-tenant and width-independent; the width only sets how many tenant
  /// sets drain concurrently.
  int shards = 1;

  /// Per-tenant scheduler knobs (envelope, read fan-out, timeouts). The
  /// scheduler-level max_inflight composes with the routing-level bounds
  /// below; multi-tenant callers normally leave it 0 and bound at routing
  /// time instead.
  StreamOptions stream;

  /// Executable lines one tenant may queue per pump window before it sheds
  /// (0 = unbounded).
  int tenant_max_inflight = 0;

  /// Executable lines one shard may queue per pump window; over the bound,
  /// only tenants at/above their fair share shed (0 = unbounded).
  int shard_max_inflight = 0;

  /// Queued lines (across all shards) that trigger a pump.
  int pump_lines = 256;
};

struct ShardedStats {
  RunnerStats stream;           ///< aggregated over tenants + untenanted
  std::uint64_t routed = 0;     ///< lines routed to a tenant
  std::uint64_t unrouted = 0;   ///< missing/unknown tenant or unparseable
  std::uint64_t shed = 0;       ///< routing-level backpressure rejections
  std::uint64_t pumps = 0;
};

class ShardedScheduler {
 public:
  /// Binds to a fully-built registry (read-only while serving) and `out`.
  /// `observer` carries the shard-level metrics/tracer; per-tenant service
  /// metrics ride on each session's own observer as usual.
  ShardedScheduler(TenantRegistry& registry, std::ostream& out,
                   ShardedOptions options, obs::Observer observer = {});
  ~ShardedScheduler();

  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;

  /// Feed one input line (blank and '#' lines are skipped). May trigger a
  /// pump and emit completed responses. Throws std::logic_error after
  /// finish().
  void submit_line(const std::string& line);

  /// Drain every shard, seal every tenant scheduler, emit every buffered
  /// response, and flush the output stream. Idempotent.
  void finish();

  /// Aggregate view (recomputed per call; cheap -- one pass over tenants).
  [[nodiscard]] ShardedStats stats() const;

  /// Resolved shard count (option 0 -> hardware).
  [[nodiscard]] int shards() const { return static_cast<int>(shards_.size()); }

  /// Per-tenant stream stats; zeros for a tenant that never sent a line.
  [[nodiscard]] RunnerStats tenant_stats(int idx) const;

 private:
  struct Tenant {
    std::ostringstream buf;  ///< the tenant scheduler's response sink
    std::unique_ptr<RequestScheduler> scheduler;
    std::deque<std::string> ready;  ///< flushed responses awaiting emission
    int shard = 0;
    int queued = 0;        ///< executable lines queued this pump window
    bool touched = false;  ///< routed at least one line this window
  };

  struct Entry {
    int tenant = -1;
    bool shed = false;
    std::string line;
    std::string message;  ///< overloaded detail when shed
    detail::ParsedRequest req;
  };

  struct Shard {
    std::vector<Entry> queue;
    std::vector<int> touched;  ///< tenants with lines this window, in order
    int depth = 0;             ///< executable lines queued this window
    int active = 0;            ///< tenants contributing to depth
    std::uint64_t requests_total = 0;
    std::uint64_t shed_total = 0;
    obs::Counter requests_counter;
    obs::Counter shed_counter;
    obs::Gauge depth_gauge;
  };

  Tenant& tenant(int idx);
  void route_untenanted(const std::string& line, detail::ParsedRequest req);
  void pump();
  void emit_ready();

  TenantRegistry& registry_;
  std::ostream& out_;
  ShardedOptions options_;
  obs::Tracer* tracer_ = nullptr;

  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<Tenant>> tenants_;  ///< registry-index aligned
  std::unique_ptr<ThreadPool> pool_;  ///< shards-1 workers; caller is one

  /// Response interleaving: bucket per routed line in arrival order
  /// (tenant index, or -1 for the untenanted bucket) and the emission
  /// cursor into it.
  std::vector<int> order_;
  std::size_t cursor_ = 0;
  std::deque<std::string> untenanted_ready_;
  int untenanted_no_ = 0;

  int pending_lines_ = 0;  ///< queued since the last pump, across shards
  bool finished_ = false;

  std::uint64_t unrouted_ = 0;
  std::uint64_t pumps_ = 0;
};

/// Drive a full stream through a ShardedScheduler (the multi-tenant
/// analogue of run_request_stream).
ShardedStats run_sharded_stream(TenantRegistry& registry, std::istream& in,
                                std::ostream& out,
                                const ShardedOptions& options,
                                obs::Observer observer = {});

}  // namespace rta::service
