// Shared request parsing / response serialization for the JSONL service.
//
// Both request-stream drivers -- the sequential reference runner
// (request_runner.cpp) and the batching RequestScheduler
// (request_scheduler.cpp) -- go through these helpers, so a given request
// produces byte-identical response objects (latency fields aside) no matter
// which driver, and at any parallelism. That single emission path is what
// the scheduler's differential test leans on.
#pragma once

#include <cstdint>
#include <string>

#include "service/region.hpp"
#include "io/json.hpp"
#include "service/admission_session.hpp"
#include "service/request_runner.hpp"

namespace rta::service::detail {

/// Concurrency class of a request: reads are side-effect-free and may run
/// against a committed-state snapshot; mutations must serialize on the
/// primary session; immediates carry a parse-time error and never touch a
/// session at all.
enum class RequestClass {
  kImmediate,
  kRead,    ///< what_if, what_if_region, query, stats
  kMutate,  ///< admit, remove
};

/// One parsed JSONL request line, session-independent.
struct ParsedRequest {
  RequestClass cls = RequestClass::kImmediate;
  std::string op;     ///< empty when the line had no usable string "op"
  std::string error;  ///< set iff cls == kImmediate

  /// Propagated trace context: a non-empty string "trace_id" field on the
  /// request, echoed verbatim into the response. Empty when absent (or the
  /// line failed to parse); the driver then mints one deterministically
  /// (obs/trace_context.hpp), so minted ids are byte-identical across the
  /// sequential runner and the scheduler.
  std::string trace_id;

  /// Optional routing annotation: a non-empty string "tenant" field on the
  /// request, echoed verbatim into the response by every driver. The
  /// single-session drivers treat it as an annotation only; the sharded
  /// front end (sharded_scheduler.hpp) routes on it. A present-but-invalid
  /// tenant (non-string or empty) is a parse-time error, so both drivers
  /// reject it identically.
  std::string tenant;
  bool has_tenant = false;

  // admit / what_if payload.
  Job job;
  bool saw_priority = false;

  // remove payload: by stable id, or by name (resolved against the session
  // at execution time, like the sequential runner always has).
  bool remove_by_id = false;
  std::uint64_t remove_id = 0;
  std::string remove_name;

  // what_if_region payload (service/region.hpp); range/target validation
  // happens at execution time against the committed system.
  RegionQuery region;
};

/// Parse and classify one request line. Errors detectable without a session
/// (malformed JSON, missing/unknown op, bad job object) come back as
/// kImmediate with the exact error text the sequential runner emits.
[[nodiscard]] ParsedRequest parse_request(const std::string& line);

/// JSON encoding for possibly-unbounded times (the "inf" convention).
[[nodiscard]] json::Value time_value(Time t);

/// Stable machine-readable failure codes of the v2 envelope (docs/api.md):
/// bad_request, not_found, conflict, invalid_argument, unavailable,
/// overloaded, timeout, internal. Exactly overloaded and timeout are
/// retryable.
///
/// Write `response`'s failure fields for the chosen envelope:
///   v2: "ok": false, "error": {"code", "message", "retryable"}
///   v1: "ok": false, "error": message, plus the legacy "retry" / "timeout"
///       markers for the overloaded / timeout codes.
void set_error(json::Value& response, Envelope envelope, const char* code,
               const std::string& message, bool retryable);

/// Serialize the aggregate decision fields into `response` -- the one field
/// order every execution path shares.
void read_decision_into(json::Value& response, const ReadDecision& rd,
                        Envelope envelope);

/// Execute one executable (non-immediate) request against `session` and
/// fill `response`'s decision fields. `fast_reads` routes what_if through
/// AdmissionSession::read_what_if (aggregate-only fast path; same bytes).
/// Returns the response's ok flag. May throw -- callers isolate.
bool execute_request(AdmissionSession& session, const ParsedRequest& req,
                     json::Value& response, bool fast_reads,
                     Envelope envelope);

}  // namespace rta::service::detail
