// Incremental admission control: a long-lived analysis session that answers
// admit / remove / what-if queries by recomputing only the part of the
// system a change can influence.
//
// The session keeps the per-subjob curve state (detail::BoundStateMap) of
// the last analysis of the committed system. A candidate change dirties a
// seed set of subjobs -- the changed job's own hops, plus the co-located
// subjobs its presence influences (strictly lower-priority subjobs under
// SPP/SPNP via the interference edges of the dependency graph, subjobs whose
// Eq. 15 blocking term changes under SPNP, every subjob on a touched FCFS
// processor since Theorem 7's utilization function sums the whole
// processor). The seed is closed under dependency-graph successors and only
// that closure is re-run through the bounds wavefront; everything else is
// served from the retained curves.
//
// Determinism contract: every Decision::analysis is bit-identical to
// BoundsAnalyzer(config.analysis).analyze(candidate system) -- same bounds,
// same verdicts, at any thread count (tests/test_service.cpp drives random
// operation sequences against fresh full analyses). The incremental path is
// purely a latency optimization; it is taken only when the analysis horizon
// is unchanged by the edit (pin AnalysisConfig::horizon for stable online
// behavior) and the dirty closure is small enough
// (SessionConfig::full_analysis_threshold), and falls back to a full
// wavefront otherwise.
//
// Like BoundsAnalyzer, the session handles acyclic dependency graphs
// (heterogeneous SPP/SPNP/FCFS mixes included); a candidate that creates a
// cycle is rejected with the analyzer's error. The ThreadPool and CurveCache
// are owned by the session and reused across requests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/instrument.hpp"
#include "analysis/result.hpp"
#include "curve/curve_cache.hpp"
#include "model/system.hpp"
#include "util/thread_pool.hpp"

namespace rta::service {

/// Tuning knobs for an AdmissionSession.
struct SessionConfig {
  AnalysisConfig analysis;
  /// When the dirty closure exceeds this fraction of all subjobs, run a full
  /// wavefront instead (recomputing everything outruns the bookkeeping).
  double full_analysis_threshold = 0.75;
};

/// Outcome of one admit / what_if / remove call.
struct Decision {
  bool ok = false;           ///< analysis ran (candidate structurally valid)
  std::string error;         ///< reason when !ok
  bool admitted = false;     ///< candidate system fully schedulable
  bool committed = false;    ///< the session state now includes the change
  bool incremental = false;  ///< answered from retained curves
  std::uint64_t job_id = 0;  ///< stable id of the affected job
  int dirty_subjobs = 0;     ///< recomputed closure size (0 on full runs)
  int total_subjobs = 0;     ///< subjobs in the candidate system
  AnalysisResult analysis;   ///< bit-identical to a fresh full analysis
};

class AdmissionSession {
 public:
  /// Takes ownership of the base system and analyzes it in full. Metrics
  /// (when config.analysis.observer.metrics is set): counters
  /// service.{admit,what_if,remove,incremental,full,dirty_subjobs}.
  explicit AdmissionSession(System base, SessionConfig config = {});

  ~AdmissionSession();
  AdmissionSession(const AdmissionSession&) = delete;
  AdmissionSession& operator=(const AdmissionSession&) = delete;

  [[nodiscard]] const System& system() const { return system_; }
  [[nodiscard]] const SessionConfig& config() const { return config_; }

  /// Analysis of the committed system (updated by every committing call).
  [[nodiscard]] const AnalysisResult& last() const { return last_; }

  /// Add `job` if the resulting system stays fully schedulable; otherwise
  /// leave the session untouched (committed == admitted). A zero job.id is
  /// assigned; a duplicate explicit id is an error.
  Decision admit(Job job);

  /// admit() without ever committing: evaluates the candidate and restores
  /// the session state regardless of the verdict.
  Decision what_if(Job job);

  /// Remove the job with the given stable id and re-analyze. Always commits
  /// when the id exists (removals cannot make a system less schedulable).
  Decision remove(std::uint64_t job_id);

 private:
  struct DirtyPlan;

  Decision run_candidate(Job job, bool commit_on_admit);
  void full_pass(Decision& d, Time base_horizon,
                 detail::BoundStateMap& states) const;
  void double_horizon_if_unbounded(Decision& d, Time base_horizon) const;
  [[nodiscard]] bool structural_check(Decision& d) const;

  System system_;
  SessionConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<CurveCache> cache_;
  std::unique_ptr<detail::EngineObs> eobs_;

  detail::BoundStateMap states_;  ///< committed system's curves at horizon_
  Time horizon_ = 0.0;
  bool have_states_ = false;  ///< false until a full pass succeeds
  AnalysisResult last_;
};

/// Assign each hop of `job` the lowest priority (largest phi) on its
/// processor: max existing priority + 1, counting earlier hops of this job.
/// The natural online policy -- a newcomer must not disturb admitted jobs --
/// and the fastest for the session (under SPP nothing but the new job's own
/// subjobs needs recomputing).
void assign_lowest_priorities(const System& system, Job& job);

}  // namespace rta::service
