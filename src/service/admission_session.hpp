// Incremental admission control: a long-lived analysis session that answers
// admit / remove / what-if queries by recomputing only the part of the
// system a change can influence.
//
// The session keeps the per-subjob curve state (detail::BoundStateMap) of
// the last analysis of the committed system. A candidate change dirties a
// seed set of subjobs -- the changed job's own hops, plus the co-located
// subjobs its presence influences (strictly lower-priority subjobs under
// SPP/SPNP via the interference edges of the dependency graph, subjobs whose
// Eq. 15 blocking term changes under SPNP, every subjob on a touched FCFS
// processor since Theorem 7's utilization function sums the whole
// processor). The seed is closed under dependency-graph successors and only
// that closure is re-run through the bounds wavefront; everything else is
// served from the retained curves.
//
// Determinism contract: every Decision::analysis is bit-identical to
// BoundsAnalyzer(config.analysis).analyze(candidate system) -- same bounds,
// same verdicts, at any thread count (tests/test_service.cpp drives random
// operation sequences against fresh full analyses). The incremental path is
// purely a latency optimization; it is taken only when the analysis horizon
// is unchanged by the edit (pin AnalysisConfig::horizon for stable online
// behavior) and the dirty closure is small enough
// (SessionConfig::full_analysis_threshold), and falls back to a full
// wavefront otherwise.
//
// Like BoundsAnalyzer, the session handles acyclic dependency graphs
// (heterogeneous SPP/SPNP/FCFS mixes included); a candidate that creates a
// cycle is rejected with the analyzer's error. The ThreadPool and CurveCache
// are owned by the session and reused across requests.
//
// Concurrency discipline (docs/static-analysis.md): a session is
// single-owner -- one thread at a time calls its mutating entry points, and
// concurrency comes from cloning committed snapshots (clone_committed) that
// each hand off to exactly one worker. The session therefore holds no locks
// of its own; the lock-bearing components it embeds (ThreadPool, CurveCache,
// the obs registries) carry the Clang thread-safety annotations, and the
// hand-off discipline itself is exercised under TSan and the differential
// stream tests rather than the static analysis.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/instrument.hpp"
#include "analysis/result.hpp"
#include "curve/curve_cache.hpp"
#include "model/system.hpp"
#include "util/thread_pool.hpp"

namespace rta::service {

/// Tuning knobs for an AdmissionSession.
struct SessionConfig {
  AnalysisConfig analysis;
  /// When the dirty closure exceeds this fraction of all subjobs, run a full
  /// wavefront instead (recomputing everything outruns the bookkeeping).
  double full_analysis_threshold = 0.75;
};

/// Per-hop bound provenance for the candidate job of an admit / what_if
/// call: which hop dominates the end-to-end bound and what each hop's
/// Eq. 12 local term contributed to the Eq. 11 sum. Filled from the same
/// per-subjob states both analysis paths compute, so the fast what-if path
/// and the general wavefront produce bit-identical explains (part of the
/// response byte-identity contract).
struct ExplainHop {
  int hop = 0;        ///< index into the candidate's chain
  int processor = 0;  ///< processor the hop runs on
  Time bound = 0.0;   ///< Eq. 12 local response bound of this subjob
};

struct Explain {
  bool available = false;     ///< filled for ok admit/what_if decisions
  std::vector<ExplainHop> hops;
  int dominant_hop = -1;      ///< argmax of hops[].bound (first wins)
  Time wcrt = 0.0;            ///< Eq. 11 sum of the hop bounds
  Time deadline = 0.0;        ///< the candidate's end-to-end deadline
  int horizon_doublings = 0;  ///< horizon-search iterations this call ran
};

/// Outcome of one admit / what_if / remove call.
struct Decision {
  bool ok = false;           ///< analysis ran (candidate structurally valid)
  std::string error;         ///< reason when !ok
  bool admitted = false;     ///< candidate system fully schedulable
  bool committed = false;    ///< the session state now includes the change
  bool incremental = false;  ///< answered from retained curves
  std::uint64_t job_id = 0;  ///< stable id of the affected job
  int dirty_subjobs = 0;     ///< recomputed closure size (0 on full runs)
  int total_subjobs = 0;     ///< subjobs in the candidate system
  AnalysisResult analysis;   ///< bit-identical to a fresh full analysis
  Explain explain;           ///< candidate bound provenance (admit/what_if)
};

/// Aggregate-only view of a Decision: exactly the fields the JSONL response
/// protocol serializes. The fast what-if path produces these directly --
/// skipping the O(jobs) report assembly a full Decision requires -- and the
/// general path reduces to them via AdmissionSession::summarize, so a
/// response is byte-identical whichever path computed it.
struct ReadDecision {
  bool ok = false;
  std::string error;
  bool admitted = false;
  bool committed = false;
  bool incremental = false;
  std::uint64_t job_id = 0;
  int dirty_subjobs = 0;
  int total_subjobs = 0;
  bool schedulable = false;  ///< analysis.all_schedulable()
  Time max_wcrt = 0.0;       ///< analysis.max_wcrt()
  Time horizon = 0.0;        ///< analysis.horizon
  Explain explain;           ///< candidate bound provenance (what_if)
};

class AdmissionSession {
 public:
  /// Takes ownership of the base system and analyzes it in full. Metrics
  /// (when config.analysis.observer.metrics is set): counters
  /// service.{admit,what_if,remove,incremental,full,dirty_subjobs}.
  explicit AdmissionSession(System base, SessionConfig config = {});

  ~AdmissionSession();
  AdmissionSession(const AdmissionSession&) = delete;
  AdmissionSession& operator=(const AdmissionSession&) = delete;

  [[nodiscard]] const System& system() const { return system_; }
  [[nodiscard]] const SessionConfig& config() const { return config_; }

  /// Analysis of the committed system (updated by every committing call).
  [[nodiscard]] const AnalysisResult& last() const { return last_; }

  /// Add `job` if the resulting system stays fully schedulable; otherwise
  /// leave the session untouched (committed == admitted). A zero job.id is
  /// assigned; a duplicate explicit id is an error.
  Decision admit(Job job);

  /// admit() without ever committing: evaluates the candidate and restores
  /// the session state regardless of the verdict.
  Decision what_if(Job job);

  /// Remove the job with the given stable id and re-analyze. Always commits
  /// when the id exists (removals cannot make a system less schedulable).
  Decision remove(std::uint64_t job_id);

  /// what_if() reduced to the serialized aggregates. Takes an O(candidate
  /// hops) fast path -- no validate(), no graph build, no per-job report --
  /// when the candidate provably dirties only its own subjobs (every hop on
  /// an SPP processor at strictly-lowest priority, horizon unchanged, the
  /// committed analysis bounded); falls back to the general what_if()
  /// otherwise. The returned aggregates are byte-identical either way (the
  /// service determinism contract extended to the read path;
  /// tests/test_request_scheduler.cpp).
  ReadDecision read_what_if(Job job);

  /// Reduce a full Decision to the aggregate view (same bytes as the fast
  /// path would produce for the same candidate).
  [[nodiscard]] static ReadDecision summarize(const Decision& d);

  /// Deep copy of the committed session state (retained curves included)
  /// for snapshot-isolated read execution: the replica answers what_if /
  /// query exactly like the original at its creation instant and is mutated
  /// only by its single owning worker. Worker replicas are forced serial
  /// (threads = 1) but SHARE the parent's CurveCache -- it is thread-safe,
  /// and every hit is verified bitwise against the operands, so sharing is
  /// a pure go-faster knob: answers stay bit-identical while replicas (and
  /// region probes, service/region.hpp) reuse each other's curve work.
  [[nodiscard]] std::unique_ptr<AdmissionSession> clone_committed() const;

  /// Stable-id counter passthrough, so a scheduler fanning reads over
  /// replicas can pre-assign the ids the sequential execution would have
  /// handed out (System::next_job_id semantics).
  [[nodiscard]] std::uint64_t peek_next_job_id() const {
    return system_.next_job_id();
  }
  void set_next_job_id(std::uint64_t next) { system_.set_next_job_id(next); }

 private:
  struct DirtyPlan;
  struct ReadCache;

  explicit AdmissionSession(const SessionConfig& config);  ///< clone shell

  Decision run_candidate(Job job, bool commit_on_admit);
  bool try_fast_what_if(const Job& job, ReadDecision& rd);
  void fill_explain(Decision& d, std::size_t k_new) const;
  const ReadCache& read_cache();
  void full_pass(Decision& d, Time base_horizon,
                 detail::BoundStateMap& states) const;
  void double_horizon_if_unbounded(Decision& d, Time base_horizon) const;
  [[nodiscard]] bool structural_check(Decision& d) const;

  System system_;
  SessionConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  std::shared_ptr<CurveCache> cache_;  ///< shared with clone_committed()
  std::unique_ptr<detail::EngineObs> eobs_;

  detail::BoundStateMap states_;  ///< committed system's curves at horizon_
  Time horizon_ = 0.0;
  bool have_states_ = false;  ///< false until a full pass succeeds
  AnalysisResult last_;

  /// Lazily built per-committed-state aggregates backing try_fast_what_if
  /// (per-processor priority tops, horizon ingredients, committed verdict
  /// roll-ups); dropped whenever a call commits.
  std::unique_ptr<ReadCache> read_cache_;
};

/// Assign each hop of `job` the lowest priority (largest phi) on its
/// processor: max existing priority + 1, counting earlier hops of this job.
/// The natural online policy -- a newcomer must not disturb admitted jobs --
/// and the fastest for the session (under SPP nothing but the new job's own
/// subjobs needs recomputing).
void assign_lowest_priorities(const System& system, Job& job);

}  // namespace rta::service
