#include "service/admission_session.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "analysis/order.hpp"
#include "curve/kernel_hooks.hpp"
#include "obs/kernel_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rta::service {

namespace {

using detail::BoundStateMap;

bool any_unbounded(const AnalysisResult& r) {
  for (const JobReport& j : r.jobs) {
    if (std::isinf(j.wcrt)) return true;
  }
  return false;
}

int total_subjobs(const System& system) {
  int n = 0;
  for (int k = 0; k < system.job_count(); ++k) {
    n += static_cast<int>(system.job(k).chain.size());
  }
  return n;
}

/// Node-indexed dirty flags over a candidate's dependency graph.
struct DirtySet {
  std::vector<char> flags;
  int count = 0;
};

/// Close `seeds` under dependency-graph successors: a recomputed subjob's
/// changed curves feed exactly its successors' computations.
DirtySet close_over_successors(const DependencyGraph& graph,
                               std::vector<int> seeds) {
  DirtySet dirty;
  dirty.flags.assign(graph.node_count(), 0);
  while (!seeds.empty()) {
    const int v = seeds.back();
    seeds.pop_back();
    if (dirty.flags[v] != 0) continue;
    dirty.flags[v] = 1;
    ++dirty.count;
    for (int w : graph.succ[v]) {
      if (dirty.flags[w] == 0) seeds.push_back(w);
    }
  }
  return dirty;
}

/// Largest execution time among subjobs on `p` with priority strictly lower
/// than `priority`, skipping job `exclude_job`: Eq. 15's blocking term as it
/// was before that job existed.
double blocking_excluding(const System& system, int p, int priority,
                          int exclude_job) {
  double b = 0.0;
  for (const SubjobRef& r : system.subjobs_on(p)) {
    if (r.job == exclude_job) continue;
    const Subjob& s = system.subjob(r);
    if (s.priority > priority) b = std::max(b, s.exec_time);
  }
  return b;
}

std::vector<int> touched_processors(const std::vector<Subjob>& chain) {
  std::vector<int> procs;
  for (const Subjob& s : chain) procs.push_back(s.processor);
  std::sort(procs.begin(), procs.end());
  procs.erase(std::unique(procs.begin(), procs.end()), procs.end());
  return procs;
}

/// Dirty closure for "job `k_new` was appended". The graph's interference
/// edges (higher-priority -> lower-priority) propagate the new subjobs'
/// effect on SPP/SPNP processors; what they cannot express is seeded
/// explicitly: whole FCFS processors (the new arrivals enter Theorem 7's
/// shared utilization function) and SPNP subjobs whose blocking term grew.
DirtySet dirty_for_added_job(const System& system,
                             const DependencyGraph& graph, int k_new) {
  std::vector<int> seeds;
  const Job& added = system.job(k_new);
  for (int h = 0; h < static_cast<int>(added.chain.size()); ++h) {
    seeds.push_back(graph.node({k_new, h}));
  }
  for (int p : touched_processors(added.chain)) {
    const SchedulerKind kind = system.scheduler(p);
    if (kind == SchedulerKind::kFcfs) {
      for (const SubjobRef& r : system.subjobs_on(p)) {
        seeds.push_back(graph.node(r));
      }
    } else if (kind == SchedulerKind::kSpnp) {
      for (const SubjobRef& r : system.subjobs_on(p)) {
        if (r.job == k_new) continue;
        const double before =
            blocking_excluding(system, p, system.subjob(r).priority, k_new);
        // rta-lint: allow(float-eq) change detection: any bit difference in
        // the blocking term must seed the dirty set, so exact compare is right
        if (system.blocking_time(r) != before) seeds.push_back(graph.node(r));
      }
    }
  }
  return close_over_successors(graph, std::move(seeds));
}

/// Dirty closure for "a job whose hops were `removed_chain` is gone".
/// `system` is the post-removal candidate. `old_blocking` carries each
/// surviving SPNP subjob's pre-removal Eq. 15 blocking, keyed by stable job
/// id (indices shifted). The removed subjobs' interference victims --
/// strictly lower-priority subjobs, whole FCFS processors -- are seeded
/// directly since the removed graph nodes no longer exist to propagate it.
DirtySet dirty_for_removed_job(
    const System& system, const DependencyGraph& graph,
    const std::vector<Subjob>& removed_chain,
    const std::map<std::pair<std::uint64_t, int>, double>& old_blocking) {
  std::vector<int> seeds;
  for (int p : touched_processors(removed_chain)) {
    const SchedulerKind kind = system.scheduler(p);
    if (kind == SchedulerKind::kFcfs) {
      for (const SubjobRef& r : system.subjobs_on(p)) {
        seeds.push_back(graph.node(r));
      }
      continue;
    }
    for (const SubjobRef& r : system.subjobs_on(p)) {
      const Subjob& s = system.subjob(r);
      bool affected = false;
      for (const Subjob& gone : removed_chain) {
        if (gone.processor == p && gone.priority < s.priority) {
          affected = true;  // lost an interferer
        }
      }
      if (!affected && kind == SchedulerKind::kSpnp) {
        const auto it = old_blocking.find({system.job(r.job).id, r.hop});
        if (it != old_blocking.end() && it->second != system.blocking_time(r)) {
          affected = true;  // lost the blocking maximizer
        }
      }
      if (affected) seeds.push_back(graph.node(r));
    }
  }
  return close_over_successors(graph, std::move(seeds));
}

}  // namespace

AdmissionSession::AdmissionSession(System base, SessionConfig config)
    : system_(std::move(base)), config_(config) {
  const std::size_t workers = analysis_worker_count(config_.analysis.threads);
  if (workers > 1) pool_ = std::make_unique<ThreadPool>(workers);
  if (config_.analysis.use_curve_cache) cache_ = std::make_shared<CurveCache>();
  eobs_ = detail::EngineObs::make_if(config_.analysis.observer, "service");

  Decision d;
  if (structural_check(d)) {
    detail::EngineObs::AnalyzeScope scope(eobs_.get(), pool_.get(),
                                          cache_.get());
    const Time h = default_horizon(system_, config_.analysis);
    full_pass(d, h, states_);
    horizon_ = h;
    have_states_ = true;
  }
  last_ = std::move(d.analysis);
}

AdmissionSession::~AdmissionSession() = default;

/// Per-committed-state aggregates backing the fast what-if path. Everything
/// here is derivable from (system_, last_) in one O(subjobs) sweep; caching
/// it once per committed state makes each fast what-if O(candidate hops).
struct AdmissionSession::ReadCache {
  std::vector<int> max_priority;  ///< per processor; INT_MIN when unused
  std::vector<char> is_spp;       ///< per processor
  double max_deadline = 0.0;      ///< over committed jobs
  Time last_release = 0.0;        ///< System::last_release of the committed set
  Time committed_max_wcrt = 0.0;
  bool committed_all_schedulable = false;
  bool committed_any_unbounded = false;
  int committed_subjobs = 0;
};

const AdmissionSession::ReadCache& AdmissionSession::read_cache() {
  if (read_cache_ != nullptr) return *read_cache_;
  auto rc = std::make_unique<ReadCache>();
  const int m = system_.processor_count();
  rc->max_priority.assign(m, std::numeric_limits<int>::min());
  rc->is_spp.assign(m, 0);
  for (int p = 0; p < m; ++p) {
    rc->is_spp[p] = system_.scheduler(p) == SchedulerKind::kSpp ? 1 : 0;
  }
  for (int k = 0; k < system_.job_count(); ++k) {
    const Job& j = system_.job(k);
    rc->max_deadline = std::max(rc->max_deadline, j.deadline);
    rc->committed_subjobs += static_cast<int>(j.chain.size());
    for (const Subjob& s : j.chain) {
      if (s.processor >= 0 && s.processor < m) {
        rc->max_priority[s.processor] =
            std::max(rc->max_priority[s.processor], s.priority);
      }
    }
  }
  rc->last_release = system_.last_release();
  rc->committed_max_wcrt = last_.max_wcrt();
  rc->committed_all_schedulable = last_.all_schedulable();
  rc->committed_any_unbounded = any_unbounded(last_);
  read_cache_ = std::move(rc);
  return *read_cache_;
}

AdmissionSession::AdmissionSession(const SessionConfig& config)
    : config_(config) {
  // Worker-replica shell: clone_committed fills in the state. Replicas run
  // serial -- a pure go-faster knob, answers identical.
  config_.analysis.threads = 1;
  eobs_ = detail::EngineObs::make_if(config_.analysis.observer, "service");
}

std::unique_ptr<AdmissionSession> AdmissionSession::clone_committed() const {
  auto clone = std::unique_ptr<AdmissionSession>(new AdmissionSession(config_));
  clone->system_ = system_;
  // Share the cache: it is thread-safe and verifies hits bitwise, so
  // replicas reuse the parent's (and each other's) curve work while every
  // answer stays bit-identical to a private-cache run.
  clone->cache_ = cache_;
  clone->states_ = states_;
  clone->horizon_ = horizon_;
  clone->have_states_ = have_states_;
  clone->last_ = last_;
  return clone;
}

ReadDecision AdmissionSession::summarize(const Decision& d) {
  ReadDecision rd;
  rd.ok = d.ok;
  rd.error = d.error;
  rd.admitted = d.admitted;
  rd.committed = d.committed;
  rd.incremental = d.incremental;
  rd.job_id = d.job_id;
  rd.dirty_subjobs = d.dirty_subjobs;
  rd.total_subjobs = d.total_subjobs;
  rd.schedulable = d.analysis.all_schedulable();
  rd.max_wcrt = d.analysis.max_wcrt();
  rd.horizon = d.analysis.horizon;
  rd.explain = d.explain;
  return rd;
}

void AdmissionSession::fill_explain(Decision& d, std::size_t k_new) const {
  if (!d.ok || k_new >= d.analysis.jobs.size()) return;
  const Job& job = system_.job(static_cast<int>(k_new));
  const JobReport& report = d.analysis.jobs[k_new];
  d.explain.available = true;
  d.explain.wcrt = report.wcrt;
  d.explain.deadline = job.deadline;
  d.explain.hops.clear();
  d.explain.dominant_hop = -1;
  Time best = -1.0;  // any local bound (finite or +inf) beats this
  for (std::size_t h = 0; h < report.hops.size(); ++h) {
    ExplainHop eh;
    eh.hop = static_cast<int>(h);
    eh.processor = h < job.chain.size() ? job.chain[h].processor : 0;
    eh.bound = report.hops[h].local_bound;
    if (eh.bound > best) {
      best = eh.bound;
      d.explain.dominant_hop = eh.hop;
    }
    d.explain.hops.push_back(eh);
  }
}

ReadDecision AdmissionSession::read_what_if(Job job) {
  if (eobs_ != nullptr && eobs_->metrics() != nullptr) {
    eobs_->metrics()->counter("service.what_if").inc();
  }
  ReadDecision rd;
  if (try_fast_what_if(job, rd)) return rd;
  return summarize(run_candidate(std::move(job), /*commit_on_admit=*/false));
}

bool AdmissionSession::try_fast_what_if(const Job& job, ReadDecision& rd) {
  // The fast path reproduces the sequential incremental what_if for the
  // common online candidate -- every hop on an SPP processor at
  // strictly-lowest priority -- where the dirty closure is provably the
  // candidate's own hops: no existing subjob has an interference edge from
  // a new one (nothing existing is strictly lower priority on a touched
  // processor), no SPNP blocking term can change, no FCFS utilization
  // function gains a term, and no dependency cycle is possible (all new
  // edges point at the new nodes or forward along the chain). Anything
  // outside that case falls back to the general path, which re-derives the
  // answer from scratch -- so a condition here may be conservative, but
  // never unsound.
  if (!have_states_ || !last_.ok) return false;
  const ReadCache& rc = read_cache();
  // An unbounded committed WCRT would re-trigger horizon doubling on every
  // request; the general path owns that loop.
  if (rc.committed_any_unbounded) return false;

  const int hops = static_cast<int>(job.chain.size());
  // Candidate-local structural screen, mirroring System::validate's
  // per-job checks: any failure routes through the general path so the
  // error text matches the sequential runner verbatim.
  if (hops == 0 || job.deadline <= 0.0 || job.arrivals.empty()) return false;
  for (int h = 0; h < hops; ++h) {
    const Subjob& s = job.chain[h];
    if (s.processor < 0 || s.processor >= system_.processor_count()) {
      return false;
    }
    if (s.exec_time <= 0.0) return false;
    if (rc.is_spp[s.processor] == 0) return false;
    if (s.priority <= rc.max_priority[s.processor]) return false;
    // Same-processor hops must carry strictly increasing priorities in hop
    // order: equal would be a duplicate-priority error, decreasing would
    // add a backward interference edge (possible cycle).
    for (int g = 0; g < h; ++g) {
      if (job.chain[g].processor == s.processor &&
          job.chain[g].priority >= s.priority) {
        return false;
      }
    }
  }
  if (job.id != 0 && system_.job_index_by_id(job.id) >= 0) {
    return false;  // duplicate explicit id: general path produces the error
  }

  // The incremental path requires the candidate to leave the analysis
  // horizon unchanged; compute it from the cached ingredients (identical
  // arithmetic to default_horizon over the candidate system).
  Time h = config_.analysis.horizon;
  if (h <= 0.0) {
    const Time window = std::max(rc.last_release, job.arrivals.last_release());
    const Time max_deadline = std::max(rc.max_deadline, job.deadline);
    const Time padding =
        std::max(config_.analysis.horizon_padding_deadlines * max_deadline,
                 config_.analysis.horizon_padding_fraction * window);
    h = std::max<Time>(window + padding, 1.0);
  }
  // rta-lint: allow(float-eq) cache identity: reuse is sound only for a
  // bit-identical horizon, an epsilon match would resume from wrong states
  if (h != horizon_) return false;
  // Mirror the dirty-closure threshold: past it the sequential path runs a
  // full wavefront (and reports incremental = false).
  const int nodes = rc.committed_subjobs + hops;
  if (static_cast<double>(hops) > config_.full_analysis_threshold * nodes) {
    return false;
  }

  // Speculative add + per-hop compute + rollback, exactly the units the
  // sequential wavefront would run for this dirty set (each hop is its own
  // wave, in chain order), minus the O(system) bookkeeping around them.
  const std::uint64_t saved_next_id = system_.next_job_id();
  const int k_new = system_.add_job(job);
  Time candidate_wcrt = 0.0;
  std::vector<ExplainHop> explain_hops;
  explain_hops.reserve(static_cast<std::size_t>(hops));
  {
    detail::EngineObs::AnalyzeScope scope(eobs_.get(), pool_.get(),
                                          cache_.get());
    curve::KernelHooksScope sink_scope(
        eobs_ != nullptr ? eobs_->kernel_sink() : nullptr);
    obs::Tracer::Span fast_span = obs::Tracer::span_if(
        eobs_ != nullptr ? eobs_->tracer() : nullptr, "service.fast_what_if",
        "{\"hops\": " + std::to_string(hops) + "}");
    for (int hh = 0; hh < hops; ++hh) {
      detail::BoundState& st = states_[{k_new, hh}];
      if (hh == 0) {
        const PwlCurve exact = system_.job(k_new).arrivals.to_curve(horizon_);
        st.arr_upper = exact;
        st.arr_lower = exact;
      } else {
        const detail::BoundState& pred = states_.at({k_new, hh - 1});
        st.arr_upper = pred.next_arr_upper;
        st.arr_lower = pred.dep_lower;
      }
      detail::compute_single_priority_subjob(system_, {k_new, hh}, horizon_,
                                             states_,
                                             config_.analysis.bounds_variant,
                                             cache_.get());
      const Time hop_bound = states_.at({k_new, hh}).local_bound;
      candidate_wcrt += hop_bound;  // Eq. 11
      explain_hops.push_back(
          {hh, system_.job(k_new).chain[static_cast<std::size_t>(hh)].processor,
           hop_bound});
    }
  }
  const std::uint64_t assigned_id = system_.job(k_new).id;
  for (int hh = 0; hh < hops; ++hh) states_.erase({k_new, hh});
  system_.remove_job(k_new);

  if (std::isinf(candidate_wcrt)) {
    // Sequential processing would enter the horizon-doubling loop; rewind
    // the id counter so the general-path retry assigns the same id.
    system_.set_next_job_id(saved_next_id);
    return false;
  }

  rd.ok = true;
  rd.incremental = true;
  rd.committed = false;
  rd.job_id = assigned_id;
  rd.dirty_subjobs = hops;
  rd.total_subjobs = nodes;
  rd.schedulable =
      rc.committed_all_schedulable && time_le(candidate_wcrt, job.deadline);
  rd.admitted = rd.schedulable;
  rd.max_wcrt = std::max(rc.committed_max_wcrt, candidate_wcrt);
  rd.horizon = horizon_;
  rd.explain.available = true;
  rd.explain.hops = std::move(explain_hops);
  rd.explain.wcrt = candidate_wcrt;
  rd.explain.deadline = job.deadline;
  rd.explain.horizon_doublings = 0;
  rd.explain.dominant_hop = -1;
  Time best = -1.0;
  for (const ExplainHop& eh : rd.explain.hops) {
    if (eh.bound > best) {
      best = eh.bound;
      rd.explain.dominant_hop = eh.hop;
    }
  }
  if (eobs_ != nullptr && eobs_->metrics() != nullptr) {
    eobs_->metrics()->counter("service.incremental").inc();
    eobs_->metrics()
        ->counter("service.dirty_subjobs")
        .add(static_cast<std::uint64_t>(hops));
  }
  return true;
}

bool AdmissionSession::structural_check(Decision& d) const {
  // Mirrors BoundsAnalyzer::analyze so error Decisions match it verbatim.
  const auto problems = system_.validate();
  if (!problems.empty()) {
    d.analysis = AnalysisResult{};
    d.analysis.error = "invalid system: " + problems.front();
    d.error = d.analysis.error;
    return false;
  }
  if (!topological_order(system_)) {
    d.analysis = AnalysisResult{};
    d.analysis.error =
        "subjob dependency graph has a cycle; use IterativeBoundsAnalyzer";
    d.error = d.analysis.error;
    return false;
  }
  return true;
}

void AdmissionSession::full_pass(Decision& d, Time base_horizon,
                                 detail::BoundStateMap& states) const {
  detail::run_bounds_wavefront(system_, base_horizon,
                               config_.analysis.bounds_variant, pool_.get(),
                               cache_.get(), eobs_.get(), /*dirty=*/nullptr,
                               states);
  d.analysis = detail::bounds_result_from_states(
      system_, base_horizon, config_.analysis.record_curves, states);
  d.ok = true;
  double_horizon_if_unbounded(d, base_horizon);
}

void AdmissionSession::double_horizon_if_unbounded(Decision& d,
                                                   Time base_horizon) const {
  // Same loop as BoundsAnalyzer::analyze. The doubled passes use throwaway
  // state maps: the retained curves stay at the base horizon, where the
  // committed (schedulable, hence bounded) system keeps them reusable.
  Time h = base_horizon;
  for (int round = 0; round < config_.analysis.max_horizon_doublings;
       ++round) {
    if (!d.analysis.ok || !any_unbounded(d.analysis)) break;
    h *= 2.0;
    ++d.explain.horizon_doublings;
    detail::BoundStateMap scratch;
    detail::run_bounds_wavefront(system_, h, config_.analysis.bounds_variant,
                                 pool_.get(), cache_.get(), eobs_.get(),
                                 /*dirty=*/nullptr, scratch);
    d.analysis = detail::bounds_result_from_states(
        system_, h, config_.analysis.record_curves, scratch);
  }
}

Decision AdmissionSession::admit(Job job) {
  if (eobs_ != nullptr && eobs_->metrics() != nullptr) {
    eobs_->metrics()->counter("service.admit").inc();
  }
  // A committing call changes what the fast what-if path aggregates over;
  // dropping the cache up front (even for rejected admits) is always safe.
  read_cache_.reset();
  return run_candidate(std::move(job), /*commit_on_admit=*/true);
}

Decision AdmissionSession::what_if(Job job) {
  if (eobs_ != nullptr && eobs_->metrics() != nullptr) {
    eobs_->metrics()->counter("service.what_if").inc();
  }
  return run_candidate(std::move(job), /*commit_on_admit=*/false);
}

Decision AdmissionSession::run_candidate(Job job, bool commit_on_admit) {
  Decision d;
  if (job.id != 0 && system_.job_index_by_id(job.id) >= 0) {
    d.error = "duplicate job id " + std::to_string(job.id);
    return d;
  }
  detail::EngineObs::AnalyzeScope scope(eobs_.get(), pool_.get(),
                                        cache_.get());
  const int k_new = system_.add_job(std::move(job));
  d.job_id = system_.job(k_new).id;
  d.total_subjobs = total_subjobs(system_);

  if (!structural_check(d)) {
    system_.remove_job(k_new);
    return d;
  }

  const Time h = default_horizon(system_, config_.analysis);
  obs::Counter incremental_counter, full_counter, dirty_counter;
  if (eobs_ != nullptr && eobs_->metrics() != nullptr) {
    incremental_counter = eobs_->metrics()->counter("service.incremental");
    full_counter = eobs_->metrics()->counter("service.full");
    dirty_counter = eobs_->metrics()->counter("service.dirty_subjobs");
  }

  // rta-lint: allow(float-eq) cache identity: incremental reuse requires a
  // bit-identical horizon (see can_incremental)
  if (have_states_ && h == horizon_) {
    obs::Tracer::Span closure_span = obs::Tracer::span_if(
        eobs_ != nullptr ? eobs_->tracer() : nullptr, "service.dirty_closure");
    const DependencyGraph graph = build_dependency_graph(system_);
    const DirtySet dirty = dirty_for_added_job(system_, graph, k_new);
    closure_span.annotate("{\"dirty\": " + std::to_string(dirty.count) +
                          ", \"nodes\": " + std::to_string(graph.node_count()) +
                          "}");
    closure_span.finish();
    if (dirty.count <=
        config_.full_analysis_threshold * graph.node_count()) {
      // Save the dirty existing states so a rejected candidate (or a
      // what-if) can be rolled back without recomputation.
      std::map<std::pair<int, int>, detail::BoundState> saved;
      for (int k = 0; k < system_.job_count(); ++k) {
        if (k == k_new) continue;
        for (int hop = 0;
             hop < static_cast<int>(system_.job(k).chain.size()); ++hop) {
          if (dirty.flags[graph.node({k, hop})] != 0) {
            saved[{k, hop}] = states_.at({k, hop});
          }
        }
      }

      detail::run_bounds_wavefront(system_, h, config_.analysis.bounds_variant,
                                   pool_.get(), cache_.get(), eobs_.get(),
                                   &dirty.flags, states_);
      d.analysis = detail::bounds_result_from_states(
          system_, h, config_.analysis.record_curves, states_);
      d.ok = true;
      d.incremental = true;
      d.dirty_subjobs = dirty.count;
      incremental_counter.inc();
      dirty_counter.add(static_cast<std::uint64_t>(dirty.count));
      double_horizon_if_unbounded(d, h);
      fill_explain(d, static_cast<std::size_t>(k_new));

      d.admitted = d.analysis.all_schedulable();
      if (commit_on_admit && d.admitted) {
        d.committed = true;
        last_ = d.analysis;
      } else {
        for (auto& [key, state] : saved) states_[key] = std::move(state);
        for (int hop = 0;
             hop < static_cast<int>(system_.job(k_new).chain.size()); ++hop) {
          states_.erase({k_new, hop});
        }
        system_.remove_job(k_new);
      }
      return d;
    }
  }

  // Full fallback: fresh horizon, oversized dirty closure, or no retained
  // state yet.
  full_counter.inc();
  detail::BoundStateMap fresh;
  full_pass(d, h, fresh);
  fill_explain(d, static_cast<std::size_t>(k_new));
  d.admitted = d.analysis.all_schedulable();
  if (commit_on_admit && d.admitted) {
    d.committed = true;
    states_ = std::move(fresh);
    horizon_ = h;
    have_states_ = true;
    last_ = d.analysis;
  } else {
    system_.remove_job(k_new);
  }
  return d;
}

Decision AdmissionSession::remove(std::uint64_t job_id) {
  read_cache_.reset();
  Decision d;
  d.job_id = job_id;
  const int k = system_.job_index_by_id(job_id);
  if (k < 0) {
    d.error = "no job with id " + std::to_string(job_id);
    return d;
  }
  if (eobs_ != nullptr && eobs_->metrics() != nullptr) {
    eobs_->metrics()->counter("service.remove").inc();
  }
  detail::EngineObs::AnalyzeScope scope(eobs_.get(), pool_.get(),
                                        cache_.get());

  // Capture what the dirty computation needs before indices shift.
  const std::vector<Subjob> removed_chain = system_.job(k).chain;
  std::map<std::pair<std::uint64_t, int>, double> old_blocking;
  for (int p : touched_processors(removed_chain)) {
    if (system_.scheduler(p) != SchedulerKind::kSpnp) continue;
    for (const SubjobRef& r : system_.subjobs_on(p)) {
      if (r.job == k) continue;
      old_blocking[{system_.job(r.job).id, r.hop}] = system_.blocking_time(r);
    }
  }

  system_.remove_job(k);
  d.committed = true;  // removal always takes effect
  d.total_subjobs = total_subjobs(system_);

  // Remap retained states: keys are job *indices*; jobs above k shifted.
  if (have_states_) {
    detail::BoundStateMap remapped;
    for (auto& [key, state] : states_) {
      if (key.first == k) continue;
      const int job = key.first > k ? key.first - 1 : key.first;
      remapped[{job, key.second}] = std::move(state);
    }
    states_ = std::move(remapped);
  }

  if (!structural_check(d)) {
    have_states_ = false;
    last_ = d.analysis;
    return d;
  }

  const Time h = default_horizon(system_, config_.analysis);
  obs::Counter incremental_counter, full_counter, dirty_counter;
  if (eobs_ != nullptr && eobs_->metrics() != nullptr) {
    incremental_counter = eobs_->metrics()->counter("service.incremental");
    full_counter = eobs_->metrics()->counter("service.full");
    dirty_counter = eobs_->metrics()->counter("service.dirty_subjobs");
  }

  // rta-lint: allow(float-eq) cache identity: incremental reuse requires a
  // bit-identical horizon (see can_incremental)
  if (have_states_ && h == horizon_) {
    obs::Tracer::Span closure_span = obs::Tracer::span_if(
        eobs_ != nullptr ? eobs_->tracer() : nullptr, "service.dirty_closure");
    const DependencyGraph graph = build_dependency_graph(system_);
    const DirtySet dirty =
        dirty_for_removed_job(system_, graph, removed_chain, old_blocking);
    closure_span.annotate("{\"dirty\": " + std::to_string(dirty.count) +
                          ", \"nodes\": " + std::to_string(graph.node_count()) +
                          "}");
    closure_span.finish();
    if (dirty.count <=
        config_.full_analysis_threshold * graph.node_count()) {
      detail::run_bounds_wavefront(system_, h, config_.analysis.bounds_variant,
                                   pool_.get(), cache_.get(), eobs_.get(),
                                   &dirty.flags, states_);
      d.analysis = detail::bounds_result_from_states(
          system_, h, config_.analysis.record_curves, states_);
      d.ok = true;
      d.incremental = true;
      d.dirty_subjobs = dirty.count;
      incremental_counter.inc();
      dirty_counter.add(static_cast<std::uint64_t>(dirty.count));
      double_horizon_if_unbounded(d, h);
      d.admitted = d.analysis.all_schedulable();
      last_ = d.analysis;
      return d;
    }
  }

  full_counter.inc();
  states_.clear();
  full_pass(d, h, states_);
  horizon_ = h;
  have_states_ = true;
  d.admitted = d.analysis.all_schedulable();
  last_ = d.analysis;
  return d;
}

void assign_lowest_priorities(const System& system, Job& job) {
  std::map<int, int> next_priority;
  for (Subjob& s : job.chain) {
    auto it = next_priority.find(s.processor);
    if (it == next_priority.end()) {
      int lowest = 0;
      for (const SubjobRef& r : system.subjobs_on(s.processor)) {
        lowest = std::max(lowest, system.subjob(r).priority + 1);
      }
      it = next_priority.emplace(s.processor, lowest).first;
    }
    s.priority = it->second++;
  }
}

}  // namespace rta::service
