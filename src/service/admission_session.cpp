#include "service/admission_session.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "analysis/order.hpp"
#include "obs/metrics.hpp"

namespace rta::service {

namespace {

using detail::BoundStateMap;

bool any_unbounded(const AnalysisResult& r) {
  for (const JobReport& j : r.jobs) {
    if (std::isinf(j.wcrt)) return true;
  }
  return false;
}

int total_subjobs(const System& system) {
  int n = 0;
  for (int k = 0; k < system.job_count(); ++k) {
    n += static_cast<int>(system.job(k).chain.size());
  }
  return n;
}

/// Node-indexed dirty flags over a candidate's dependency graph.
struct DirtySet {
  std::vector<char> flags;
  int count = 0;
};

/// Close `seeds` under dependency-graph successors: a recomputed subjob's
/// changed curves feed exactly its successors' computations.
DirtySet close_over_successors(const DependencyGraph& graph,
                               std::vector<int> seeds) {
  DirtySet dirty;
  dirty.flags.assign(graph.node_count(), 0);
  while (!seeds.empty()) {
    const int v = seeds.back();
    seeds.pop_back();
    if (dirty.flags[v] != 0) continue;
    dirty.flags[v] = 1;
    ++dirty.count;
    for (int w : graph.succ[v]) {
      if (dirty.flags[w] == 0) seeds.push_back(w);
    }
  }
  return dirty;
}

/// Largest execution time among subjobs on `p` with priority strictly lower
/// than `priority`, skipping job `exclude_job`: Eq. 15's blocking term as it
/// was before that job existed.
double blocking_excluding(const System& system, int p, int priority,
                          int exclude_job) {
  double b = 0.0;
  for (const SubjobRef& r : system.subjobs_on(p)) {
    if (r.job == exclude_job) continue;
    const Subjob& s = system.subjob(r);
    if (s.priority > priority) b = std::max(b, s.exec_time);
  }
  return b;
}

std::vector<int> touched_processors(const std::vector<Subjob>& chain) {
  std::vector<int> procs;
  for (const Subjob& s : chain) procs.push_back(s.processor);
  std::sort(procs.begin(), procs.end());
  procs.erase(std::unique(procs.begin(), procs.end()), procs.end());
  return procs;
}

/// Dirty closure for "job `k_new` was appended". The graph's interference
/// edges (higher-priority -> lower-priority) propagate the new subjobs'
/// effect on SPP/SPNP processors; what they cannot express is seeded
/// explicitly: whole FCFS processors (the new arrivals enter Theorem 7's
/// shared utilization function) and SPNP subjobs whose blocking term grew.
DirtySet dirty_for_added_job(const System& system,
                             const DependencyGraph& graph, int k_new) {
  std::vector<int> seeds;
  const Job& added = system.job(k_new);
  for (int h = 0; h < static_cast<int>(added.chain.size()); ++h) {
    seeds.push_back(graph.node({k_new, h}));
  }
  for (int p : touched_processors(added.chain)) {
    const SchedulerKind kind = system.scheduler(p);
    if (kind == SchedulerKind::kFcfs) {
      for (const SubjobRef& r : system.subjobs_on(p)) {
        seeds.push_back(graph.node(r));
      }
    } else if (kind == SchedulerKind::kSpnp) {
      for (const SubjobRef& r : system.subjobs_on(p)) {
        if (r.job == k_new) continue;
        const double before =
            blocking_excluding(system, p, system.subjob(r).priority, k_new);
        if (system.blocking_time(r) != before) seeds.push_back(graph.node(r));
      }
    }
  }
  return close_over_successors(graph, std::move(seeds));
}

/// Dirty closure for "a job whose hops were `removed_chain` is gone".
/// `system` is the post-removal candidate. `old_blocking` carries each
/// surviving SPNP subjob's pre-removal Eq. 15 blocking, keyed by stable job
/// id (indices shifted). The removed subjobs' interference victims --
/// strictly lower-priority subjobs, whole FCFS processors -- are seeded
/// directly since the removed graph nodes no longer exist to propagate it.
DirtySet dirty_for_removed_job(
    const System& system, const DependencyGraph& graph,
    const std::vector<Subjob>& removed_chain,
    const std::map<std::pair<std::uint64_t, int>, double>& old_blocking) {
  std::vector<int> seeds;
  for (int p : touched_processors(removed_chain)) {
    const SchedulerKind kind = system.scheduler(p);
    if (kind == SchedulerKind::kFcfs) {
      for (const SubjobRef& r : system.subjobs_on(p)) {
        seeds.push_back(graph.node(r));
      }
      continue;
    }
    for (const SubjobRef& r : system.subjobs_on(p)) {
      const Subjob& s = system.subjob(r);
      bool affected = false;
      for (const Subjob& gone : removed_chain) {
        if (gone.processor == p && gone.priority < s.priority) {
          affected = true;  // lost an interferer
        }
      }
      if (!affected && kind == SchedulerKind::kSpnp) {
        const auto it = old_blocking.find({system.job(r.job).id, r.hop});
        if (it != old_blocking.end() && it->second != system.blocking_time(r)) {
          affected = true;  // lost the blocking maximizer
        }
      }
      if (affected) seeds.push_back(graph.node(r));
    }
  }
  return close_over_successors(graph, std::move(seeds));
}

}  // namespace

AdmissionSession::AdmissionSession(System base, SessionConfig config)
    : system_(std::move(base)), config_(config) {
  const std::size_t workers = analysis_worker_count(config_.analysis.threads);
  if (workers > 1) pool_ = std::make_unique<ThreadPool>(workers);
  if (config_.analysis.use_curve_cache) cache_ = std::make_unique<CurveCache>();
  eobs_ = detail::EngineObs::make_if(config_.analysis.observer, "service");

  Decision d;
  if (structural_check(d)) {
    detail::EngineObs::AnalyzeScope scope(eobs_.get(), pool_.get(),
                                          cache_.get());
    const Time h = default_horizon(system_, config_.analysis);
    full_pass(d, h, states_);
    horizon_ = h;
    have_states_ = true;
  }
  last_ = std::move(d.analysis);
}

AdmissionSession::~AdmissionSession() = default;

bool AdmissionSession::structural_check(Decision& d) const {
  // Mirrors BoundsAnalyzer::analyze so error Decisions match it verbatim.
  const auto problems = system_.validate();
  if (!problems.empty()) {
    d.analysis = AnalysisResult{};
    d.analysis.error = "invalid system: " + problems.front();
    d.error = d.analysis.error;
    return false;
  }
  if (!topological_order(system_)) {
    d.analysis = AnalysisResult{};
    d.analysis.error =
        "subjob dependency graph has a cycle; use IterativeBoundsAnalyzer";
    d.error = d.analysis.error;
    return false;
  }
  return true;
}

void AdmissionSession::full_pass(Decision& d, Time base_horizon,
                                 detail::BoundStateMap& states) const {
  detail::run_bounds_wavefront(system_, base_horizon,
                               config_.analysis.bounds_variant, pool_.get(),
                               cache_.get(), eobs_.get(), /*dirty=*/nullptr,
                               states);
  d.analysis = detail::bounds_result_from_states(
      system_, base_horizon, config_.analysis.record_curves, states);
  d.ok = true;
  double_horizon_if_unbounded(d, base_horizon);
}

void AdmissionSession::double_horizon_if_unbounded(Decision& d,
                                                   Time base_horizon) const {
  // Same loop as BoundsAnalyzer::analyze. The doubled passes use throwaway
  // state maps: the retained curves stay at the base horizon, where the
  // committed (schedulable, hence bounded) system keeps them reusable.
  Time h = base_horizon;
  for (int round = 0; round < config_.analysis.max_horizon_doublings;
       ++round) {
    if (!d.analysis.ok || !any_unbounded(d.analysis)) break;
    h *= 2.0;
    detail::BoundStateMap scratch;
    detail::run_bounds_wavefront(system_, h, config_.analysis.bounds_variant,
                                 pool_.get(), cache_.get(), eobs_.get(),
                                 /*dirty=*/nullptr, scratch);
    d.analysis = detail::bounds_result_from_states(
        system_, h, config_.analysis.record_curves, scratch);
  }
}

Decision AdmissionSession::admit(Job job) {
  if (eobs_ != nullptr && eobs_->metrics() != nullptr) {
    eobs_->metrics()->counter("service.admit").inc();
  }
  return run_candidate(std::move(job), /*commit_on_admit=*/true);
}

Decision AdmissionSession::what_if(Job job) {
  if (eobs_ != nullptr && eobs_->metrics() != nullptr) {
    eobs_->metrics()->counter("service.what_if").inc();
  }
  return run_candidate(std::move(job), /*commit_on_admit=*/false);
}

Decision AdmissionSession::run_candidate(Job job, bool commit_on_admit) {
  Decision d;
  if (job.id != 0 && system_.job_index_by_id(job.id) >= 0) {
    d.error = "duplicate job id " + std::to_string(job.id);
    return d;
  }
  detail::EngineObs::AnalyzeScope scope(eobs_.get(), pool_.get(),
                                        cache_.get());
  const int k_new = system_.add_job(std::move(job));
  d.job_id = system_.job(k_new).id;
  d.total_subjobs = total_subjobs(system_);

  if (!structural_check(d)) {
    system_.remove_job(k_new);
    return d;
  }

  const Time h = default_horizon(system_, config_.analysis);
  obs::Counter incremental_counter, full_counter, dirty_counter;
  if (eobs_ != nullptr && eobs_->metrics() != nullptr) {
    incremental_counter = eobs_->metrics()->counter("service.incremental");
    full_counter = eobs_->metrics()->counter("service.full");
    dirty_counter = eobs_->metrics()->counter("service.dirty_subjobs");
  }

  if (have_states_ && h == horizon_) {
    const DependencyGraph graph = build_dependency_graph(system_);
    const DirtySet dirty = dirty_for_added_job(system_, graph, k_new);
    if (dirty.count <=
        config_.full_analysis_threshold * graph.node_count()) {
      // Save the dirty existing states so a rejected candidate (or a
      // what-if) can be rolled back without recomputation.
      std::map<std::pair<int, int>, detail::BoundState> saved;
      for (int k = 0; k < system_.job_count(); ++k) {
        if (k == k_new) continue;
        for (int hop = 0;
             hop < static_cast<int>(system_.job(k).chain.size()); ++hop) {
          if (dirty.flags[graph.node({k, hop})] != 0) {
            saved[{k, hop}] = states_.at({k, hop});
          }
        }
      }

      detail::run_bounds_wavefront(system_, h, config_.analysis.bounds_variant,
                                   pool_.get(), cache_.get(), eobs_.get(),
                                   &dirty.flags, states_);
      d.analysis = detail::bounds_result_from_states(
          system_, h, config_.analysis.record_curves, states_);
      d.ok = true;
      d.incremental = true;
      d.dirty_subjobs = dirty.count;
      incremental_counter.inc();
      dirty_counter.add(static_cast<std::uint64_t>(dirty.count));
      double_horizon_if_unbounded(d, h);

      d.admitted = d.analysis.all_schedulable();
      if (commit_on_admit && d.admitted) {
        d.committed = true;
        last_ = d.analysis;
      } else {
        for (auto& [key, state] : saved) states_[key] = std::move(state);
        for (int hop = 0;
             hop < static_cast<int>(system_.job(k_new).chain.size()); ++hop) {
          states_.erase({k_new, hop});
        }
        system_.remove_job(k_new);
      }
      return d;
    }
  }

  // Full fallback: fresh horizon, oversized dirty closure, or no retained
  // state yet.
  full_counter.inc();
  detail::BoundStateMap fresh;
  full_pass(d, h, fresh);
  d.admitted = d.analysis.all_schedulable();
  if (commit_on_admit && d.admitted) {
    d.committed = true;
    states_ = std::move(fresh);
    horizon_ = h;
    have_states_ = true;
    last_ = d.analysis;
  } else {
    system_.remove_job(k_new);
  }
  return d;
}

Decision AdmissionSession::remove(std::uint64_t job_id) {
  Decision d;
  d.job_id = job_id;
  const int k = system_.job_index_by_id(job_id);
  if (k < 0) {
    d.error = "no job with id " + std::to_string(job_id);
    return d;
  }
  if (eobs_ != nullptr && eobs_->metrics() != nullptr) {
    eobs_->metrics()->counter("service.remove").inc();
  }
  detail::EngineObs::AnalyzeScope scope(eobs_.get(), pool_.get(),
                                        cache_.get());

  // Capture what the dirty computation needs before indices shift.
  const std::vector<Subjob> removed_chain = system_.job(k).chain;
  std::map<std::pair<std::uint64_t, int>, double> old_blocking;
  for (int p : touched_processors(removed_chain)) {
    if (system_.scheduler(p) != SchedulerKind::kSpnp) continue;
    for (const SubjobRef& r : system_.subjobs_on(p)) {
      if (r.job == k) continue;
      old_blocking[{system_.job(r.job).id, r.hop}] = system_.blocking_time(r);
    }
  }

  system_.remove_job(k);
  d.committed = true;  // removal always takes effect
  d.total_subjobs = total_subjobs(system_);

  // Remap retained states: keys are job *indices*; jobs above k shifted.
  if (have_states_) {
    detail::BoundStateMap remapped;
    for (auto& [key, state] : states_) {
      if (key.first == k) continue;
      const int job = key.first > k ? key.first - 1 : key.first;
      remapped[{job, key.second}] = std::move(state);
    }
    states_ = std::move(remapped);
  }

  if (!structural_check(d)) {
    have_states_ = false;
    last_ = d.analysis;
    return d;
  }

  const Time h = default_horizon(system_, config_.analysis);
  obs::Counter incremental_counter, full_counter, dirty_counter;
  if (eobs_ != nullptr && eobs_->metrics() != nullptr) {
    incremental_counter = eobs_->metrics()->counter("service.incremental");
    full_counter = eobs_->metrics()->counter("service.full");
    dirty_counter = eobs_->metrics()->counter("service.dirty_subjobs");
  }

  if (have_states_ && h == horizon_) {
    const DependencyGraph graph = build_dependency_graph(system_);
    const DirtySet dirty =
        dirty_for_removed_job(system_, graph, removed_chain, old_blocking);
    if (dirty.count <=
        config_.full_analysis_threshold * graph.node_count()) {
      detail::run_bounds_wavefront(system_, h, config_.analysis.bounds_variant,
                                   pool_.get(), cache_.get(), eobs_.get(),
                                   &dirty.flags, states_);
      d.analysis = detail::bounds_result_from_states(
          system_, h, config_.analysis.record_curves, states_);
      d.ok = true;
      d.incremental = true;
      d.dirty_subjobs = dirty.count;
      incremental_counter.inc();
      dirty_counter.add(static_cast<std::uint64_t>(dirty.count));
      double_horizon_if_unbounded(d, h);
      d.admitted = d.analysis.all_schedulable();
      last_ = d.analysis;
      return d;
    }
  }

  full_counter.inc();
  states_.clear();
  full_pass(d, h, states_);
  horizon_ = h;
  have_states_ = true;
  d.admitted = d.analysis.all_schedulable();
  last_ = d.analysis;
  return d;
}

void assign_lowest_priorities(const System& system, Job& job) {
  std::map<int, int> next_priority;
  for (Subjob& s : job.chain) {
    auto it = next_priority.find(s.processor);
    if (it == next_priority.end()) {
      int lowest = 0;
      for (const SubjobRef& r : system.subjobs_on(s.processor)) {
        lowest = std::max(lowest, system.subjob(r).priority + 1);
      }
      it = next_priority.emplace(s.processor, lowest).first;
    }
    s.priority = it->second++;
  }
}

}  // namespace rta::service
