// Batching request scheduler for the JSONL admission service.
//
// Requests are classified by concurrency class (request_codec.hpp):
// read-only (what_if, query) vs mutating (admit, remove). The scheduler
// buffers consecutive requests of one class and executes the buffer as a
// batch at each class boundary (a barrier), at end of input, or when
// backpressure sheds the overflow:
//
//   - A read batch fans out across up to `parallel_reads` workers. Chunk 0
//     runs on the primary session (whose fast what-if path mutates and
//     restores, so it must stay single-owner); the other chunks run against
//     committed-state replica snapshots (AdmissionSession::clone_committed),
//     rebuilt lazily after a mutation batch and only when a batch actually
//     spans multiple chunks. With parallel_reads == 1 no replica is ever
//     cloned.
//   - A mutation batch executes serially on the primary session, in order;
//     coalescing consecutive mutations means the committed state (and the
//     replicas) are reconciled once per batch, not once per request.
//   - Within a read batch, byte-identical request lines are coalesced
//     (singleflight): the analysis runs once and every duplicate receives a
//     copy of the answer, with its own request/line echo and -- for
//     auto-assigned ids -- its own simulated job_id. Against one committed
//     snapshot identical reads are pure-function calls, so this is exact,
//     not approximate; it is what makes polling workloads (clients
//     re-probing pending candidates between reconfigurations) cheap.
//     Coalescing is disabled while request_timeout_ms is set, because each
//     instance's expiry is wall-clock-specific.
//
// Ordering guarantees: responses are emitted in request order, and every
// read observes the committed state as of the last preceding mutation (the
// class barrier). That is exactly the sequential runner's data flow, so for
// any stream -- with timeouts and backpressure disabled -- the scheduler's
// responses are byte-identical to run_request_stream(session, in, out)
// modulo the latency_us field (tests/test_request_scheduler.cpp drives
// randomized differential streams at 1, 2, and hardware threads).
//
// Determinism under fan-out rests on two invariants. First, reads are
// side-effect-free against a snapshot identical to the primary's committed
// state. Second, the stable-id counter is simulated: a what_if consumes a
// job id exactly like sequential execution would (auto ids are pre-assigned
// in request order, explicit non-duplicate ids advance the counter,
// duplicates consume nothing), and the primary's counter is set to the
// simulated value after the batch -- so job_id fields and later admits match
// the sequential runner bit for bit.
//
// Concurrency discipline (docs/static-analysis.md): shared state during a
// read fan-out is partitioned, not locked -- each Pending entry's outcome
// fields are written by exactly one worker (the chunk that executes it),
// chunk 0 owns the primary session, and chunks 1.. own one replica each.
// The scheduler therefore carries no mutexes; the ThreadPool it fans out on
// is fully annotated for Clang's -Wthread-safety, and the partitioning
// contract is enforced dynamically (TSan job) and differentially
// (tests/test_request_scheduler.cpp) rather than statically.
//
// Failure isolation: a request whose execution throws yields an
// {"ok":false,"error":"request failed: ..."} response for its line; the
// stream always continues. Backpressure (max_inflight) rejects with
// {"ok":false,...,"retry":true}; per-request timeouts
// (request_timeout_ms) answer {"ok":false,...,"timeout":true} without
// executing. Expiry is decided once per batch, before the job-id counter
// simulation, so a request that never executes (shed or timed out) never
// consumes an id -- later job_ids match the sequential runner on the
// surviving lines bit for bit. docs/api.md documents the full response
// schema.
//
// Lifecycle: finish() drains and seals the scheduler; it is idempotent, and
// submitting after it throws std::logic_error (the defined error for the
// use-after-close programming bug -- silently emitting past the drained
// stream end would interleave with whatever the caller did next).
//
// Snapshot replicas are epoch-based: every mutation batch advances
// commit_epoch(), and a read fan-out re-clones its replicas only when their
// epoch is stale -- once per mutation batch at most, never per request
// (counter service.replica_refresh observes exactly that).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/admission_session.hpp"
#include "service/request_codec.hpp"
#include "service/request_runner.hpp"
#include "util/thread_pool.hpp"

namespace rta::service {

class RequestScheduler {
 public:
  /// Binds to `session` (primary) and `out`. When the session carries a
  /// MetricsRegistry, the scheduler records histograms service.request_us /
  /// service.read_us / service.mutate_us, gauge service.queue_depth_max
  /// (high-water batch depth since start; docs/observability.md), and
  /// counters service.rejected / service.timeouts / service.failures /
  /// service.coalesced / service.replica_refresh.
  RequestScheduler(AdmissionSession& session, std::ostream& out,
                   StreamOptions options = {});
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Feed one input line (blank and '#' lines are skipped). May trigger a
  /// batch flush (class boundary) and emit buffered responses. Throws
  /// std::logic_error after finish().
  void submit_line(const std::string& line);

  /// submit_line for a caller that already parsed the line (the sharded
  /// front end routes on the parse result); `line` must not be blank or a
  /// comment. Behavior is byte-identical to submit_line(line).
  void submit_parsed(const std::string& line, detail::ParsedRequest req);

  /// Buffer a deterministic `overloaded` rejection for `line` without
  /// executing it: the sharded front end's cross-tenant backpressure, which
  /// must consume this scheduler's request/line numbering exactly like an
  /// accepted line would. A parse-error line degrades to its normal
  /// bad_request response. Throws std::logic_error after finish().
  void reject_parsed(const std::string& line, detail::ParsedRequest req,
                     const std::string& message);

  /// Execute and emit everything buffered; the stream stays open for more
  /// submissions. Responses are batch-boundary independent, so callers may
  /// force a flush at any point without changing a single byte.
  void flush();

  /// flush(), then flush the output stream and seal the scheduler.
  /// Idempotent: later finish() calls are no-ops and later submissions
  /// throw.
  void finish();

  [[nodiscard]] const RunnerStats& stats() const { return stats_; }

  /// Resolved read fan-out width (parallel_reads with 0 -> hardware).
  [[nodiscard]] int read_workers() const { return read_workers_; }

  /// Committed-state epoch: bumped once per executed mutation batch. Read
  /// replicas are re-cloned only when their epoch trails this one.
  [[nodiscard]] std::uint64_t commit_epoch() const { return commit_epoch_; }

 private:
  struct Pending {
    detail::ParsedRequest req;
    json::Value response;
    std::string raw;       ///< the input line, the read-coalescing identity key
    std::string trace_id;  ///< propagated or minted at submit (deterministic)
    std::chrono::steady_clock::time_point arrival;
    bool executable = false;  ///< false: response completed at submit time
    bool auto_id = false;     ///< job_id was simulated, not client-supplied
    // Outcome, written only by the one worker executing this entry.
    bool ok = false;
    bool failed = false;
    bool timed_out = false;
    double latency_us = 0.0;
  };

  void execute_mutations();
  void execute_reads();
  void execute_one(AdmissionSession& session, Pending& p);
  void complete_at_submit(Pending& p);
  [[nodiscard]] Pending make_pending(const std::string& line,
                                     detail::ParsedRequest req);
  [[nodiscard]] obs::Tracer::Span request_span(const Pending& p);
  bool expire_if_stale(Pending& p);

  AdmissionSession& session_;
  std::ostream& out_;
  StreamOptions options_;
  int read_workers_ = 1;

  /// Fan-out helpers (read_workers_ - 1; the caller is chunk 0's worker).
  std::unique_ptr<ThreadPool> pool_;
  /// Committed-state snapshots for chunks 1..; stale when their epoch
  /// trails commit_epoch_ (replica_epoch_ 0 = never cloned).
  std::vector<std::unique_ptr<AdmissionSession>> replicas_;
  std::uint64_t commit_epoch_ = 1;
  std::uint64_t replica_epoch_ = 0;

  std::vector<Pending> pending_;  ///< current batch + interleaved immediates
  int inflight_ = 0;              ///< executable entries in pending_
  detail::RequestClass batch_class_ = detail::RequestClass::kRead;

  int line_no_ = 0;
  int submitted_ = 0;  ///< responses owed (skipped lines excluded)
  bool finished_ = false;
  RunnerStats stats_;

  obs::Tracer* tracer_ = nullptr;  ///< per-request span tree (may be null)
  obs::Histogram request_us_;
  obs::Histogram read_us_;
  obs::Histogram mutate_us_;
  obs::Gauge queue_depth_;
  obs::Counter rejected_counter_;
  obs::Counter timeout_counter_;
  obs::Counter failure_counter_;
  obs::Counter coalesced_counter_;
  obs::Counter replica_refresh_counter_;
};

}  // namespace rta::service
