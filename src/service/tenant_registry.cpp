#include "service/tenant_registry.hpp"

#include <utility>

namespace rta::service {

namespace {

constexpr std::size_t kInitialSlots = 16;  // power of two

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

TenantRegistry::TenantRegistry() : slots_(kInitialSlots) {}
TenantRegistry::~TenantRegistry() = default;

std::uint64_t TenantRegistry::hash(std::string_view name) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  // FNV alone clusters on short ASCII ids ("t1", "t2", ...); the finalizer
  // spreads them so both the probe sequence and shard_of stay balanced.
  return splitmix64(h);
}

int TenantRegistry::shard_of(std::string_view name, int shards) {
  if (shards <= 1) return 0;
  return static_cast<int>(hash(name) % static_cast<std::uint64_t>(shards));
}

std::size_t TenantRegistry::probe(std::string_view name,
                                  std::uint64_t h) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  for (;;) {
    const Slot& s = slots_[i];
    if (s.index < 0) return i;  // empty: name is absent, insert here
    if (s.hash == h && names_[static_cast<std::size_t>(s.index)] == name) {
      return i;
    }
    i = (i + 1) & mask;
  }
}

void TenantRegistry::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.index < 0) continue;
    std::size_t i = static_cast<std::size_t>(s.hash) & mask;
    while (slots_[i].index >= 0) i = (i + 1) & mask;
    slots_[i] = s;
  }
}

int TenantRegistry::add(std::string name,
                        std::unique_ptr<AdmissionSession> session) {
  // Keep load under 1/2 so linear probes stay short even at 10k tenants.
  if ((names_.size() + 1) * 2 > slots_.size()) grow();
  const std::uint64_t h = hash(name);
  const std::size_t i = probe(name, h);
  if (slots_[i].index >= 0) return -1;  // duplicate
  const int index = static_cast<int>(names_.size());
  slots_[i] = Slot{h, index};
  names_.push_back(std::move(name));
  sessions_.push_back(std::move(session));
  return index;
}

int TenantRegistry::find(std::string_view name) const {
  const std::size_t i = probe(name, hash(name));
  return slots_[i].index;
}

}  // namespace rta::service
