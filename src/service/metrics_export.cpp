#include "service/metrics_export.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

namespace rta::service {

namespace {

/// Prometheus metric name: `rta_` + the registry name with every character
/// outside [a-zA-Z0-9_:] mapped to '_' (so "service.request_us" becomes
/// "rta_service_request_us").
std::string prom_name(const std::string& name) {
  std::string out = "rta_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

json::Value stats_payload(const obs::MetricsSnapshot& snap) {
  json::Value counters{json::Value::Object{}};
  for (const auto& [name, v] : snap.counters) {
    counters.set(name, static_cast<double>(v));
  }
  json::Value gauges{json::Value::Object{}};
  for (const auto& [name, v] : snap.gauges) gauges.set(name, v);
  json::Value histograms{json::Value::Object{}};
  for (const auto& [name, h] : snap.histograms) {
    json::Value entry{json::Value::Object{}};
    entry.set("count", static_cast<double>(h.count));
    entry.set("p50", h.quantile(0.50));
    entry.set("p90", h.quantile(0.90));
    entry.set("p99", h.quantile(0.99));
    entry.set("max", h.max);
    histograms.set(name, std::move(entry));
  }

  auto counter_or_zero = [&](const char* name) -> double {
    const auto it = snap.counters.find(name);
    return it != snap.counters.end() ? static_cast<double>(it->second) : 0.0;
  };
  const double hits = counter_or_zero("curve_cache.conv_hits") +
                      counter_or_zero("curve_cache.pinv_hits");
  const double lookups = hits + counter_or_zero("curve_cache.conv_misses") +
                         counter_or_zero("curve_cache.pinv_misses");

  json::Value payload{json::Value::Object{}};
  payload.set("counters", std::move(counters));
  payload.set("gauges", std::move(gauges));
  payload.set("histograms", std::move(histograms));
  payload.set("cache_hit_rate", lookups > 0.0 ? hits / lookups : 0.0);
  return payload;
}

std::string to_prometheus_text(const obs::MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, v] : snap.counters) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n" + p + " ";
    out += std::to_string(v);
    out += "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n" + p + " ";
    append_number(out, v);
    out += "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cum += i < h.counts.size() ? h.counts[i] : 0;
      out += p + "_bucket{le=\"";
      append_number(out, h.bounds[i]);
      out += "\"} " + std::to_string(cum) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += p + "_sum ";
    append_number(out, h.sum);
    out += "\n" + p + "_count " + std::to_string(h.count) + "\n";
  }
  // Scrape timestamp (unix seconds) so dashboards can alert on a stale
  // file. The one deliberate wall-clock read behind this file's rta-lint
  // wallclock exemption.
  const double now_s =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  out += "# TYPE rta_scrape_time_seconds gauge\nrta_scrape_time_seconds ";
  append_number(out, now_s);
  out += "\n";
  return out;
}

PromFlusher::PromFlusher(obs::MetricsRegistry& registry, std::string path,
                         double interval_ms)
    : registry_(registry),
      path_(std::move(path)),
      interval_ms_(interval_ms >= 1.0 ? interval_ms : 1.0) {
  thread_ = std::thread([this] { run(); });
}

PromFlusher::~PromFlusher() { stop_and_flush(); }

bool PromFlusher::write_once() {
  const std::string text = to_prometheus_text(registry_.snapshot());
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    // Rename can fail long after the write succeeded (target replaced by a
    // directory, target dir gone mid-run). The exposition at `path_` is
    // either the previous complete scrape or absent -- never torn -- but the
    // orphaned tmp file must not outlive the attempt.
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void PromFlusher::run() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      if (stop_) return;
      cv_.wait_for(mutex_,
                   std::chrono::duration<double, std::milli>(interval_ms_));
      if (stop_) return;
    }
    if (!write_once()) {
      MutexLock lock(mutex_);
      write_failed_ = true;
    }
  }
}

bool PromFlusher::stop_and_flush() {
  if (!joined_) {
    {
      MutexLock lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    joined_ = true;
    if (!write_once()) {
      MutexLock lock(mutex_);
      write_failed_ = true;
    }
  }
  MutexLock lock(mutex_);
  return !write_failed_;
}

}  // namespace rta::service
