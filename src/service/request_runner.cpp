#include "service/request_runner.hpp"

#include <chrono>
#include <istream>
#include <ostream>
#include <string>

#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "service/request_codec.hpp"

namespace rta::service {

RunnerStats run_request_stream(AdmissionSession& session, std::istream& in,
                               std::ostream& out) {
  return run_request_stream(session, in, out, Envelope::kV2);
}

RunnerStats run_request_stream(AdmissionSession& session, std::istream& in,
                               std::ostream& out, Envelope envelope) {
  RunnerStats stats;
  obs::Histogram latency;
  obs::MetricsRegistry* metrics = session.config().analysis.observer.metrics;
  obs::Tracer* tracer = session.config().analysis.observer.tracer;
  if (metrics != nullptr) {
    latency = metrics->histogram("service.request_us",
                                 obs::MetricsRegistry::latency_buckets_us());
  }

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Skip blanks and comment lines without a response.
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;

    json::Value response;
    if (envelope == Envelope::kV2) response.set("schema_version", 2);
    response.set("request", stats.requests + 1);
    response.set("line", line_no);

    const auto start = std::chrono::steady_clock::now();
    const detail::ParsedRequest req = detail::parse_request(line);
    if (!req.op.empty()) response.set("op", req.op);
    if (req.has_tenant) response.set("tenant", req.tenant);
    const std::string trace_id = req.trace_id.empty()
                                     ? obs::mint_trace_id(line_no, line)
                                     : req.trace_id;
    response.set("trace_id", trace_id);
    if (req.cls == detail::RequestClass::kImmediate) {
      detail::set_error(response, envelope, "bad_request", req.error,
                        /*retryable=*/false);
      ++stats.errors;
    } else {
      obs::Tracer::Span req_span = obs::Tracer::span_if(
          tracer, "service.request",
          tracer != nullptr
              ? "{\"trace_id\": " + json::Value(trace_id).dump() +
                    ", \"op\": \"" + req.op + "\"}"
              : std::string());
      // Fail-safe isolation: a throwing request yields an error response
      // for its line, never a terminated stream.
      bool ok = false;
      try {
        obs::Tracer::Span class_span = obs::Tracer::span_if(
            tracer, req.cls == detail::RequestClass::kMutate
                        ? "service.mutate"
                        : "service.read");
        ok = detail::execute_request(session, req, response,
                                     /*fast_reads=*/false, envelope);
      } catch (const std::exception& e) {
        detail::set_error(response, envelope, "internal",
                          std::string("request failed: ") + e.what(),
                          /*retryable=*/false);
        ++stats.failures;
      } catch (...) {
        detail::set_error(response, envelope, "internal",
                          "request failed: unknown exception",
                          /*retryable=*/false);
        ++stats.failures;
      }
      if (!ok) ++stats.errors;
    }
    const std::chrono::duration<double, std::micro> us =
        std::chrono::steady_clock::now() - start;
    latency.observe(us.count());
    response.set("latency_us", us.count());

    out << response.dump() << "\n";
    ++stats.requests;
  }
  out.flush();
  return stats;
}

}  // namespace rta::service
