#include "service/request_runner.hpp"

#include <chrono>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "io/system_json.hpp"
#include "obs/metrics.hpp"

namespace rta::service {

namespace {

json::Value time_value(Time t) {
  if (std::isinf(t)) return json::Value("inf");
  return json::Value(t);
}

/// Latency buckets in microseconds: 10us .. ~40ms, exponential.
const std::vector<double>& latency_buckets() {
  static const std::vector<double> buckets = [] {
    std::vector<double> b;
    for (double edge = 10.0; edge <= 50000.0; edge *= 2.0) b.push_back(edge);
    return b;
  }();
  return buckets;
}

void decision_into(json::Value& response, const Decision& d) {
  response.set("ok", d.ok);
  if (!d.error.empty()) response.set("error", d.error);
  response.set("admitted", d.admitted);
  response.set("committed", d.committed);
  response.set("incremental", d.incremental);
  response.set("job_id", static_cast<double>(d.job_id));
  response.set("dirty_subjobs", d.dirty_subjobs);
  response.set("total_subjobs", d.total_subjobs);
  if (d.ok) {
    response.set("schedulable", d.analysis.all_schedulable());
    response.set("max_wcrt", time_value(d.analysis.max_wcrt()));
    response.set("horizon", time_value(d.analysis.horizon));
  }
}

}  // namespace

RunnerStats run_request_stream(AdmissionSession& session, std::istream& in,
                               std::ostream& out) {
  RunnerStats stats;
  obs::Histogram latency;
  obs::MetricsRegistry* metrics = session.config().analysis.observer.metrics;
  if (metrics != nullptr) {
    latency = metrics->histogram("service.request_us", latency_buckets());
  }

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Skip blanks and comment lines without a response.
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;

    json::Value response;
    response.set("request", stats.requests + 1);
    response.set("line", line_no);

    auto respond_error = [&](const std::string& message) {
      response.set("ok", false);
      response.set("error", message);
      ++stats.errors;
    };

    const json::ParseResult doc = json::parse(line);
    if (!doc.ok) {
      respond_error("bad request json: " + doc.error);
      out << response.dump() << "\n";
      ++stats.requests;
      continue;
    }
    const json::Value* op = doc.value.find("op");
    if (op == nullptr || !op->is_string()) {
      respond_error("missing string 'op'");
      out << response.dump() << "\n";
      ++stats.requests;
      continue;
    }
    response.set("op", op->as_string());

    const auto start = std::chrono::steady_clock::now();
    if (op->as_string() == "admit" || op->as_string() == "what_if") {
      const json::Value* jv = doc.value.find("job");
      Job job;
      std::string error;
      bool saw_priority = false;
      if (jv == nullptr) {
        respond_error("missing 'job'");
      } else if (!parse_job_json(*jv, job, error, &saw_priority)) {
        respond_error("bad job: " + error);
      } else {
        if (!saw_priority) assign_lowest_priorities(session.system(), job);
        const Decision d = op->as_string() == "admit"
                               ? session.admit(std::move(job))
                               : session.what_if(std::move(job));
        decision_into(response, d);
        if (!d.ok) ++stats.errors;
      }
    } else if (op->as_string() == "remove") {
      const json::Value* id = doc.value.find("job_id");
      const json::Value* name = doc.value.find("name");
      std::uint64_t job_id = 0;
      bool have_id = false;
      if (id != nullptr && id->is_number() && id->as_number() >= 0.0) {
        job_id = static_cast<std::uint64_t>(id->as_number());
        have_id = true;
      } else if (name != nullptr && name->is_string()) {
        const int k = session.system().job_index_by_name(name->as_string());
        if (k >= 0) {
          job_id = session.system().job(k).id;
          have_id = true;
        } else {
          respond_error("no job named '" + name->as_string() + "'");
        }
      } else {
        respond_error("remove needs 'job_id' or 'name'");
      }
      if (have_id) {
        const Decision d = session.remove(job_id);
        decision_into(response, d);
        if (!d.ok) ++stats.errors;
      }
    } else if (op->as_string() == "query") {
      const AnalysisResult& r = session.last();
      response.set("ok", r.ok);
      if (!r.error.empty()) response.set("error", r.error);
      response.set("jobs", session.system().job_count());
      response.set("schedulable", r.all_schedulable());
      response.set("max_wcrt", time_value(r.max_wcrt()));
      response.set("horizon", time_value(r.horizon));
      if (!r.ok) ++stats.errors;
    } else {
      respond_error("unknown op '" + op->as_string() +
                    "' (admit, what_if, remove, query)");
    }
    const std::chrono::duration<double, std::micro> us =
        std::chrono::steady_clock::now() - start;
    latency.observe(us.count());
    response.set("latency_us", us.count());

    out << response.dump() << "\n";
    ++stats.requests;
  }
  out.flush();
  return stats;
}

}  // namespace rta::service
