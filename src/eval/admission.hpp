// Admission-probability experiments (paper §5).
//
// For each utilization point, `trials` random job sets are generated
// (identical sets across methods and, draw-for-draw, across utilizations);
// each analysis method admits a set iff every job's response-time bound
// meets its deadline. The admission probability is the admitted fraction.
// Trials run in parallel with per-trial deterministic RNG streams, so
// results are independent of the worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/result.hpp"
#include "workload/jobshop.hpp"

namespace rta {

/// The analysis methods of §5.1 (plus SPP/App, our ablation of the bounds
/// machinery on preemptive processors).
enum class Method {
  kSppExact,  ///< §4.1 exact analysis, SPP scheduling
  kSppSL,     ///< Sun & Liu holistic baseline, SPP scheduling
  kSpnpApp,   ///< §4.2.2 bounds, SPNP scheduling
  kFcfsApp,   ///< §4.2.3 bounds, FCFS scheduling
  kSppApp,    ///< §4.2.2 bounds with b = 0, SPP scheduling (ablation)
};

[[nodiscard]] const char* method_name(Method m);
[[nodiscard]] SchedulerKind method_scheduler(Method m);

/// Analyze `system` (schedulers already set, priorities already assigned)
/// with `method`. For kSppSL on non-periodic arrivals the result has
/// ok == false (the baseline does not apply, §5.2).
[[nodiscard]] AnalysisResult analyze_with(Method method, const System& system,
                                          const AnalysisConfig& config);

/// One cell of an admission-probability table.
struct AdmissionPoint {
  double utilization = 0.0;
  Method method = Method::kSppExact;
  std::size_t admitted = 0;
  std::size_t trials = 0;

  [[nodiscard]] double probability() const {
    return trials ? static_cast<double>(admitted) / static_cast<double>(trials)
                  : 0.0;
  }
};

struct AdmissionConfig {
  JobShopConfig shop;  ///< utilization and scheduler overridden per point
  std::vector<double> utilizations;
  std::vector<Method> methods;
  std::size_t trials = 1000;
  std::uint64_t seed = 42;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  AnalysisConfig analysis;
};

/// Run the full grid; returns utilizations.size() * methods.size() points in
/// (utilization-major, method-minor) order.
[[nodiscard]] std::vector<AdmissionPoint> run_admission_experiment(
    const AdmissionConfig& config);

}  // namespace rta
