// Admission-probability experiments (paper §5).
//
// For each utilization point, `trials` random job sets are generated
// (identical sets across methods and, draw-for-draw, across utilizations);
// each analysis method admits a set iff every job's response-time bound
// meets its deadline. The admission probability is the admitted fraction.
// Trials run in parallel with per-trial deterministic RNG streams, so
// results are independent of the worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/analyzer.hpp"  // Method, method_name, analyze_with
#include "analysis/result.hpp"
#include "workload/jobshop.hpp"

namespace rta {

/// One cell of an admission-probability table.
struct AdmissionPoint {
  double utilization = 0.0;
  Method method = Method::kSppExact;
  std::size_t admitted = 0;
  std::size_t trials = 0;

  [[nodiscard]] double probability() const {
    return trials ? static_cast<double>(admitted) / static_cast<double>(trials)
                  : 0.0;
  }
};

struct AdmissionConfig {
  JobShopConfig shop;  ///< utilization and scheduler overridden per point
  std::vector<double> utilizations;
  std::vector<Method> methods;
  std::size_t trials = 1000;
  std::uint64_t seed = 42;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  AnalysisConfig analysis;
};

/// Run the full grid; returns utilizations.size() * methods.size() points in
/// (utilization-major, method-minor) order.
[[nodiscard]] std::vector<AdmissionPoint> run_admission_experiment(
    const AdmissionConfig& config);

}  // namespace rta
