#include "eval/experiment.hpp"

#include <atomic>
#include <thread>

#include "analysis/analyzer.hpp"
#include "model/priority.hpp"
#include "util/thread_pool.hpp"

namespace rta {

std::vector<AdmissionPoint> run_admission_experiment(
    const AdmissionConfig& config) {
  const std::size_t u_count = config.utilizations.size();
  const std::size_t m_count = config.methods.size();

  std::vector<AdmissionPoint> points(u_count * m_count);
  for (std::size_t ui = 0; ui < u_count; ++ui) {
    for (std::size_t mi = 0; mi < m_count; ++mi) {
      AdmissionPoint& p = points[ui * m_count + mi];
      p.utilization = config.utilizations[ui];
      p.method = config.methods[mi];
      p.trials = config.trials;
    }
  }

  std::vector<std::atomic<std::size_t>> admitted(u_count * m_count);
  for (auto& a : admitted) a.store(0, std::memory_order_relaxed);

  const RngFactory factory(config.seed);
  const std::size_t workers = config.threads
                                  ? config.threads
                                  : std::thread::hardware_concurrency();
  ThreadPool pool(workers ? workers : 1);

  pool.parallel_for_index(config.trials, [&](std::size_t trial) {
    for (std::size_t ui = 0; ui < u_count; ++ui) {
      // Same trial index -> same random draws; utilization only scales
      // execution times, so the job set is comparable across the sweep.
      Rng rng = factory.stream(trial);
      JobShopConfig shop = config.shop;
      shop.utilization = config.utilizations[ui];
      const System base = generate_jobshop(shop, rng);

      for (std::size_t mi = 0; mi < m_count; ++mi) {
        const Method method = config.methods[mi];
        System system = base;
        for (int p = 0; p < system.processor_count(); ++p) {
          system.set_scheduler(p, method_scheduler(method));
        }
        assign_proportional_deadline_monotonic(system);
        const AnalysisResult result =
            analyze_with(method, system, config.analysis);
        if (result.ok && result.all_schedulable()) {
          admitted[ui * m_count + mi].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].admitted = admitted[i].load(std::memory_order_relaxed);
  }
  return points;
}

}  // namespace rta
