#include "eval/validation.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/result.hpp"
#include "sim/simulator.hpp"

namespace rta {

double ValidationReport::max_slack() const {
  double worst = -kTimeInfinity;
  for (const JobValidation& j : jobs) {
    if (std::isinf(j.analyzed_bound) || std::isinf(j.simulated_worst)) continue;
    worst = std::max(worst, j.analyzed_bound - j.simulated_worst);
  }
  return worst;
}

double ValidationReport::min_slack() const {
  double best = kTimeInfinity;
  for (const JobValidation& j : jobs) {
    if (std::isinf(j.analyzed_bound)) continue;  // infinite bound never lies
    if (std::isinf(j.simulated_worst)) return -kTimeInfinity;
    best = std::min(best, j.analyzed_bound - j.simulated_worst);
  }
  return best;
}

ValidationReport validate_method(Method method, const System& system,
                                 const AnalysisConfig& config) {
  ValidationReport report;
  report.method = method;

  const AnalysisResult analysis = analyze_with(method, system, config);
  report.analysis_ok = analysis.ok;
  report.error = analysis.error;
  if (!analysis.ok) return report;

  const Time horizon = analysis.horizon > 0.0
                           ? analysis.horizon
                           : default_horizon(system, config);
  const SimResult sim = simulate(system, horizon);

  report.jobs.reserve(system.job_count());
  for (int k = 0; k < system.job_count(); ++k) {
    JobValidation jv;
    jv.job_name = system.job(k).name;
    jv.deadline = system.job(k).deadline;
    jv.simulated_worst = sim.worst_response[k];
    jv.analyzed_bound = analysis.jobs[k].wcrt;
    report.jobs.push_back(std::move(jv));
  }
  return report;
}

}  // namespace rta
