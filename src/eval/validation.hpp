// Simulation-vs-analysis validation harness.
//
// Runs the discrete-event simulator and the applicable analyzers on the same
// system, and reports, per job, the observed worst response next to each
// method's bound. Used by tests (the bounds must dominate the observation;
// the exact SPP analysis must match it) and by bench/sim_vs_analysis.
#pragma once

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/result.hpp"
#include "model/system.hpp"

namespace rta {

struct JobValidation {
  std::string job_name;
  Time deadline = 0.0;
  Time simulated_worst = 0.0;  ///< worst observed end-to-end response
  Time analyzed_bound = 0.0;   ///< the method's WCRT bound
};

struct ValidationReport {
  Method method = Method::kSppExact;
  bool analysis_ok = false;
  std::string error;
  std::vector<JobValidation> jobs;

  /// Largest (bound - observed); negative means the bound was violated.
  [[nodiscard]] double max_slack() const;
  /// Smallest (bound - observed); negative means the bound was violated.
  [[nodiscard]] double min_slack() const;
  [[nodiscard]] bool bounds_hold() const { return min_slack() >= -1e-6; }
};

/// Validate one method on one system (schedulers must match the method).
/// The simulation horizon is taken from the analysis result (so both see the
/// same instances).
[[nodiscard]] ValidationReport validate_method(Method method,
                                               const System& system,
                                               const AnalysisConfig& config);

}  // namespace rta
