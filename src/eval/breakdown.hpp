// Breakdown utilization: the classic scalar summary of an analysis method's
// usable capacity. For one generated job set, the breakdown utilization of a
// method is the largest utilization knob at which the method still admits
// the set (execution times scale linearly with the knob, Eq. 26/28, so
// admission is monotone and bisection applies). Higher is better; the gap
// between methods integrates the admission-probability curves of Figures
// 3/4 into one number per trial.
#pragma once

#include <cstdint>

#include "analysis/analyzer.hpp"
#include "analysis/result.hpp"
#include "workload/jobshop.hpp"

namespace rta {

struct BreakdownConfig {
  double lo = 0.05;   ///< knob known (assumed) admissible if anything is
  double hi = 2.5;    ///< knob assumed inadmissible
  double tol = 0.02;  ///< bisection stops at this knob resolution
  AnalysisConfig analysis;
};

/// Breakdown utilization of `method` on the job set drawn with `seed` from
/// `shop` (the shop's own utilization field is ignored). Returns 0 when
/// even `lo` is rejected.
[[nodiscard]] double breakdown_utilization(const JobShopConfig& shop,
                                           Method method, std::uint64_t seed,
                                           const BreakdownConfig& config = {});

}  // namespace rta
