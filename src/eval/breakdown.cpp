#include "eval/breakdown.hpp"

#include "model/priority.hpp"

namespace rta {

namespace {

bool admits_at(const JobShopConfig& shop, Method method, std::uint64_t seed,
               double utilization, const AnalysisConfig& analysis) {
  JobShopConfig cfg = shop;
  cfg.utilization = utilization;
  cfg.scheduler = method_scheduler(method);
  // Same seed -> same draws: the set is identical across knob values except
  // for the linear execution-time scaling.
  Rng rng(seed);
  System sys = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(sys);
  const AnalysisResult r = analyze_with(method, sys, analysis);
  return r.ok && r.all_schedulable();
}

}  // namespace

double breakdown_utilization(const JobShopConfig& shop, Method method,
                             std::uint64_t seed,
                             const BreakdownConfig& config) {
  double lo = config.lo;
  double hi = config.hi;
  if (!admits_at(shop, method, seed, lo, config.analysis)) return 0.0;
  if (admits_at(shop, method, seed, hi, config.analysis)) return hi;
  while (hi - lo > config.tol) {
    const double mid = 0.5 * (lo + hi);
    if (admits_at(shop, method, seed, mid, config.analysis)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace rta
