#include "workload/jobshop.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <vector>

namespace rta {

System generate_jobshop(const JobShopConfig& config, Rng& rng) {
  assert(config.stages >= 1);
  assert(config.processors_per_stage >= 1);
  assert(config.jobs >= 1);
  const int proc_count =
      static_cast<int>(config.stages * config.processors_per_stage);
  System system(proc_count, config.scheduler);

  // Rates x_k ~ U(0,1), bounded away from 0 so periods 1/x stay finite-ish.
  std::vector<double> rate(config.jobs);
  for (double& x : rate) x = rng.uniform_open(config.min_rate, 1.0);

  // Stage assignment: one processor per stage per job.
  std::vector<std::vector<int>> assigned(config.jobs,
                                         std::vector<int>(config.stages));
  for (std::size_t k = 0; k < config.jobs; ++k) {
    for (std::size_t s = 0; s < config.stages; ++s) {
      const int q =
          rng.uniform_int(0, static_cast<int>(config.processors_per_stage) - 1);
      assigned[k][s] =
          static_cast<int>(s * config.processors_per_stage) + q;
    }
  }

  // Weights w_{k,j} ~ U(0,1) and the per-processor normalization of
  // Eq. 26 / Eq. 28: tau_{k,j} = w_{k,j} (1/x_k) / sum_{P(l,i)=P(k,j)}
  // w_{l,i} (1/x_l) * Utilization.
  std::vector<std::vector<double>> weight(config.jobs,
                                          std::vector<double>(config.stages));
  for (auto& row : weight) {
    for (double& w : row) w = rng.uniform_open(0.0, 1.0);
  }
  std::vector<double> denom(proc_count, 0.0);
  for (std::size_t k = 0; k < config.jobs; ++k) {
    for (std::size_t s = 0; s < config.stages; ++s) {
      denom[assigned[k][s]] += weight[k][s] / rate[k];
    }
  }

  // Generation window: a fixed number of the longest period.
  double max_period = 0.0;
  for (double x : rate) max_period = std::max(max_period, 1.0 / x);
  const Time window = config.window_periods * max_period;

  for (std::size_t k = 0; k < config.jobs; ++k) {
    Job job;
    job.name = "T" + std::to_string(k + 1);
    const double period = 1.0 / rate[k];

    double total_exec = 0.0;
    for (std::size_t s = 0; s < config.stages; ++s) {
      Subjob sj;
      sj.processor = assigned[k][s];
      sj.exec_time = weight[k][s] / rate[k] / denom[assigned[k][s]] *
                     config.utilization;
      total_exec += sj.exec_time;
      job.chain.push_back(sj);
    }

    switch (config.pattern) {
      case ArrivalPattern::kPeriodic:
        job.arrivals = ArrivalSequence::periodic(period, window);
        job.deadline = config.deadline.period_multiple * period;
        break;
      case ArrivalPattern::kAperiodic: {
        job.arrivals = ArrivalSequence::bursty_eq27(rate[k], window);
        // Deadline = best-case response + Gamma(mean, variance) slack, with
        // the draw scaled by the job's asymptotic period so it is
        // commensurate with its timescale. Shifting by the best case (the
        // chain's total execution time) keeps every draw feasible; without
        // the shift, high-variance draws land below the best-case response
        // and trivially reject the set no matter which analysis is used,
        // drowning the signal the paper reports (variance having little
        // effect). Documented in DESIGN.md's substitutions.
        const double draw =
            rng.gamma_mean_var(config.deadline.mean, config.deadline.variance);
        job.deadline = total_exec + draw * period;
        break;
      }
    }
    system.add_job(std::move(job));
  }
  return system;
}

}  // namespace rta
