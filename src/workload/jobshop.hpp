// The paper's evaluation workload: a job shop of stages (§5.1, Figure 2).
//
// The shop is a sequence of stages, each holding a number of processors.
// Every job traverses the stages in order and executes on one (randomly
// assigned) processor per stage. Release times follow Eq. 25 (periodic) or
// Eq. 27 (bursty aperiodic); execution times follow Eq. 26 / Eq. 28, scaled
// so the per-processor demand tracks the target utilization; deadlines are
// a multiple of the period (periodic case) or drawn from a distribution with
// configurable mean and variance (aperiodic case, Figure 4's panel grid).
#pragma once

#include <cstddef>

#include "model/system.hpp"
#include "util/rng.hpp"

namespace rta {

/// Arrival pattern for the generated job set.
enum class ArrivalPattern {
  kPeriodic,   ///< Eq. 25: t_m = (m-1)/x,          x ~ U(0,1)
  kAperiodic,  ///< Eq. 27: t_m = sqrt(x^2+(m-1)^2)/x - 1
};

/// Deadline model.
struct DeadlineModel {
  /// Periodic case: deadline = multiple * period.
  double period_multiple = 2.0;
  /// Aperiodic case: deadline ~ Gamma(mean, variance), clamped to at least
  /// the job's total execution time (a smaller deadline is trivially
  /// unschedulable noise). The paper uses an exponential distribution, which
  /// is Gamma with variance = mean^2; Figure 4 varies mean and variance
  /// independently, so we expose both.
  double mean = 4.0;
  double variance = 16.0;
};

/// Generator parameters.
struct JobShopConfig {
  std::size_t stages = 4;
  std::size_t processors_per_stage = 2;
  std::size_t jobs = 6;
  ArrivalPattern pattern = ArrivalPattern::kPeriodic;
  DeadlineModel deadline;
  /// Target utilization knob of Eq. 26 / Eq. 28.
  double utilization = 0.5;
  /// Generation window as a multiple of the largest job period 1/x.
  double window_periods = 10.0;
  /// Scheduler installed on every processor.
  SchedulerKind scheduler = SchedulerKind::kSpp;
  /// Rejection floor for x ~ U(0,1): avoids pathologically long periods
  /// (1/x explodes as x -> 0), matching the paper's bounded experiments.
  double min_rate = 0.05;
};

/// Generate a random job-shop system. Priorities are NOT assigned; callers
/// apply a policy from model/priority.hpp (the paper uses
/// assign_proportional_deadline_monotonic).
[[nodiscard]] System generate_jobshop(const JobShopConfig& config, Rng& rng);

}  // namespace rta
