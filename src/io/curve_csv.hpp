// CSV export of piecewise-linear curves, for plotting and inspection.
#pragma once

#include <iosfwd>
#include <string>

#include "curve/pwl_curve.hpp"

namespace rta {

/// Write the exact knot structure: header "t,left,right", one row per knot.
void write_curve_knots_csv(const PwlCurve& curve, std::ostream& os);

/// Write a dense sampling suited to line plots: header "t,value", rows at
/// `samples` evenly spaced instants plus every knot (so jumps are preserved
/// as consecutive rows with equal t and differing value).
void write_curve_samples_csv(const PwlCurve& curve, std::ostream& os,
                             std::size_t samples = 200);

/// Convenience: knot CSV to string.
[[nodiscard]] std::string curve_knots_csv(const PwlCurve& curve);

/// Convenience: save sampled CSV to a file; false on I/O failure.
bool save_curve_csv(const PwlCurve& curve, const std::string& path,
                    std::size_t samples = 200);

}  // namespace rta
