#include "io/curve_csv.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

namespace rta {

void write_curve_knots_csv(const PwlCurve& curve, std::ostream& os) {
  os << "t,left,right\n";
  os.precision(17);
  const CurveView v = curve.view();
  for (std::size_t i = 0; i < v.n; ++i) {
    os << v.t[i] << "," << v.l[i] << "," << v.r[i] << "\n";
  }
}

void write_curve_samples_csv(const PwlCurve& curve, std::ostream& os,
                             std::size_t samples) {
  os << "t,value\n";
  os.precision(12);
  std::vector<Time> grid;
  grid.reserve(samples + curve.knot_count());
  const Time h = curve.horizon();
  for (std::size_t i = 0; i <= samples; ++i) {
    grid.push_back(h * static_cast<double>(i) / static_cast<double>(samples));
  }
  const CurveView v = curve.view();
  for (std::size_t i = 0; i < v.n; ++i) grid.push_back(v.t[i]);
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end(),
                         [](Time a, Time b) { return time_eq(a, b); }),
             grid.end());
  for (Time t : grid) {
    const double left = curve.eval_left(t);
    const double right = curve.eval(t);
    if (std::abs(left - right) > kValueEps) {
      os << t << "," << left << "\n";  // jump: emit both sides
    }
    os << t << "," << right << "\n";
  }
}

std::string curve_knots_csv(const PwlCurve& curve) {
  std::ostringstream ss;
  write_curve_knots_csv(curve, ss);
  return ss.str();
}

bool save_curve_csv(const PwlCurve& curve, const std::string& path,
                    std::size_t samples) {
  std::ofstream os(path);
  if (!os) return false;
  write_curve_samples_csv(curve, os, samples);
  return os.good();
}

}  // namespace rta
