// Versioned JSON serialization of System models and AnalysisResults.
//
// Wire format (schema_version 1; docs/api.md has the full field reference):
//
//   {
//     "schema_version": 1,
//     "processors": [{"scheduler": "SPP"}, {"scheduler": "FCFS"}],
//     "jobs": [
//       {"id": 1, "name": "control", "deadline": 3,
//        "chain": [{"processor": 0, "exec": 0.4, "priority": 1}],
//        "arrivals": [0, 4, 8]}
//     ]
//   }
//
// Arrival sequences are written as explicit release instants, mirroring
// to_system_text(): the model does not retain generator parameters, so the
// *semantics* round-trip exactly. Numbers use %.17g, so doubles survive
// save -> load bit-identically and JSON and text round-trips agree
// (tests/test_system_json.cpp). Unlike the text format, stable Job::ids are
// carried, so delta-based services (service/AdmissionSession) can address
// jobs across a save/load boundary.
//
// AnalysisResult uses the same envelope ("schema_version", then the result
// fields). Unbounded times serialize as the string "inf" (JSON has no
// Infinity literal). Retained per-subjob curves are NOT serialized -- only
// bounds and verdicts; load_result_json() reports curves as absent.
//
// Parsers never throw and reject unknown schema_versions with an error that
// names the supported version.
#pragma once

#include <string>

#include "analysis/result.hpp"
#include "io/json.hpp"
#include "io/system_text.hpp"  // ParsedSystem
#include "model/system.hpp"

namespace rta {

/// The schema_version both serializers write and the parsers accept.
inline constexpr int kSystemJsonSchemaVersion = 1;

/// Serialize a system (pretty-printed; stable field order).
[[nodiscard]] std::string to_system_json(const System& system);

/// Parse a system from JSON text; validates like parse_system_text.
[[nodiscard]] ParsedSystem parse_system_json(const std::string& text);

/// Parse one job object ({"name", "deadline", "chain", "arrivals"[, "id"]}).
/// Used by the system parser and by the admission service's request stream.
/// `saw_priority` (optional) reports whether any hop carried an explicit
/// "priority" member -- the service assigns lowest priorities when none did.
[[nodiscard]] bool parse_job_json(const json::Value& value, Job& out,
                                  std::string& error,
                                  bool* saw_priority = nullptr);

/// Serialize one job as the object parse_job_json accepts.
[[nodiscard]] json::Value job_to_json(const Job& job);

/// Load a system from a .json file; error mentions the path on failure.
[[nodiscard]] ParsedSystem load_system_json_file(const std::string& path);

/// Save a system as pretty-printed JSON; false on I/O failure.
bool save_system_json_file(const System& system, const std::string& path);

/// Serialize an analysis result. `compact` emits a one-liner (the service's
/// JSONL responses); otherwise pretty-printed.
[[nodiscard]] std::string to_result_json(const AnalysisResult& result,
                                         bool compact = false);

/// Outcome of parsing a serialized AnalysisResult.
struct ParsedResult {
  bool ok = false;    ///< parse succeeded (the result itself may have !ok)
  std::string error;  ///< parse diagnostic when !ok
  AnalysisResult result;
};

/// Parse an analysis result (inverse of to_result_json, minus curves).
[[nodiscard]] ParsedResult parse_result_json(const std::string& text);

}  // namespace rta
