#include "io/system_text.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace rta {

namespace {

/// Tokenizer state for one parse run.
struct Parser {
  std::istream& in;
  int line_no = 0;
  std::string error;

  explicit Parser(std::istream& stream) : in(stream) {}

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = "line " + std::to_string(line_no) + ": " + msg;
    }
    return false;
  }

  /// Next non-empty, comment-stripped line split into tokens; false at EOF.
  bool next_line(std::vector<std::string>& tokens) {
    std::string line;
    while (std::getline(in, line)) {
      ++line_no;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ss(line);
      tokens.clear();
      std::string tok;
      while (ss >> tok) tokens.push_back(tok);
      if (!tokens.empty()) return true;
    }
    return false;
  }
};

bool parse_double(const std::string& tok, double& out) {
  std::size_t pos = 0;
  try {
    out = std::stod(tok, &pos);
  } catch (...) {
    return false;
  }
  return pos == tok.size();
}

bool parse_int(const std::string& tok, int& out) {
  std::size_t pos = 0;
  try {
    out = std::stoi(tok, &pos);
  } catch (...) {
    return false;
  }
  return pos == tok.size();
}

/// Read "key value key value ..." pairs from tokens[start..].
bool parse_kv(Parser& p, const std::vector<std::string>& tokens,
              std::size_t start, std::map<std::string, std::string>& kv) {
  if ((tokens.size() - start) % 2 != 0) {
    return p.fail("expected key/value pairs after '" + tokens[start - 1] +
                  "'");
  }
  for (std::size_t i = start; i + 1 < tokens.size(); i += 2) {
    kv[tokens[i]] = tokens[i + 1];
  }
  return true;
}

bool require_double(Parser& p, std::map<std::string, std::string>& kv,
                    const std::string& key, double& out) {
  auto it = kv.find(key);
  if (it == kv.end()) return p.fail("missing '" + key + "'");
  if (!parse_double(it->second, out)) {
    return p.fail("bad number for '" + key + "': " + it->second);
  }
  return true;
}

bool parse_arrivals(Parser& p, const std::vector<std::string>& tokens,
                    ArrivalSequence& out) {
  if (tokens.size() < 2) return p.fail("arrivals: missing kind");
  const std::string& kind = tokens[1];

  if (kind == "explicit") {
    std::vector<Time> times;
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      double t = 0.0;
      if (!parse_double(tokens[i], t)) {
        return p.fail("arrivals explicit: bad instant '" + tokens[i] + "'");
      }
      times.push_back(t);
    }
    if (times.empty()) return p.fail("arrivals explicit: no instants");
    for (std::size_t i = 1; i < times.size(); ++i) {
      if (times[i] < times[i - 1]) {
        return p.fail("arrivals explicit: instants must be nondecreasing");
      }
    }
    if (times.front() < 0.0) {
      return p.fail("arrivals explicit: negative release time");
    }
    out = ArrivalSequence(std::move(times));
    return true;
  }

  std::map<std::string, std::string> kv;
  if (!parse_kv(p, tokens, 2, kv)) return false;

  if (kind == "periodic") {
    double period = 0.0, window = 0.0, offset = 0.0;
    if (!require_double(p, kv, "period", period)) return false;
    if (!require_double(p, kv, "window", window)) return false;
    if (kv.count("offset") && !require_double(p, kv, "offset", offset)) {
      return false;
    }
    if (period <= 0.0) return p.fail("arrivals periodic: period must be > 0");
    if (window < offset) return p.fail("arrivals periodic: window < offset");
    out = ArrivalSequence::periodic(period, window, offset);
    return true;
  }
  if (kind == "bursty") {
    double x = 0.0, window = 0.0;
    if (!require_double(p, kv, "x", x)) return false;
    if (!require_double(p, kv, "window", window)) return false;
    if (x <= 0.0 || x >= 1.0) {
      return p.fail("arrivals bursty: x must be in (0,1)");
    }
    out = ArrivalSequence::bursty_eq27(x, window);
    return true;
  }
  if (kind == "burst") {
    double count = 0.0, gap = 0.0, period = 0.0, window = 0.0;
    if (!require_double(p, kv, "count", count)) return false;
    if (!require_double(p, kv, "gap", gap)) return false;
    if (!require_double(p, kv, "period", period)) return false;
    if (!require_double(p, kv, "window", window)) return false;
    if (count < 1.0 || gap <= 0.0 || period < gap) {
      return p.fail("arrivals burst: need count >= 1, gap > 0, period >= gap");
    }
    out = ArrivalSequence::burst_then_periodic(
        static_cast<std::size_t>(count), gap, period, window);
    return true;
  }
  return p.fail("unknown arrival kind '" + kind + "'");
}

std::optional<SchedulerKind> scheduler_from_name(const std::string& name) {
  if (name == "SPP") return SchedulerKind::kSpp;
  if (name == "SPNP") return SchedulerKind::kSpnp;
  if (name == "FCFS") return SchedulerKind::kFcfs;
  return std::nullopt;
}

}  // namespace

ParsedSystem parse_system_text(std::istream& in) {
  ParsedSystem result;
  Parser p(in);
  std::vector<std::string> tokens;

  int processor_count = -1;
  std::vector<SchedulerKind> schedulers;
  struct PendingJob {
    Job job;
    bool has_arrivals = false;
  };
  std::optional<PendingJob> current;
  std::vector<Job> jobs;

  auto finish_job = [&]() -> bool {
    if (!current) return p.fail("'end' without a job");
    if (current->job.chain.empty()) {
      return p.fail("job '" + current->job.name + "' has no hops");
    }
    if (!current->has_arrivals) {
      return p.fail("job '" + current->job.name + "' has no arrivals");
    }
    jobs.push_back(std::move(current->job));
    current.reset();
    return true;
  };

  while (p.next_line(tokens)) {
    const std::string& head = tokens[0];

    if (head == "processors") {
      if (tokens.size() != 2 || !parse_int(tokens[1], processor_count) ||
          processor_count <= 0) {
        p.fail("expected 'processors <positive count>'");
        break;
      }
      schedulers.assign(processor_count, SchedulerKind::kSpp);
    } else if (head == "scheduler") {
      int proc = -1;
      if (tokens.size() != 3 || !parse_int(tokens[1], proc)) {
        p.fail("expected 'scheduler <processor> <SPP|SPNP|FCFS>'");
        break;
      }
      if (processor_count < 0) {
        p.fail("'scheduler' before 'processors'");
        break;
      }
      if (proc < 0 || proc >= processor_count) {
        p.fail("scheduler: processor index out of range");
        break;
      }
      const auto kind = scheduler_from_name(tokens[2]);
      if (!kind) {
        p.fail("unknown scheduler '" + tokens[2] + "'");
        break;
      }
      schedulers[proc] = *kind;
    } else if (head == "job") {
      if (current) {
        p.fail("nested 'job' (missing 'end'?)");
        break;
      }
      if (tokens.size() != 4 || tokens[2] != "deadline") {
        p.fail("expected 'job <name> deadline <value>'");
        break;
      }
      PendingJob pj;
      pj.job.name = tokens[1];
      if (!parse_double(tokens[3], pj.job.deadline) ||
          pj.job.deadline <= 0.0) {
        p.fail("bad deadline '" + tokens[3] + "'");
        break;
      }
      current = std::move(pj);
    } else if (head == "hop") {
      if (!current) {
        p.fail("'hop' outside a job");
        break;
      }
      // hop <proc> exec <time> [prio <n>]
      Subjob sub;
      bool ok = tokens.size() >= 4 && parse_int(tokens[1], sub.processor) &&
                tokens[2] == "exec" && parse_double(tokens[3], sub.exec_time);
      if (ok && tokens.size() == 6 && tokens[4] == "prio") {
        ok = parse_int(tokens[5], sub.priority);
      } else if (ok && tokens.size() != 4) {
        ok = false;
      }
      if (!ok) {
        p.fail("expected 'hop <proc> exec <time> [prio <n>]'");
        break;
      }
      if (sub.exec_time <= 0.0) {
        p.fail("hop: execution time must be > 0");
        break;
      }
      current->job.chain.push_back(sub);
    } else if (head == "arrivals") {
      if (!current) {
        p.fail("'arrivals' outside a job");
        break;
      }
      if (current->has_arrivals) {
        p.fail("duplicate 'arrivals' in job '" + current->job.name + "'");
        break;
      }
      if (!parse_arrivals(p, tokens, current->job.arrivals)) break;
      current->has_arrivals = true;
    } else if (head == "end") {
      if (!finish_job()) break;
    } else {
      p.fail("unknown directive '" + head + "'");
      break;
    }
  }

  if (p.error.empty() && current) {
    p.fail("unterminated job '" + current->job.name + "'");
  }
  if (p.error.empty() && processor_count < 0) {
    p.fail("missing 'processors' directive");
  }

  if (!p.error.empty()) {
    result.error = p.error;
    return result;
  }

  System system(processor_count);
  for (int i = 0; i < processor_count; ++i) {
    system.set_scheduler(i, schedulers[i]);
  }
  for (Job& j : jobs) system.add_job(std::move(j));

  const auto problems = system.validate();
  if (!problems.empty()) {
    result.error = "invalid system: " + problems.front();
    return result;
  }
  result.ok = true;
  result.system = std::move(system);
  return result;
}

ParsedSystem parse_system_text(const std::string& text) {
  std::istringstream ss(text);
  return parse_system_text(ss);
}

ParsedSystem load_system_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParsedSystem r;
    r.error = "cannot open '" + path + "'";
    return r;
  }
  return parse_system_text(in);
}

std::string to_system_text(const System& system) {
  std::ostringstream out;
  out.precision(17);
  out << "processors " << system.processor_count() << "\n";
  for (int pidx = 0; pidx < system.processor_count(); ++pidx) {
    if (system.scheduler(pidx) != SchedulerKind::kSpp) {
      out << "scheduler " << pidx << " " << to_string(system.scheduler(pidx))
          << "\n";
    }
  }
  for (int k = 0; k < system.job_count(); ++k) {
    const Job& j = system.job(k);
    out << "\njob " << j.name << " deadline " << j.deadline << "\n";
    for (const Subjob& s : j.chain) {
      out << "  hop " << s.processor << " exec " << s.exec_time << " prio "
          << s.priority << "\n";
    }
    out << "  arrivals explicit";
    for (Time t : j.arrivals.releases()) out << " " << t;
    out << "\nend\n";
  }
  return out.str();
}

bool save_system_file(const System& system, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_system_text(system);
  return out.good();
}

}  // namespace rta
