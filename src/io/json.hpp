// Minimal JSON value model: parse, navigate, serialize.
//
// Self-contained (no third-party dependency) and deliberately small: exactly
// what the versioned system/result serializers (io/system_json.hpp) and the
// admission service's JSONL request stream (service/) need.
//
//   * Objects preserve insertion order and reject duplicate keys on parse.
//   * Numbers are IEEE doubles, written with %.17g so doubles round-trip
//     bit-exactly through dump() -> parse().
//   * parse() never throws; errors carry a byte offset.
//   * No Infinity/NaN literals (JSON has none); callers encode unbounded
//     times as the string "inf" (see io/system_json.cpp).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace rta::json {

/// One JSON value (tagged union over the seven JSON shapes).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  /// Insertion-ordered; keys unique (enforced by the parser, by set()).
  using Object = std::vector<std::pair<std::string, Value>>;

  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Value(double n) : kind_(Kind::kNumber), num_(n) {}  // NOLINT
  Value(int n) : Value(static_cast<double>(n)) {}  // NOLINT
  Value(std::string s)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kString), str_(std::move(s)) {}
  Value(const char* s) : Value(std::string(s)) {}  // NOLINT
  Value(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}  // NOLINT
  Value(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}  // NOLINT

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; only valid for the matching kind.
  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const Array& as_array() const { return arr_; }
  [[nodiscard]] const Object& as_object() const { return obj_; }
  [[nodiscard]] Array& as_array() { return arr_; }
  [[nodiscard]] Object& as_object() { return obj_; }

  /// Object member by key, or nullptr (also nullptr on non-objects).
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Insert or overwrite an object member (turns a null value into an
  /// object; other kinds are an error guarded by assert).
  void set(const std::string& key, Value v);

  /// Serialize. indent < 0: compact one-liner; otherwise pretty-printed
  /// with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void dump_into(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Outcome of a parse: a value or a diagnostic with a byte offset.
struct ParseResult {
  bool ok = false;
  std::string error;  ///< "offset N: message" when !ok
  Value value;
};

/// Parse one JSON document; trailing non-whitespace is an error.
[[nodiscard]] ParseResult parse(const std::string& text);

}  // namespace rta::json
