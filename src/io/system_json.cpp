#include "io/system_json.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "io/json.hpp"

namespace rta {

namespace {

/// Unbounded times have no JSON literal; they travel as the string "inf".
json::Value time_value(Time t) {
  if (std::isinf(t)) return json::Value("inf");
  return json::Value(t);
}

bool read_time(const json::Value& v, Time& out) {
  if (v.is_number()) {
    out = v.as_number();
    return true;
  }
  if (v.is_string() && v.as_string() == "inf") {
    out = kTimeInfinity;
    return true;
  }
  return false;
}

/// Checks the envelope: an object whose "schema_version" equals ours.
bool check_schema(const json::Value& root, std::string& error) {
  if (!root.is_object()) {
    error = "document is not a JSON object";
    return false;
  }
  const json::Value* ver = root.find("schema_version");
  if (ver == nullptr || !ver->is_number()) {
    error = "missing numeric 'schema_version'";
    return false;
  }
  if (static_cast<int>(ver->as_number()) != kSystemJsonSchemaVersion) {
    error = "unsupported schema_version " +
            std::to_string(static_cast<int>(ver->as_number())) +
            " (supported: " + std::to_string(kSystemJsonSchemaVersion) + ")";
    return false;
  }
  return true;
}

const json::Value* require(const json::Value& obj, const char* key,
                           json::Value::Kind kind, std::string& error) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || v->kind() != kind) {
    error = std::string("missing or mistyped '") + key + "'";
    return nullptr;
  }
  return v;
}

std::optional<SchedulerKind> scheduler_from_name(const std::string& name) {
  if (name == "SPP") return SchedulerKind::kSpp;
  if (name == "SPNP") return SchedulerKind::kSpnp;
  if (name == "FCFS") return SchedulerKind::kFcfs;
  return std::nullopt;
}

}  // namespace

bool parse_job_json(const json::Value& value, Job& out, std::string& error,
                    bool* saw_priority) {
  using json::Value;
  if (saw_priority != nullptr) *saw_priority = false;
  if (!value.is_object()) {
    error = "job is not an object";
    return false;
  }
  Job job;
  const Value* name = require(value, "name", Value::Kind::kString, error);
  const Value* deadline =
      require(value, "deadline", Value::Kind::kNumber, error);
  const Value* chain = require(value, "chain", Value::Kind::kArray, error);
  const Value* arrivals =
      require(value, "arrivals", Value::Kind::kArray, error);
  if (name == nullptr || deadline == nullptr || chain == nullptr ||
      arrivals == nullptr) {
    return false;
  }
  job.name = name->as_string();
  job.deadline = deadline->as_number();
  if (job.deadline <= 0.0) {
    error = "deadline must be > 0";
    return false;
  }
  if (const Value* id = value.find("id"); id != nullptr) {
    if (!id->is_number() || id->as_number() < 0.0) {
      error = "'id' must be a nonnegative number";
      return false;
    }
    job.id = static_cast<std::uint64_t>(id->as_number());
  }
  for (std::size_t h = 0; h < chain->as_array().size(); ++h) {
    const Value& hv = chain->as_array()[h];
    const std::string where = "chain[" + std::to_string(h) + "]";
    if (!hv.is_object()) {
      error = where + " is not an object";
      return false;
    }
    Subjob sub;
    const Value* proc = require(hv, "processor", Value::Kind::kNumber, error);
    const Value* exec = require(hv, "exec", Value::Kind::kNumber, error);
    if (proc == nullptr || exec == nullptr) {
      error = where + ": " + error;
      return false;
    }
    sub.processor = static_cast<int>(proc->as_number());
    sub.exec_time = exec->as_number();
    if (sub.exec_time <= 0.0) {
      error = where + ": exec must be > 0";
      return false;
    }
    if (const Value* prio = hv.find("priority"); prio != nullptr) {
      if (!prio->is_number()) {
        error = where + ": 'priority' must be a number";
        return false;
      }
      sub.priority = static_cast<int>(prio->as_number());
      if (saw_priority != nullptr) *saw_priority = true;
    }
    job.chain.push_back(sub);
  }
  if (job.chain.empty()) {
    error = "'chain' must be non-empty";
    return false;
  }
  std::vector<Time> releases;
  for (std::size_t a = 0; a < arrivals->as_array().size(); ++a) {
    const Value& av = arrivals->as_array()[a];
    if (!av.is_number()) {
      error = "arrivals[" + std::to_string(a) + "] is not a number";
      return false;
    }
    releases.push_back(av.as_number());
  }
  if (releases.empty()) {
    error = "'arrivals' must be non-empty";
    return false;
  }
  for (std::size_t a = 1; a < releases.size(); ++a) {
    if (releases[a] < releases[a - 1]) {
      error = "arrivals must be nondecreasing";
      return false;
    }
  }
  if (releases.front() < 0.0) {
    error = "negative release time";
    return false;
  }
  job.arrivals = ArrivalSequence(std::move(releases));
  out = std::move(job);
  return true;
}

std::string to_system_json(const System& system) {
  using json::Value;
  Value root;
  root.set("schema_version", kSystemJsonSchemaVersion);

  Value::Array processors;
  for (int p = 0; p < system.processor_count(); ++p) {
    Value proc;
    proc.set("scheduler", to_string(system.scheduler(p)));
    processors.push_back(std::move(proc));
  }
  root.set("processors", Value(std::move(processors)));

  Value::Array jobs;
  for (int k = 0; k < system.job_count(); ++k) {
    jobs.push_back(job_to_json(system.job(k)));
  }
  root.set("jobs", Value(std::move(jobs)));
  return root.dump(2) + "\n";
}

json::Value job_to_json(const Job& job) {
  using json::Value;
  Value out;
  out.set("id", static_cast<double>(job.id));
  out.set("name", job.name);
  out.set("deadline", job.deadline);
  Value::Array chain;
  for (const Subjob& s : job.chain) {
    Value hop;
    hop.set("processor", s.processor);
    hop.set("exec", s.exec_time);
    hop.set("priority", s.priority);
    chain.push_back(std::move(hop));
  }
  out.set("chain", Value(std::move(chain)));
  Value::Array arrivals;
  for (Time t : job.arrivals.releases()) arrivals.push_back(Value(t));
  out.set("arrivals", Value(std::move(arrivals)));
  return out;
}

ParsedSystem parse_system_json(const std::string& text) {
  using json::Value;
  ParsedSystem result;

  const json::ParseResult doc = json::parse(text);
  if (!doc.ok) {
    result.error = "json: " + doc.error;
    return result;
  }
  if (!check_schema(doc.value, result.error)) return result;

  const Value* processors =
      require(doc.value, "processors", Value::Kind::kArray, result.error);
  if (processors == nullptr) return result;
  if (processors->as_array().empty()) {
    result.error = "'processors' must be non-empty";
    return result;
  }

  System system(static_cast<int>(processors->as_array().size()));
  for (std::size_t p = 0; p < processors->as_array().size(); ++p) {
    const Value& proc = processors->as_array()[p];
    if (!proc.is_object()) {
      result.error = "processors[" + std::to_string(p) + "] is not an object";
      return result;
    }
    const Value* sched =
        require(proc, "scheduler", Value::Kind::kString, result.error);
    if (sched == nullptr) return result;
    const auto kind = scheduler_from_name(sched->as_string());
    if (!kind) {
      result.error = "unknown scheduler '" + sched->as_string() + "'";
      return result;
    }
    system.set_scheduler(static_cast<int>(p), *kind);
  }

  const Value* jobs =
      require(doc.value, "jobs", Value::Kind::kArray, result.error);
  if (jobs == nullptr) return result;
  for (std::size_t ji = 0; ji < jobs->as_array().size(); ++ji) {
    Job job;
    if (!parse_job_json(jobs->as_array()[ji], job, result.error)) {
      result.error = "jobs[" + std::to_string(ji) + "]: " + result.error;
      return result;
    }
    system.add_job(std::move(job));
  }

  const auto problems = system.validate();
  if (!problems.empty()) {
    result.error = "invalid system: " + problems.front();
    return result;
  }
  result.ok = true;
  result.system = std::move(system);
  return result;
}

ParsedSystem load_system_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParsedSystem r;
    r.error = "cannot open '" + path + "'";
    return r;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ParsedSystem r = parse_system_json(buf.str());
  if (!r.ok) r.error = path + ": " + r.error;
  return r;
}

bool save_system_json_file(const System& system, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_system_json(system);
  return out.good();
}

std::string to_result_json(const AnalysisResult& result, bool compact) {
  using json::Value;
  Value root;
  root.set("schema_version", kSystemJsonSchemaVersion);
  root.set("ok", result.ok);
  if (!result.error.empty()) root.set("error", result.error);
  root.set("horizon", time_value(result.horizon));

  Value::Array jobs;
  for (const JobReport& j : result.jobs) {
    Value job;
    job.set("wcrt", time_value(j.wcrt));
    job.set("schedulable", j.schedulable);
    if (!j.per_instance.empty()) {
      Value::Array inst;
      for (Time t : j.per_instance) inst.push_back(time_value(t));
      job.set("per_instance", Value(std::move(inst)));
    }
    Value::Array hops;
    for (const SubjobReport& h : j.hops) {
      Value hop;
      hop.set("job", h.ref.job);
      hop.set("hop", h.ref.hop);
      hop.set("local_bound", time_value(h.local_bound));
      hops.push_back(std::move(hop));
    }
    if (!hops.empty()) job.set("hops", Value(std::move(hops)));
    jobs.push_back(std::move(job));
  }
  root.set("jobs", Value(std::move(jobs)));
  return compact ? root.dump() : root.dump(2) + "\n";
}

ParsedResult parse_result_json(const std::string& text) {
  using json::Value;
  ParsedResult out;

  const json::ParseResult doc = json::parse(text);
  if (!doc.ok) {
    out.error = "json: " + doc.error;
    return out;
  }
  if (!check_schema(doc.value, out.error)) return out;

  const Value* ok = doc.value.find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    out.error = "missing or mistyped 'ok'";
    return out;
  }
  out.result.ok = ok->as_bool();
  if (const Value* err = doc.value.find("error"); err != nullptr) {
    if (!err->is_string()) {
      out.error = "'error' must be a string";
      return out;
    }
    out.result.error = err->as_string();
  }
  const Value* horizon = doc.value.find("horizon");
  if (horizon == nullptr || !read_time(*horizon, out.result.horizon)) {
    out.error = "missing or mistyped 'horizon'";
    return out;
  }

  const Value* jobs = require(doc.value, "jobs", Value::Kind::kArray, out.error);
  if (jobs == nullptr) return out;
  for (std::size_t ji = 0; ji < jobs->as_array().size(); ++ji) {
    const Value& jv = jobs->as_array()[ji];
    const std::string where = "jobs[" + std::to_string(ji) + "]";
    if (!jv.is_object()) {
      out.error = where + " is not an object";
      return out;
    }
    JobReport report;
    const Value* wcrt = jv.find("wcrt");
    const Value* schedulable = jv.find("schedulable");
    if (wcrt == nullptr || !read_time(*wcrt, report.wcrt) ||
        schedulable == nullptr || !schedulable->is_bool()) {
      out.error = where + ": missing or mistyped 'wcrt'/'schedulable'";
      return out;
    }
    report.schedulable = schedulable->as_bool();
    if (const Value* inst = jv.find("per_instance"); inst != nullptr) {
      if (!inst->is_array()) {
        out.error = where + ": 'per_instance' must be an array";
        return out;
      }
      for (const Value& v : inst->as_array()) {
        Time t = 0.0;
        if (!read_time(v, t)) {
          out.error = where + ": bad per_instance entry";
          return out;
        }
        report.per_instance.push_back(t);
      }
    }
    if (const Value* hops = jv.find("hops"); hops != nullptr) {
      if (!hops->is_array()) {
        out.error = where + ": 'hops' must be an array";
        return out;
      }
      for (const Value& hv : hops->as_array()) {
        SubjobReport hop;
        const Value* hjob = hv.find("job");
        const Value* hhop = hv.find("hop");
        const Value* bound = hv.find("local_bound");
        if (!hv.is_object() || hjob == nullptr || !hjob->is_number() ||
            hhop == nullptr || !hhop->is_number() || bound == nullptr ||
            !read_time(*bound, hop.local_bound)) {
          out.error = where + ": malformed hop entry";
          return out;
        }
        hop.ref.job = static_cast<int>(hjob->as_number());
        hop.ref.hop = static_cast<int>(hhop->as_number());
        report.hops.push_back(std::move(hop));
      }
    }
    out.result.jobs.push_back(std::move(report));
  }
  out.ok = true;
  return out;
}

}  // namespace rta
