#include "io/trace_csv.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <vector>

namespace rta {

void write_gantt_csv(const System& system, const SimResult& result,
                     std::ostream& os) {
  struct Row {
    int processor;
    int job;
    int hop;
    Time begin;
    Time end;
  };
  std::vector<Row> rows;
  for (int k = 0; k < system.job_count(); ++k) {
    for (int h = 0; h < static_cast<int>(system.job(k).chain.size()); ++h) {
      const int p = system.job(k).chain[h].processor;
      for (const ServiceSegment& seg : result.segments[k][h]) {
        rows.push_back({p, k, h, seg.begin, seg.end});
      }
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.processor != b.processor) return a.processor < b.processor;
    return a.begin < b.begin;
  });
  os << "processor,job,hop,begin,end\n";
  os.precision(12);
  for (const Row& r : rows) {
    os << "P" << r.processor << "," << system.job(r.job).name << "," << r.hop
       << "," << r.begin << "," << r.end << "\n";
  }
}

void write_instances_csv(const System& system, const SimResult& result,
                         std::ostream& os) {
  os << "job,instance,release,completion,response,met_deadline\n";
  os.precision(12);
  for (int k = 0; k < system.job_count(); ++k) {
    const Job& job = system.job(k);
    for (std::size_t m = 0; m < result.traces[k].size(); ++m) {
      const InstanceTrace& t = result.traces[k][m];
      os << job.name << "," << (m + 1) << "," << t.hop_release.front() << ",";
      if (t.completed()) {
        const Time response = t.response();
        os << t.hop_complete.back() << "," << response << ","
           << (time_le(response, job.deadline) ? "yes" : "no");
      } else {
        os << ",,no";
      }
      os << "\n";
    }
  }
}

bool save_trace_csv(const System& system, const SimResult& result,
                    const std::string& prefix) {
  std::ofstream gantt(prefix + "_gantt.csv");
  std::ofstream inst(prefix + "_instances.csv");
  if (!gantt || !inst) return false;
  write_gantt_csv(system, result, gantt);
  write_instances_csv(system, result, inst);
  return gantt.good() && inst.good();
}

}  // namespace rta
