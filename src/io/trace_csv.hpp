// CSV export of simulation runs: execution segments (Gantt data) and
// per-instance response tables.
#pragma once

#include <iosfwd>
#include <string>

#include "model/system.hpp"
#include "sim/simulator.hpp"

namespace rta {

/// Gantt rows: "processor,job,hop,begin,end", one per execution segment,
/// sorted by (processor, begin).
void write_gantt_csv(const System& system, const SimResult& result,
                     std::ostream& os);

/// Instance table: "job,instance,release,completion,response,met_deadline",
/// one row per job instance (completion/response empty when unfinished).
void write_instances_csv(const System& system, const SimResult& result,
                         std::ostream& os);

/// Save both tables as <prefix>_gantt.csv and <prefix>_instances.csv;
/// false on I/O failure.
bool save_trace_csv(const System& system, const SimResult& result,
                    const std::string& prefix);

}  // namespace rta
