// Plain-text system descriptions: load and save complete System models.
//
// The format is line-oriented and declarative; `#` starts a comment.
//
//   processors 4
//   scheduler 0 SPNP          # default is SPP; one line per override
//   scheduler 3 FCFS
//
//   job control deadline 3.0
//     hop 0 exec 0.4 prio 1   # processor index, execution time, optional
//     hop 1 exec 1.0          # priority (assign later if omitted)
//     arrivals periodic period 4.0 window 40.0 [offset 0.5]
//   end
//
//   job telemetry deadline 9
//     hop 1 exec 0.3
//     arrivals bursty x 0.25 window 40        # the paper's Eq. 27
//   end
//
//   job alarm deadline 5
//     hop 2 exec 0.2
//     arrivals explicit 0 0.4 0.9 7.5         # raw release instants
//   end
//
//   job frames deadline 22
//     hop 0 exec 1.2
//     arrivals burst count 3 gap 2 period 8 window 200
//   end
//
// Parsing never throws; errors carry line numbers.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "model/system.hpp"

namespace rta {

/// Result of parsing: either a system or a diagnostic.
struct ParsedSystem {
  bool ok = false;
  std::string error;  ///< "line N: message" when !ok
  System system;
};

/// Parse a system description from a stream (see format above).
[[nodiscard]] ParsedSystem parse_system_text(std::istream& in);

/// Parse from a string.
[[nodiscard]] ParsedSystem parse_system_text(const std::string& text);

/// Parse from a file; error mentions the path on open failure.
[[nodiscard]] ParsedSystem load_system_file(const std::string& path);

/// Serialize a system to the same format. Arrival sequences are written as
/// explicit release lists (generator parameters are not retained by the
/// model), so save -> load round-trips the *semantics* exactly.
[[nodiscard]] std::string to_system_text(const System& system);

/// Write to a file; returns false on I/O failure.
bool save_system_file(const System& system, const std::string& path);

}  // namespace rta
