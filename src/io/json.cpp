#include "io/json.hpp"

#include <cassert>
#include <cctype>
#include <cerrno>
#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rta::json {

namespace {

void escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_number(std::string& out, double v) {
  // %.17g round-trips IEEE doubles bit-exactly; integral values still print
  // without an exponent or trailing zeros ("4" not "4.0000000000000000").
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

/// Recursive-descent parser over a flat byte buffer.
struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  explicit Parser(const std::string& t) : text(t) {}

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = "offset " + std::to_string(pos) + ": " + msg;
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(const char* word, std::size_t len) {
    if (text.compare(pos, len, word) != 0) return false;
    pos += len;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) break;
        const char esc = text[pos++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad hex digit in \\u escape");
            }
            // Encode as UTF-8 (surrogate pairs unsupported; the serializers
            // only emit \u00xx control escapes).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail(std::string("bad escape '\\") + esc + "'");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (consume('-')) {}
    // Greedily take every char a malformed number could contain, so the
    // error message shows the whole offending token (e.g. "12abc" inside an
    // array) instead of stopping at the first bad char.
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    const std::string tok = text.substr(start, pos - start);
    // Validate the exact JSON grammar before converting:
    //   -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // strtod alone is too permissive ("0x10", "inf", "nan", leading '+')
    // and, worse, locale-dependent: in a comma-decimal locale it rejects
    // "1.5". The grammar check makes acceptance locale-independent; the
    // conversion below normalizes the decimal separator for strtod.
    std::size_t i = 0;
    auto digit = [&](std::size_t j) {
      return j < tok.size() &&
             std::isdigit(static_cast<unsigned char>(tok[j])) != 0;
    };
    std::size_t frac_start = std::string::npos;
    bool grammar_ok = [&] {
      if (i < tok.size() && tok[i] == '-') ++i;
      if (!digit(i)) return false;
      if (tok[i] == '0') {
        ++i;  // a leading zero stands alone ("01" is not JSON)
      } else {
        while (digit(i)) ++i;
      }
      if (i < tok.size() && tok[i] == '.') {
        frac_start = i;
        ++i;
        if (!digit(i)) return false;
        while (digit(i)) ++i;
      }
      if (i < tok.size() && (tok[i] == 'e' || tok[i] == 'E')) {
        ++i;
        if (i < tok.size() && (tok[i] == '+' || tok[i] == '-')) ++i;
        if (!digit(i)) return false;
        while (digit(i)) ++i;
      }
      return i == tok.size();
    }();
    if (!grammar_ok) {
      pos = start;
      return fail("bad number '" + tok + "'");
    }
    // strtod honors the C locale's decimal separator; rewrite the validated
    // '.' to whatever the current locale expects so parsing succeeds (and
    // means the same number) everywhere.
    std::string conv = tok;
    if (frac_start != std::string::npos) {
      const char* lc_point = std::localeconv()->decimal_point;
      if (lc_point != nullptr && std::string(lc_point) != ".") {
        conv = tok.substr(0, frac_start) + lc_point + tok.substr(frac_start + 1);
      }
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(conv.c_str(), &end);
    if (end != conv.c_str() + conv.size()) {
      pos = start;
      return fail("bad number '" + tok + "'");
    }
    if (errno == ERANGE && std::isinf(v)) {
      // JSON has no Infinity; accepting an overflowed literal would produce
      // a value dump() cannot round-trip. (Underflow to 0 is fine.)
      pos = start;
      return fail("number out of range '" + tok + "'");
    }
    out = Value(v);
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > 128) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == 'n') {
      if (!literal("null", 4)) return fail("bad literal");
      out = Value(nullptr);
      return true;
    }
    if (c == 't') {
      if (!literal("true", 4)) return fail("bad literal");
      out = Value(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false", 5)) return fail("bad literal");
      out = Value(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Value(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      Value::Array arr;
      skip_ws();
      if (consume(']')) {
        out = Value(std::move(arr));
        return true;
      }
      while (true) {
        Value elem;
        if (!parse_value(elem, depth + 1)) return false;
        arr.push_back(std::move(elem));
        skip_ws();
        if (consume(']')) break;
        if (!consume(',')) return fail("expected ',' or ']' in array");
      }
      out = Value(std::move(arr));
      return true;
    }
    if (c == '{') {
      ++pos;
      Value::Object obj;
      skip_ws();
      if (consume('}')) {
        out = Value(std::move(obj));
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        for (const auto& [k, unused] : obj) {
          (void)unused;
          if (k == key) return fail("duplicate key \"" + key + "\"");
        }
        skip_ws();
        if (!consume(':')) return fail("expected ':' after key");
        Value member;
        if (!parse_value(member, depth + 1)) return false;
        obj.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (consume('}')) break;
        if (!consume(',')) return fail("expected ',' or '}' in object");
      }
      out = Value(std::move(obj));
      return true;
    }
    return parse_number(out);
  }
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::set(const std::string& key, Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  assert(kind_ == Kind::kObject);
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

void Value::dump_into(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      append_number(out, num_);
      return;
    case Kind::kString:
      out += '"';
      escape_into(out, str_);
      out += '"';
      return;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        arr_[i].dump_into(out, indent, depth + 1);
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        out += '"';
        escape_into(out, k);
        out += "\":";
        if (indent >= 0) out += ' ';
        v.dump_into(out, indent, depth + 1);
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_into(out, indent, 0);
  return out;
}

ParseResult parse(const std::string& text) {
  ParseResult result;
  Parser p(text);
  Value v;
  if (!p.parse_value(v, 0)) {
    result.error = p.error;
    return result;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    p.fail("trailing characters after document");
    result.error = p.error;
    return result;
  }
  result.ok = true;
  result.value = std::move(v);
  return result;
}

}  // namespace rta::json
