// Tolerant floating-point time arithmetic.
//
// Release times in this system are real-valued (the paper's bursty arrival
// generator, Eq. 27, produces irrational instants), so time is represented as
// double. Every comparison that feeds a discrete decision -- "did instance m
// depart no later than t", "how many whole executions fit into S(t)" -- goes
// through the tolerant helpers here so that 2.9999999996 counts as 3.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace rta {

/// Time instants and durations, in abstract time units.
using Time = double;

/// Sentinel for "never" / unbounded response time.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Absolute tolerance used by all time comparisons.
inline constexpr double kTimeEpsAbs = 1e-9;
/// Relative tolerance used by all time comparisons.
inline constexpr double kTimeEpsRel = 1e-12;

/// Combined tolerance for values of magnitude |a| and |b|.
[[nodiscard]] inline double time_tolerance(Time a, Time b) {
  const double mag = std::fmax(std::fabs(a), std::fabs(b));
  return kTimeEpsAbs + kTimeEpsRel * mag;
}

/// a == b within tolerance.
[[nodiscard]] inline bool time_eq(Time a, Time b) {
  if (std::isinf(a) || std::isinf(b)) return a == b;
  return std::fabs(a - b) <= time_tolerance(a, b);
}

/// a < b and not within tolerance.
[[nodiscard]] inline bool time_lt(Time a, Time b) {
  return a < b && !time_eq(a, b);
}

/// a <= b within tolerance.
[[nodiscard]] inline bool time_le(Time a, Time b) {
  return a < b || time_eq(a, b);
}

/// a > b and not within tolerance.
[[nodiscard]] inline bool time_gt(Time a, Time b) { return time_lt(b, a); }

/// a >= b within tolerance.
[[nodiscard]] inline bool time_ge(Time a, Time b) { return time_le(b, a); }

/// floor(x) robust against x being epsilon below an integer.
[[nodiscard]] inline long long tolerant_floor(double x) {
  const double nudged = x + kTimeEpsAbs + kTimeEpsRel * std::fabs(x);
  return static_cast<long long>(std::floor(nudged));
}

/// ceil(x) robust against x being epsilon above an integer.
[[nodiscard]] inline long long tolerant_ceil(double x) {
  const double nudged = x - (kTimeEpsAbs + kTimeEpsRel * std::fabs(x));
  return static_cast<long long>(std::ceil(nudged));
}

/// Clamp tiny negative values (arithmetic noise) to exact zero.
[[nodiscard]] inline Time clamp_nonnegative(Time t) {
  return (t < 0.0 && t > -kTimeEpsAbs) ? 0.0 : t;
}

// Wall-clock unit conversions. Identifiers carrying a unit suffix (_ns, _us,
// _ms, _s) must cross unit boundaries through these helpers rather than bare
// power-of-1000 factors; rta-archcheck's unit pass enforces this.

/// Milliseconds to microseconds.
[[nodiscard]] inline double ms_to_us(double ms) { return ms * 1000.0; }

/// Microseconds to milliseconds.
[[nodiscard]] inline double us_to_ms(double us) { return us / 1000.0; }

/// Seconds to microseconds.
[[nodiscard]] inline double s_to_us(double s) { return s * 1e6; }

/// Microseconds to seconds.
[[nodiscard]] inline double us_to_s(double us) { return us / 1e6; }

/// Nanoseconds to whole microseconds (truncating).
[[nodiscard]] inline std::uint64_t ns_to_us(std::uint64_t ns) {
  return ns / 1000;
}

}  // namespace rta
