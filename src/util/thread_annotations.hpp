// Clang Thread Safety Analysis vocabulary for the concurrent components.
//
// The engine's headline guarantee -- bit-identical results at any thread
// count -- is enforced dynamically by TSan and the differential tests, which
// sample interleavings. This header is the static half: every shared-state
// component declares its locking protocol with the RTA_* capability macros
// below, and a Clang build with -Wthread-safety (-Werror=thread-safety in
// CI's static-analysis job) proves at compile time that every access to a
// guarded field happens with the right mutex held. See
// docs/static-analysis.md for the conventions.
//
// On compilers without the attributes (GCC, MSVC) every macro expands to
// nothing and the wrappers below reduce to the plain std primitives, so the
// annotations cost nothing outside the analysis build.
//
// Components do not touch std::mutex directly: they hold an rta::Mutex
// (an annotatable capability), take scopes with rta::MutexLock (an
// annotated RAII guard), and block on rta::CondVar. rta_lint's raw-mutex
// rule bans the unannotated std primitives outside src/util/ so the
// discipline cannot silently erode.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RTA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RTA_THREAD_ANNOTATION
#define RTA_THREAD_ANNOTATION(x)  // compiles away on non-Clang
#endif

/// Type attribute: instances of this class are lockable capabilities.
#define RTA_CAPABILITY(x) RTA_THREAD_ANNOTATION(capability(x))

/// Type attribute: RAII type that acquires in its constructor and releases
/// in its destructor.
#define RTA_SCOPED_CAPABILITY RTA_THREAD_ANNOTATION(scoped_lockable)

/// Field attribute: reads and writes require holding `x`.
#define RTA_GUARDED_BY(x) RTA_THREAD_ANNOTATION(guarded_by(x))

/// Field attribute: the pointed-to data requires holding `x`.
#define RTA_PT_GUARDED_BY(x) RTA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function attribute: caller must hold the capabilities on entry (and
/// still holds them on return).
#define RTA_REQUIRES(...) \
  RTA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RTA_REQUIRES_SHARED(...) \
  RTA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the capability; caller must not hold it.
#define RTA_ACQUIRE(...) \
  RTA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function attribute: releases the capability; caller must hold it.
#define RTA_RELEASE(...) \
  RTA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attribute: acquires the capability iff the return value equals
/// the first argument.
#define RTA_TRY_ACQUIRE(...) \
  RTA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function attribute: caller must NOT hold the capabilities (deadlock
/// prevention for self-locking entry points).
#define RTA_EXCLUDES(...) RTA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attribute: returns a reference to the named capability.
#define RTA_RETURN_CAPABILITY(x) RTA_THREAD_ANNOTATION(lock_returned(x))

/// Function attribute: opt this function out of the analysis. Use only for
/// protocols the analysis cannot express (ownership hand-off, init paths),
/// with a comment saying why.
#define RTA_NO_THREAD_SAFETY_ANALYSIS \
  RTA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace rta {

class CondVar;

/// std::mutex as an annotatable capability. Same cost, same semantics; the
/// only addition is that -Wthread-safety can now reason about it.
class RTA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RTA_ACQUIRE() { mu_.lock(); }
  void unlock() RTA_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() RTA_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated RAII guard: the std::lock_guard of this codebase. Scoped to a
/// block; the analysis knows the capability is held between construction
/// and the end of the scope.
class RTA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RTA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RTA_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to rta::Mutex. wait() requires the mutex held
/// -- which is also true from the analysis's point of view: the capability
/// is held on entry and on return, and the release/reacquire inside the
/// wait is invisible to callers (exactly the guarantee the protocol needs:
/// guarded state may only be touched before or after the wait, with the
/// lock held either way).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Block until notified. Spurious wakeups happen; callers loop on their
  /// guarded predicate (`while (!pred) cv.wait(mu);`), which keeps the
  /// predicate reads inside the caller's annotated scope.
  void wait(Mutex& mu) RTA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  /// wait() with a timeout: returns true when notified, false on timeout.
  /// Same capability story as wait(); callers still loop on their guarded
  /// predicate.
  template <class Rep, class Period>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      RTA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();  // ownership stays with the caller's scope
    return status == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rta
