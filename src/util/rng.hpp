// Seeded random number generation with independent, reproducible streams.
//
// The evaluation harness shards Monte-Carlo trials across worker threads;
// each trial derives its own stream from (base seed, trial index) so results
// are bit-identical regardless of thread count or scheduling.
#pragma once

#include <cstdint>
#include <random>

namespace rta {

/// Deterministic 64-bit mix (splitmix64) used to derive stream seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Random stream: a mt19937_64 with convenience draws used by generators.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(splitmix64(seed)) {}

  /// Uniform draw in the open interval (lo, hi); never returns an endpoint.
  [[nodiscard]] double uniform_open(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    double v = dist(engine_);
    while (v <= lo || v >= hi) v = dist(engine_);
    return v;
  }

  /// Uniform draw in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int uniform_int(int lo, int hi) {
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
  }

  /// Exponential draw with the given mean.
  [[nodiscard]] double exponential(double mean) {
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
  }

  /// Gamma draw parameterized by mean and variance (mean, var > 0).
  /// shape k = mean^2 / var, scale theta = var / mean.
  [[nodiscard]] double gamma_mean_var(double mean, double var) {
    std::gamma_distribution<double> dist(mean * mean / var, var / mean);
    return dist(engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Factory producing per-trial independent streams from one base seed.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t base_seed) : base_(base_seed) {}

  /// Stream for trial `index`; deterministic in (base seed, index).
  [[nodiscard]] Rng stream(std::uint64_t index) const {
    return Rng(splitmix64(base_) ^
               splitmix64(index * 0x9E3779B97F4A7C15ull + 1));
  }

 private:
  std::uint64_t base_;
};

}  // namespace rta
