// Tiny command-line option parser for bench/example binaries.
//
// Supports --key=value, --key value, and boolean --flag forms; parsing
// never throws. Caveat: "--flag token" greedily binds token as the flag's
// value, so put positional arguments before flags or use --flag=1.
#pragma once

#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace rta {

class Options {
 public:
  /// Parse argv; returns false (and prints usage hint) on malformed input.
  static Options parse(int argc, char** argv) {
    Options opts;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        opts.positional_.push_back(arg);
        continue;
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        opts.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        opts.values_[arg] = argv[++i];
      } else {
        opts.values_[arg] = "1";
      }
    }
    return opts;
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }

  [[nodiscard]] double get_double(const std::string& key, double def) const {
    auto it = values_.find(key);
    if (it == values_.end()) return def;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    return (end && *end == '\0') ? v : def;
  }

  [[nodiscard]] long long get_int(const std::string& key, long long def) const {
    auto it = values_.find(key);
    if (it == values_.end()) return def;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    return (end && *end == '\0') ? v : def;
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool def) const {
    auto it = values_.find(key);
    if (it == values_.end()) return def;
    return it->second != "0" && it->second != "false";
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }

  /// All flag names present, sorted (map order); for unknown-flag checks.
  [[nodiscard]] std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto& [key, value] : values_) {
      (void)value;
      out.push_back(key);
    }
    return out;
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace rta
