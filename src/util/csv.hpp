// Minimal CSV emission for experiment results.
#pragma once

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace rta {

/// Accumulates rows and writes RFC-4180-ish CSV (fields quoted on demand).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Append one row; the caller is responsible for matching the header arity.
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: build a row from streamable values.
  template <typename... Ts>
  void add(const Ts&... values) {
    std::vector<std::string> row;
    row.reserve(sizeof...(values));
    (row.push_back(to_field(values)), ...);
    add_row(std::move(row));
  }

  void write(std::ostream& os) const {
    write_line(os, header_);
    for (const auto& row : rows_) write_line(os, row);
  }

  /// Write to a file; returns false (and prints to stderr) on failure.
  bool write_file(const std::string& path) const {
    std::ofstream os(path);
    if (!os) {
      std::cerr << "CsvWriter: cannot open " << path << "\n";
      return false;
    }
    write(os);
    return os.good();
  }

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string to_field(const T& v) {
    if constexpr (std::is_same_v<T, std::string>) {
      return v;
    } else if constexpr (std::is_convertible_v<T, const char*>) {
      return std::string(v);
    } else {
      std::ostringstream ss;
      ss << v;
      return ss.str();
    }
  }

  static void write_line(std::ostream& os,
                         const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i) os << ',';
      os << quote(fields[i]);
    }
    os << '\n';
  }

  static std::string quote(const std::string& f) {
    if (f.find_first_of(",\"\n") == std::string::npos) return f;
    std::string out = "\"";
    for (char c : f) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rta
