// Leveled logging to stderr. Quiet by default; benches raise the level.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

#include "util/thread_annotations.hpp"

namespace rta {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration.
class Log {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::kWarn;
    return lvl;
  }

  static void write(LogLevel lvl, const std::string& msg) {
    if (lvl < level()) return;
    static Mutex mu;  // serializes writers so lines never interleave
    MutexLock lock(mu);
    std::cerr << "[" << name(lvl) << "] " << msg << "\n";
  }

  static const char* name(LogLevel lvl) {
    switch (lvl) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
      default: return "off";
    }
  }
};

namespace detail {
template <typename... Ts>
std::string format_parts(const Ts&... parts) {
  std::ostringstream ss;
  (ss << ... << parts);
  return ss.str();
}
}  // namespace detail

template <typename... Ts>
void log_debug(const Ts&... parts) {
  Log::write(LogLevel::kDebug, detail::format_parts(parts...));
}
template <typename... Ts>
void log_info(const Ts&... parts) {
  Log::write(LogLevel::kInfo, detail::format_parts(parts...));
}
template <typename... Ts>
void log_warn(const Ts&... parts) {
  Log::write(LogLevel::kWarn, detail::format_parts(parts...));
}
template <typename... Ts>
void log_error(const Ts&... parts) {
  Log::write(LogLevel::kError, detail::format_parts(parts...));
}

}  // namespace rta
