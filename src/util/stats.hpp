// Streaming descriptive statistics (Welford) and simple aggregates.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace rta {

/// Online accumulator for count/mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Quantile of a sample (linear interpolation); q in [0,1]. Sorts a copy.
[[nodiscard]] inline double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

/// Wilson score interval half-width for a binomial proportion estimate,
/// used to report confidence on admission probabilities.
[[nodiscard]] inline double wilson_half_width(std::size_t successes,
                                              std::size_t trials,
                                              double z = 1.96) {
  if (trials == 0) return 0.0;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  return z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / (1.0 + z2 / n);
}

}  // namespace rta
