// Fixed-size worker pool for embarrassingly-parallel work: Monte-Carlo
// evaluation (eval/experiment.cpp) and the parallel analysis engine
// (analysis/bounds.cpp, analysis/iterative.cpp).
//
// Determinism contract: parallel_for_index hands each index to exactly one
// shard; bodies write only per-index state (callers derive per-index RNG
// streams from util/rng.hpp where randomness is involved), so the results do
// not depend on the number of workers or on scheduling order.
//
// Exception contract: the first exception thrown by a body is captured and
// rethrown on the calling thread after every in-flight index has retired;
// remaining unstarted indices are abandoned. The pool itself survives and
// stays usable. The calling thread always participates as a shard, so a loop
// makes progress even when every worker is busy (nested parallel_for_index
// cannot deadlock).
//
// Locking protocol (proved by -Wthread-safety on Clang, see
// util/thread_annotations.hpp): the task queue, the stop flag, and the
// queue high-water mark are guarded by mutex_; a loop's first-exception
// slot is guarded by its ForState mutex. Everything else is atomics.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace rta {

/// A minimal task-queue thread pool.
class ThreadPool {
 public:
  /// Monotone lifetime counters; snapshot via stats(). Exists so the
  /// exception path of parallel_for_index is observable: indices handed out
  /// and completed vs. abandoned after a throw always satisfy
  /// indices_executed + indices_abandoned == sum of loop counts.
  struct Stats {
    std::uint64_t tasks_executed = 0;     ///< queue tasks run by workers
    std::uint64_t loops = 0;              ///< parallel_for_index calls
    std::uint64_t indices_executed = 0;   ///< loop bodies that completed/threw
    std::uint64_t indices_abandoned = 0;  ///< retired unrun after a throw
    std::size_t queue_high_water = 0;     ///< max pending queue depth seen
    std::vector<std::uint64_t> worker_busy_ns;  ///< per-worker task time
  };

  explicit ThreadPool(std::size_t workers = std::thread::hardware_concurrency()) {
    if (workers == 0) workers = 1;
    workers_.reserve(workers);
    busy_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      busy_ns_[i].store(0, std::memory_order_relaxed);
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker. A point-in-time
  /// reading for queue-depth gauges; stale by the time the caller acts on it.
  [[nodiscard]] std::size_t pending() const {
    MutexLock lock(mutex_);
    return tasks_.size();
  }

  /// Point-in-time copy of the lifetime counters.
  [[nodiscard]] Stats stats() const {
    Stats s;
    s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
    s.loops = loops_.load(std::memory_order_relaxed);
    s.indices_executed = indices_executed_.load(std::memory_order_relaxed);
    s.indices_abandoned = indices_abandoned_.load(std::memory_order_relaxed);
    {
      MutexLock lock(mutex_);
      s.queue_high_water = queue_high_water_;
    }
    s.worker_busy_ns.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      s.worker_busy_ns.push_back(busy_ns_[i].load(std::memory_order_relaxed));
    }
    return s;
  }

  /// Enqueue a task; it runs on some worker eventually. Tasks must not throw.
  void submit(std::function<void()> task) {
    {
      MutexLock lock(mutex_);
      tasks_.push(std::move(task));
      if (tasks_.size() > queue_high_water_) queue_high_water_ = tasks_.size();
    }
    cv_.notify_one();
  }

  /// Run body(i) for i in [0, count) across the pool and the calling thread;
  /// blocks until every handed-out index has retired. If a body throws, the
  /// first exception is rethrown here once the loop has quiesced.
  void parallel_for_index(std::size_t count,
                          std::function<void(std::size_t)> body) {
    if (count == 0) return;

    // Shared ownership: the caller returns as soon as every index is
    // accounted for, while sibling shard tasks may still be probing `next`,
    // so the state must outlive this frame.
    struct ForState {
      std::atomic<std::size_t> next{0};
      /// Indices retired: completed, thrown, or abandoned after a throw.
      std::atomic<std::size_t> accounted{0};
      Mutex mutex;
      CondVar cv;
      std::exception_ptr error RTA_GUARDED_BY(mutex);  ///< first failure
      std::size_t count = 0;
      std::function<void(std::size_t)> body;
      std::atomic<std::uint64_t>* executed_sink = nullptr;
      std::atomic<std::uint64_t>* abandoned_sink = nullptr;

      void account(std::size_t n) {
        if (accounted.fetch_add(n, std::memory_order_acq_rel) + n == count) {
          MutexLock lock(mutex);
          cv.notify_all();
        }
      }

      void run_shard() {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) break;
          try {
            body(i);
          } catch (...) {
            {
              MutexLock lock(mutex);
              if (!error) error = std::current_exception();
            }
            // Stop handing out new indices; everything not yet handed out is
            // abandoned and retired here in one step. In-flight indices on
            // sibling shards retire themselves. Sinks are bumped BEFORE the
            // retiring account() so that once the caller's wait finishes,
            // the pool's stats already satisfy
            // indices_executed + indices_abandoned == sum of loop counts.
            const std::size_t handed =
                next.exchange(count, std::memory_order_relaxed);
            const std::size_t abandoned =
                handed < count ? count - handed : 0;
            if (abandoned_sink != nullptr && abandoned > 0) {
              abandoned_sink->fetch_add(abandoned, std::memory_order_relaxed);
            }
            executed_sink->fetch_add(1, std::memory_order_relaxed);
            account(1 + abandoned);
            return;
          }
          executed_sink->fetch_add(1, std::memory_order_relaxed);
          account(1);
        }
      }
    };
    auto state = std::make_shared<ForState>();
    state->count = count;
    state->body = std::move(body);
    state->executed_sink = &indices_executed_;
    state->abandoned_sink = &indices_abandoned_;
    loops_.fetch_add(1, std::memory_order_relaxed);

    // The calling thread is a shard too, so at most count - 1 helpers are
    // useful.
    const std::size_t helpers = std::min(count - 1, workers_.size());
    for (std::size_t s = 0; s < helpers; ++s) {
      submit([state] { state->run_shard(); });
    }
    state->run_shard();

    std::exception_ptr error;
    {
      MutexLock lock(state->mutex);
      while (state->accounted.load(std::memory_order_acquire) !=
             state->count) {
        state->cv.wait(state->mutex);
      }
      error = state->error;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void worker_loop(std::size_t worker_index) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mutex_);
        while (!stopping_ && tasks_.empty()) cv_.wait(mutex_);
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      const auto start = std::chrono::steady_clock::now();
      task();
      const auto elapsed = std::chrono::steady_clock::now() - start;
      busy_ns_[worker_index].fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()),
          std::memory_order_relaxed);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  std::queue<std::function<void()>> tasks_ RTA_GUARDED_BY(mutex_);
  CondVar cv_;
  bool stopping_ RTA_GUARDED_BY(mutex_) = false;
  std::size_t queue_high_water_ RTA_GUARDED_BY(mutex_) = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> busy_ns_;
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> loops_{0};
  std::atomic<std::uint64_t> indices_executed_{0};
  std::atomic<std::uint64_t> indices_abandoned_{0};
};

/// Run body(i) for i in [0, count): on `pool` when one is provided, inline
/// otherwise. The serial path performs the indices in order; the parallel
/// path requires bodies that write only per-index state, in which case the
/// results are identical (the engine's determinism contract).
inline void for_each_index(ThreadPool* pool, std::size_t count,
                           const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for_index(count, body);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) body(i);
}

}  // namespace rta
