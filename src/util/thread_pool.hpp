// Fixed-size worker pool for embarrassingly-parallel Monte-Carlo evaluation.
//
// Determinism contract: parallel_for_index hands each index to exactly one
// worker; callers derive per-index RNG streams (util/rng.hpp) so the results
// do not depend on the number of workers or on scheduling order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rta {

/// A minimal task-queue thread pool.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers = std::thread::hardware_concurrency()) {
    if (workers == 0) workers = 1;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; it runs on some worker eventually.
  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  /// Run body(i) for i in [0, count) across the pool; blocks until done.
  /// Exceptions thrown by body terminate (real-time analysis code reports
  /// errors through return values, not exceptions).
  void parallel_for_index(std::size_t count,
                          std::function<void(std::size_t)> body) {
    if (count == 0) return;

    // Shared ownership: the caller can return as soon as every index has
    // been processed, while sibling shards may still be probing `next`, so
    // the state must outlive this frame.
    struct ForState {
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> done{0};
      std::mutex mutex;
      std::condition_variable cv;
      std::size_t count;
      std::function<void(std::size_t)> body;
    };
    auto state = std::make_shared<ForState>();
    state->count = count;
    state->body = std::move(body);

    const std::size_t shards = std::min(count, workers_.size());
    for (std::size_t s = 0; s < shards; ++s) {
      submit([state] {
        for (;;) {
          const std::size_t i =
              state->next.fetch_add(1, std::memory_order_relaxed);
          if (i >= state->count) break;
          state->body(i);
          if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
              state->count) {
            std::lock_guard<std::mutex> lock(state->mutex);
            state->cv.notify_all();
          }
        }
      });
    }

    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->count;
    });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace rta
