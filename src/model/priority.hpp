// Priority assignment policies (§5.1 and classical alternatives).
//
// The paper's evaluation uses *proportional sub-deadline monotonic*
// assignment (Eq. 24): each subjob receives a sub-deadline proportional to
// its share of the chain's total execution time, and subjobs on a processor
// are prioritized by ascending sub-deadline. The analysis itself works for
// arbitrary assignments, so alternatives are provided too.
#pragma once

#include <vector>

#include "model/system.hpp"

namespace rta {

/// Sub-deadline of T_{k,j} per Eq. 24:
///   D_{k,j} = tau_{k,j} / (sum_i tau_{k,i}) * D_k.
[[nodiscard]] double proportional_subdeadline(const Job& job, int hop);

/// Assign per-processor priorities by ascending proportional sub-deadline
/// (Eq. 24); ties broken by (job, hop) for determinism. Priorities are
/// 1..n_p on each processor (1 = highest).
void assign_proportional_deadline_monotonic(System& system);

/// Assign per-processor priorities by ascending *end-to-end* job deadline
/// (global deadline-monotonic); ties broken by (job, hop).
void assign_deadline_monotonic(System& system);

/// Assign per-processor priorities by ascending period estimate (rate
/// monotonic); the period of a job is taken to be its minimum inter-arrival
/// time. Ties broken by (job, hop).
void assign_rate_monotonic(System& system);

/// Assign priorities from explicit per-job ranks (smaller = higher): all
/// subjobs of a job share its rank; per-processor priorities are the ranks'
/// order, ties broken by (job, hop).
void assign_by_job_rank(System& system, const std::vector<double>& rank);

}  // namespace rta
