#include "model/priority.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

namespace rta {

namespace {

/// Assign per-processor priorities 1..n_p by ascending key(subjob-ref).
void assign_by_key(System& system,
                   const std::function<double(SubjobRef)>& key) {
  for (int p = 0; p < system.processor_count(); ++p) {
    std::vector<SubjobRef> refs = system.subjobs_on(p);
    std::sort(refs.begin(), refs.end(),
              [&](const SubjobRef& a, const SubjobRef& b) {
                const double ka = key(a);
                const double kb = key(b);
                // rta-lint: allow(float-eq) strict-weak-ordering tie-break;
                // an epsilon here would make the sort order intransitive
                if (ka != kb) return ka < kb;
                if (a.job != b.job) return a.job < b.job;
                return a.hop < b.hop;
              });
    int prio = 1;
    for (const SubjobRef& ref : refs) system.subjob(ref).priority = prio++;
  }
}

}  // namespace

double proportional_subdeadline(const Job& job, int hop) {
  double total = 0.0;
  for (const Subjob& s : job.chain) total += s.exec_time;
  assert(total > 0.0);
  return job.chain.at(hop).exec_time / total * job.deadline;
}

void assign_proportional_deadline_monotonic(System& system) {
  assign_by_key(system, [&](SubjobRef ref) {
    return proportional_subdeadline(system.job(ref.job), ref.hop);
  });
}

void assign_deadline_monotonic(System& system) {
  assign_by_key(system, [&](SubjobRef ref) {
    return system.job(ref.job).deadline;
  });
}

void assign_rate_monotonic(System& system) {
  assign_by_key(system, [&](SubjobRef ref) {
    return system.job(ref.job).arrivals.min_inter_arrival();
  });
}

void assign_by_job_rank(System& system, const std::vector<double>& rank) {
  assert(static_cast<int>(rank.size()) == system.job_count());
  assign_by_key(system, [&](SubjobRef ref) { return rank.at(ref.job); });
}

}  // namespace rta
