#include "model/system.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <set>
#include <sstream>

namespace rta {

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kSpp: return "SPP";
    case SchedulerKind::kSpnp: return "SPNP";
    case SchedulerKind::kFcfs: return "FCFS";
  }
  return "?";
}

int System::add_job(Job job) {
  if (job.id == 0) {
    job.id = next_job_id_++;
  } else if (job.id >= next_job_id_) {
    next_job_id_ = job.id + 1;
  }
  jobs_.push_back(std::move(job));
  return static_cast<int>(jobs_.size()) - 1;
}

bool System::remove_job(int index) {
  if (index < 0 || index >= job_count()) return false;
  jobs_.erase(jobs_.begin() + index);
  return true;
}

int System::job_index_by_id(std::uint64_t id) const {
  for (int k = 0; k < job_count(); ++k) {
    if (jobs_[k].id == id) return k;
  }
  return -1;
}

int System::job_index_by_name(const std::string& name) const {
  for (int k = 0; k < job_count(); ++k) {
    if (jobs_[k].name == name) return k;
  }
  return -1;
}

std::vector<SubjobRef> System::subjobs_on(int processor) const {
  std::vector<SubjobRef> out;
  for (int k = 0; k < job_count(); ++k) {
    const auto& chain = jobs_[k].chain;
    for (int j = 0; j < static_cast<int>(chain.size()); ++j) {
      if (chain[j].processor == processor) out.push_back({k, j});
    }
  }
  return out;
}

std::vector<SubjobRef> System::higher_priority_on(int processor,
                                                  int priority) const {
  std::vector<SubjobRef> out;
  for (const SubjobRef& ref : subjobs_on(processor)) {
    if (subjob(ref).priority < priority) out.push_back(ref);
  }
  return out;
}

double System::blocking_time(SubjobRef target) const {
  const Subjob& s = subjob(target);
  double worst = 0.0;
  for (const SubjobRef& ref : subjobs_on(s.processor)) {
    const Subjob& other = subjob(ref);
    if (other.priority > s.priority) {
      worst = std::max(worst, other.exec_time);
    }
  }
  return worst;
}

Time System::last_release() const {
  Time latest = 0.0;
  for (const Job& j : jobs_) latest = std::max(latest, j.arrivals.last_release());
  return latest;
}

std::vector<double> System::utilization_estimate(Time window) const {
  std::vector<double> util(schedulers_.size(), 0.0);
  if (window <= 0.0) return util;
  for (const Job& j : jobs_) {
    std::size_t released = 0;
    for (Time t : j.arrivals.releases()) {
      if (time_le(t, window)) ++released;
    }
    for (const Subjob& s : j.chain) {
      util[s.processor] +=
          static_cast<double>(released) * s.exec_time / window;
    }
  }
  return util;
}

std::vector<std::string> System::validate() const {
  std::vector<std::string> problems;
  auto complain = [&](const std::string& msg) { problems.push_back(msg); };

  for (int k = 0; k < job_count(); ++k) {
    const Job& j = jobs_[k];
    if (j.chain.empty()) {
      complain("job " + std::to_string(k) + " has an empty chain");
    }
    if (j.deadline <= 0.0) {
      complain("job " + std::to_string(k) + " has non-positive deadline");
    }
    if (j.arrivals.empty()) {
      complain("job " + std::to_string(k) + " has no release times");
    }
    for (std::size_t h = 0; h < j.chain.size(); ++h) {
      const Subjob& s = j.chain[h];
      if (s.processor < 0 || s.processor >= processor_count()) {
        complain("job " + std::to_string(k) + " hop " + std::to_string(h) +
                 " references invalid processor " + std::to_string(s.processor));
      }
      if (s.exec_time <= 0.0) {
        complain("job " + std::to_string(k) + " hop " + std::to_string(h) +
                 " has non-positive execution time");
      }
    }
  }

  // Unique priorities per priority-scheduled processor: the analysis assumes
  // a strict priority order among subjobs sharing a processor.
  for (int p = 0; p < processor_count(); ++p) {
    if (schedulers_[p] == SchedulerKind::kFcfs) continue;
    std::set<int> seen;
    for (const SubjobRef& ref : subjobs_on(p)) {
      const int prio = subjob(ref).priority;
      if (!seen.insert(prio).second) {
        std::ostringstream ss;
        ss << "processor " << p << " (" << to_string(schedulers_[p])
           << ") has duplicate priority " << prio;
        complain(ss.str());
      }
    }
  }
  return problems;
}

bool System::dependency_graph_is_acyclic() const {
  // Nodes: subjobs, numbered job-major.
  std::vector<int> base(jobs_.size() + 1, 0);
  for (std::size_t k = 0; k < jobs_.size(); ++k) {
    base[k + 1] = base[k] + static_cast<int>(jobs_[k].chain.size());
  }
  const int n = base.back();
  auto node = [&](SubjobRef r) { return base[r.job] + r.hop; };

  std::vector<std::vector<int>> succ(n);
  auto add_edge = [&](SubjobRef from, SubjobRef to) {
    succ[node(from)].push_back(node(to));
  };

  for (int k = 0; k < job_count(); ++k) {
    for (int h = 1; h < static_cast<int>(jobs_[k].chain.size()); ++h) {
      add_edge({k, h - 1}, {k, h});
    }
  }
  for (int p = 0; p < processor_count(); ++p) {
    const auto on_p = subjobs_on(p);
    if (schedulers_[p] == SchedulerKind::kFcfs) {
      // The shared utilization function couples all subjobs on p: each needs
      // every co-located subjob's *arrival* (i.e. its predecessor hop).
      for (const SubjobRef& u : on_p) {
        if (u.hop == 0) continue;
        for (const SubjobRef& s : on_p) add_edge({u.job, u.hop - 1}, s);
      }
    } else {
      for (const SubjobRef& hi : on_p) {
        for (const SubjobRef& lo : on_p) {
          if (subjob(hi).priority < subjob(lo).priority) add_edge(hi, lo);
        }
      }
    }
  }

  // Kahn's algorithm.
  std::vector<int> indeg(n, 0);
  for (const auto& edges : succ) {
    for (int v : edges) ++indeg[v];
  }
  std::vector<int> queue;
  for (int v = 0; v < n; ++v) {
    if (indeg[v] == 0) queue.push_back(v);
  }
  int visited = 0;
  while (!queue.empty()) {
    const int v = queue.back();
    queue.pop_back();
    ++visited;
    for (int w : succ[v]) {
      if (--indeg[w] == 0) queue.push_back(w);
    }
  }
  return visited == n;
}

}  // namespace rta
