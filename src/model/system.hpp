// System model (paper §3): processors, jobs, subjob chains, schedulers.
//
// A system has m processors and n independent jobs; job T_k is a chain of
// subjobs T_{k,1}..T_{k,n_k}, each executing for tau_{k,j} time units on a
// designated processor. Direct synchronization is assumed: completion of
// T_{k,j} releases T_{k,j+1} immediately. Each processor runs one scheduler
// (SPP, SPNP or FCFS -- heterogeneous mixes are allowed, §6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "curve/arrival.hpp"
#include "util/time.hpp"

namespace rta {

/// Scheduling policy of a processor (§3.2).
enum class SchedulerKind {
  kSpp,   ///< static-priority preemptive
  kSpnp,  ///< static-priority non-preemptive
  kFcfs,  ///< first-come-first-served
};

[[nodiscard]] const char* to_string(SchedulerKind kind);

/// One hop of a job's chain.
struct Subjob {
  int processor = -1;      ///< index of P(k,j)
  double exec_time = 0.0;  ///< tau_{k,j} > 0
  int priority = 0;        ///< phi_{k,j}: per-processor, smaller = higher
};

/// A job: end-to-end deadline, subjob chain, and the release times of its
/// first subjob (Def. 1 applies to T_{k,1}; later hops' arrivals are derived
/// by the analysis or observed in simulation).
struct Job {
  std::string name;
  Time deadline = 0.0;
  std::vector<Subjob> chain;
  ArrivalSequence arrivals;
  /// Stable identity for delta-based services: assigned by System::add_job
  /// when 0 and never reused within one System, so it survives removals that
  /// shift job *indices* (serializers may carry explicit ids across I/O).
  std::uint64_t id = 0;
};

/// Reference to subjob T_{job+1, hop+1} (0-based indices internally).
struct SubjobRef {
  int job = -1;
  int hop = -1;
  friend bool operator==(const SubjobRef&, const SubjobRef&) = default;
};

/// A complete distributed real-time system.
class System {
 public:
  System() = default;
  explicit System(int processor_count,
                  SchedulerKind default_scheduler = SchedulerKind::kSpp)
      : schedulers_(static_cast<std::size_t>(processor_count),
                    default_scheduler) {}

  /// Append a job; returns its index. A zero Job::id is replaced by a fresh
  /// id unique within this System; explicit nonzero ids are kept (and bump
  /// the internal counter past them).
  int add_job(Job job);

  /// Remove the job at `index`; later jobs shift down by one index but keep
  /// their stable ids. Returns false when the index is out of range.
  bool remove_job(int index);

  /// Index of the job with the given stable id, or -1.
  [[nodiscard]] int job_index_by_id(std::uint64_t id) const;

  /// The id the next zero-id add_job would assign. Together with
  /// set_next_job_id this lets callers running speculative add_job +
  /// remove_job sequences (service what-ifs) leave id assignment exactly as
  /// if the speculation had not happened, and lets snapshot replicas hand
  /// out the same ids the original would.
  [[nodiscard]] std::uint64_t next_job_id() const { return next_job_id_; }
  void set_next_job_id(std::uint64_t next) { next_job_id_ = next; }

  /// Index of the first job with the given name, or -1.
  [[nodiscard]] int job_index_by_name(const std::string& name) const;

  [[nodiscard]] int job_count() const { return static_cast<int>(jobs_.size()); }
  [[nodiscard]] int processor_count() const {
    return static_cast<int>(schedulers_.size());
  }

  [[nodiscard]] const Job& job(int k) const { return jobs_.at(k); }
  [[nodiscard]] Job& job(int k) { return jobs_.at(k); }
  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }

  [[nodiscard]] const Subjob& subjob(SubjobRef ref) const {
    return jobs_.at(ref.job).chain.at(ref.hop);
  }
  [[nodiscard]] Subjob& subjob(SubjobRef ref) {
    return jobs_.at(ref.job).chain.at(ref.hop);
  }

  void set_scheduler(int processor, SchedulerKind kind) {
    schedulers_.at(processor) = kind;
  }
  [[nodiscard]] SchedulerKind scheduler(int processor) const {
    return schedulers_.at(processor);
  }

  /// All subjobs mapped to a processor, in (job, hop) order.
  [[nodiscard]] std::vector<SubjobRef> subjobs_on(int processor) const;

  /// Subjobs on `processor` with priority strictly higher (smaller phi) than
  /// `priority`.
  [[nodiscard]] std::vector<SubjobRef> higher_priority_on(int processor,
                                                          int priority) const;

  /// Maximum blocking time b_{k,j} (Eq. 15): the largest execution time among
  /// strictly lower-priority subjobs on the same processor. Zero if none.
  [[nodiscard]] double blocking_time(SubjobRef ref) const;

  /// Latest first-hop release in the system (the generation window in use).
  [[nodiscard]] Time last_release() const;

  /// Total execution demand released within [0, window], per processor,
  /// divided by window: an empirical utilization estimate.
  [[nodiscard]] std::vector<double> utilization_estimate(Time window) const;

  /// Structural validation; returns human-readable problems (empty if OK).
  /// Checks chains, execution times, processor indices, sorted arrivals, and
  /// unique per-processor priorities where a priority scheduler is in use.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// True if the subjob-level dependency graph used by the analyzers is
  /// acyclic. Edges: predecessor hop -> hop; and on priority-scheduled
  /// processors, higher-priority subjob -> lower-priority subjob; on FCFS
  /// processors, every subjob couples with every other subjob on the
  /// processor (their arrival bounds feed the shared utilization function).
  [[nodiscard]] bool dependency_graph_is_acyclic() const;

 private:
  std::vector<Job> jobs_;
  std::vector<SchedulerKind> schedulers_;
  std::uint64_t next_job_id_ = 1;
};

}  // namespace rta
