#include "analysis/spp_exact.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "analysis/order.hpp"
#include "curve/algebra.hpp"
#include "curve/transforms.hpp"

namespace rta {

namespace {

/// Per-subjob state during the sweep.
struct NodeState {
  PwlCurve arrival;    // f_arr (exact)
  PwlCurve service;    // S (Theorem 3)
  PwlCurve departure;  // f_dep (Theorem 2)
  bool done = false;
};

}  // namespace

AnalysisResult ExactSppAnalyzer::analyze(const System& system) const {
  for (int p = 0; p < system.processor_count(); ++p) {
    if (system.scheduler(p) != SchedulerKind::kSpp) {
      AnalysisResult r;
      r.error = "ExactSppAnalyzer requires SPP on every processor";
      return r;
    }
  }
  const auto problems = system.validate();
  if (!problems.empty()) {
    AnalysisResult r;
    r.error = "invalid system: " + problems.front();
    return r;
  }
  if (!topological_order(system)) {
    AnalysisResult r;
    r.error =
        "subjob dependency graph has a cycle; use IterativeBoundsAnalyzer";
    return r;
  }

  Time horizon = default_horizon(system, config_);
  AnalysisResult result = analyze_at(system, horizon);
  for (int round = 0; round < config_.max_horizon_doublings; ++round) {
    if (!result.ok || std::isfinite(result.max_wcrt())) break;
    horizon *= 2.0;
    result = analyze_at(system, horizon);
  }
  return result;
}

AnalysisResult ExactSppAnalyzer::analyze_at(const System& system,
                                            Time horizon) const {
  const auto order_opt = topological_order(system);
  const auto order = *order_opt;  // checked by analyze()

  std::map<std::pair<int, int>, NodeState> state;

  for (const SubjobRef& ref : order) {
    const Subjob& sj = system.subjob(ref);
    NodeState node;

    // Arrival function: Def. 1 for the first hop; the direct-synchronization
    // identity f_{k,j,dep} = f_{k,j+1,arr} afterwards.
    if (ref.hop == 0) {
      node.arrival = system.job(ref.job).arrivals.to_curve(horizon);
    } else {
      node.arrival = state.at({ref.job, ref.hop - 1}).departure;
    }

    // Workload function c = f_arr * tau (Def. 3 / Eq. 1).
    const PwlCurve workload = curve_scale(node.arrival, sj.exec_time);

    // Availability A (Eq. 10): full processor time minus the service given
    // to higher-priority subjobs on the same processor.
    std::vector<PwlCurve> hp_services;
    for (const SubjobRef& hp :
         system.higher_priority_on(sj.processor, sj.priority)) {
      hp_services.push_back(state.at({hp.job, hp.hop}).service);
    }
    const PwlCurve avail = availability_minus(horizon, hp_services);

    // Theorem 3: S(t) = min_{0<=s<=t}{ A(t) - A(s) + c(s^-) }.
    node.service = service_transform(avail, workload);
    // Theorem 2: f_dep(t) = floor(S(t) / tau).
    node.departure = curve_floor_div(node.service, sj.exec_time);
    node.done = true;
    state[{ref.job, ref.hop}] = std::move(node);
  }

  AnalysisResult result;
  result.ok = true;
  result.horizon = horizon;
  result.jobs.resize(system.job_count());

  for (int k = 0; k < system.job_count(); ++k) {
    const Job& job = system.job(k);
    const int last_hop = static_cast<int>(job.chain.size()) - 1;
    const PwlCurve& last_dep = state.at({k, last_hop}).departure;

    JobReport& report = result.jobs[k];
    report.per_instance.reserve(job.arrivals.count());
    Time worst = 0.0;
    // Theorem 1: d_k = max_m ( f^{-1}_dep(m) - f^{-1}_arr(m) ).
    for (std::size_t m = 1; m <= job.arrivals.count(); ++m) {
      const Time completion = last_dep.pseudo_inverse(static_cast<double>(m));
      const Time response = std::isinf(completion)
                                ? kTimeInfinity
                                : completion - job.arrivals.release(m);
      report.per_instance.push_back(response);
      worst = std::max(worst, response);
    }
    report.wcrt = worst;
    report.schedulable = time_le(worst, job.deadline);

    report.hops.resize(job.chain.size());
    for (int h = 0; h <= last_hop; ++h) {
      report.hops[h].ref = {k, h};
      if (config_.record_curves) {
        const NodeState& node = state.at({k, h});
        SubjobCurves curves;
        curves.arrival_upper = node.arrival;
        curves.arrival_lower = node.arrival;
        curves.service_upper = node.service;
        curves.service_lower = node.service;
        curves.departure_lower = node.departure;
        report.hops[h].curves.push_back(std::move(curves));
      }
    }
  }
  return result;
}

}  // namespace rta
