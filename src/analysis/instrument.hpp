// Shared instrumentation plumbing for the bounds engines.
//
// EngineObs bundles everything one analyzer instance needs to report into a
// configured obs::Observer: the pre-resolved metric handles, the kernel sink
// installed around each unit of work, and the per-analyze() flush of
// CurveCache and ThreadPool counters (recorded as deltas, so repeated
// analyze() calls on one instance report per-call numbers).
//
// Everything here is inert when the config carries no observer: the
// analyzers hold a null EngineObs pointer and skip every call site with one
// branch, preserving the zero-cost contract.
#pragma once

#include <memory>
#include <string>

#include "analysis/result.hpp"
#include "curve/curve_cache.hpp"
#include "obs/kernel_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rta::detail {

/// Per-analyzer observability state. Create once at analyzer construction
/// (when the config has an observer), then open one AnalyzeScope per
/// analyze() call.
class EngineObs {
 public:
  /// `engine` tags the analyzer ("bounds" / "iterative") in span names.
  EngineObs(const obs::Observer& observer, std::string engine);

  /// Null when `observer` is empty: call sites guard on the pointer.
  static std::unique_ptr<EngineObs> make_if(const obs::Observer& observer,
                                            const char* engine);

  [[nodiscard]] obs::Tracer* tracer() const { return observer_.tracer; }
  [[nodiscard]] obs::MetricsRegistry* metrics() const {
    return observer_.metrics;
  }
  [[nodiscard]] obs::KernelSink* kernel_sink() const { return ksink_.get(); }
  [[nodiscard]] const std::string& engine() const { return engine_; }

  /// Record one unit's wall time against its processor's scheduler kind
  /// (the per-scheduler breakdown surfaced by `rta_cli validate --stats`).
  void add_unit_time(SchedulerKind kind, double micros) const;

  /// Flushes cache and pool counter deltas on destruction, bracketing one
  /// analyze() call.
  class AnalyzeScope {
   public:
    AnalyzeScope(const EngineObs* eobs, const ThreadPool* pool,
                 const CurveCache* cache);
    ~AnalyzeScope();

    AnalyzeScope(const AnalyzeScope&) = delete;
    AnalyzeScope& operator=(const AnalyzeScope&) = delete;

   private:
    const EngineObs* eobs_;
    const ThreadPool* pool_;
    const CurveCache* cache_;
    ThreadPool::Stats pool_start_;
    CurveCacheStats cache_start_;
  };

 private:
  obs::Observer observer_;
  std::string engine_;
  std::unique_ptr<obs::KernelSink> ksink_;

  obs::Counter unit_time_spp_us_, unit_time_spnp_us_, unit_time_fcfs_us_;
  obs::Counter cache_conv_hits_, cache_conv_misses_;
  obs::Counter cache_pinv_hits_, cache_pinv_misses_;
  obs::Counter cache_collisions_, cache_verifies_;
  obs::Counter pool_tasks_, pool_loops_;
  obs::Counter pool_indices_, pool_indices_abandoned_;
  obs::Counter pool_busy_us_;
  obs::Gauge pool_queue_high_water_;
};

}  // namespace rta::detail
