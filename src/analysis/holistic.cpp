#include "analysis/holistic.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace rta {

namespace {

/// Interference instances of a jittered periodic task in a window of length
/// w: ceil((w + J) / T), with a single instance for one-shot tasks.
double interference_count(double w, const JitteredTask& t) {
  if (std::isinf(t.period)) return 1.0;
  return static_cast<double>(tolerant_ceil((w + t.jitter) / t.period));
}

}  // namespace

Time jittered_response_time(const JitteredTask& task,
                            const std::vector<JitteredTask>& hp,
                            double divergence_cap) {
  // Utilization pre-check: a diverging busy period never closes.
  double util = std::isinf(task.period) ? 0.0 : task.exec / task.period;
  for (const JitteredTask& t : hp) {
    if (!std::isinf(t.period)) util += t.exec / t.period;
  }
  if (util > 1.0 + 1e-9) return kTimeInfinity;

  // Level-i busy period length L (includes all instances of the task).
  double busy = task.exec;
  for (;;) {
    double next = interference_count(busy, task) * task.exec;
    for (const JitteredTask& t : hp) next += interference_count(busy, t) * t.exec;
    if (next > divergence_cap) return kTimeInfinity;
    if (time_eq(next, busy)) break;
    busy = next;
  }

  const long long q_max =
      std::isinf(task.period)
          ? 1
          : tolerant_ceil((busy + task.jitter) / task.period);

  Time worst = 0.0;
  for (long long q = 0; q < q_max; ++q) {
    // w_q: completion of the (q+1)-th instance in the busy period.
    double w = static_cast<double>(q + 1) * task.exec;
    for (;;) {
      double next = static_cast<double>(q + 1) * task.exec;
      for (const JitteredTask& t : hp) {
        next += interference_count(w, t) * t.exec;
      }
      if (next > divergence_cap) return kTimeInfinity;
      if (time_eq(next, w)) break;
      w = next;
    }
    const double arrival_offset =
        std::isinf(task.period) ? 0.0
                                : static_cast<double>(q) * task.period;
    worst = std::max<Time>(worst, task.jitter + w - arrival_offset);
  }
  return worst;
}

AnalysisResult HolisticAnalyzer::analyze(const System& system) const {
  for (int p = 0; p < system.processor_count(); ++p) {
    if (system.scheduler(p) != SchedulerKind::kSpp) {
      AnalysisResult r;
      r.error = "HolisticAnalyzer requires SPP on every processor";
      return r;
    }
  }
  const auto problems = system.validate();
  if (!problems.empty()) {
    AnalysisResult r;
    r.error = "invalid system: " + problems.front();
    return r;
  }

  // Periods: the method is defined for periodic arrivals only.
  std::vector<double> period(system.job_count());
  for (int k = 0; k < system.job_count(); ++k) {
    const auto& rel = system.job(k).arrivals.releases();
    if (rel.size() < 2) {
      period[k] = kTimeInfinity;
      continue;
    }
    const double gap = rel[1] - rel[0];
    for (std::size_t i = 2; i < rel.size(); ++i) {
      if (!time_eq(rel[i] - rel[i - 1], gap)) {
        AnalysisResult r;
        r.error = "HolisticAnalyzer requires periodic arrivals (job " +
                  system.job(k).name + " is not periodic)";
        return r;
      }
    }
    period[k] = gap;
  }

  double max_deadline = 0.0;
  double max_period = 0.0;
  for (int k = 0; k < system.job_count(); ++k) {
    max_deadline = std::max(max_deadline, system.job(k).deadline);
    if (!std::isinf(period[k])) max_period = std::max(max_period, period[k]);
  }
  const double cap = 64.0 * (max_deadline + max_period) + 64.0;

  // R[k][j]: bound on the completion of hop j measured from the job's
  // original arrival. J[k][j] = R[k][j-1] - best-case release offset.
  std::vector<std::vector<double>> R(system.job_count());
  std::vector<std::vector<double>> jitter(system.job_count());
  std::vector<std::vector<double>> best_offset(system.job_count());
  for (int k = 0; k < system.job_count(); ++k) {
    const auto& chain = system.job(k).chain;
    R[k].assign(chain.size(), 0.0);
    jitter[k].assign(chain.size(), 0.0);
    best_offset[k].assign(chain.size(), 0.0);
    double acc = 0.0;
    for (std::size_t h = 0; h < chain.size(); ++h) {
      best_offset[k][h] = acc;  // earliest possible release of hop h
      acc += chain[h].exec_time;
    }
  }

  bool diverged = false;
  for (int iter = 0; iter < config_.max_iterations && !diverged; ++iter) {
    bool changed = false;
    for (int k = 0; k < system.job_count() && !diverged; ++k) {
      const Job& job = system.job(k);
      for (int h = 0; h < static_cast<int>(job.chain.size()); ++h) {
        const Subjob& sj = job.chain[h];
        jitter[k][h] =
            (h == 0) ? 0.0
                     : std::max(0.0, R[k][h - 1] - best_offset[k][h]);
        JitteredTask self{period[k], jitter[k][h], sj.exec_time};
        std::vector<JitteredTask> hp;
        for (const SubjobRef& other :
             system.higher_priority_on(sj.processor, sj.priority)) {
          hp.push_back({period[other.job], jitter[other.job][other.hop],
                        system.subjob(other).exec_time});
        }
        const Time r = jittered_response_time(self, hp, cap);
        if (std::isinf(r)) {
          diverged = true;
          break;
        }
        // r is measured from the nominal (jitter-free) release of hop h,
        // which is the job's arrival + best_offset.
        const double completed = best_offset[k][h] + r;
        if (!time_eq(completed, R[k][h])) changed = true;
        R[k][h] = std::max(R[k][h], completed);
      }
    }
    if (!changed) break;
  }

  AnalysisResult result;
  result.ok = true;
  result.horizon = 0.0;  // not horizon-based
  result.jobs.resize(system.job_count());
  for (int k = 0; k < system.job_count(); ++k) {
    const Job& job = system.job(k);
    JobReport& report = result.jobs[k];
    report.hops.resize(job.chain.size());
    for (int h = 0; h < static_cast<int>(job.chain.size()); ++h) {
      report.hops[h].ref = {k, h};
      report.hops[h].local_bound =
          diverged ? kTimeInfinity
                   : R[k][h] - (h == 0 ? 0.0 : R[k][h - 1]);
    }
    report.wcrt = diverged ? kTimeInfinity : R[k].back();
    report.schedulable = !diverged && time_le(report.wcrt, job.deadline);
  }
  return result;
}

}  // namespace rta
