// Shared result/configuration types for all analyzers.
#pragma once

#include <string>
#include <vector>

#include "curve/pwl_curve.hpp"
#include "model/system.hpp"
#include "obs/observer.hpp"
#include "util/time.hpp"

namespace rta {

/// Which SPNP/SPP service-bound formulas the bounds analyzers use.
enum class BoundsVariant {
  /// The sound per-candidate forms (default; see analysis/bounds.hpp).
  kSound,
  /// Theorems 5/6 exactly as printed in the paper (Eqs. 16-19). UNSOUND in
  /// three documented ways (DESIGN.md); provided so the violation rate can
  /// be measured (bench/literal_soundness).
  kPaperLiteral,
};

/// Analysis tuning knobs. The defaults suit the paper's workloads.
struct AnalysisConfig {
  /// Analysis horizon; 0 selects automatically: last release + padding,
  /// where padding = max(horizon_padding_deadlines * max deadline,
  /// horizon_padding_fraction * last release).
  Time horizon = 0.0;

  double horizon_padding_deadlines = 2.0;
  double horizon_padding_fraction = 0.5;

  /// If a response time cannot be bounded within the horizon, the horizon is
  /// doubled and the analysis re-run, up to this many times, before the
  /// result is reported as unbounded (conservatively unschedulable).
  int max_horizon_doublings = 3;

  /// Keep per-subjob curves in the report (costs memory; for inspection).
  bool record_curves = false;

  /// Iteration cap for the fixed-point analyzers (iterative topology loop
  /// and the holistic baseline's outer jitter loop).
  int max_iterations = 64;

  /// SPNP/SPP bound formulas (see BoundsVariant).
  BoundsVariant bounds_variant = BoundsVariant::kSound;

  /// Worker threads for the parallel bounds engines: 1 = serial (default),
  /// 0 = std::thread::hardware_concurrency(), N = that many workers.
  /// Determinism contract: the computed bounds are bit-identical for every
  /// value (tests/test_differential_engine.cpp).
  int threads = 1;

  /// Memoize curve operations and unchanged per-processor passes (see
  /// curve/curve_cache.hpp). Purely an optimization: cache hits are verified
  /// knot-for-knot, so the results are bit-identical with the cache off.
  bool use_curve_cache = true;

  /// Instrumentation sinks (see obs/observer.hpp and docs/observability.md).
  /// Both null by default: the engine then records nothing and skips every
  /// instrumentation atomic. Never affects results -- instrumented and
  /// uninstrumented analyses are bit-identical (tests/test_obs.cpp).
  obs::Observer observer{};
};

/// Curves retained for one subjob when record_curves is set.
struct SubjobCurves {
  PwlCurve arrival_upper;  ///< f̄_arr (exact f_arr for the exact analyzer)
  PwlCurve arrival_lower;  ///< f̲_arr (exact analyzer: same as upper)
  PwlCurve service_upper;  ///< S̄ (exact analyzer: S)
  PwlCurve service_lower;  ///< S̲ (exact analyzer: S)
  PwlCurve departure_lower;  ///< f̲_dep (exact analyzer: f_dep)
};

/// Per-hop findings.
struct SubjobReport {
  SubjobRef ref;
  /// Local response bound d_{k,j} of Eq. 12 (approximate analyzers only;
  /// kTimeInfinity when unbounded, 0 for the exact analyzer which does not
  /// decompose per hop).
  Time local_bound = 0.0;
  /// Retained curves (empty unless AnalysisConfig::record_curves).
  std::vector<SubjobCurves> curves;
};

/// Per-job findings.
struct JobReport {
  /// Worst-case end-to-end response-time bound (exact value for the exact
  /// analyzer; kTimeInfinity if unbounded within the horizon).
  Time wcrt = 0.0;
  bool schedulable = false;
  /// Exact analyzer only: response time of every instance (1-based instance
  /// m at index m-1). Empty for approximate analyzers.
  std::vector<Time> per_instance;
  std::vector<SubjobReport> hops;
};

/// Result of one analysis run.
struct AnalysisResult {
  bool ok = false;      ///< false: analyzer not applicable / model invalid
  std::string error;    ///< human-readable reason when !ok
  Time horizon = 0.0;   ///< horizon actually used (after any doubling)
  std::vector<JobReport> jobs;

  [[nodiscard]] bool all_schedulable() const {
    if (!ok) return false;
    for (const JobReport& j : jobs) {
      if (!j.schedulable) return false;
    }
    return true;
  }

  /// Largest finite WCRT bound across jobs (0 if none).
  [[nodiscard]] Time max_wcrt() const {
    Time worst = 0.0;
    for (const JobReport& j : jobs) {
      if (j.wcrt > worst) worst = j.wcrt;
    }
    return worst;
  }
};

/// Default automatic horizon for a system under a config.
[[nodiscard]] Time default_horizon(const System& system,
                                   const AnalysisConfig& config);

}  // namespace rta
