// Exact end-to-end response-time analysis for SPP systems (paper §4.1).
//
// Computes the exact service function of every subjob via Theorem 3, chains
// departures to next-hop arrivals via Theorem 2 / the direct-synchronization
// identity f_dep(k,j) = f_arr(k,j+1), and evaluates Theorem 1:
//
//   d_k = max_m ( f^{-1}_{k,n_k,dep}(m) - f^{-1}_{k,1,arr}(m) ).
//
// "Exact" is with respect to the given finite release trace: the analysis
// reproduces, instant for instant, what a preemptive static-priority
// processor does with those releases (the property tests check this against
// the discrete-event simulator).
//
// Requirements: every processor uses SPP, and the subjob dependency graph is
// acyclic (true for the paper's staged job shop). Cyclic topologies are
// handled by IterativeBoundsAnalyzer.
#pragma once

#include "analysis/result.hpp"
#include "model/system.hpp"

namespace rta {

class ExactSppAnalyzer {
 public:
  explicit ExactSppAnalyzer(AnalysisConfig config = {}) : config_(config) {}

  [[nodiscard]] AnalysisResult analyze(const System& system) const;

  /// Name used in reports and experiment tables.
  [[nodiscard]] static const char* name() { return "SPP/Exact"; }

 private:
  [[nodiscard]] AnalysisResult analyze_at(const System& system,
                                          Time horizon) const;

  AnalysisConfig config_;
};

}  // namespace rta
