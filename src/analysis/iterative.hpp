// Fixed-point bounds analysis for cyclic topologies (paper §6, future work).
//
// When jobs visit a processor more than once ("physical loops") or disturb
// each other across processors ("logical loops"), the arrival functions form
// a closed dependency chain and no topological order exists. The paper
// sketches an iteration X^{n+1} = F(X^n) over unknown response times; we
// realize the idea at the level of arrival-curve bounds, which is sound at
// every iteration:
//
//   * initialize each hop's arrival upper bound with the earliest possible
//     arrivals (first-hop releases shifted by the sum of predecessor
//     execution times -- no instance can arrive sooner), and each arrival
//     lower bound with zero (no departure is guaranteed);
//   * repeatedly recompute every processor's service bounds from the current
//     arrival bounds and derive new next-hop arrival bounds;
//   * intersect with the previous bounds (monotone refinement), so the
//     iteration converges; stop at a fixpoint or after max_iterations.
//
// Works for any mix of SPP/SPNP/FCFS processors. On acyclic systems it
// converges to the same result as BoundsAnalyzer (verified in tests).
//
// Parallel engine: within one refinement round the per-processor passes are
// independent (each reads and writes only its own subjobs' states), as are
// the per-job arrival propagations, so with AnalysisConfig::threads != 1
// both run concurrently on an internal ThreadPool. With use_curve_cache a
// processor pass whose arrival inputs are knot-for-knot unchanged since its
// last execution is skipped outright (its outputs are already in place), and
// pseudo-inverse tables are memoized via CurveCache. All of it preserves the
// determinism contract: bounds are bit-identical to the serial, uncached
// engine for every thread count (tests/test_differential_engine.cpp).
#pragma once

#include <atomic>
#include <memory>

#include "analysis/instrument.hpp"
#include "analysis/result.hpp"
#include "curve/curve_cache.hpp"
#include "model/system.hpp"
#include "util/thread_pool.hpp"

namespace rta {

class IterativeBoundsAnalyzer {
 public:
  explicit IterativeBoundsAnalyzer(AnalysisConfig config = {});

  [[nodiscard]] AnalysisResult analyze(const System& system) const;

  [[nodiscard]] static const char* name() { return "Bounds/Iterative"; }

  /// Number of refinement iterations used in the last analyze() call
  /// (diagnostic; last writer wins under concurrent analyze() calls).
  [[nodiscard]] int last_iterations() const {
    return last_iterations_.load(std::memory_order_relaxed);
  }

  /// The memoization layer, for stats inspection (null when disabled).
  [[nodiscard]] const CurveCache* curve_cache() const { return cache_.get(); }

 private:
  [[nodiscard]] AnalysisResult analyze_at(const System& system,
                                          Time horizon) const;

  AnalysisConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<CurveCache> cache_;
  std::unique_ptr<detail::EngineObs> eobs_;  ///< null without an observer
  mutable std::atomic<int> last_iterations_{0};
};

}  // namespace rta
