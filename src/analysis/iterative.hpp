// Fixed-point bounds analysis for cyclic topologies (paper §6, future work).
//
// When jobs visit a processor more than once ("physical loops") or disturb
// each other across processors ("logical loops"), the arrival functions form
// a closed dependency chain and no topological order exists. The paper
// sketches an iteration X^{n+1} = F(X^n) over unknown response times; we
// realize the idea at the level of arrival-curve bounds, which is sound at
// every iteration:
//
//   * initialize each hop's arrival upper bound with the earliest possible
//     arrivals (first-hop releases shifted by the sum of predecessor
//     execution times -- no instance can arrive sooner), and each arrival
//     lower bound with zero (no departure is guaranteed);
//   * repeatedly recompute every processor's service bounds from the current
//     arrival bounds and derive new next-hop arrival bounds;
//   * intersect with the previous bounds (monotone refinement), so the
//     iteration converges; stop at a fixpoint or after max_iterations.
//
// Works for any mix of SPP/SPNP/FCFS processors. On acyclic systems it
// converges to the same result as BoundsAnalyzer (verified in tests).
#pragma once

#include "analysis/result.hpp"
#include "model/system.hpp"

namespace rta {

class IterativeBoundsAnalyzer {
 public:
  explicit IterativeBoundsAnalyzer(AnalysisConfig config = {})
      : config_(config) {}

  [[nodiscard]] AnalysisResult analyze(const System& system) const;

  [[nodiscard]] static const char* name() { return "Bounds/Iterative"; }

  /// Number of refinement iterations used in the last analyze() call on this
  /// thread (diagnostic; not synchronized across threads).
  [[nodiscard]] int last_iterations() const { return last_iterations_; }

 private:
  [[nodiscard]] AnalysisResult analyze_at(const System& system,
                                          Time horizon) const;

  AnalysisConfig config_;
  mutable int last_iterations_ = 0;
};

}  // namespace rta
