// SPP/S&L baseline: holistic end-to-end analysis for the Direct
// Synchronization protocol (Sun & Liu [1,2], building on Tindell & Clark's
// holistic analysis with release jitter).
//
// Applicable to PERIODIC jobs on SPP processors only (the method the paper
// compares against in Figure 3; it "works for periodic job arrivals only",
// §5.2). Each subjob T_{k,j} is modeled as a periodic task with period T_k
// and release jitter J_{k,j}; the local worst-case response r_{k,j} is
// computed with busy-period analysis (arbitrary-deadline style, multiple
// instances per busy period), and jitter propagates down the chain:
//
//   J_{k,1} = 0,
//   R_{k,j} = R_{k,j-1} + r_{k,j},
//   J_{k,j} = R_{k,j-1} - sum_{i<j} tau_{k,i}   (latest minus earliest
//                                                possible release of hop j).
//
// The jitters of interfering subjobs feed each other's busy periods, so an
// outer loop iterates from J = 0 to a fixpoint; response bounds only grow,
// and divergence (bound exceeding the divergence cap) means unschedulable.
// The end-to-end bound is R_{k,n_k}.
#pragma once

#include "analysis/result.hpp"
#include "model/system.hpp"

namespace rta {

class HolisticAnalyzer {
 public:
  explicit HolisticAnalyzer(AnalysisConfig config = {}) : config_(config) {}

  [[nodiscard]] AnalysisResult analyze(const System& system) const;

  [[nodiscard]] static const char* name() { return "SPP/S&L"; }

 private:
  AnalysisConfig config_;
};

/// Local worst-case response time of a task under SPP with release jitter
/// (busy-period analysis, arbitrary deadlines). Used by HolisticAnalyzer and
/// directly testable. Interfering tasks are given as (period, jitter, exec).
struct JitteredTask {
  double period;
  double jitter;
  double exec;
};

/// Returns the worst response time measured from the *release* of the task
/// (jitter of the task itself included), or kTimeInfinity when the busy
/// period does not close below `divergence_cap`.
[[nodiscard]] Time jittered_response_time(const JitteredTask& task,
                                          const std::vector<JitteredTask>& hp,
                                          double divergence_cap);

}  // namespace rta
