// Dependency ordering of subjob computations.
//
// A subjob's service (or service bounds) can be computed once (a) its
// arrival curve is known -- i.e. its predecessor hop is done -- and (b) the
// curves it is coupled to on its processor are done: higher-priority subjobs
// under SPP/SPNP, or the predecessors of *all* co-located subjobs under FCFS
// (they feed the shared utilization function of Theorem 7).
#pragma once

#include <optional>
#include <vector>

#include "model/system.hpp"

namespace rta {

/// Edges of the computation-dependency graph, as adjacency lists over
/// job-major subjob indices.
struct DependencyGraph {
  std::vector<int> node_base;            ///< prefix sums: node_base[k] + hop
  std::vector<std::vector<int>> succ;    ///< successor lists
  [[nodiscard]] int node(SubjobRef r) const { return node_base[r.job] + r.hop; }
  [[nodiscard]] int node_count() const {
    return node_base.empty() ? 0 : node_base.back();
  }
};

/// Build the dependency graph described above for `system`.
[[nodiscard]] DependencyGraph build_dependency_graph(const System& system);

/// Topological order of all subjobs, or nullopt if the graph has a cycle
/// (physical or logical loop, paper §6); cyclic systems are handled by
/// IterativeBoundsAnalyzer.
[[nodiscard]] std::optional<std::vector<SubjobRef>> topological_order(
    const System& system);

}  // namespace rta
