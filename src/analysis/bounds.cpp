#include "analysis/bounds.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <thread>

#include "analysis/order.hpp"
#include "curve/algebra.hpp"
#include "curve/kernel_hooks.hpp"
#include "curve/transforms.hpp"

namespace rta {
namespace detail {

namespace {

/// Pseudo-inverses of `c` at levels 1..count, through the cache when one is
/// available. The cached table stores exactly c.pseudo_inverse(m), so both
/// paths are bit-identical.
class LevelInverses {
 public:
  LevelInverses(CurveCache* cache, const PwlCurve& c, long long count)
      : curve_(c) {
    if (cache != nullptr) table_ = cache->level_inverses(c, count);
  }

  [[nodiscard]] Time at(long long m) const {
    if (table_) return (*table_)[static_cast<std::size_t>(m - 1)];
    return curve_.pseudo_inverse(static_cast<double>(m));
  }

 private:
  const PwlCurve& curve_;
  std::shared_ptr<const std::vector<Time>> table_;
};

/// Next-hop arrival upper bound (Lemma 2): instances arrive at hop j+1 when
/// S̄ first crosses multiples of tau; additionally an instance cannot reach
/// hop j+1 earlier than tau after its own earliest hop-j arrival.
PwlCurve next_arrival_upper(const PwlCurve& svc_upper,
                            const PwlCurve& arr_upper, double tau) {
  return curve_min(curve_crossing_counts(svc_upper, tau),
                   curve_shift_right(arr_upper, tau));
}

/// Bounds for the subjobs of a static-priority processor (SPP with b = 0,
/// SPNP with b of Eq. 15), in descending priority order.
void priority_processor_bounds(const System& system, int p, Time horizon,
                               BoundStateMap& states, BoundsVariant variant,
                               CurveCache* cache) {
  std::vector<SubjobRef> refs = system.subjobs_on(p);
  std::sort(refs.begin(), refs.end(),
            [&](const SubjobRef& a, const SubjobRef& b) {
              return system.subjob(a).priority < system.subjob(b).priority;
            });
  for (const SubjobRef& ref : refs) {
    compute_single_priority_subjob(system, ref, horizon, states, variant,
                                   cache);
  }
}

/// Bounds for the subjobs of a FCFS processor (Theorems 7-9).
void fcfs_processor_bounds(const System& system, int p, Time horizon,
                           BoundStateMap& states, CurveCache* cache) {
  const std::vector<SubjobRef> refs = system.subjobs_on(p);

  // Total workload bounds G (Eq. 21) over all subjobs on the processor.
  std::vector<PwlCurve> c_uppers, c_lowers;
  for (const SubjobRef& ref : refs) {
    const double tau = system.subjob(ref).exec_time;
    const BoundState& st = states.at({ref.job, ref.hop});
    c_uppers.push_back(curve_scale(st.arr_upper, tau));
    c_lowers.push_back(curve_scale(st.arr_lower, tau));
  }
  const PwlCurve g_upper = curve_sum(c_uppers, horizon);
  const PwlCurve g_lower = curve_sum(c_lowers, horizon);

  // Utilization lower bound (Theorem 7 applied to the workload lower bound;
  // U is monotone in G, so this lower-bounds the true busy time).
  const PwlCurve util_lower =
      service_transform(PwlCurve::identity(horizon), g_lower);

  for (std::size_t i = 0; i < refs.size(); ++i) {
    const SubjobRef& ref = refs[i];
    const Subjob& sj = system.subjob(ref);
    const double tau = sj.exec_time;
    BoundState& st = states.at({ref.job, ref.hop});

    // Theorem 8: instance m of the subjob is certainly complete once the
    // processor has performed as much work as had arrived up to the
    // instance's latest possible arrival (FCFS serves in arrival order, any
    // tie-break): departure m at min{ t : U̲(t) >= Ḡ(ā_m) } with
    // ā_m = f̲_arr^{-1}(m) the latest possible m-th arrival.
    const long long count_lower =
        tolerant_floor(st.arr_lower.end_value() + 0.5);
    const LevelInverses arr_lower_inv(cache, st.arr_lower, count_lower);
    std::vector<Time> dep_times;
    dep_times.reserve(count_lower);
    for (long long m = 1; m <= count_lower; ++m) {
      const Time a_late = arr_lower_inv.at(m);
      if (std::isinf(a_late)) break;
      const Time t = util_lower.pseudo_inverse(g_upper.eval(a_late));
      if (std::isinf(t)) break;
      dep_times.push_back(t);
    }
    st.dep_lower = PwlCurve::step(horizon, dep_times);
    st.svc_lower = curve_scale(st.dep_lower, tau);

    // Theorem 9: S̄ = S̲ + tau, capped by arrived work and elapsed time.
    const PwlCurve c_upper = c_uppers[i];
    st.svc_upper =
        curve_min(curve_min(curve_add_constant(st.svc_lower, tau), c_upper),
                  PwlCurve::identity(horizon));
    st.next_arr_upper = next_arrival_upper(st.svc_upper, st.arr_upper, tau);
    st.local_bound = local_delay_bound(st.dep_lower, st.arr_upper, cache);
    st.computed = true;
  }
}

}  // namespace

namespace {

/// Theorems 5/6 EXACTLY as printed (Eqs. 16-19), for measuring the
/// unsoundness documented in DESIGN.md. Interference terms use the
/// higher-priority service LOWER bounds in both availabilities; the lower
/// bound lags its min-window by the blocking b; no demand caps.
void literal_priority_subjob(const System& system, SubjobRef ref,
                             Time horizon, BoundStateMap& states) {
  const Subjob& sj = system.subjob(ref);
  const bool preemptive =
      system.scheduler(sj.processor) == SchedulerKind::kSpp;
  BoundState& st = states.at({ref.job, ref.hop});
  const double tau = sj.exec_time;
  const double b = preemptive ? 0.0 : system.blocking_time(ref);
  const PwlCurve ident = PwlCurve::identity(horizon);

  std::vector<PwlCurve> hp_lower;
  for (const SubjobRef& hp :
       system.higher_priority_on(sj.processor, sj.priority)) {
    const BoundState& hp_state = states.at({hp.job, hp.hop});
    assert(hp_state.computed);
    hp_lower.push_back(hp_state.svc_lower);
  }
  const PwlCurve hp_l = curve_sum(hp_lower, horizon);

  const PwlCurve c_upper = curve_scale(st.arr_upper, tau);
  const PwlCurve c_lower = curve_scale(st.arr_lower, tau);

  // Eq. 17: B(t) = t - b - sum S̲_hp(t) for t > b, else 0. The sum of
  // lower-bound curves can make this non-monotone; our transform needs a
  // nondecreasing availability, so monotonize from below (this only
  // *increases* the literal bound, i.e. never hides its optimism).
  PwlCurve avail_lower = curve_sub(ident, hp_l);
  if (b > 0.0) avail_lower = curve_add_constant(avail_lower, -b);
  avail_lower =
      curve_running_max(curve_clamp_min(avail_lower, 0.0));
  // Eq. 16: S̲(t) = min_{0<=s<=t-b}{ B(t) - B(s) + c(s) }.
  PwlCurve svc_lower = service_transform(avail_lower, c_lower, b);

  // Eq. 19: B̄(t) = t - sum S̲_hp(t); Eq. 18 with the same min form.
  PwlCurve avail_upper =
      curve_clamp_min(curve_right_running_min(curve_sub(ident, hp_l)), 0.0);
  PwlCurve svc_upper = service_transform(avail_upper, c_upper);

  st.svc_lower = tighten_lower_bound(svc_lower);
  st.svc_upper = svc_upper;
  // Lemma 1 / Lemma 2 as printed: counting curves straight from the bounds.
  st.dep_lower = curve_crossing_counts(st.svc_lower, tau);
  st.next_arr_upper = curve_crossing_counts(svc_upper, tau);
  st.local_bound = local_delay_bound(st.dep_lower, st.arr_upper);
  st.computed = true;
}

}  // namespace

void compute_single_priority_subjob(const System& system, SubjobRef ref,
                                    Time horizon, BoundStateMap& states,
                                    BoundsVariant variant, CurveCache* cache) {
  if (variant == BoundsVariant::kPaperLiteral) {
    literal_priority_subjob(system, ref, horizon, states);
    return;
  }
  const Subjob& sj = system.subjob(ref);
  const bool preemptive =
      system.scheduler(sj.processor) == SchedulerKind::kSpp;
  BoundState& st = states.at({ref.job, ref.hop});
  const double tau = sj.exec_time;
  const double b = preemptive ? 0.0 : system.blocking_time(ref);
  const PwlCurve ident = PwlCurve::identity(horizon);

  std::vector<PwlCurve> hp_upper;  // S̄ of higher-priority subjobs
  std::vector<PwlCurve> hp_lower;  // S̲ of higher-priority subjobs
  for (const SubjobRef& hp :
       system.higher_priority_on(sj.processor, sj.priority)) {
    const BoundState& hp_state = states.at({hp.job, hp.hop});
    assert(hp_state.computed);
    hp_upper.push_back(hp_state.svc_upper);
    hp_lower.push_back(hp_state.svc_lower);
  }
  const PwlCurve hp_u = curve_sum(hp_upper, horizon);  // upper on hp service
  const PwlCurve hp_l = curve_sum(hp_lower, horizon);  // lower on hp service

  const PwlCurve c_upper = curve_scale(st.arr_upper, tau);
  const PwlCurve c_lower = curve_scale(st.arr_lower, tau);

  // Theorems 5/6 realized per *queue-empty candidate* (see bounds.hpp): the
  // literal per-window forms re-credit the blocking b after every queue
  // drain and mix bound directions in the interference increment, both of
  // which the simulator refutes. The sound per-candidate forms are:
  //
  //   S̲(t) = min_i max( base_i, base_i + (t - s_i) - b
  //                                    - (S̄hp(t) - S̲hp(s_i)) ),
  //     s_i = latest possible i-th arrival, base_i = (i-1) tau
  //     (the last queue-empty instant can be pushed to just before the next
  //      arrival; blocking is incurred at most once per backlogged period);
  //
  //   S̄(t) = min_i [ base_i + min( t - s_i,
  //                                (t - s_i) - (S̲hp(t) - S̄hp(s_i)) ) ],
  //     s_i = earliest possible i-th arrival -- every term is independently
  //     a valid upper bound (service in (s_i, t] is limited by elapsed time
  //     minus guaranteed higher-priority consumption).

  // Q̲(t) = t - b - S̄hp(t); Q̄(t) = t - S̲hp(t).
  const PwlCurve q_lower =
      curve_add_constant(curve_sub(ident, hp_u), -b);
  const PwlCurve q_upper = curve_sub(ident, hp_l);

  const long long count_lower = tolerant_floor(st.arr_lower.end_value() + 0.5);
  const long long count_upper = tolerant_floor(st.arr_upper.end_value() + 0.5);
  const LevelInverses arr_lower_inv(cache, st.arr_lower, count_lower);
  const LevelInverses arr_upper_inv(cache, st.arr_upper, count_upper);

  // ---- Lower service bound.
  PwlCurve svc_lower = PwlCurve::zero(horizon);
  bool have_lower = false;
  for (long long i = 1; i <= count_lower; ++i) {
    const Time s_i = arr_lower_inv.at(i);
    if (std::isinf(s_i)) break;
    const double base = static_cast<double>(i - 1) * tau;
    // term_i(t) = max(base, base + Q̲(t) - (s_i - S̲hp(s_i))).
    const double offset = s_i - hp_l.eval_left(s_i);
    PwlCurve term = curve_clamp_min(
        curve_add_constant(q_lower, base - offset), base);
    svc_lower = have_lower ? curve_min(svc_lower, term) : std::move(term);
    have_lower = true;
  }
  if (!have_lower) svc_lower = PwlCurve::zero(horizon);
  // Demand cap (service never exceeds arrived work; with lower arrival
  // counts this only loosens, which is sound for a lower bound) and
  // monotone tightening.
  svc_lower = curve_clamp_min(curve_min(svc_lower, c_lower), 0.0);
  svc_lower = tighten_lower_bound(svc_lower);

  // ---- Upper service bound.
  const double big = horizon + c_upper.end_value() + 1.0;
  PwlCurve svc_upper = ident;  // S(t) <= t always
  for (long long i = 0; i <= count_upper; ++i) {
    Time s_i = 0.0;
    double base = 0.0;
    if (i > 0) {
      s_i = arr_upper_inv.at(i);
      if (std::isinf(s_i)) break;
      base = static_cast<double>(i - 1) * tau;
    }
    // term_i(t) = base + min(t - s_i, Q̄(t) - (s_i - S̄hp(s_i))),
    // valid only for t >= s_i (forced BIG before s_i).
    const PwlCurve elapsed = curve_add_constant(ident, -s_i);
    const PwlCurve drained =
        curve_add_constant(q_upper, -(s_i - hp_u.eval_left(s_i)));
    PwlCurve term =
        curve_add_constant(curve_min(elapsed, drained), base);
    if (s_i > 0.0 && time_lt(s_i, horizon)) {
      const PwlCurve gate({{0.0, big, big}, {s_i, big, 0.0},
                           {horizon, 0.0, 0.0}});
      term = curve_max(term, gate);
    }
    svc_upper = curve_min(svc_upper, term);
  }
  // Demand cap: S(t) <= c(t^-) <= c̄(t).
  svc_upper = curve_min(svc_upper, c_upper);

  st.svc_lower = svc_lower;
  st.svc_upper = svc_upper;
  st.dep_lower = curve_floor_div(svc_lower, tau);  // Lemma 1
  st.next_arr_upper = next_arrival_upper(svc_upper, st.arr_upper, tau);
  st.local_bound = local_delay_bound(st.dep_lower, st.arr_upper, cache);
  st.computed = true;
}

Time local_delay_bound(const PwlCurve& dep_lower, const PwlCurve& arr_upper,
                       CurveCache* cache) {
  const long long count = tolerant_floor(arr_upper.end_value() + 0.5);
  const LevelInverses arr_inv(cache, arr_upper, count);
  const LevelInverses dep_inv(cache, dep_lower, count);
  Time worst = 0.0;
  for (long long m = 1; m <= count; ++m) {
    const Time arr = arr_inv.at(m);
    const Time dep = dep_inv.at(m);
    if (std::isinf(dep)) return kTimeInfinity;
    worst = std::max(worst, dep - arr);
  }
  return worst;
}

void compute_processor_bounds(const System& system, int p, Time horizon,
                              BoundStateMap& states, BoundsVariant variant,
                              CurveCache* cache) {
  if (system.scheduler(p) == SchedulerKind::kFcfs) {
    fcfs_processor_bounds(system, p, horizon, states, cache);
  } else {
    priority_processor_bounds(system, p, horizon, states, variant, cache);
  }
}

void run_bounds_wavefront(const System& system, Time horizon,
                          BoundsVariant variant, ThreadPool* pool,
                          CurveCache* cache, const EngineObs* eo,
                          const std::vector<char>* dirty,
                          BoundStateMap& states) {
  // Ensure every subjob has a state entry; retained (clean) entries are left
  // untouched so a partial run reuses their curves.
  for (int k = 0; k < system.job_count(); ++k) {
    for (int h = 0; h < static_cast<int>(system.job(k).chain.size()); ++h) {
      states.try_emplace({k, h});
    }
  }

  // Resolve one subjob's arrival bounds from its (already computed)
  // predecessor hop.
  auto fill_arrivals = [&](SubjobRef r) {
    BoundState& s = states.at({r.job, r.hop});
    if (r.hop == 0) {
      const PwlCurve exact = system.job(r.job).arrivals.to_curve(horizon);
      s.arr_upper = exact;
      s.arr_lower = exact;
    } else {
      const BoundState& pred = states.at({r.job, r.hop - 1});
      assert(pred.computed);
      s.arr_upper = pred.next_arr_upper;
      s.arr_lower = pred.dep_lower;  // Lemma 1 feeding the DS identity
    }
  };

  // Wavefront schedule over the computation-dependency graph. A unit is one
  // subjob on a priority processor, or a whole FCFS processor (Theorem 7
  // couples its subjobs through the shared utilization function). Unit depth
  // = longest dependency chain feeding it, so all inputs of a depth-d unit
  // are produced at depths < d: the units of one depth are independent and
  // run concurrently, each writing only its own subjobs' states. With a
  // dirty filter, clean units are simply absent from the waves (their
  // retained states already equal what the unit would recompute).
  const DependencyGraph graph = build_dependency_graph(system);
  const int n = graph.node_count();
  std::vector<int> depth(n, 0);
  {
    std::vector<int> indeg(n, 0);
    for (const auto& edges : graph.succ) {
      for (int v : edges) ++indeg[v];
    }
    std::vector<int> ready;
    for (int v = 0; v < n; ++v) {
      if (indeg[v] == 0) ready.push_back(v);
    }
    int processed = 0;
    while (!ready.empty()) {
      const int v = ready.back();
      ready.pop_back();
      ++processed;
      for (int w : graph.succ[v]) {
        depth[w] = std::max(depth[w], depth[v] + 1);
        if (--indeg[w] == 0) ready.push_back(w);
      }
    }
    assert(processed == n);  // acyclic: checked by analyze()
    (void)processed;
  }

  auto is_dirty = [&](SubjobRef r) {
    return dirty == nullptr || (*dirty)[graph.node(r)] != 0;
  };

  struct Unit {
    int processor = -1;    ///< FCFS: whole processor; else unused
    SubjobRef ref;         ///< priority processors: the one subjob
    bool whole_fcfs = false;
  };
  int max_depth = 0;
  for (int v = 0; v < n; ++v) max_depth = std::max(max_depth, depth[v]);
  std::vector<std::vector<Unit>> waves(max_depth + 1);
  for (int p = 0; p < system.processor_count(); ++p) {
    const std::vector<SubjobRef> on_p = system.subjobs_on(p);
    if (system.scheduler(p) == SchedulerKind::kFcfs) {
      if (on_p.empty()) continue;
      bool any_dirty = false;
      int d = 0;
      for (const SubjobRef& r : on_p) {
        d = std::max(d, depth[graph.node(r)]);
        any_dirty = any_dirty || is_dirty(r);
      }
      if (any_dirty) waves[d].push_back({p, {}, true});
    } else {
      for (const SubjobRef& r : on_p) {
        if (is_dirty(r)) {
          waves[depth[graph.node(r)]].push_back({p, r, false});
        }
      }
    }
  }

  obs::Tracer* tracer = eo != nullptr ? eo->tracer() : nullptr;
  obs::Counter waves_counter, units_counter;
  if (eo != nullptr && eo->metrics() != nullptr) {
    waves_counter = eo->metrics()->counter("bounds.waves");
    units_counter = eo->metrics()->counter("bounds.units");
  }

  auto run_unit = [&](const Unit& unit) {
    if (unit.whole_fcfs) {
      for (const SubjobRef& r : system.subjobs_on(unit.processor)) {
        fill_arrivals(r);
      }
      compute_processor_bounds(system, unit.processor, horizon, states,
                               variant, cache);
    } else {
      fill_arrivals(unit.ref);
      compute_single_priority_subjob(system, unit.ref, horizon, states,
                                     variant, cache);
    }
  };
  auto unit_label = [&](const Unit& unit) {
    if (unit.whole_fcfs) {
      return "bounds.unit fcfs P" + std::to_string(unit.processor);
    }
    return "bounds.unit P" + std::to_string(unit.processor) + " " +
           system.job(unit.ref.job).name + ".h" + std::to_string(unit.ref.hop);
  };

  for (std::size_t d = 0; d < waves.size(); ++d) {
    const std::vector<Unit>& wave = waves[d];
    if (wave.empty()) continue;
    waves_counter.inc();
    units_counter.add(wave.size());
    obs::Tracer::Span wave_span = obs::Tracer::span_if(
        tracer, "bounds.wave",
        tracer != nullptr ? "{\"depth\": " + std::to_string(d) +
                                ", \"units\": " + std::to_string(wave.size()) +
                                "}"
                          : std::string());
    for_each_index(pool, wave.size(), [&](std::size_t i) {
      const Unit& unit = wave[i];
      if (eo == nullptr) {
        run_unit(unit);
        return;
      }
      // Worker threads inherit no hooks; install this analyzer's sink for
      // the duration of the unit so the curve kernels it calls report here.
      curve::KernelHooksScope sink_scope(eo->kernel_sink());
      obs::Tracer::Span unit_span = obs::Tracer::span_if(
          tracer, unit_label(unit));
      const auto start = std::chrono::steady_clock::now();
      run_unit(unit);
      const std::chrono::duration<double, std::micro> us =
          std::chrono::steady_clock::now() - start;
      eo->add_unit_time(system.scheduler(unit.processor), us.count());
    });
  }
}

AnalysisResult bounds_result_from_states(const System& system, Time horizon,
                                         bool record_curves,
                                         const BoundStateMap& states) {
  AnalysisResult result;
  result.ok = true;
  result.horizon = horizon;
  result.jobs.resize(system.job_count());

  for (int k = 0; k < system.job_count(); ++k) {
    const Job& job = system.job(k);
    JobReport& report = result.jobs[k];
    report.hops.resize(job.chain.size());
    Time total = 0.0;
    for (int h = 0; h < static_cast<int>(job.chain.size()); ++h) {
      const BoundState& st = states.at({k, h});
      report.hops[h].ref = {k, h};
      report.hops[h].local_bound = st.local_bound;
      total += st.local_bound;  // Eq. 11
      if (record_curves) {
        SubjobCurves curves;
        curves.arrival_upper = st.arr_upper;
        curves.arrival_lower = st.arr_lower;
        curves.service_upper = st.svc_upper;
        curves.service_lower = st.svc_lower;
        curves.departure_lower = st.dep_lower;
        report.hops[h].curves.push_back(std::move(curves));
      }
    }
    report.wcrt = total;
    report.schedulable = time_le(total, job.deadline);
  }
  return result;
}

}  // namespace detail

std::size_t analysis_worker_count(int threads) {
  if (threads == 1) return 1;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
  }
  return static_cast<std::size_t>(threads);
}

BoundsAnalyzer::BoundsAnalyzer(AnalysisConfig config) : config_(config) {
  const std::size_t workers = analysis_worker_count(config.threads);
  if (workers > 1) pool_ = std::make_unique<ThreadPool>(workers);
  if (config.use_curve_cache) cache_ = std::make_unique<CurveCache>();
  eobs_ = detail::EngineObs::make_if(config.observer, "bounds");
}

AnalysisResult BoundsAnalyzer::analyze(const System& system) const {
  const detail::EngineObs* eo = eobs_.get();
  detail::EngineObs::AnalyzeScope obs_scope(eo, pool_.get(), cache_.get());
  obs::Tracer::Span span = obs::Tracer::span_if(
      eo != nullptr ? eo->tracer() : nullptr, "bounds.analyze");
  const auto problems = system.validate();
  if (!problems.empty()) {
    AnalysisResult r;
    r.error = "invalid system: " + problems.front();
    return r;
  }
  if (!topological_order(system)) {
    AnalysisResult r;
    r.error =
        "subjob dependency graph has a cycle; use IterativeBoundsAnalyzer";
    return r;
  }

  Time horizon = default_horizon(system, config_);
  AnalysisResult result = analyze_at(system, horizon);
  for (int round = 0; round < config_.max_horizon_doublings; ++round) {
    if (!result.ok) break;
    bool any_unbounded = false;
    for (const JobReport& j : result.jobs) {
      if (std::isinf(j.wcrt)) any_unbounded = true;
    }
    if (!any_unbounded) break;
    horizon *= 2.0;
    result = analyze_at(system, horizon);
  }
  return result;
}

AnalysisResult BoundsAnalyzer::analyze_at(const System& system,
                                          Time horizon) const {
  detail::BoundStateMap states;
  detail::run_bounds_wavefront(system, horizon, config_.bounds_variant,
                               pool_.get(), cache_.get(), eobs_.get(),
                               /*dirty=*/nullptr, states);
  return detail::bounds_result_from_states(system, horizon,
                                           config_.record_curves, states);
}

}  // namespace rta
