// Classical utilization-based schedulability tests (Liu & Layland [23]).
//
// Included for completeness and as sanity baselines in tests: the paper's
// opening reference point ("if the total utilization of the single processor
// is less than 69%, rate monotonic scheduling will guarantee that all jobs
// meet their deadlines").
#pragma once

#include <cstddef>

#include "model/system.hpp"

namespace rta {

/// Liu & Layland bound n(2^{1/n} - 1) for n tasks.
[[nodiscard]] double liu_layland_bound(std::size_t n);

/// Per-processor utilization of `system`, with periods estimated from
/// minimum inter-arrival times. Infinite-period (single-shot) jobs
/// contribute zero.
[[nodiscard]] std::vector<double> processor_utilizations(const System& system);

/// True if every processor passes the Liu & Layland test for its subjob
/// count. Sufficient (never admits an unschedulable RM system), far from
/// necessary -- the response-time analyzers dominate it.
[[nodiscard]] bool liu_layland_schedulable(const System& system);

}  // namespace rta
