#include "analysis/result.hpp"

#include <algorithm>

namespace rta {

Time default_horizon(const System& system, const AnalysisConfig& config) {
  if (config.horizon > 0.0) return config.horizon;
  Time max_deadline = 0.0;
  for (const Job& j : system.jobs()) {
    max_deadline = std::max(max_deadline, j.deadline);
  }
  const Time window = system.last_release();
  const Time padding =
      std::max(config.horizon_padding_deadlines * max_deadline,
               config.horizon_padding_fraction * window);
  return std::max<Time>(window + padding, 1.0);
}

}  // namespace rta
