#include "analysis/iterative.hpp"

#include <cmath>

#include "analysis/bounds.hpp"
#include "curve/algebra.hpp"

namespace rta {

AnalysisResult IterativeBoundsAnalyzer::analyze(const System& system) const {
  const auto problems = system.validate();
  if (!problems.empty()) {
    AnalysisResult r;
    r.error = "invalid system: " + problems.front();
    return r;
  }

  Time horizon = default_horizon(system, config_);
  AnalysisResult result = analyze_at(system, horizon);
  for (int round = 0; round < config_.max_horizon_doublings; ++round) {
    if (!result.ok) break;
    bool any_unbounded = false;
    for (const JobReport& j : result.jobs) {
      if (std::isinf(j.wcrt)) any_unbounded = true;
    }
    if (!any_unbounded) break;
    horizon *= 2.0;
    result = analyze_at(system, horizon);
  }
  return result;
}

AnalysisResult IterativeBoundsAnalyzer::analyze_at(const System& system,
                                                   Time horizon) const {
  detail::BoundStateMap states;

  // Sound initial bounds.
  for (int k = 0; k < system.job_count(); ++k) {
    const Job& job = system.job(k);
    const PwlCurve first = job.arrivals.to_curve(horizon);
    Time offset = 0.0;
    for (int h = 0; h < static_cast<int>(job.chain.size()); ++h) {
      detail::BoundState st;
      if (h == 0) {
        st.arr_upper = first;
        st.arr_lower = first;
      } else {
        // Earliest possible arrivals: every earlier hop takes at least its
        // execution time.
        st.arr_upper = curve_shift_right(first, offset);
        // No departure is guaranteed yet.
        st.arr_lower = PwlCurve::zero(horizon);
      }
      offset += job.chain[h].exec_time;
      states[{k, h}] = std::move(st);
    }
  }

  // Monotone refinement to a fixpoint.
  int iterations = 0;
  for (; iterations < config_.max_iterations; ++iterations) {
    for (int p = 0; p < system.processor_count(); ++p) {
      detail::compute_processor_bounds(system, p, horizon, states,
                                       config_.bounds_variant);
    }
    bool changed = false;
    for (int k = 0; k < system.job_count(); ++k) {
      const Job& job = system.job(k);
      for (int h = 1; h < static_cast<int>(job.chain.size()); ++h) {
        const detail::BoundState& pred = states.at({k, h - 1});
        detail::BoundState& st = states.at({k, h});
        const PwlCurve new_upper =
            curve_min(st.arr_upper, pred.next_arr_upper);
        const PwlCurve new_lower = curve_max(st.arr_lower, pred.dep_lower);
        if (!new_upper.approx_equal(st.arr_upper) ||
            !new_lower.approx_equal(st.arr_lower)) {
          changed = true;
        }
        st.arr_upper = new_upper;
        st.arr_lower = new_lower;
      }
    }
    if (!changed) {
      ++iterations;
      break;
    }
  }
  // One final processor pass so service/departure bounds and the local
  // delays reflect the final arrival bounds.
  for (int p = 0; p < system.processor_count(); ++p) {
    detail::compute_processor_bounds(system, p, horizon, states,
                                       config_.bounds_variant);
  }
  last_iterations_ = iterations;

  AnalysisResult result;
  result.ok = true;
  result.horizon = horizon;
  result.jobs.resize(system.job_count());
  for (int k = 0; k < system.job_count(); ++k) {
    const Job& job = system.job(k);
    JobReport& report = result.jobs[k];
    report.hops.resize(job.chain.size());
    Time total = 0.0;
    for (int h = 0; h < static_cast<int>(job.chain.size()); ++h) {
      const detail::BoundState& st = states.at({k, h});
      report.hops[h].ref = {k, h};
      report.hops[h].local_bound = st.local_bound;
      total += st.local_bound;
      if (config_.record_curves) {
        SubjobCurves curves;
        curves.arrival_upper = st.arr_upper;
        curves.arrival_lower = st.arr_lower;
        curves.service_upper = st.svc_upper;
        curves.service_lower = st.svc_lower;
        curves.departure_lower = st.dep_lower;
        report.hops[h].curves.push_back(std::move(curves));
      }
    }
    report.wcrt = total;
    report.schedulable = time_le(total, job.deadline);
  }
  return result;
}

}  // namespace rta
