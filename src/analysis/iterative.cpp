#include "analysis/iterative.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include "analysis/bounds.hpp"
#include "curve/algebra.hpp"
#include "curve/kernel_hooks.hpp"

namespace rta {

IterativeBoundsAnalyzer::IterativeBoundsAnalyzer(AnalysisConfig config)
    : config_(config) {
  const std::size_t workers = analysis_worker_count(config.threads);
  if (workers > 1) pool_ = std::make_unique<ThreadPool>(workers);
  if (config.use_curve_cache) cache_ = std::make_unique<CurveCache>();
  eobs_ = detail::EngineObs::make_if(config.observer, "iterative");
}

AnalysisResult IterativeBoundsAnalyzer::analyze(const System& system) const {
  const detail::EngineObs* eo = eobs_.get();
  detail::EngineObs::AnalyzeScope obs_scope(eo, pool_.get(), cache_.get());
  obs::Tracer::Span span = obs::Tracer::span_if(
      eo != nullptr ? eo->tracer() : nullptr, "iterative.analyze");
  const auto problems = system.validate();
  if (!problems.empty()) {
    AnalysisResult r;
    r.error = "invalid system: " + problems.front();
    return r;
  }

  Time horizon = default_horizon(system, config_);
  AnalysisResult result = analyze_at(system, horizon);
  for (int round = 0; round < config_.max_horizon_doublings; ++round) {
    if (!result.ok) break;
    bool any_unbounded = false;
    for (const JobReport& j : result.jobs) {
      if (std::isinf(j.wcrt)) any_unbounded = true;
    }
    if (!any_unbounded) break;
    horizon *= 2.0;
    result = analyze_at(system, horizon);
  }
  return result;
}

AnalysisResult IterativeBoundsAnalyzer::analyze_at(const System& system,
                                                   Time horizon) const {
  detail::BoundStateMap states;

  // Sound initial bounds.
  for (int k = 0; k < system.job_count(); ++k) {
    const Job& job = system.job(k);
    const PwlCurve first = job.arrivals.to_curve(horizon);
    Time offset = 0.0;
    for (int h = 0; h < static_cast<int>(job.chain.size()); ++h) {
      detail::BoundState st;
      if (h == 0) {
        st.arr_upper = first;
        st.arr_lower = first;
      } else {
        // Earliest possible arrivals: every earlier hop takes at least its
        // execution time.
        st.arr_upper = curve_shift_right(first, offset);
        // No departure is guaranteed yet.
        st.arr_lower = PwlCurve::zero(horizon);
      }
      offset += job.chain[h].exec_time;
      states[{k, h}] = std::move(st);
    }
  }

  const std::size_t proc_count =
      static_cast<std::size_t>(system.processor_count());
  const std::size_t job_count = static_cast<std::size_t>(system.job_count());
  std::vector<std::vector<SubjobRef>> on_proc(proc_count);
  for (std::size_t p = 0; p < proc_count; ++p) {
    on_proc[p] = system.subjobs_on(static_cast<int>(p));
  }

  // Pass-skip memo: a processor pass is a pure function of its subjobs'
  // arrival bounds, so when those are knot-for-knot identical to the inputs
  // of the pass that last ran, the outputs already sitting in `states` are
  // what the pass would recompute -- skip it. The comparison is exact, so
  // skipping never changes a result; it only removes the redundant
  // recomputation the fixed point otherwise performs every round.
  struct PassMemo {
    bool valid = false;
    std::vector<PwlCurve> inputs;  ///< arr_upper, arr_lower per subjob
  };
  std::vector<PassMemo> memo(proc_count);

  // Returns false when the pass-skip memo proved the pass redundant.
  auto run_processor_pass = [&](std::size_t p) {
    PassMemo& m = memo[p];
    if (cache_ != nullptr) {
      if (m.valid) {
        bool unchanged = true;
        for (std::size_t i = 0; i < on_proc[p].size() && unchanged; ++i) {
          const detail::BoundState& st =
              states.at({on_proc[p][i].job, on_proc[p][i].hop});
          unchanged = curves_identical(m.inputs[2 * i], st.arr_upper) &&
                      curves_identical(m.inputs[2 * i + 1], st.arr_lower);
        }
        if (unchanged) return false;
      }
      m.inputs.clear();
      m.inputs.reserve(2 * on_proc[p].size());
      for (const SubjobRef& r : on_proc[p]) {
        const detail::BoundState& st = states.at({r.job, r.hop});
        m.inputs.push_back(st.arr_upper);
        m.inputs.push_back(st.arr_lower);
      }
      m.valid = true;
    }
    detail::compute_processor_bounds(system, static_cast<int>(p), horizon,
                                     states, config_.bounds_variant,
                                     cache_.get());
    return true;
  };

  const detail::EngineObs* eo = eobs_.get();
  obs::Tracer* tracer = eo != nullptr ? eo->tracer() : nullptr;
  obs::Counter rounds_c, passes_run_c, passes_skipped_c, jobs_refined_c;
  obs::Counter pass_time_us_c, propagate_time_us_c;
  obs::Gauge round_refined_g, round_skipped_g, iterations_g;
  if (eo != nullptr && eo->metrics() != nullptr) {
    obs::MetricsRegistry& reg = *eo->metrics();
    rounds_c = reg.counter("iterative.rounds");
    passes_run_c = reg.counter("iterative.passes_run");
    passes_skipped_c = reg.counter("iterative.passes_skipped");
    jobs_refined_c = reg.counter("iterative.jobs_refined");
    pass_time_us_c = reg.counter("iterative.pass_time_us");
    propagate_time_us_c = reg.counter("iterative.propagate_time_us");
    round_refined_g = reg.gauge("iterative.last_round_refined_jobs");
    round_skipped_g = reg.gauge("iterative.last_round_skipped_passes");
    iterations_g = reg.gauge("iterative.iterations");
  }
  const bool timed = eo != nullptr && eo->metrics() != nullptr;
  using Clock = std::chrono::steady_clock;
  auto elapsed_us = [](Clock::time_point since) {
    const std::chrono::duration<double, std::micro> us = Clock::now() - since;
    return us.count();
  };

  // One processor-pass phase: run every pass, tallying skips and feeding the
  // curve kernels' counters through this analyzer's sink.
  std::atomic<std::uint64_t> phase_skipped{0};
  auto pass_phase = [&](const char* span_name) {
    phase_skipped.store(0, std::memory_order_relaxed);
    obs::Tracer::Span phase_span = obs::Tracer::span_if(tracer, span_name);
    const Clock::time_point start = Clock::now();
    for_each_index(pool_.get(), proc_count, [&](std::size_t p) {
      if (eo == nullptr) {
        run_processor_pass(p);
        return;
      }
      curve::KernelHooksScope sink_scope(eo->kernel_sink());
      obs::Tracer::Span pass_span = obs::Tracer::span_if(
          tracer, "iterative.pass P" + std::to_string(p));
      const Clock::time_point unit_start = Clock::now();
      const bool ran = run_processor_pass(p);
      eo->add_unit_time(system.scheduler(static_cast<int>(p)),
                        elapsed_us(unit_start));
      if (!ran) {
        phase_skipped.fetch_add(1, std::memory_order_relaxed);
        pass_span.annotate("{\"skipped\": true}");
      }
    });
    const std::uint64_t skipped =
        phase_skipped.load(std::memory_order_relaxed);
    if (timed) {
      pass_time_us_c.add(static_cast<std::uint64_t>(elapsed_us(start)));
      passes_skipped_c.add(skipped);
      passes_run_c.add(proc_count - skipped);
    }
    return skipped;
  };

  // Monotone refinement to a fixpoint. Within a round the processor passes
  // touch disjoint states, as do the per-job propagations, so both phases
  // run on the pool when one is configured; the phase boundary is a barrier,
  // which keeps the results independent of the worker count.
  int iterations = 0;
  for (; iterations < config_.max_iterations; ++iterations) {
    obs::Tracer::Span round_span = obs::Tracer::span_if(
        tracer, "iterative.round",
        tracer != nullptr
            ? "{\"round\": " + std::to_string(iterations) + "}"
            : std::string());
    const std::uint64_t skipped = pass_phase("iterative.pass_phase");

    std::atomic<bool> changed{false};
    std::atomic<std::uint64_t> refined{0};
    obs::Tracer::Span prop_span =
        obs::Tracer::span_if(tracer, "iterative.propagate");
    const Clock::time_point prop_start = Clock::now();
    for_each_index(pool_.get(), job_count, [&](std::size_t k) {
      curve::KernelHooksScope sink_scope(eo != nullptr ? eo->kernel_sink()
                                                       : nullptr);
      const Job& job = system.job(static_cast<int>(k));
      bool job_changed = false;
      for (int h = 1; h < static_cast<int>(job.chain.size()); ++h) {
        const detail::BoundState& pred =
            states.at({static_cast<int>(k), h - 1});
        detail::BoundState& st = states.at({static_cast<int>(k), h});
        const PwlCurve new_upper =
            curve_min(st.arr_upper, pred.next_arr_upper);
        const PwlCurve new_lower = curve_max(st.arr_lower, pred.dep_lower);
        if (!new_upper.approx_equal(st.arr_upper) ||
            !new_lower.approx_equal(st.arr_lower)) {
          job_changed = true;
        }
        st.arr_upper = new_upper;
        st.arr_lower = new_lower;
      }
      if (job_changed) {
        changed.store(true, std::memory_order_relaxed);
        refined.fetch_add(1, std::memory_order_relaxed);
        // Convergence trace: one instant per job per round it still moved.
        obs::Tracer::instant_if(
            tracer, "iterative.refine " + job.name,
            "{\"round\": " + std::to_string(iterations) + "}");
      }
    });
    prop_span.finish();
    const std::uint64_t refined_jobs = refined.load(std::memory_order_relaxed);
    if (timed) {
      propagate_time_us_c.add(
          static_cast<std::uint64_t>(elapsed_us(prop_start)));
      rounds_c.inc();
      jobs_refined_c.add(refined_jobs);
      round_refined_g.set(static_cast<double>(refined_jobs));
      round_skipped_g.set(static_cast<double>(skipped));
    }
    if (tracer != nullptr) {
      round_span.annotate(
          "{\"refined_jobs\": " + std::to_string(refined_jobs) +
          ", \"skipped_passes\": " + std::to_string(skipped) + "}");
    }
    if (!changed.load(std::memory_order_relaxed)) {
      ++iterations;
      break;
    }
  }
  // One final processor pass so service/departure bounds and the local
  // delays reflect the final arrival bounds. (With the pass memo this is
  // free when the last round already ran on the final arrivals.)
  pass_phase("iterative.final_pass");
  last_iterations_.store(iterations, std::memory_order_relaxed);
  iterations_g.set(static_cast<double>(iterations));

  AnalysisResult result;
  result.ok = true;
  result.horizon = horizon;
  result.jobs.resize(system.job_count());
  for (int k = 0; k < system.job_count(); ++k) {
    const Job& job = system.job(k);
    JobReport& report = result.jobs[k];
    report.hops.resize(job.chain.size());
    Time total = 0.0;
    for (int h = 0; h < static_cast<int>(job.chain.size()); ++h) {
      const detail::BoundState& st = states.at({k, h});
      report.hops[h].ref = {k, h};
      report.hops[h].local_bound = st.local_bound;
      total += st.local_bound;
      if (config_.record_curves) {
        SubjobCurves curves;
        curves.arrival_upper = st.arr_upper;
        curves.arrival_lower = st.arr_lower;
        curves.service_upper = st.svc_upper;
        curves.service_lower = st.svc_lower;
        curves.departure_lower = st.dep_lower;
        report.hops[h].curves.push_back(std::move(curves));
      }
    }
    report.wcrt = total;
    report.schedulable = time_le(total, job.deadline);
  }
  return result;
}

}  // namespace rta
