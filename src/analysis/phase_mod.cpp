#include "analysis/phase_mod.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/holistic.hpp"

namespace rta {

AnalysisResult PhaseModAnalyzer::analyze(const System& system,
                                         PhaseSchedule* schedule) const {
  for (int p = 0; p < system.processor_count(); ++p) {
    if (system.scheduler(p) != SchedulerKind::kSpp) {
      AnalysisResult r;
      r.error = "PhaseModAnalyzer requires SPP on every processor";
      return r;
    }
  }
  const auto problems = system.validate();
  if (!problems.empty()) {
    AnalysisResult r;
    r.error = "invalid system: " + problems.front();
    return r;
  }

  // Periods (PM is defined for periodic arrivals).
  std::vector<double> period(system.job_count());
  for (int k = 0; k < system.job_count(); ++k) {
    const auto& rel = system.job(k).arrivals.releases();
    if (rel.size() < 2) {
      period[k] = kTimeInfinity;
      continue;
    }
    const double gap = rel[1] - rel[0];
    for (std::size_t i = 2; i < rel.size(); ++i) {
      if (!time_eq(rel[i] - rel[i - 1], gap)) {
        AnalysisResult r;
        r.error = "PhaseModAnalyzer requires periodic arrivals (job " +
                  system.job(k).name + " is not periodic)";
        return r;
      }
    }
    period[k] = gap;
  }

  double max_deadline = 0.0;
  double max_period = 0.0;
  for (int k = 0; k < system.job_count(); ++k) {
    max_deadline = std::max(max_deadline, system.job(k).deadline);
    if (!std::isinf(period[k])) max_period = std::max(max_period, period[k]);
  }
  const double cap = 64.0 * (max_deadline + max_period) + 64.0;

  // With PM every subjob arrives strictly periodically (zero jitter), so
  // each hop's worst response is a single busy-period computation -- no
  // cross-hop iteration needed.
  AnalysisResult result;
  result.ok = true;
  result.jobs.resize(system.job_count());
  if (schedule) schedule->offsets.assign(system.job_count(), {});

  for (int k = 0; k < system.job_count(); ++k) {
    const Job& job = system.job(k);
    JobReport& report = result.jobs[k];
    report.hops.resize(job.chain.size());
    double offset = 0.0;  // release offset of the current hop
    bool diverged = false;
    for (int h = 0; h < static_cast<int>(job.chain.size()); ++h) {
      if (schedule) schedule->offsets[k].push_back(offset);
      const Subjob& sj = job.chain[h];
      JitteredTask self{period[k], 0.0, sj.exec_time};
      std::vector<JitteredTask> hp;
      for (const SubjobRef& other :
           system.higher_priority_on(sj.processor, sj.priority)) {
        hp.push_back({period[other.job], 0.0,
                      system.subjob(other).exec_time});
      }
      const Time r = jittered_response_time(self, hp, cap);
      report.hops[h].ref = {k, h};
      report.hops[h].local_bound = r;
      if (std::isinf(r)) {
        diverged = true;
        break;
      }
      offset += r;
    }
    report.wcrt = diverged ? kTimeInfinity : offset;
    report.schedulable = !diverged && time_le(report.wcrt, job.deadline);
    if (schedule) {
      // Pad unfilled offsets (divergence) so consumers see full chains.
      while (schedule->offsets[k].size() < job.chain.size()) {
        schedule->offsets[k].push_back(kTimeInfinity);
      }
    }
  }
  return result;
}

}  // namespace rta
