// Approximate end-to-end analysis via service-function bounds (paper §4.2).
//
// For every subjob the analyzer maintains upper/lower bounds on its arrival
// count curve and derives upper/lower bounds on its service function:
//
//   * SPNP processors: Theorems 5/6 with blocking b_{k,j} of Eq. 15.
//   * SPP processors:  the same bounds with b = 0 (an "SPP/App" method the
//     paper does not evaluate; useful as an ablation against SPP/Exact).
//   * FCFS processors: Theorems 7/8/9 via the utilization function.
//
// Lower service bounds yield departure lower bounds (Lemma 1); upper service
// bounds yield next-hop arrival upper bounds (Lemma 2), additionally capped
// by "an instance cannot reach hop j+1 earlier than tau after its earliest
// hop-j arrival". Per-hop delays d_{k,j} (Eq. 12) sum to the end-to-end
// bound (Theorem 4 / Eq. 11).
//
// Soundness deviations from the paper's text (validated against the
// discrete-event simulator; see DESIGN.md and tests/test_sim_vs_analysis.cpp):
//
//   1. Eq. 17 prints the *lower* availability for T_{k,j} as
//      t - b - sum of LOWER bounds of higher-priority service. Subtracting a
//      lower bound of the interference over-estimates the availability,
//      which is unsound for a lower bound (two-subjob counterexample in
//      tests/test_bounds.cpp). Upper bounds S̄_{h,i} must be subtracted,
//      symmetric to Eq. 19.
//   2. Theorem 5's window min_{0<=s<=t-b} charges the blocking b only once
//      globally; after the subjob's queue drains and refills, a fresh
//      blocking can occur, which the formula misses (the simulator refutes
//      it on the paper's own SPNP workloads). We therefore evaluate both
//      bounds per *queue-empty candidate* s_i (one candidate just before
//      each possible arrival):
//
//        S̲(t) = min_i max( base_i,
//                 base_i + (t - s_i) - b - (S̄hp(t) - S̲hp(s_i)) ),
//          with s_i the LATEST possible i-th arrival and base_i = (i-1) tau
//          -- blocking is charged once per backlogged period, and the
//          higher-priority consumption over (s_i, t] is bounded by mixing
//          the hp upper bound at t with the hp lower bound at s_i;
//
//        S̄(t) = min( t, c̄(t), min_i [ base_i + min( t - s_i,
//                 (t - s_i) - (S̲hp(t) - S̄hp(s_i)) ) ] ),
//          with s_i the EARLIEST possible i-th arrival -- every term is
//          independently a valid upper bound, so the min is sound.
//
//      This keeps the structure of Theorems 5/6 (availability differences
//      plus demanded work) while being sound busy-period by busy-period.
//
// Heterogeneous systems (different schedulers per processor, §6) are
// supported directly. Requires an acyclic dependency graph; cyclic systems
// are handled by IterativeBoundsAnalyzer, which reuses this machinery.
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "analysis/instrument.hpp"
#include "analysis/result.hpp"
#include "curve/curve_cache.hpp"
#include "model/system.hpp"
#include "util/thread_pool.hpp"

namespace rta {

namespace detail {

/// Working state for one subjob during a bounds sweep.
struct BoundState {
  PwlCurve arr_upper;   ///< f̄_arr of this hop
  PwlCurve arr_lower;   ///< f̲_arr of this hop
  PwlCurve svc_upper;   ///< S̄ (may be non-monotone; query via crossings)
  PwlCurve svc_lower;   ///< S̲ (monotone)
  PwlCurve dep_lower;   ///< f̲_dep = floor(S̲ / tau) (Lemma 1)
  PwlCurve next_arr_upper;  ///< f̄_arr of hop+1 (Lemma 2 + shift cap)
  Time local_bound = 0.0;   ///< d_{k,j} of Eq. 12
  bool computed = false;
};

using BoundStateMap = std::map<std::pair<int, int>, BoundState>;

/// Compute bounds for every subjob on processor `p`. The arr_upper/arr_lower
/// members of each subjob on `p` must already be set in `states`. An
/// optional CurveCache memoizes the pseudo-inverse tables; cached and
/// uncached runs produce bit-identical bounds.
void compute_processor_bounds(const System& system, int p, Time horizon,
                              BoundStateMap& states,
                              BoundsVariant variant = BoundsVariant::kSound,
                              CurveCache* cache = nullptr);

/// Compute bounds for one subjob on a static-priority processor. Its
/// arrival bounds and the service bounds of all higher-priority subjobs on
/// the processor must already be present in `states`.
void compute_single_priority_subjob(const System& system, SubjobRef ref,
                                    Time horizon, BoundStateMap& states,
                                    BoundsVariant variant = BoundsVariant::kSound,
                                    CurveCache* cache = nullptr);

/// d_{k,j} = max_m ( f̲_dep^{-1}(m) - f̄_arr^{-1}(m) ) over the released
/// instances (Eq. 12); kTimeInfinity if some instance's departure cannot be
/// bounded within the horizon.
[[nodiscard]] Time local_delay_bound(const PwlCurve& dep_lower,
                                     const PwlCurve& arr_upper,
                                     CurveCache* cache = nullptr);

/// The resumable core of BoundsAnalyzer: one wavefront over `system`'s
/// dependency graph at `horizon`, (re)computing exactly the subjobs whose
/// flag in `dirty` is nonzero (indexed by job-major DependencyGraph node id;
/// nullptr recomputes everything). Requirements for a partial run:
///
///   * `states` holds a computed BoundState for every non-dirty subjob,
///     produced by a previous wavefront at the SAME horizon;
///   * the dirty set is closed under dependency-graph successors and, per
///     touched processor, under the scheduler's coupling (all subjobs on a
///     touched FCFS processor; blocking-affected subjobs under SPNP) --
///     see service::AdmissionSession for the closure construction.
///
/// Under those conditions the resulting states are bit-identical to a full
/// from-scratch wavefront on `system` (the incremental-analysis contract,
/// tests/test_service.cpp). Missing state entries are created; retained
/// clean entries are left untouched.
void run_bounds_wavefront(const System& system, Time horizon,
                          BoundsVariant variant, ThreadPool* pool,
                          CurveCache* cache, const EngineObs* eobs,
                          const std::vector<char>* dirty,
                          BoundStateMap& states);

/// Assemble the per-job report (Eq. 11/12) from computed states.
[[nodiscard]] AnalysisResult bounds_result_from_states(
    const System& system, Time horizon, bool record_curves,
    const BoundStateMap& states);

}  // namespace detail

/// The approximate analyzer (SPNP/App, FCFS/App, SPP/App and mixes thereof,
/// chosen by each processor's SchedulerKind).
///
/// With AnalysisConfig::threads != 1 the subjob computations are scheduled as
/// a wavefront over the dependency graph and independent units of each wave
/// run concurrently on an internal ThreadPool; with use_curve_cache the
/// pseudo-inverse tables are memoized. Both are bit-identical to the serial,
/// uncached engine. analyze() is safe to call concurrently from several
/// threads on one instance (pool and cache are shared).
class BoundsAnalyzer {
 public:
  explicit BoundsAnalyzer(AnalysisConfig config = {});

  [[nodiscard]] AnalysisResult analyze(const System& system) const;

  [[nodiscard]] static const char* name() { return "Bounds/App"; }

  /// The memoization layer, for stats inspection (null when disabled).
  [[nodiscard]] const CurveCache* curve_cache() const { return cache_.get(); }

 private:
  [[nodiscard]] AnalysisResult analyze_at(const System& system,
                                          Time horizon) const;

  AnalysisConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<CurveCache> cache_;
  std::unique_ptr<detail::EngineObs> eobs_;  ///< null without an observer
};

/// Workers implied by AnalysisConfig::threads (1 = serial, 0 = hardware).
[[nodiscard]] std::size_t analysis_worker_count(int threads);

}  // namespace rta
