// Phase Modification synchronization (Bettati [4]; compared against Direct
// Synchronization in Sun & Liu [1] and in the paper's introduction).
//
// Under PM, the release of hop j+1 is not the completion of hop j (direct
// synchronization) but a *scheduled slot*: a fixed offset after the job
// instance's original release, chosen so the predecessor hop is guaranteed
// complete by then. Each hop then sees perfectly periodic arrivals (zero
// jitter), so classical per-hop busy-period analysis applies with J = 0 --
// this is the analytical appeal of PM the intro describes. The cost is
// idling: instances that finish a hop early still wait for their slot, which
// *increases average* end-to-end response. bench/sync_protocols quantifies
// both effects against the DS analyzers and the simulator.
//
// Applicability: periodic jobs, SPP processors (like the S&L baseline).
#pragma once

#include <vector>

#include "analysis/result.hpp"
#include "model/system.hpp"
#include "sim/simulator.hpp"

namespace rta {

class PhaseModAnalyzer {
 public:
  explicit PhaseModAnalyzer(AnalysisConfig config = {}) : config_(config) {}

  /// Computes per-hop worst-case responses with zero release jitter and
  /// accumulates them into offsets. The end-to-end bound of job k is
  /// offsets[k][last] + r[k][last]; schedulability is checked against the
  /// deadline as usual. `schedule` (optional) receives the offsets.
  [[nodiscard]] AnalysisResult analyze(const System& system,
                                       PhaseSchedule* schedule = nullptr) const;

  [[nodiscard]] static const char* name() { return "SPP/PM"; }

 private:
  AnalysisConfig config_;
};

}  // namespace rta
