#include "analysis/analyzer.hpp"

#include "analysis/bounds.hpp"
#include "analysis/holistic.hpp"
#include "analysis/iterative.hpp"
#include "analysis/spp_exact.hpp"

namespace rta {

const char* method_name(Method m) {
  switch (m) {
    case Method::kSppExact: return "SPP/Exact";
    case Method::kSppSL: return "SPP/S&L";
    case Method::kSpnpApp: return "SPNP/App";
    case Method::kFcfsApp: return "FCFS/App";
    case Method::kSppApp: return "SPP/App";
  }
  return "?";
}

SchedulerKind method_scheduler(Method m) {
  switch (m) {
    case Method::kSppExact:
    case Method::kSppSL:
    case Method::kSppApp:
      return SchedulerKind::kSpp;
    case Method::kSpnpApp:
      return SchedulerKind::kSpnp;
    case Method::kFcfsApp:
      return SchedulerKind::kFcfs;
  }
  return SchedulerKind::kSpp;
}

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kAuto: return "auto";
    case EngineKind::kSppExact: return "spp-exact";
    case EngineKind::kBounds: return "bounds";
    case EngineKind::kIterative: return "iterative";
    case EngineKind::kHolistic: return "holistic";
  }
  return "?";
}

std::optional<EngineKind> parse_engine_kind(const std::string& name) {
  if (name == "auto") return EngineKind::kAuto;
  if (name == "spp-exact") return EngineKind::kSppExact;
  if (name == "bounds") return EngineKind::kBounds;
  if (name == "iterative") return EngineKind::kIterative;
  if (name == "holistic") return EngineKind::kHolistic;
  return std::nullopt;
}

Analyzer::Analyzer(AnalysisConfig config) : config_(config) {}

Analyzer::~Analyzer() = default;

const ExactSppAnalyzer& Analyzer::exact() const {
  MutexLock lock(mutex_);
  if (exact_ == nullptr) exact_ = std::make_unique<ExactSppAnalyzer>(config_);
  return *exact_;
}

const BoundsAnalyzer& Analyzer::bounds() const {
  MutexLock lock(mutex_);
  if (bounds_ == nullptr) bounds_ = std::make_unique<BoundsAnalyzer>(config_);
  return *bounds_;
}

const IterativeBoundsAnalyzer& Analyzer::iterative() const {
  MutexLock lock(mutex_);
  if (iterative_ == nullptr) {
    iterative_ = std::make_unique<IterativeBoundsAnalyzer>(config_);
  }
  return *iterative_;
}

const HolisticAnalyzer& Analyzer::holistic() const {
  MutexLock lock(mutex_);
  if (holistic_ == nullptr) {
    holistic_ = std::make_unique<HolisticAnalyzer>(config_);
  }
  return *holistic_;
}

EngineKind Analyzer::select_engine(const System& system) const {
  const bool acyclic = system.dependency_graph_is_acyclic();
  if (acyclic) {
    bool all_spp = true;
    for (int p = 0; p < system.processor_count(); ++p) {
      if (system.scheduler(p) != SchedulerKind::kSpp) all_spp = false;
    }
    if (all_spp) return EngineKind::kSppExact;
    return EngineKind::kBounds;
  }
  return EngineKind::kIterative;
}

AnalysisResult Analyzer::analyze(const System& system, EngineKind kind,
                                 std::string* engine_used) const {
  if (kind == EngineKind::kAuto) kind = select_engine(system);
  switch (kind) {
    case EngineKind::kSppExact:
      if (engine_used != nullptr) *engine_used = ExactSppAnalyzer::name();
      return exact().analyze(system);
    case EngineKind::kBounds:
      if (engine_used != nullptr) *engine_used = BoundsAnalyzer::name();
      return bounds().analyze(system);
    case EngineKind::kIterative:
      if (engine_used != nullptr) *engine_used = IterativeBoundsAnalyzer::name();
      return iterative().analyze(system);
    case EngineKind::kHolistic:
      if (engine_used != nullptr) *engine_used = HolisticAnalyzer::name();
      return holistic().analyze(system);
    case EngineKind::kAuto:
      break;  // unreachable: resolved above
  }
  AnalysisResult r;
  r.error = "unknown engine kind";
  return r;
}

AnalysisResult Analyzer::analyze(const System& system, Method m) const {
  switch (m) {
    case Method::kSppExact:
      return exact().analyze(system);
    case Method::kSppSL:
      return holistic().analyze(system);
    case Method::kSpnpApp:
    case Method::kFcfsApp:
    case Method::kSppApp:
      return bounds().analyze(system);
  }
  return {};
}

AnalysisResult analyze_with(Method method, const System& system,
                            const AnalysisConfig& config) {
  return Analyzer(config).analyze(system, method);
}

}  // namespace rta
