#include "analysis/instrument.hpp"

#include <utility>

#include "util/time.hpp"

namespace rta::detail {

EngineObs::EngineObs(const obs::Observer& observer, std::string engine)
    : observer_(observer), engine_(std::move(engine)) {
  if (observer_.metrics == nullptr) return;
  obs::MetricsRegistry& reg = *observer_.metrics;
  ksink_ = std::make_unique<obs::KernelSink>(reg);
  unit_time_spp_us_ = reg.counter("analysis.unit_time_spp_us");
  unit_time_spnp_us_ = reg.counter("analysis.unit_time_spnp_us");
  unit_time_fcfs_us_ = reg.counter("analysis.unit_time_fcfs_us");
  cache_conv_hits_ = reg.counter("curve_cache.conv_hits");
  cache_conv_misses_ = reg.counter("curve_cache.conv_misses");
  cache_pinv_hits_ = reg.counter("curve_cache.pinv_hits");
  cache_pinv_misses_ = reg.counter("curve_cache.pinv_misses");
  cache_collisions_ = reg.counter("curve_cache.collisions");
  cache_verifies_ = reg.counter("curve_cache.verifies");
  pool_tasks_ = reg.counter("pool.tasks_executed");
  pool_loops_ = reg.counter("pool.loops");
  pool_indices_ = reg.counter("pool.indices_executed");
  pool_indices_abandoned_ = reg.counter("pool.indices_abandoned");
  pool_busy_us_ = reg.counter("pool.worker_busy_us");
  pool_queue_high_water_ = reg.gauge("pool.queue_high_water");
}

std::unique_ptr<EngineObs> EngineObs::make_if(const obs::Observer& observer,
                                              const char* engine) {
  if (!observer.enabled()) return nullptr;
  return std::make_unique<EngineObs>(observer, engine);
}

void EngineObs::add_unit_time(SchedulerKind kind, double micros) const {
  if (observer_.metrics == nullptr) return;
  const auto us = static_cast<std::uint64_t>(micros);
  switch (kind) {
    case SchedulerKind::kSpp: unit_time_spp_us_.add(us); break;
    case SchedulerKind::kSpnp: unit_time_spnp_us_.add(us); break;
    case SchedulerKind::kFcfs: unit_time_fcfs_us_.add(us); break;
  }
}

EngineObs::AnalyzeScope::AnalyzeScope(const EngineObs* eobs,
                                      const ThreadPool* pool,
                                      const CurveCache* cache)
    : eobs_(eobs), pool_(pool), cache_(cache) {
  if (eobs_ == nullptr || eobs_->metrics() == nullptr) return;
  if (pool_ != nullptr) pool_start_ = pool_->stats();
  if (cache_ != nullptr) cache_start_ = cache_->stats();
}

EngineObs::AnalyzeScope::~AnalyzeScope() {
  if (eobs_ == nullptr || eobs_->metrics() == nullptr) return;
  if (cache_ != nullptr) {
    const CurveCacheStats now = cache_->stats();
    eobs_->cache_conv_hits_.add(now.conv_hits - cache_start_.conv_hits);
    eobs_->cache_conv_misses_.add(now.conv_misses - cache_start_.conv_misses);
    eobs_->cache_pinv_hits_.add(now.pinv_hits - cache_start_.pinv_hits);
    eobs_->cache_pinv_misses_.add(now.pinv_misses - cache_start_.pinv_misses);
    eobs_->cache_collisions_.add(now.collisions - cache_start_.collisions);
    eobs_->cache_verifies_.add(now.verifies - cache_start_.verifies);
  }
  if (pool_ != nullptr) {
    const ThreadPool::Stats now = pool_->stats();
    eobs_->pool_tasks_.add(now.tasks_executed - pool_start_.tasks_executed);
    eobs_->pool_loops_.add(now.loops - pool_start_.loops);
    eobs_->pool_indices_.add(now.indices_executed -
                             pool_start_.indices_executed);
    eobs_->pool_indices_abandoned_.add(now.indices_abandoned -
                                       pool_start_.indices_abandoned);
    std::uint64_t busy_ns = 0;
    for (std::size_t i = 0; i < now.worker_busy_ns.size(); ++i) {
      const std::uint64_t before = i < pool_start_.worker_busy_ns.size()
                                       ? pool_start_.worker_busy_ns[i]
                                       : 0;
      busy_ns += now.worker_busy_ns[i] - before;
    }
    eobs_->pool_busy_us_.add(ns_to_us(busy_ns));
    eobs_->pool_queue_high_water_.record_max(
        static_cast<double>(now.queue_high_water));
  }
}

}  // namespace rta::detail
