// Unified analysis facade: one entry point over every analyzer.
//
// Historically each analyzer (ExactSppAnalyzer, BoundsAnalyzer,
// IterativeBoundsAnalyzer, HolisticAnalyzer) was constructed ad hoc at its
// call site, and the paper-method dispatch (§5.1's table rows) lived in
// the evaluation harness (now src/eval/experiment.hpp). rta::Analyzer owns
// both dispatch axes and is the single public entry point for running an
// analysis (rta/rta.hpp):
//
//   * EngineKind -- *which machinery* runs (exact trace analysis, acyclic
//     wavefront bounds, the cyclic fixed point, or the holistic baseline),
//     with kAuto picking the strongest applicable engine the way
//     `rta_cli analyze` always has: exact on all-SPP acyclic systems,
//     bounds on acyclic systems, the iterative fixed point otherwise.
//
//   * Method -- the paper's §5.1 evaluation rows (SPP/Exact, SPP/S&L,
//     SPNP/App, FCFS/App plus the SPP/App ablation), i.e. an engine choice
//     *named by the scheduling policy it evaluates*.
//
// One Analyzer instance reuses its engines across analyze() calls, so the
// engines' ThreadPool and CurveCache amortize over request streams (the
// admission service's hot path). Engines are created lazily under a mutex;
// analyze() itself is safe to call concurrently (the underlying engines
// are).
//
// Results are bit-identical to constructing the underlying analyzer
// directly with the same AnalysisConfig.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "analysis/result.hpp"
#include "model/system.hpp"
#include "util/thread_annotations.hpp"

namespace rta {

class ExactSppAnalyzer;
class BoundsAnalyzer;
class IterativeBoundsAnalyzer;
class HolisticAnalyzer;

/// The analysis methods of §5.1 (plus SPP/App, our ablation of the bounds
/// machinery on preemptive processors).
enum class Method {
  kSppExact,  ///< §4.1 exact analysis, SPP scheduling
  kSppSL,     ///< Sun & Liu holistic baseline, SPP scheduling
  kSpnpApp,   ///< §4.2.2 bounds, SPNP scheduling
  kFcfsApp,   ///< §4.2.3 bounds, FCFS scheduling
  kSppApp,    ///< §4.2.2 bounds with b = 0, SPP scheduling (ablation)
};

[[nodiscard]] const char* method_name(Method m);
[[nodiscard]] SchedulerKind method_scheduler(Method m);

/// The analysis machineries the facade can run.
enum class EngineKind {
  kAuto,       ///< strongest applicable: exact > bounds > iterative
  kSppExact,   ///< ExactSppAnalyzer (§4.1)
  kBounds,     ///< BoundsAnalyzer (§4.2, acyclic wavefront)
  kIterative,  ///< IterativeBoundsAnalyzer (§6 fixed point)
  kHolistic,   ///< HolisticAnalyzer (Sun & Liu baseline)
};

/// CLI spelling ("auto", "spp-exact", "bounds", "iterative", "holistic").
[[nodiscard]] const char* engine_kind_name(EngineKind kind);

/// Inverse of engine_kind_name; nullopt for unknown spellings.
[[nodiscard]] std::optional<EngineKind> parse_engine_kind(
    const std::string& name);

/// The unified facade. Construct once with an AnalysisConfig, then analyze
/// as many systems as desired through it.
class Analyzer {
 public:
  explicit Analyzer(AnalysisConfig config = {});
  ~Analyzer();

  Analyzer(const Analyzer&) = delete;
  Analyzer& operator=(const Analyzer&) = delete;

  /// Analyze with an explicit engine (kAuto resolves per system). When
  /// `engine_used` is non-null it receives the display name of the engine
  /// that actually ran.
  [[nodiscard]] AnalysisResult analyze(const System& system,
                                       EngineKind kind = EngineKind::kAuto,
                                       std::string* engine_used = nullptr) const;

  /// Analyze with a paper method (§5.1). The system's schedulers must
  /// already match the method (callers typically install
  /// method_scheduler(m) on every processor first).
  [[nodiscard]] AnalysisResult analyze(const System& system, Method m) const;

  /// The engine kAuto would pick for `system`.
  [[nodiscard]] EngineKind select_engine(const System& system) const;

  [[nodiscard]] const AnalysisConfig& config() const { return config_; }

 private:
  /// Lazily created engines, shared across analyze() calls so their pools
  /// and caches amortize over request streams.
  [[nodiscard]] const ExactSppAnalyzer& exact() const;
  [[nodiscard]] const BoundsAnalyzer& bounds() const;
  [[nodiscard]] const IterativeBoundsAnalyzer& iterative() const;
  [[nodiscard]] const HolisticAnalyzer& holistic() const;

  AnalysisConfig config_;
  /// Guards lazy engine creation only: the pointers below are set once
  /// under mutex_; the engines themselves are internally thread-safe and
  /// used outside the lock.
  mutable Mutex mutex_;
  mutable std::unique_ptr<ExactSppAnalyzer> exact_ RTA_GUARDED_BY(mutex_);
  mutable std::unique_ptr<BoundsAnalyzer> bounds_ RTA_GUARDED_BY(mutex_);
  mutable std::unique_ptr<IterativeBoundsAnalyzer> iterative_
      RTA_GUARDED_BY(mutex_);
  mutable std::unique_ptr<HolisticAnalyzer> holistic_ RTA_GUARDED_BY(mutex_);
};

/// Analyze `system` (schedulers already set, priorities already assigned)
/// with `method`. For kSppSL on non-periodic arrivals the result has
/// ok == false (the baseline does not apply, §5.2). Equivalent to
/// Analyzer(config).analyze(system, method); prefer a long-lived Analyzer
/// when analyzing many systems.
[[nodiscard]] AnalysisResult analyze_with(Method method, const System& system,
                                          const AnalysisConfig& config);

}  // namespace rta
