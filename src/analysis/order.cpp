#include "analysis/order.hpp"

#include <algorithm>

namespace rta {

DependencyGraph build_dependency_graph(const System& system) {
  DependencyGraph g;
  g.node_base.assign(system.job_count() + 1, 0);
  for (int k = 0; k < system.job_count(); ++k) {
    g.node_base[k + 1] =
        g.node_base[k] + static_cast<int>(system.job(k).chain.size());
  }
  g.succ.assign(g.node_count(), {});

  auto add_edge = [&](SubjobRef from, SubjobRef to) {
    g.succ[g.node(from)].push_back(g.node(to));
  };

  for (int k = 0; k < system.job_count(); ++k) {
    for (int h = 1; h < static_cast<int>(system.job(k).chain.size()); ++h) {
      add_edge({k, h - 1}, {k, h});
    }
  }
  for (int p = 0; p < system.processor_count(); ++p) {
    const auto on_p = system.subjobs_on(p);
    if (system.scheduler(p) == SchedulerKind::kFcfs) {
      for (const SubjobRef& u : on_p) {
        if (u.hop == 0) continue;
        for (const SubjobRef& s : on_p) add_edge({u.job, u.hop - 1}, s);
      }
    } else {
      for (const SubjobRef& hi : on_p) {
        for (const SubjobRef& lo : on_p) {
          if (system.subjob(hi).priority < system.subjob(lo).priority) {
            add_edge(hi, lo);
          }
        }
      }
    }
  }
  return g;
}

std::optional<std::vector<SubjobRef>> topological_order(const System& system) {
  const DependencyGraph g = build_dependency_graph(system);
  const int n = g.node_count();

  std::vector<int> indeg(n, 0);
  for (const auto& edges : g.succ) {
    for (int v : edges) ++indeg[v];
  }

  // Map node index back to SubjobRef.
  std::vector<SubjobRef> ref_of(n);
  for (int k = 0; k < system.job_count(); ++k) {
    for (int h = 0; h < static_cast<int>(system.job(k).chain.size()); ++h) {
      ref_of[g.node_base[k] + h] = {k, h};
    }
  }

  std::vector<int> ready;
  for (int v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push_back(v);
  }
  std::vector<SubjobRef> order;
  order.reserve(n);
  while (!ready.empty()) {
    const int v = ready.back();
    ready.pop_back();
    order.push_back(ref_of[v]);
    for (int w : g.succ[v]) {
      if (--indeg[w] == 0) ready.push_back(w);
    }
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;
  return order;
}

}  // namespace rta
