#include "analysis/utilization.hpp"

#include <cmath>

namespace rta {

double liu_layland_bound(std::size_t n) {
  if (n == 0) return 1.0;
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

std::vector<double> processor_utilizations(const System& system) {
  std::vector<double> util(system.processor_count(), 0.0);
  for (int k = 0; k < system.job_count(); ++k) {
    const Job& job = system.job(k);
    const Time period = job.arrivals.min_inter_arrival();
    if (std::isinf(period)) continue;
    for (const Subjob& s : job.chain) {
      util[s.processor] += s.exec_time / period;
    }
  }
  return util;
}

bool liu_layland_schedulable(const System& system) {
  const std::vector<double> util = processor_utilizations(system);
  for (int p = 0; p < system.processor_count(); ++p) {
    const std::size_t n = system.subjobs_on(p).size();
    if (util[p] > liu_layland_bound(n) + 1e-12) return false;
  }
  return true;
}

}  // namespace rta
