// Post-hoc invariant checking of simulation runs.
//
// The simulator is the ground truth for every analyzer, so it gets its own
// watchdog: given a SimResult, these checks verify from the recorded
// execution segments that the run was a legal schedule of the system --
// independently of the event-loop implementation.
//
//   * work conservation: a processor never idles while an instance is ready
//     on it (all scheduler kinds);
//   * preemptive priority compliance: under SPP, whenever an instance of a
//     higher-priority subjob is ready, no lower-priority subjob executes;
//   * non-preemption: under SPNP/FCFS, every instance executes in one
//     contiguous segment;
//   * FCFS order: completion order on a FCFS processor follows release
//     order (ties broken deterministically by the simulator);
//   * accounting: every completed instance received exactly its execution
//     time, within one segment set, between release and completion.
//
// Used by tests (randomized shops) and available to users as a debugging
// aid for hand-built scenarios.
#pragma once

#include <string>
#include <vector>

#include "model/system.hpp"
#include "sim/simulator.hpp"

namespace rta {

/// Run all applicable checks; returns human-readable violations (empty if
/// the run is a legal schedule).
[[nodiscard]] std::vector<std::string> check_simulation_invariants(
    const System& system, const SimResult& result);

}  // namespace rta
