// Discrete-event simulator of the distributed system (§3 semantics).
//
// Executes the concrete release traces on the modeled processors under
// SPP / SPNP / FCFS scheduling with direct synchronization (completion of
// hop j releases hop j+1 instantly). The simulator is the ground truth the
// analyzers are validated against:
//
//   * ExactSppAnalyzer must match simulated completion times exactly
//     (Theorems 1-3 are exact for SPP);
//   * the bounds analyzers' service curves must bracket the simulated
//     cumulative service, and their response bounds must dominate the
//     simulated response times.
//
// Determinism: simultaneous events are ordered (completions before
// releases, then by (job, hop, instance)), and FCFS ties on equal release
// times are broken by (job, hop, instance). Any tie order is a legal FCFS
// execution; the analysis bounds must hold for all of them.
#pragma once

#include <optional>
#include <vector>

#include "curve/pwl_curve.hpp"
#include "model/system.hpp"
#include "util/time.hpp"

namespace rta {

/// Release/completion instants of one job instance at every hop.
struct InstanceTrace {
  std::vector<Time> hop_release;   ///< release time per hop (inf: never)
  std::vector<Time> hop_complete;  ///< completion time per hop (inf: never)

  /// End-to-end response time; infinity if the last hop never completed.
  [[nodiscard]] Time response() const {
    return hop_complete.back() - hop_release.front();
  }
  [[nodiscard]] bool completed() const {
    return std::isfinite(hop_complete.back());
  }
};

/// Execution interval of a subjob instance on its processor.
struct ServiceSegment {
  Time begin = 0.0;
  Time end = 0.0;
};

/// Everything observed in one simulation run.
struct SimResult {
  Time horizon = 0.0;
  /// traces[k][m-1]: instance m of job k.
  std::vector<std::vector<InstanceTrace>> traces;
  /// Worst observed end-to-end response per job (infinity if an instance
  /// did not complete within the horizon).
  std::vector<Time> worst_response;
  bool all_completed = false;

  /// Execution segments per job, per hop (for service-curve validation).
  std::vector<std::vector<std::vector<ServiceSegment>>> segments;

  /// Cumulative service S_{k,j}(t) observed for a subjob (Def. 4), as a
  /// piecewise-linear curve on [0, horizon].
  [[nodiscard]] PwlCurve service_curve(SubjobRef ref) const;

  /// Observed departure-count step curve f_{k,j,dep} (Def. 2).
  [[nodiscard]] PwlCurve departure_curve(SubjobRef ref) const;
};

/// Run the system on [0, horizon] under direct synchronization (completion
/// of hop j releases hop j+1 immediately). The system must validate()
/// cleanly.
[[nodiscard]] SimResult simulate(const System& system, Time horizon);

/// Release offsets per job and hop relative to each instance's first-hop
/// release; hop 0 offsets must be 0. Produced by PhaseModAnalyzer.
struct PhaseSchedule {
  std::vector<std::vector<Time>> offsets;
};

/// Run the system under the Phase Modification protocol: hop h of instance
/// m is released at max(predecessor completion, release_m +
/// schedule.offsets[job][h]). With offsets from a correct analysis the
/// predecessor always finishes by its slot, making per-hop arrivals exactly
/// periodic; an infinite offset falls back to direct synchronization for
/// that hop.
[[nodiscard]] SimResult simulate_phased(const System& system,
                                        const PhaseSchedule& schedule,
                                        Time horizon);

}  // namespace rta
