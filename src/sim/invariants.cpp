#include "sim/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace rta {

namespace {

constexpr double kSlack = 1e-6;

/// One instance's presence on a processor.
struct InstanceSpan {
  int job;
  int hop;
  std::size_t m;  // 1-based
  int priority;
  Time release;
  Time complete;                        // infinity if unfinished
  std::vector<ServiceSegment> service;  // this instance's share
};

std::string ident(const System& system, const InstanceSpan& s) {
  std::ostringstream ss;
  ss << system.job(s.job).name << " hop " << s.hop << " instance " << s.m;
  return ss.str();
}

/// Split a subjob's chronological segment list into per-instance shares of
/// exactly tau each (instances of one subjob are served FIFO).
std::vector<std::vector<ServiceSegment>> split_per_instance(
    const std::vector<ServiceSegment>& segments, double tau,
    std::size_t instances) {
  std::vector<std::vector<ServiceSegment>> out(instances);
  std::size_t idx = 0;
  double need = tau;
  for (ServiceSegment seg : segments) {
    while (idx < instances && seg.end - seg.begin > kSlack) {
      const double take = std::min(need, seg.end - seg.begin);
      out[idx].push_back({seg.begin, seg.begin + take});
      seg.begin += take;
      need -= take;
      if (need <= kSlack) {
        ++idx;
        need = tau;
      }
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> check_simulation_invariants(const System& system,
                                                     const SimResult& result) {
  std::vector<std::string> violations;
  auto complain = [&](const std::string& msg) {
    if (violations.size() < 50) violations.push_back(msg);
  };

  // Gather instance spans per processor.
  std::vector<std::vector<InstanceSpan>> on_proc(system.processor_count());
  for (int k = 0; k < system.job_count(); ++k) {
    const Job& job = system.job(k);
    for (int h = 0; h < static_cast<int>(job.chain.size()); ++h) {
      const Subjob& sj = job.chain[h];
      const auto shares = split_per_instance(
          result.segments[k][h], sj.exec_time, result.traces[k].size());
      for (std::size_t m = 0; m < result.traces[k].size(); ++m) {
        const InstanceTrace& trace = result.traces[k][m];
        if (!std::isfinite(trace.hop_release[h])) continue;  // never reached
        on_proc[sj.processor].push_back({k, h, m + 1, sj.priority,
                                         trace.hop_release[h],
                                         trace.hop_complete[h], shares[m]});
      }
    }
  }

  // Accounting: completed instances got exactly tau inside their window.
  for (int p = 0; p < system.processor_count(); ++p) {
    for (const InstanceSpan& s : on_proc[p]) {
      const double tau = system.job(s.job).chain[s.hop].exec_time;
      double got = 0.0;
      for (const ServiceSegment& seg : s.service) got += seg.end - seg.begin;
      if (std::isfinite(s.complete)) {
        if (std::fabs(got - tau) > kSlack) {
          complain("accounting: " + ident(system, s) + " received " +
                   std::to_string(got) + " != tau");
        }
        if (!s.service.empty()) {
          if (s.service.front().begin < s.release - kSlack) {
            complain("accounting: " + ident(system, s) +
                     " served before its release");
          }
          if (std::fabs(s.service.back().end - s.complete) > kSlack) {
            complain("accounting: " + ident(system, s) +
                     " completion differs from last service instant");
          }
        }
      }
      // Non-preemption: one contiguous block under SPNP/FCFS.
      if (system.scheduler(p) != SchedulerKind::kSpp && s.service.size() > 1) {
        for (std::size_t i = 1; i < s.service.size(); ++i) {
          if (s.service[i].begin > s.service[i - 1].end + kSlack) {
            complain("non-preemption: " + ident(system, s) +
                     " executed in disjoint segments");
            break;
          }
        }
      }
    }
  }

  // Sweep per processor: work conservation and SPP priority compliance.
  for (int p = 0; p < system.processor_count(); ++p) {
    std::vector<Time> points;
    for (const InstanceSpan& s : on_proc[p]) {
      points.push_back(s.release);
      if (std::isfinite(s.complete)) points.push_back(s.complete);
      for (const ServiceSegment& seg : s.service) {
        points.push_back(seg.begin);
        points.push_back(seg.end);
      }
    }
    points.push_back(0.0);
    points.push_back(result.horizon);
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end(),
                             [](Time a, Time b) {
                               return std::fabs(a - b) <= kSlack;
                             }),
                 points.end());

    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
      if (points[i + 1] - points[i] <= 10 * kSlack) continue;
      const Time mid = 0.5 * (points[i] + points[i + 1]);
      if (mid >= result.horizon) break;

      const InstanceSpan* running = nullptr;
      int best_ready_priority = std::numeric_limits<int>::max();
      bool any_ready = false;
      for (const InstanceSpan& s : on_proc[p]) {
        const bool ready = s.release <= mid && mid < s.complete;
        if (ready) {
          any_ready = true;
          best_ready_priority = std::min(best_ready_priority, s.priority);
        }
        for (const ServiceSegment& seg : s.service) {
          if (seg.begin <= mid && mid < seg.end) running = &s;
        }
      }
      if (any_ready && running == nullptr) {
        complain("work conservation: P" + std::to_string(p) + " idle at t=" +
                 std::to_string(mid) + " with ready work");
      }
      if (running && system.scheduler(p) == SchedulerKind::kSpp &&
          running->priority > best_ready_priority) {
        complain("priority: P" + std::to_string(p) + " runs " +
                 ident(system, *running) + " at t=" + std::to_string(mid) +
                 " while higher-priority work is ready");
      }
    }

    // FCFS order: earlier release completes no later.
    if (system.scheduler(p) == SchedulerKind::kFcfs) {
      for (const InstanceSpan& a : on_proc[p]) {
        for (const InstanceSpan& b : on_proc[p]) {
          if (a.release < b.release - kSlack && std::isfinite(b.complete) &&
              std::isfinite(a.complete) && a.complete > b.complete + kSlack) {
            complain("fcfs order: " + ident(system, a) + " released before " +
                     ident(system, b) + " but completed after it");
          }
        }
      }
    }
  }

  return violations;
}

}  // namespace rta
