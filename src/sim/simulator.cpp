#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

namespace rta {

namespace {

/// A subjob instance waiting for, or receiving, processor time.
struct Pending {
  int job = -1;
  int hop = -1;
  long long m = 0;       ///< 1-based instance index
  Time release = 0.0;    ///< release time at this hop
  double remaining = 0.0;
  int priority = 0;
};

/// Queue ordering: SPP/SPNP pick by priority; FCFS by release time.
/// Ties always break deterministically by (job, hop, m).
struct ReadyOrder {
  bool fcfs;
  bool operator()(const Pending& a, const Pending& b) const {
    if (fcfs) {
      if (!time_eq(a.release, b.release)) return time_lt(a.release, b.release);
    } else {
      if (a.priority != b.priority) return a.priority < b.priority;
      // Same subjob: FIFO among its own instances.
      if (!time_eq(a.release, b.release)) return time_lt(a.release, b.release);
    }
    if (a.job != b.job) return a.job < b.job;
    if (a.hop != b.hop) return a.hop < b.hop;
    return a.m < b.m;
  }
};

struct ProcessorState {
  std::vector<Pending> ready;          // kept sorted on demand
  std::optional<Pending> running;
  Time resume_time = 0.0;              // when `running` last started/resumed
  long long completion_seq = 0;        // invalidates stale completion events
};

enum class EventKind { kCompletion = 0, kRelease = 1 };

struct Event {
  Time t = 0.0;
  EventKind kind = EventKind::kRelease;
  int processor = -1;
  long long seq = 0;  // completions: must match ProcessorState::completion_seq
  Pending payload;
};

struct EventOrder {
  bool operator()(const Event& a, const Event& b) const {
    // priority_queue is a max-heap; return true when a fires *later*.
    if (!time_eq(a.t, b.t)) return a.t > b.t;
    if (a.kind != b.kind) return a.kind > b.kind;  // completions first
    if (a.payload.job != b.payload.job) return a.payload.job > b.payload.job;
    if (a.payload.hop != b.payload.hop) return a.payload.hop > b.payload.hop;
    return a.payload.m > b.payload.m;
  }
};

}  // namespace

PwlCurve SimResult::service_curve(SubjobRef ref) const {
  const auto& segs = segments.at(ref.job).at(ref.hop);
  std::vector<Knot> knots;
  knots.reserve(segs.size() * 2 + 2);
  knots.push_back({0.0, 0.0, 0.0});
  double acc = 0.0;
  for (const ServiceSegment& s : segs) {
    if (time_ge(s.begin, horizon)) break;
    const Time end = std::min(s.end, horizon);
    if (!time_eq(s.begin, knots.back().t)) {
      knots.push_back({s.begin, acc, acc});
    }
    acc += end - s.begin;
    knots.push_back({end, acc, acc});
  }
  if (!time_eq(knots.back().t, horizon)) knots.push_back({horizon, acc, acc});
  return PwlCurve(std::move(knots));
}

PwlCurve SimResult::departure_curve(SubjobRef ref) const {
  std::vector<Time> times;
  for (const auto& trace : traces.at(ref.job)) {
    const Time t = trace.hop_complete.at(ref.hop);
    if (std::isfinite(t) && time_le(t, horizon)) times.push_back(t);
  }
  std::sort(times.begin(), times.end());
  return PwlCurve::step(horizon, times);
}

namespace {

SimResult simulate_impl(const System& system, Time horizon,
                        const PhaseSchedule* schedule) {
  assert(system.validate().empty());

  SimResult result;
  result.horizon = horizon;
  result.traces.resize(system.job_count());
  result.segments.resize(system.job_count());
  result.worst_response.assign(system.job_count(), 0.0);

  std::priority_queue<Event, std::vector<Event>, EventOrder> events;

  for (int k = 0; k < system.job_count(); ++k) {
    const Job& job = system.job(k);
    const std::size_t hops = job.chain.size();
    result.traces[k].assign(job.arrivals.count(), InstanceTrace{});
    result.segments[k].assign(hops, {});
    for (auto& trace : result.traces[k]) {
      trace.hop_release.assign(hops, kTimeInfinity);
      trace.hop_complete.assign(hops, kTimeInfinity);
    }
    for (std::size_t m = 1; m <= job.arrivals.count(); ++m) {
      Event e;
      e.t = job.arrivals.release(m);
      e.kind = EventKind::kRelease;
      e.processor = job.chain.front().processor;
      e.payload = {k, 0, static_cast<long long>(m), e.t,
                   job.chain.front().exec_time, job.chain.front().priority};
      events.push(e);
    }
  }

  std::vector<ProcessorState> procs(system.processor_count());

  // Stop the running instance on `p` at `now`, crediting its service.
  auto stop_running = [&](int p, Time now) {
    ProcessorState& ps = procs[p];
    assert(ps.running.has_value());
    Pending& r = *ps.running;
    const double served = now - ps.resume_time;
    if (served > 0.0) {
      result.segments[r.job][r.hop].push_back({ps.resume_time, now});
      r.remaining -= served;
    }
    ++ps.completion_seq;  // invalidate the scheduled completion
  };

  // Start (or keep) the best candidate on `p` at `now`; schedules the
  // completion event.
  auto dispatch = [&](int p, Time now) {
    ProcessorState& ps = procs[p];
    const bool fcfs = system.scheduler(p) == SchedulerKind::kFcfs;
    const bool preemptive = system.scheduler(p) == SchedulerKind::kSpp;

    if (ps.ready.empty()) return;
    const ReadyOrder order{fcfs};
    auto best_it = std::min_element(ps.ready.begin(), ps.ready.end(), order);

    if (ps.running) {
      if (!preemptive) return;  // SPNP/FCFS: never preempt
      if (ps.running->priority <= best_it->priority) return;
      // Preempt: put the running instance back in the ready set.
      stop_running(p, now);
      ps.ready.push_back(*ps.running);
      ps.running.reset();
      best_it = std::min_element(ps.ready.begin(), ps.ready.end(), order);
    }

    ps.running = *best_it;
    ps.ready.erase(best_it);
    ps.resume_time = now;
    ++ps.completion_seq;

    Event done;
    done.t = now + ps.running->remaining;
    done.kind = EventKind::kCompletion;
    done.processor = p;
    done.seq = ps.completion_seq;
    done.payload = *ps.running;
    events.push(done);
  };

  while (!events.empty()) {
    const Event e = events.top();
    events.pop();
    if (time_gt(e.t, horizon)) break;
    const Time now = e.t;

    if (e.kind == EventKind::kCompletion) {
      ProcessorState& ps = procs[e.processor];
      if (!ps.running || e.seq != ps.completion_seq) continue;  // stale
      // Record service and completion.
      stop_running(e.processor, now);
      const Pending done = *ps.running;
      ps.running.reset();
      assert(std::fabs(done.remaining) <= 1e-6);

      InstanceTrace& trace = result.traces[done.job][done.m - 1];
      trace.hop_complete[done.hop] = now;

      // Release the next hop: immediately (direct synchronization) or at
      // its Phase Modification slot.
      const Job& job = system.job(done.job);
      if (done.hop + 1 < static_cast<int>(job.chain.size())) {
        const Subjob& next = job.chain[done.hop + 1];
        Time release_at = now;
        if (schedule) {
          const Time offset = schedule->offsets[done.job][done.hop + 1];
          if (std::isfinite(offset)) {
            release_at = std::max(
                release_at, job.arrivals.release(done.m) + offset);
          }
        }
        Event rel;
        rel.t = release_at;
        rel.kind = EventKind::kRelease;
        rel.processor = next.processor;
        rel.payload = {done.job, done.hop + 1, done.m, release_at,
                       next.exec_time, next.priority};
        events.push(rel);
      }
      dispatch(e.processor, now);
    } else {
      InstanceTrace& trace = result.traces[e.payload.job][e.payload.m - 1];
      trace.hop_release[e.payload.hop] = now;
      procs[e.processor].ready.push_back(e.payload);
      dispatch(e.processor, now);
    }
  }

  // Credit partial service of instances still running at the horizon, so
  // observed service curves are exact up to the end of the window.
  for (int p = 0; p < system.processor_count(); ++p) {
    if (procs[p].running && time_lt(procs[p].resume_time, horizon)) {
      stop_running(p, horizon);
    }
  }

  // Summarize responses.
  result.all_completed = true;
  for (int k = 0; k < system.job_count(); ++k) {
    Time worst = 0.0;
    for (const InstanceTrace& trace : result.traces[k]) {
      if (!trace.completed()) {
        worst = kTimeInfinity;
        result.all_completed = false;
        break;
      }
      worst = std::max(worst, trace.response());
    }
    result.worst_response[k] = worst;
  }
  return result;
}

}  // namespace

SimResult simulate(const System& system, Time horizon) {
  return simulate_impl(system, horizon, nullptr);
}

SimResult simulate_phased(const System& system, const PhaseSchedule& schedule,
                          Time horizon) {
  assert(static_cast<int>(schedule.offsets.size()) == system.job_count());
  return simulate_impl(system, horizon, &schedule);
}

}  // namespace rta
