// Umbrella header: the public API of the bursty-rta library.
//
// Reproduction of Li, Bettati, Zhao, "Response Time Analysis for Distributed
// Real-Time Systems with Bursty Job Arrivals" (ICPP 1998). See README.md for
// the architecture overview and DESIGN.md for the paper-to-module map.
#pragma once

// Curve substrate (Defs. 1-7 and the service transforms).
#include "curve/algebra.hpp"
#include "curve/arrival.hpp"
#include "curve/pwl_curve.hpp"
#include "curve/transforms.hpp"

// System model (§3) and priority assignment (Eq. 24).
#include "model/priority.hpp"
#include "model/system.hpp"

// Analyzers (§4) and the classical baselines. analysis/analyzer.hpp is the
// unified facade (engine + paper-method dispatch) and the single public
// entry point for running an analysis; see docs/api.md.
#include "analysis/analyzer.hpp"
#include "analysis/bounds.hpp"
#include "analysis/holistic.hpp"
#include "analysis/iterative.hpp"
#include "analysis/phase_mod.hpp"
#include "analysis/result.hpp"
#include "analysis/spp_exact.hpp"
#include "analysis/utilization.hpp"

// Interval-domain arrival envelopes (Cruz-style) and the trace-independent
// analyzer built on them.
#include "envelope/envelope.hpp"
#include "envelope/envelope_analysis.hpp"

// Text and versioned JSON system formats, curve CSV export.
#include "io/curve_csv.hpp"
#include "io/system_json.hpp"
#include "io/system_text.hpp"

// Discrete-event simulator (ground truth for validation).
#include "sim/simulator.hpp"

// Incremental admission service (docs/api.md): long-lived sessions answering
// admit / remove / what-if by dirty-set propagation over retained curves,
// plus parametric schedulability regions over the same sessions.
#include "service/region.hpp"
#include "service/admission_session.hpp"
#include "service/request_runner.hpp"

// Workload generation (§5.1) and evaluation harness (§5.2).
#include "eval/experiment.hpp"
#include "eval/validation.hpp"
#include "workload/jobshop.hpp"
