#include "curve/pwl_curve.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "curve/kernel_hooks.hpp"

namespace rta {

PwlCurve::PwlCurve(std::vector<Knot> knots) {
  assert(!knots.empty());
  if (knots.empty()) {
    data_ = CurveData::zero_knot();
    return;
  }
  // The arena's finalize() is the (single, shared) canonicalization
  // pipeline: anchor at t = 0, merge time_eq abscissae, drop collinear
  // continuous interior knots, pin the first left limit.
  CurveArena& arena = tls_curve_arena();
  arena.clear();
  arena.reserve(knots.size());
  for (const Knot& k : knots) arena.push(k.t, k.left, k.right);
  data_ = arena.finalize();
}

std::vector<Knot> PwlCurve::knots() const {
  const CurveView v = view();
  std::vector<Knot> out;
  out.reserve(v.n);
  for (std::size_t i = 0; i < v.n; ++i) {
    out.push_back({v.t[i], v.l[i], v.r[i]});
  }
  return out;
}

PwlCurve PwlCurve::zero(Time horizon) { return constant(horizon, 0.0); }

PwlCurve PwlCurve::constant(Time horizon, double value) {
  assert(horizon > 0.0);
  return PwlCurve({{0.0, value, value}, {horizon, value, value}});
}

PwlCurve PwlCurve::identity(Time horizon) { return line(horizon, 1.0); }

PwlCurve PwlCurve::line(Time horizon, double slope) {
  assert(horizon > 0.0);
  return PwlCurve({{0.0, 0.0, 0.0}, {horizon, slope * horizon, slope * horizon}});
}

PwlCurve PwlCurve::step(Time horizon, const std::vector<Time>& jump_times,
                        double step_height) {
  assert(horizon > 0.0);
  assert(std::is_sorted(jump_times.begin(), jump_times.end()));
  CurveArena& arena = tls_curve_arena();
  arena.clear();
  arena.reserve(jump_times.size() + 2);
  arena.push(0.0, 0.0, 0.0);
  double level = 0.0;
  for (Time t : jump_times) {
    if (time_gt(t, horizon)) break;
    const Time tt = std::max<Time>(t, 0.0);
    if (time_eq(arena.back_t(), tt)) {
      level += step_height;
      arena.set_back_right(level);
    } else {
      const double before = level;
      level += step_height;
      arena.push(tt, before, level);
    }
  }
  if (!time_eq(arena.back_t(), horizon)) {
    arena.push(horizon, level, level);
  }
  return PwlCurve(arena.finalize());
}

PwlCurve PwlCurve::truncate(Time h) const {
  assert(h > 0.0);
  if (time_ge(h, horizon())) return *this;  // shares storage, O(1)
  const CurveView v = view();
  const double le = eval_left(h);
  const double re = eval(h);
  CurveArena& arena = tls_curve_arena();
  arena.clear();
  arena.reserve(v.n);
  for (std::size_t i = 0; i < v.n && time_lt(v.t[i], h); ++i) {
    arena.push(v.t[i], v.l[i], v.r[i]);
  }
  arena.push(h, le, re);
  return PwlCurve(arena.finalize());
}

Time PwlCurve::pseudo_inverse(double y) const {
  assert(is_nondecreasing());
  if (curve::KernelHooks* hooks = curve::kernel_hooks()) hooks->on_pinv();
  const CurveView v = view();
  if (y <= v.r[0] + kValueEps) return 0.0;
  if (y > v.r[v.n - 1] + kValueEps) return kTimeInfinity;
  // Find the first knot whose right value reaches y, then decide whether the
  // crossing happened on the preceding segment or at the knot itself. The
  // right values of a nondecreasing curve are sorted, so this is a plain
  // lower_bound over the contiguous rights array.
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(v.r, v.r + v.n, y,
                       [](double right, double value) {
                         return right < value - kValueEps;
                       }) -
      v.r);
  if (i >= v.n) {
    // Only reachable for y inside the epsilon band just above the final
    // value (the y > back + eps case returned above): per Def. 5 no time
    // within the horizon reaches y, so min{s : f(s) >= y} is unbounded.
    return kTimeInfinity;
  }
  if (i == 0) return 0.0;
  const double a_t = v.t[i - 1];
  const double a_right = v.r[i - 1];
  const double b_t = v.t[i];
  const double b_left = v.l[i];
  if (y <= b_left + kValueEps) {
    // Crossing within the open segment (or exactly at its left endpoint).
    const double rise = b_left - a_right;
    if (rise <= kValueEps) return b_t;  // flat segment: first >= y at b_t
    const double frac = (y - a_right) / rise;
    return a_t + std::clamp(frac, 0.0, 1.0) * (b_t - a_t);
  }
  // y lies inside the jump at b: the first instant with f >= y is b_t.
  return b_t;
}

bool PwlCurve::is_nondecreasing() const {
  const CurveView v = view();
  for (std::size_t i = 0; i < v.n; ++i) {
    if (v.l[i] > v.r[i] + kValueEps) return false;
    if (i + 1 < v.n && v.r[i] > v.l[i + 1] + kValueEps) return false;
  }
  return true;
}

bool PwlCurve::is_continuous() const {
  const CurveView v = view();
  for (std::size_t i = 1; i < v.n; ++i) {
    if (std::fabs(v.r[i] - v.l[i]) > kValueEps) return false;
  }
  return true;
}

bool PwlCurve::approx_equal(const PwlCurve& other, double tol) const {
  return max_abs_difference(other) <= tol;
}

double PwlCurve::max_abs_difference(const PwlCurve& other) const {
  double worst = 0.0;
  auto probe = [&](const PwlCurve& grid) {
    const CurveView v = grid.view();
    for (std::size_t i = 0; i < v.n; ++i) {
      const Time t = v.t[i];
      worst = std::max(worst, std::fabs(eval(t) - other.eval(t)));
      worst = std::max(worst, std::fabs(eval_left(t) - other.eval_left(t)));
    }
  };
  probe(*this);
  probe(other);
  return worst;
}

std::string PwlCurve::to_string() const {
  const CurveView v = view();
  std::ostringstream ss;
  ss << "PwlCurve[";
  for (std::size_t i = 0; i < v.n; ++i) {
    if (i) ss << ", ";
    ss << "(" << v.t[i] << ": " << v.l[i] << "/" << v.r[i] << ")";
  }
  ss << "]";
  return ss.str();
}

bool PwlCurve::check_invariants() const {
  const CurveView v = view();
  if (v.n == 0) return false;
  if (!time_eq(v.t[0], 0.0)) return false;
  for (std::size_t i = 1; i < v.n; ++i) {
    if (v.t[i] <= v.t[i - 1]) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const PwlCurve& c) {
  return os << c.to_string();
}

}  // namespace rta
