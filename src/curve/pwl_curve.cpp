#include "curve/pwl_curve.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/kernel_sink.hpp"

namespace rta {

namespace {

/// Merge knots whose abscissae coincide within tolerance: keep the first
/// left limit and the last right value (jumps compose).
std::vector<Knot> normalize_knots(std::vector<Knot> knots) {
  assert(!knots.empty());
  std::vector<Knot> out;
  out.reserve(knots.size());
  for (const Knot& k : knots) {
    if (!out.empty() && time_eq(out.back().t, k.t)) {
      out.back().right = k.right;
    } else {
      assert(out.empty() || k.t > out.back().t);
      out.push_back(k);
    }
  }
  // Drop interior knots that are collinear and continuous: knot i is
  // redundant if left == right and it lies on the segment between its
  // neighbours.
  if (out.size() > 2) {
    std::vector<Knot> slim;
    slim.reserve(out.size());
    slim.push_back(out.front());
    for (std::size_t i = 1; i + 1 < out.size(); ++i) {
      const Knot& prev = slim.back();
      const Knot& cur = out[i];
      const Knot& next = out[i + 1];
      if (std::fabs(cur.left - cur.right) <= kValueEps) {
        const double span = next.t - prev.t;
        const double expect =
            prev.right + (next.left - prev.right) * ((cur.t - prev.t) / span);
        if (std::fabs(cur.right - expect) <= kValueEps) continue;  // redundant
      }
      slim.push_back(cur);
    }
    slim.push_back(out.back());
    out = std::move(slim);
  }
  return out;
}

}  // namespace

PwlCurve::PwlCurve(std::vector<Knot> knots) {
  assert(!knots.empty());
  if (knots.empty()) {
    knots_ = {{0.0, 0.0, 0.0}};
    return;
  }
  // Anchor the curve at t = 0.
  if (!time_eq(knots.front().t, 0.0)) {
    assert(knots.front().t > 0.0);
    knots.insert(knots.begin(),
                 Knot{0.0, knots.front().left, knots.front().left});
  } else {
    knots.front().t = 0.0;
  }
  knots_ = normalize_knots(std::move(knots));
  // First knot: the left limit is meaningless; pin it to the value.
  knots_.front().left = knots_.front().right;
}

PwlCurve PwlCurve::zero(Time horizon) { return constant(horizon, 0.0); }

PwlCurve PwlCurve::constant(Time horizon, double value) {
  assert(horizon > 0.0);
  return PwlCurve({{0.0, value, value}, {horizon, value, value}});
}

PwlCurve PwlCurve::identity(Time horizon) { return line(horizon, 1.0); }

PwlCurve PwlCurve::line(Time horizon, double slope) {
  assert(horizon > 0.0);
  return PwlCurve({{0.0, 0.0, 0.0}, {horizon, slope * horizon, slope * horizon}});
}

PwlCurve PwlCurve::step(Time horizon, const std::vector<Time>& jump_times,
                        double step_height) {
  assert(horizon > 0.0);
  assert(std::is_sorted(jump_times.begin(), jump_times.end()));
  std::vector<Knot> knots;
  knots.reserve(jump_times.size() + 2);
  knots.push_back({0.0, 0.0, 0.0});
  double level = 0.0;
  for (Time t : jump_times) {
    if (time_gt(t, horizon)) break;
    const Time tt = std::max<Time>(t, 0.0);
    if (!knots.empty() && time_eq(knots.back().t, tt)) {
      level += step_height;
      knots.back().right = level;
    } else {
      const double before = level;
      level += step_height;
      knots.push_back({tt, before, level});
    }
  }
  if (!time_eq(knots.back().t, horizon)) {
    knots.push_back({horizon, level, level});
  }
  return PwlCurve(std::move(knots));
}

std::size_t PwlCurve::segment_index(Time t) const {
  // Last knot with t_i <= t, with tolerance snapping to nearby knots.
  auto it = std::upper_bound(
      knots_.begin(), knots_.end(), t,
      [](Time value, const Knot& k) { return value < k.t; });
  std::size_t i = (it == knots_.begin()) ? 0 : static_cast<std::size_t>(it - knots_.begin() - 1);
  // Snap forward: t epsilon-below knot i+1 counts as being at knot i+1.
  if (i + 1 < knots_.size() && time_eq(t, knots_[i + 1].t)) ++i;
  return i;
}

double PwlCurve::eval(Time t) const {
  if (t <= 0.0) return knots_.front().right;
  if (time_ge(t, horizon())) return knots_.back().right;
  const std::size_t i = segment_index(t);
  const Knot& a = knots_[i];
  if (time_eq(t, a.t)) return a.right;
  const Knot& b = knots_[i + 1];
  const double frac = (t - a.t) / (b.t - a.t);
  return a.right + frac * (b.left - a.right);
}

double PwlCurve::eval_left(Time t) const {
  if (t <= 0.0 || time_eq(t, 0.0)) return knots_.front().right;
  if (time_gt(t, horizon())) return knots_.back().right;
  const std::size_t i = segment_index(t);
  const Knot& a = knots_[i];
  if (time_eq(t, a.t)) return a.left;
  const Knot& b = knots_[i + 1];
  const double frac = (t - a.t) / (b.t - a.t);
  return a.right + frac * (b.left - a.right);
}

Time PwlCurve::pseudo_inverse(double y) const {
  assert(is_nondecreasing());
  if (obs::KernelSink* sink = obs::kernel_sink()) sink->pinv_ops.inc();
  if (y <= knots_.front().right + kValueEps) return 0.0;
  if (y > knots_.back().right + kValueEps) return kTimeInfinity;
  // Find the first knot whose right value reaches y, then decide whether the
  // crossing happened on the preceding segment or at the knot itself.
  auto it = std::lower_bound(
      knots_.begin(), knots_.end(), y,
      [](const Knot& k, double value) { return k.right < value - kValueEps; });
  if (it == knots_.end()) {
    // Only reachable for y inside the epsilon band just above the final
    // value (the y > back + eps case returned above): per Def. 5 no time
    // within the horizon reaches y, so min{s : f(s) >= y} is unbounded.
    return kTimeInfinity;
  }
  const std::size_t i = static_cast<std::size_t>(it - knots_.begin());
  if (i == 0) return 0.0;
  const Knot& a = knots_[i - 1];
  const Knot& b = knots_[i];
  if (y <= b.left + kValueEps) {
    // Crossing within the open segment (or exactly at its left endpoint).
    const double rise = b.left - a.right;
    if (rise <= kValueEps) return b.t;  // flat segment: first >= y at b.t
    const double frac = (y - a.right) / rise;
    return a.t + std::clamp(frac, 0.0, 1.0) * (b.t - a.t);
  }
  // y lies inside the jump at b: the first instant with f >= y is b.t.
  return b.t;
}

bool PwlCurve::is_nondecreasing() const {
  for (std::size_t i = 0; i < knots_.size(); ++i) {
    if (knots_[i].left > knots_[i].right + kValueEps) return false;
    if (i + 1 < knots_.size() &&
        knots_[i].right > knots_[i + 1].left + kValueEps) {
      return false;
    }
  }
  return true;
}

bool PwlCurve::is_continuous() const {
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (std::fabs(knots_[i].right - knots_[i].left) > kValueEps) return false;
  }
  return true;
}

bool PwlCurve::approx_equal(const PwlCurve& other, double tol) const {
  return max_abs_difference(other) <= tol;
}

double PwlCurve::max_abs_difference(const PwlCurve& other) const {
  double worst = 0.0;
  auto probe = [&](const PwlCurve& grid) {
    for (const Knot& k : grid.knots()) {
      worst = std::max(worst, std::fabs(eval(k.t) - other.eval(k.t)));
      worst = std::max(worst,
                       std::fabs(eval_left(k.t) - other.eval_left(k.t)));
    }
  };
  probe(*this);
  probe(other);
  return worst;
}

std::string PwlCurve::to_string() const {
  std::ostringstream ss;
  ss << "PwlCurve[";
  for (std::size_t i = 0; i < knots_.size(); ++i) {
    if (i) ss << ", ";
    ss << "(" << knots_[i].t << ": " << knots_[i].left << "/"
       << knots_[i].right << ")";
  }
  ss << "]";
  return ss.str();
}

bool PwlCurve::check_invariants() const {
  if (knots_.empty()) return false;
  if (!time_eq(knots_.front().t, 0.0)) return false;
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (knots_[i].t <= knots_[i - 1].t) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const PwlCurve& c) {
  return os << c.to_string();
}

}  // namespace rta
