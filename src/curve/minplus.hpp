// Min-plus algebra operators on piecewise-linear curves.
//
// The (min,+) dioid underlies the service-function calculus (Cruz [20,21]):
//
//   convolution    (f (*) g)(t) = inf_{0<=s<=t} { f(s) + g(t-s) }
//   deconvolution  (f (/) g)(t) = sup_{0<=u<=H-t} { f(t+u) - g(u) }
//
// Convolution composes service guarantees of tandem servers and smooths
// arrival envelopes; deconvolution bounds the output envelope of a server
// (alpha (/) beta). Both are exact here: the inf/sup of piecewise-linear
// expressions is attained at knot-derived candidates, all of which are
// enumerated. Complexity is O(n * m * (n + m)) in the operand knot counts --
// fine for envelope-sized curves (tens of knots), not meant for the
// trace-sized curves of the exact analyzers.
#pragma once

#include "curve/pwl_curve.hpp"

namespace rta {

/// Min-plus convolution on the common horizon (asserted equal).
[[nodiscard]] PwlCurve min_plus_convolution(const PwlCurve& f,
                                            const PwlCurve& g);

/// Min-plus deconvolution on the common horizon. The sup runs over the
/// window lengths u for which f(t+u) is known (t + u <= horizon), which is
/// the exact operator for curves that are complete on their horizon (e.g.
/// envelopes with their tail materialized).
[[nodiscard]] PwlCurve min_plus_deconvolution(const PwlCurve& f,
                                              const PwlCurve& g);

}  // namespace rta
