// Legacy knot-walking reference kernels -- the differential oracle.
//
// These are the pre-SoA implementations of the curve constructor pipeline
// and the hot kernels, transplanted verbatim to operate on plain
// std::vector<Knot>. They exist so tests/test_curve_kernels.cpp and
// bench/micro_curve.cpp can run the flat kernels and the historical
// knot-by-knot code side by side and require bit-identical results.
//
// Do NOT "improve" these functions: their value is that they reproduce the
// old behavior exactly, including every tolerance decision and accumulation
// order. Production code must never call them (tests and bench only).
#pragma once

#include <vector>

#include "curve/pwl_curve.hpp"

namespace rta::legacyref {

/// A legacy curve is just its normalized knot vector.
using Curve = std::vector<Knot>;

/// The legacy PwlCurve(std::vector<Knot>) constructor pipeline: anchor at
/// t = 0, merge time_eq abscissae, drop collinear continuous interior knots,
/// pin the first left limit.
[[nodiscard]] Curve make_curve(std::vector<Knot> knots);

[[nodiscard]] Time horizon(const Curve& c);
[[nodiscard]] double end_value(const Curve& c);

/// Legacy PwlCurve::eval / eval_left / pseudo_inverse.
[[nodiscard]] double eval(const Curve& c, Time t);
[[nodiscard]] double eval_left(const Curve& c, Time t);
[[nodiscard]] Time pseudo_inverse(const Curve& c, double y);

/// Legacy pointwise combine (algebra.cpp): merged grid + crossing insertion.
[[nodiscard]] Curve add(const Curve& a, const Curve& b);
[[nodiscard]] Curve sub(const Curve& a, const Curve& b);
[[nodiscard]] Curve min(const Curve& a, const Curve& b);
[[nodiscard]] Curve max(const Curve& a, const Curve& b);

[[nodiscard]] Curve scale(const Curve& a, double factor);
[[nodiscard]] Curve add_constant(const Curve& a, double value);
[[nodiscard]] Curve clamp_min(const Curve& a, double floor_value);
[[nodiscard]] Curve shift_right(const Curve& a, Time dt);

/// Legacy curve_running_max: the Theorem-3 min-scan's core loop.
[[nodiscard]] Curve running_max(const Curve& a);

/// Legacy min-plus kernels (minplus.cpp): pairwise result grid + probe scan.
[[nodiscard]] Curve convolution(const Curve& f, const Curve& g);
[[nodiscard]] Curve deconvolution(const Curve& f, const Curve& g);

/// Legacy service_transform (transforms.cpp): the full Theorem-3 min-scan
/// composed from the legacy pieces above.
[[nodiscard]] Curve service_transform(const Curve& availability,
                                      const Curve& workload, Time lag = 0.0);

/// Legacy PwlCurve::step factory.
[[nodiscard]] Curve step(Time horizon, const std::vector<Time>& jump_times,
                         double step_height = 1.0);

[[nodiscard]] Curve constant(Time horizon, double value);

}  // namespace rta::legacyref
