// Arrival sequences: concrete release-time traces and their step curves.
//
// A job's first subjob has a known arrival sequence (Def. 1); the paper's
// evaluation generates these with Eq. 25 (periodic) and Eq. 27 (bursty
// aperiodic). Additional models (jittered-periodic, leaky-bucket bursts) are
// provided for the examples and property tests.
#pragma once

#include <cstddef>
#include <vector>

#include "curve/pwl_curve.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace rta {

/// A finite, sorted sequence of release instants within a generation window.
class ArrivalSequence {
 public:
  ArrivalSequence() = default;

  /// Construct from explicit release times (sorted ascending; asserted).
  explicit ArrivalSequence(std::vector<Time> releases);

  /// Periodic releases t_m = offset + (m-1) * period for all t_m <= window
  /// (Eq. 25 has offset 0 and period 1/x_k).
  static ArrivalSequence periodic(Time period, Time window, Time offset = 0.0);

  /// The paper's bursty aperiodic pattern, Eq. 27:
  ///   t_m = (1/x) * sqrt(x^2 + (m-1)^2) - 1,   m = 1, 2, ...
  /// with x in (0,1). Early inter-arrival gaps are shorter than the
  /// asymptotic period 1/x (a burst at time 0 that relaxes to periodicity).
  static ArrivalSequence bursty_eq27(double x, Time window);

  /// Periodic with bounded release jitter: t_m = (m-1)*period + U(0, jitter).
  /// Instants are re-sorted, so the sequence stays nondecreasing even when
  /// jitter exceeds the period.
  static ArrivalSequence jittered_periodic(Time period, Time jitter,
                                           Time window, Rng& rng);

  /// Leaky-bucket-constrained worst burst: `burst` back-to-back releases
  /// spaced `min_gap` apart at the head, then steady releases every
  /// `period` >= min_gap (the first steady release one period after the
  /// last burst release).
  static ArrivalSequence burst_then_periodic(std::size_t burst, Time min_gap,
                                             Time period, Time window);

  /// Poisson process with the given mean rate on [0, window]: memoryless
  /// irregular arrivals, useful for stressing the FCFS analysis and as an
  /// "unknown environment" stand-in in examples.
  static ArrivalSequence poisson(double rate, Time window, Rng& rng);

  [[nodiscard]] std::size_t count() const { return releases_.size(); }
  [[nodiscard]] bool empty() const { return releases_.empty(); }
  [[nodiscard]] const std::vector<Time>& releases() const { return releases_; }

  /// Release time of the m-th instance (1-based, matching the paper's
  /// f^{-1}(m) = t_m convention).
  [[nodiscard]] Time release(std::size_t m) const { return releases_.at(m - 1); }

  [[nodiscard]] Time last_release() const {
    return releases_.empty() ? 0.0 : releases_.back();
  }

  /// Smallest gap between consecutive releases (infinity if < 2 releases).
  [[nodiscard]] Time min_inter_arrival() const;

  /// Arrival step curve f_arr on [0, horizon] (Def. 1).
  [[nodiscard]] PwlCurve to_curve(Time horizon) const;

 private:
  std::vector<Time> releases_;
};

}  // namespace rta
