// Piecewise-linear curves on a finite horizon [0, H].
//
// This is the mathematical substrate for the paper's analysis: arrival,
// departure, workload, service and utilization functions (Defs. 1-4 and 7)
// are all curves of this kind. A curve is represented by knots
//
//   (t_i, left_i, right_i),  0 = t_0 < t_1 < ... < t_{n-1} = H,
//
// with value right_i at t_i, limit left_i as s -> t_i from below, and linear
// interpolation from (t_i, right_i) to (t_{i+1}, left_{i+1}) in between.
// Curves are right-continuous; upward jumps (left_i < right_i) model
// instantaneous arrivals, and are the reason the class distinguishes eval()
// from eval_left() -- the paper's min_{0<=s<=t} formulas require left limits
// (see DESIGN.md, "Semantics note").
//
// Curves are immutable after construction; all algebra lives in
// curve/algebra.hpp and curve/transforms.hpp.
#pragma once

#include <cassert>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace rta {

/// One breakpoint of a piecewise-linear curve.
struct Knot {
  Time t = 0.0;
  double left = 0.0;   ///< limit of the curve as s -> t from below
  double right = 0.0;  ///< value at t (curves are right-continuous)
};

/// Immutable piecewise-linear function on [0, horizon].
///
/// The class itself permits non-monotone curves (intermediate expressions
/// like A(s) - c(s) decrease); monotonicity is an invariant of *particular*
/// curves (arrival counts, service functions) and can be checked with
/// is_nondecreasing().
class PwlCurve {
 public:
  PwlCurve() : knots_{{0.0, 0.0, 0.0}} {}

  /// Construct from knots. Requirements: non-empty, t strictly increasing,
  /// first knot at t = 0. Violations are fixed up where harmless (knots with
  /// time_eq-equal abscissae are merged) and asserted otherwise.
  explicit PwlCurve(std::vector<Knot> knots);

  /// The constant-zero curve on [0, horizon].
  static PwlCurve zero(Time horizon);

  /// The constant curve f(t) = value on [0, horizon].
  static PwlCurve constant(Time horizon, double value);

  /// The identity f(t) = t on [0, horizon] (the trivial service upper bound
  /// of Eq. 5).
  static PwlCurve identity(Time horizon);

  /// Right-continuous counting step function: f(t) = #{i : jump_times[i] <= t}
  /// on [0, horizon], each jump of height `step`. jump_times must be sorted;
  /// times beyond the horizon are ignored.
  static PwlCurve step(Time horizon, const std::vector<Time>& jump_times,
                       double step_height = 1.0);

  /// Line through the origin with the given slope, on [0, horizon].
  static PwlCurve line(Time horizon, double slope);

  [[nodiscard]] Time horizon() const { return knots_.back().t; }
  [[nodiscard]] const std::vector<Knot>& knots() const { return knots_; }
  [[nodiscard]] std::size_t knot_count() const { return knots_.size(); }

  /// f(t), right-continuous. t is clamped to [0, horizon]; instants within
  /// time tolerance of a knot snap to the knot.
  [[nodiscard]] double eval(Time t) const;

  /// lim_{s -> t-} f(s). For t <= 0 returns f(0).
  [[nodiscard]] double eval_left(Time t) const;

  /// Value at the end of the horizon.
  [[nodiscard]] double end_value() const { return knots_.back().right; }

  /// Pseudo-inverse f^{-1}(y) = min{ s : f(s) >= y } (Def. 5 in the paper).
  /// Requires a nondecreasing curve. Returns 0 if y <= f(0) and
  /// kTimeInfinity if y > f(horizon) (the crossing, if any, lies beyond the
  /// analyzed horizon).
  [[nodiscard]] Time pseudo_inverse(double y) const;

  /// True iff the curve never decreases (within value tolerance).
  [[nodiscard]] bool is_nondecreasing() const;

  /// True iff the curve is continuous (no jumps within value tolerance).
  [[nodiscard]] bool is_continuous() const;

  /// True iff both curves agree within tolerance at all knots of either.
  [[nodiscard]] bool approx_equal(const PwlCurve& other,
                                  double tol = 1e-7) const;

  /// Maximum over the merged knot grid of |this - other|.
  [[nodiscard]] double max_abs_difference(const PwlCurve& other) const;

  /// Human-readable dump (for tests and debugging).
  [[nodiscard]] std::string to_string() const;

  /// Structural invariants (knot ordering, first knot at 0). Used in tests.
  [[nodiscard]] bool check_invariants() const;

 private:
  /// Index of the last knot with t_i <= t (after tolerance snapping).
  [[nodiscard]] std::size_t segment_index(Time t) const;

  std::vector<Knot> knots_;
};

std::ostream& operator<<(std::ostream& os, const PwlCurve& c);

/// Tolerance used when comparing curve *values* (as opposed to times).
inline constexpr double kValueEps = 1e-7;

}  // namespace rta
