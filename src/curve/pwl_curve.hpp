// Piecewise-linear curves on a finite horizon [0, H].
//
// This is the mathematical substrate for the paper's analysis: arrival,
// departure, workload, service and utilization functions (Defs. 1-4 and 7)
// are all curves of this kind. A curve is represented by knots
//
//   (t_i, left_i, right_i),  0 = t_0 < t_1 < ... < t_{n-1} = H,
//
// with value right_i at t_i, limit left_i as s -> t_i from below, and linear
// interpolation from (t_i, right_i) to (t_{i+1}, left_{i+1}) in between.
// Curves are right-continuous; upward jumps (left_i < right_i) model
// instantaneous arrivals, and are the reason the class distinguishes eval()
// from eval_left() -- the paper's min_{0<=s<=t} formulas require left limits
// (see DESIGN.md, "Semantics note").
//
// Storage is a flat structure-of-arrays CurveData (curve/curve_arena.hpp)
// shared by handle: PwlCurve is a thin view, copies are O(1), and the knot
// arrays are contiguous for the flat kernels in algebra.cpp / minplus.cpp.
// The knot-vector API (constructor, knots()) is preserved for construction,
// io and tests; knots() now materializes a vector on demand.
//
// Curves are immutable after construction; all algebra lives in
// curve/algebra.hpp and curve/transforms.hpp.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "curve/curve_arena.hpp"
#include "util/time.hpp"

namespace rta {

/// One breakpoint of a piecewise-linear curve.
struct Knot {
  Time t = 0.0;
  double left = 0.0;   ///< limit of the curve as s -> t from below
  double right = 0.0;  ///< value at t (curves are right-continuous)
};

/// Immutable piecewise-linear function on [0, horizon].
///
/// The class itself permits non-monotone curves (intermediate expressions
/// like A(s) - c(s) decrease); monotonicity is an invariant of *particular*
/// curves (arrival counts, service functions) and can be checked with
/// is_nondecreasing().
class PwlCurve {
 public:
  PwlCurve() : data_(CurveData::zero_knot()) {}

  /// Construct from knots. Requirements: non-empty, t strictly increasing,
  /// first knot at t = 0. Violations are fixed up where harmless (knots with
  /// time_eq-equal abscissae are merged) and asserted otherwise.
  explicit PwlCurve(std::vector<Knot> knots);

  /// Adopt finalized storage (the kernels' path: CurveArena::finalize()).
  explicit PwlCurve(std::shared_ptr<const CurveData> data)
      : data_(std::move(data)) {
    assert(data_ != nullptr && data_->size() >= 1);
  }

  /// The constant-zero curve on [0, horizon].
  static PwlCurve zero(Time horizon);

  /// The constant curve f(t) = value on [0, horizon].
  static PwlCurve constant(Time horizon, double value);

  /// The identity f(t) = t on [0, horizon] (the trivial service upper bound
  /// of Eq. 5).
  static PwlCurve identity(Time horizon);

  /// Right-continuous counting step function: f(t) = #{i : jump_times[i] <= t}
  /// on [0, horizon], each jump of height `step`. jump_times must be sorted;
  /// times beyond the horizon are ignored.
  static PwlCurve step(Time horizon, const std::vector<Time>& jump_times,
                       double step_height = 1.0);

  /// Line through the origin with the given slope, on [0, horizon].
  static PwlCurve line(Time horizon, double slope);

  [[nodiscard]] Time horizon() const {
    return data_->times()[data_->size() - 1];
  }

  /// Knot vector, materialized from the flat storage (construction / io /
  /// test convenience; kernels read the flat arrays instead).
  [[nodiscard]] std::vector<Knot> knots() const;

  [[nodiscard]] std::size_t knot_count() const { return data_->size(); }

  /// Flat accessors. Pointers stay valid while any PwlCurve shares the
  /// storage (see docs/api.md, "Curve memory layout").
  [[nodiscard]] CurveView view() const {
    return CurveView{data_->times(), data_->lefts(), data_->rights(),
                     data_->size()};
  }
  [[nodiscard]] const double* times() const { return data_->times(); }
  [[nodiscard]] const double* lefts() const { return data_->lefts(); }
  [[nodiscard]] const double* rights() const { return data_->rights(); }
  [[nodiscard]] Time knot_time(std::size_t i) const {
    return data_->times()[i];
  }
  [[nodiscard]] double knot_left(std::size_t i) const {
    return data_->lefts()[i];
  }
  [[nodiscard]] double knot_right(std::size_t i) const {
    return data_->rights()[i];
  }

  /// Shared immutable storage (identity comparisons, cache entries).
  [[nodiscard]] const std::shared_ptr<const CurveData>& data() const {
    return data_;
  }

  /// Order-sensitive hash of the exact knot bits, cached at construction --
  /// O(1), and equal to the historical CurveCache::structural_hash value.
  [[nodiscard]] std::uint64_t structural_hash() const {
    return data_->hash();
  }

  /// Canonical horizon-truncated prefix: the curve restricted to [0, h]
  /// (h <= horizon; for h >= horizon returns *this sharing storage). Two
  /// curves that agree on [0, h] truncate to identical storage, so their
  /// hashes and bitwise comparisons agree in O(1) -- the CurveCache key path
  /// for prefix-equal curves.
  [[nodiscard]] PwlCurve truncate(Time h) const;

  /// f(t), right-continuous. t is clamped to [0, horizon]; instants within
  /// time tolerance of a knot snap to the knot.
  [[nodiscard]] double eval(Time t) const { return flat_eval(view(), t); }

  /// lim_{s -> t-} f(s). For t <= 0 returns f(0).
  [[nodiscard]] double eval_left(Time t) const {
    return flat_eval_left(view(), t);
  }

  /// Value at the end of the horizon.
  [[nodiscard]] double end_value() const {
    return data_->rights()[data_->size() - 1];
  }

  /// Pseudo-inverse f^{-1}(y) = min{ s : f(s) >= y } (Def. 5 in the paper).
  /// Requires a nondecreasing curve. Returns 0 if y <= f(0) and
  /// kTimeInfinity if y > f(horizon) (the crossing, if any, lies beyond the
  /// analyzed horizon).
  [[nodiscard]] Time pseudo_inverse(double y) const;

  /// True iff the curve never decreases (within value tolerance).
  [[nodiscard]] bool is_nondecreasing() const;

  /// True iff the curve is continuous (no jumps within value tolerance).
  [[nodiscard]] bool is_continuous() const;

  /// True iff both curves agree within tolerance at all knots of either.
  [[nodiscard]] bool approx_equal(const PwlCurve& other,
                                  double tol = 1e-7) const;

  /// Maximum over the merged knot grid of |this - other|.
  [[nodiscard]] double max_abs_difference(const PwlCurve& other) const;

  /// Human-readable dump (for tests and debugging).
  [[nodiscard]] std::string to_string() const;

  /// Structural invariants (knot ordering, first knot at 0). Used in tests.
  [[nodiscard]] bool check_invariants() const;

 private:
  std::shared_ptr<const CurveData> data_;
};

std::ostream& operator<<(std::ostream& os, const PwlCurve& c);

}  // namespace rta
