#include "curve/curve_cache.hpp"

#include <bit>

#include "curve/minplus.hpp"
#include "util/rng.hpp"

namespace rta {

bool curves_identical(const PwlCurve& a, const PwlCurve& b) {
  // Shared storage is the common case for cache hits: results handed out by
  // the cache are O(1) handle copies of the stored entry.
  if (a.data() == b.data()) return true;
  return CurveData::identical(*a.data(), *b.data());
}

std::uint64_t CurveCache::structural_hash(const PwlCurve& c) {
  // Cached at CurveData construction; same formula and value as the
  // historical knot-walking hash.
  return c.structural_hash();
}

PwlCurve CurveCache::binary_op(
    std::unordered_map<std::uint64_t, std::vector<BinaryEntry>> Shard::*map,
    const PwlCurve& f, const PwlCurve& g,
    PwlCurve (*compute)(const PwlCurve&, const PwlCurve&)) {
  const std::uint64_t k = splitmix64(key(f) * 3 + 1) ^ key(g);
  Shard& shard = shard_for(k);
  {
    MutexLock lock(shard.mutex);
    auto it = (shard.*map).find(k);
    if (it != (shard.*map).end()) {
      for (const BinaryEntry& e : it->second) {
        verifies_.fetch_add(1, std::memory_order_relaxed);
        if (curves_identical(e.f, f) && curves_identical(e.g, g)) {
          conv_hits_.fetch_add(1, std::memory_order_relaxed);
          return e.result;
        }
        collisions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Miss: compute outside the lock (the operators are the expensive part),
  // then insert unless a racing thread beat us to it.
  conv_misses_.fetch_add(1, std::memory_order_relaxed);
  PwlCurve result = compute(f, g);
  MutexLock lock(shard.mutex);
  std::vector<BinaryEntry>& bucket = (shard.*map)[k];
  for (const BinaryEntry& e : bucket) {
    if (curves_identical(e.f, f) && curves_identical(e.g, g)) {
      return result;
    }
  }
  bucket.push_back({f, g, result});
  return result;
}

PwlCurve CurveCache::convolution(const PwlCurve& f, const PwlCurve& g) {
  return binary_op(&Shard::conv, f, g, &min_plus_convolution);
}

PwlCurve CurveCache::deconvolution(const PwlCurve& f, const PwlCurve& g) {
  return binary_op(&Shard::deconv, f, g, &min_plus_deconvolution);
}

CurveCache::UnaryEntry& CurveCache::unary_entry(Shard& shard, std::uint64_t k,
                                                const PwlCurve& c) {
  std::vector<UnaryEntry>& bucket = shard.unary[k];
  for (UnaryEntry& e : bucket) {
    verifies_.fetch_add(1, std::memory_order_relaxed);
    if (curves_identical(e.curve, c)) return e;
    collisions_.fetch_add(1, std::memory_order_relaxed);
  }
  bucket.push_back({c, nullptr, {}});
  return bucket.back();
}

std::shared_ptr<const std::vector<Time>> CurveCache::level_inverses(
    const PwlCurve& c, long long count) {
  if (count < 0) count = 0;
  const std::uint64_t k = key(c);
  Shard& shard = shard_for(k);
  MutexLock lock(shard.mutex);
  UnaryEntry& entry = unary_entry(shard, k, c);
  const std::size_t have = entry.levels ? entry.levels->size() : 0;
  const std::size_t want = static_cast<std::size_t>(count);
  if (have >= want) {
    pinv_hits_.fetch_add(want, std::memory_order_relaxed);
    return entry.levels ? entry.levels
                        : std::make_shared<const std::vector<Time>>();
  }
  // Extend copy-on-write: snapshots handed out earlier stay immutable.
  auto extended = std::make_shared<std::vector<Time>>();
  extended->reserve(want);
  if (entry.levels) *extended = *entry.levels;
  for (std::size_t m = have + 1; m <= want; ++m) {
    extended->push_back(c.pseudo_inverse(static_cast<double>(m)));
  }
  pinv_hits_.fetch_add(have, std::memory_order_relaxed);
  pinv_misses_.fetch_add(want - have, std::memory_order_relaxed);
  entry.levels = std::move(extended);
  return entry.levels;
}

Time CurveCache::pseudo_inverse(const PwlCurve& c, double y) {
  const std::uint64_t k = key(c);
  Shard& shard = shard_for(k);
  MutexLock lock(shard.mutex);
  UnaryEntry& entry = unary_entry(shard, k, c);
  const std::uint64_t y_bits = std::bit_cast<std::uint64_t>(y);
  const auto it = entry.at_y.find(y_bits);
  if (it != entry.at_y.end()) {
    pinv_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  pinv_misses_.fetch_add(1, std::memory_order_relaxed);
  const Time t = c.pseudo_inverse(y);
  entry.at_y.emplace(y_bits, t);
  return t;
}

CurveCacheStats CurveCache::stats() const {
  CurveCacheStats s;
  s.conv_hits = conv_hits_.load(std::memory_order_relaxed);
  s.conv_misses = conv_misses_.load(std::memory_order_relaxed);
  s.pinv_hits = pinv_hits_.load(std::memory_order_relaxed);
  s.pinv_misses = pinv_misses_.load(std::memory_order_relaxed);
  s.collisions = collisions_.load(std::memory_order_relaxed);
  s.verifies = verifies_.load(std::memory_order_relaxed);
  return s;
}

void CurveCache::clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.conv.clear();
    shard.deconv.clear();
    shard.unary.clear();
  }
}

}  // namespace rta
