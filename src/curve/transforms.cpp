#include "curve/transforms.hpp"

#include <cassert>
#include <cmath>

namespace rta {

PwlCurve service_transform(const PwlCurve& availability,
                           const PwlCurve& workload, Time lag) {
  assert(lag >= 0.0);
  assert(availability.is_nondecreasing());
  assert(workload.is_nondecreasing());
  assert(std::fabs(availability.eval(0.0)) <= kValueEps);

  // M(u) = max_{0<=s<=u}( A(s) - c(s^-) ).  curve_running_max of (A - c)
  // takes the sup over left limits and values; since A is continuous and c
  // only jumps upward, left limits dominate everywhere except possibly at
  // s = 0, where c(0^-) = 0 regardless of an arrival at 0. Clamping by
  // A(0) - 0 = 0 restores the s = 0 term.
  PwlCurve m = curve_running_max(curve_sub(availability, workload));
  m = curve_clamp_min(m, 0.0);
  if (lag > 0.0) m = curve_shift_right(m, lag);
  PwlCurve s = curve_sub(availability, m);
  s = curve_clamp_min(s, 0.0);
  if (lag > 0.0 && time_lt(lag, s.horizon())) {
    // By definition the service is 0 on [0, lag]; the shifted M still yields
    // A(t) - M(0) there, which can be positive. Zero the prefix by taking the
    // min with a curve that is 0 on [0, lag] and huge afterwards.
    const double big =
        std::fabs(s.end_value()) + availability.end_value() + 1.0;
    s = curve_min(s, PwlCurve({{0.0, 0.0, 0.0},
                               {lag, 0.0, big},
                               {s.horizon(), big, big}}));
  }
  // The exact SPP instantiation is provably nondecreasing; the bound
  // instantiations (Thms 5/6) need not be. Lower bounds are tightened by the
  // caller via tighten_lower_bound; upper bounds are consumed through
  // first-crossing queries which are sound without monotonization.
  return s;
}

PwlCurve availability_minus(Time horizon,
                            const std::vector<PwlCurve>& consumed) {
  const PwlCurve ident = PwlCurve::identity(horizon);
  if (consumed.empty()) return ident;
  PwlCurve a = curve_sub(ident, curve_sum(consumed, horizon));
  a = curve_clamp_min(a, 0.0);
  assert(a.is_nondecreasing());
  return a;
}

PwlCurve tighten_lower_bound(const PwlCurve& lb) {
  return curve_running_max(lb);
}

}  // namespace rta
