#include "curve/minplus.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "curve/curve_arena.hpp"
#include "curve/kernel_hooks.hpp"

namespace rta {

namespace {

// Both kernels probe candidate split points in knot order, so each operand
// is walked by a monotone SegmentCursor instead of a binary search per
// probe. Values at a curve's own knots are direct array reads (f(t_i) is
// rights[i], f(t_i^-) is lefts[i] -- the first left limit is pinned to the
// value at construction), which is exactly what the knot-based eval returned
// there. The probe order and min/max accumulation order match the legacy
// kernel line for line, so results are bit-identical (proven by
// tests/test_curve_kernels.cpp).

/// Evaluate inf_{0<=s<=t}{ f(s) + g(t-s) } exactly for one t: the expression
/// is piecewise linear in s with breakpoints at f's knots and at t - (g's
/// knots), so probing those candidates (both one-sided limits) suffices.
double convolve_at(const CurveView& f, const CurveView& g, Time t) {
  double best = f.r[0] + flat_eval(g, t);  // s = 0
  // Candidates at f's knots: s ascends, so the remainder t - s descends
  // through g.
  SegmentCursor gc(g);
  for (std::size_t i = 0; i < f.n; ++i) {
    const Time s = f.t[i];
    if (time_gt(s, t)) break;  // later knots lie even further past t
    const Time rem = t - s;
    const double ge = flat_eval(g, rem, gc);
    best = std::min(best, f.r[i] + ge);
    best = std::min(best, f.l[i] + ge);
    best = std::min(best, f.r[i] + flat_eval_left(g, rem, gc));
  }
  // Candidates at s = t - (g's knots): s descends, the remainder ascends.
  // The remainder is recomputed as t - s (not the knot time itself) to keep
  // the arithmetic identical to the legacy probe.
  SegmentCursor fc(f);
  SegmentCursor gc2(g);
  for (std::size_t j = 0; j < g.n; ++j) {
    const Time s = t - g.t[j];
    if (s < 0.0) break;  // later knots push s further negative
    const Time rem = t - s;
    const double ge = flat_eval(g, rem, gc2);
    const double fe = flat_eval(f, s, fc);
    best = std::min(best, fe + ge);
    best = std::min(best, flat_eval_left(f, s, fc) + ge);
    best = std::min(best, fe + flat_eval_left(g, rem, gc2));
  }
  // s = t: the remainder is 0, where g's value and left limit are both the
  // first right value.
  const double fe = flat_eval(f, t);
  best = std::min(best, fe + g.r[0]);
  best = std::min(best, flat_eval_left(f, t) + g.r[0]);
  return best;
}

/// Evaluate sup_{0<=u<=H-t}{ f(t+u) - g(u) } exactly for one t.
double deconvolve_at(const CurveView& f, const CurveView& g, Time t) {
  const Time h = f.t[f.n - 1];
  double best = flat_eval(f, t) - g.r[0];  // u = 0
  // Candidates at g's knots: u ascends, so does the probe point t + u.
  SegmentCursor fc(f);
  for (std::size_t j = 0; j < g.n; ++j) {
    const Time u = g.t[j];
    if (time_gt(t + u, h)) break;  // later knots lie even further past h
    best = std::max(best, flat_eval(f, t + u, fc) - g.r[j]);
    best = std::max(best, flat_eval_left(f, t + u, fc) - g.l[j]);
  }
  // Candidates at u = (f's knots) - t: ascending as well.
  SegmentCursor fc2(f);
  SegmentCursor gc(g);
  for (std::size_t i = 0; i < f.n; ++i) {
    const Time u = f.t[i] - t;
    if (u < 0.0) continue;
    if (time_gt(t + u, h)) break;
    best = std::max(best, flat_eval(f, t + u, fc2) - flat_eval(g, u, gc));
    best = std::max(best,
                    flat_eval_left(f, t + u, fc2) - flat_eval_left(g, u, gc));
  }
  // u = h - t.
  const Time u = h - t;
  if (u >= 0.0 && !time_gt(t + u, h)) {
    best = std::max(best, flat_eval(f, t + u) - flat_eval(g, u));
    best = std::max(best, flat_eval_left(f, t + u) - flat_eval_left(g, u));
  }
  return best;
}

/// Result grid: all pairwise candidate abscissae where the optimum can
/// switch -- sums (convolution) or differences (deconvolution) of knots.
void build_result_grid(const CurveView& f, const CurveView& g, bool sums,
                       std::vector<Time>& grid) {
  grid.clear();
  const Time h = f.t[f.n - 1];
  grid.push_back(0.0);
  grid.push_back(h);
  for (std::size_t i = 0; i < f.n; ++i) {
    grid.push_back(f.t[i]);
    for (std::size_t j = 0; j < g.n; ++j) {
      const Time t = sums ? f.t[i] + g.t[j] : f.t[i] - g.t[j];
      if (t > 0.0 && time_lt(t, h)) grid.push_back(t);
    }
  }
  for (std::size_t j = 0; j < g.n; ++j) grid.push_back(g.t[j]);
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end(),
                         [](Time a, Time b) { return time_eq(a, b); }),
             grid.end());
  while (!grid.empty() && grid.front() < 0.0) grid.erase(grid.begin());
}

}  // namespace

PwlCurve min_plus_convolution(const PwlCurve& f, const PwlCurve& g) {
  assert(time_eq(f.horizon(), g.horizon()));
  curve::KernelHooks* hooks = curve::kernel_hooks();
  if (hooks != nullptr) hooks->on_conv(f.knot_count() + g.knot_count());
  const CurveView fv = f.view();
  const CurveView gv = g.view();
  std::vector<Time>& grid = tls_grid_scratch();
  build_result_grid(fv, gv, /*sums=*/true, grid);
  CurveArena& arena = tls_curve_arena();
  arena.clear();
  arena.reserve(grid.size());
  for (Time t : grid) {
    const double v = convolve_at(fv, gv, t);
    arena.push(t, v, v);
  }
  // The value at a grid point is exact; between grid points the optimum
  // follows one linear regime, so linear interpolation is exact too. Jumps
  // in operands can create jumps in the result; re-probe the left limits.
  PwlCurve result(arena.finalize());
  if (hooks != nullptr) hooks->on_conv_result(result.knot_count());
  return result;
}

PwlCurve min_plus_deconvolution(const PwlCurve& f, const PwlCurve& g) {
  assert(time_eq(f.horizon(), g.horizon()));
  curve::KernelHooks* hooks = curve::kernel_hooks();
  if (hooks != nullptr) hooks->on_deconv(f.knot_count() + g.knot_count());
  const CurveView fv = f.view();
  const CurveView gv = g.view();
  std::vector<Time>& grid = tls_grid_scratch();
  build_result_grid(fv, gv, /*sums=*/false, grid);
  CurveArena& arena = tls_curve_arena();
  arena.clear();
  arena.reserve(grid.size());
  for (Time t : grid) {
    const double v = deconvolve_at(fv, gv, t);
    arena.push(t, v, v);
  }
  PwlCurve result(arena.finalize());
  if (hooks != nullptr) hooks->on_conv_result(result.knot_count());
  return result;
}

}  // namespace rta
