#include "curve/minplus.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "obs/kernel_sink.hpp"

namespace rta {

namespace {

/// Evaluate inf_{0<=s<=t}{ f(s) + g(t-s) } exactly for one t: the expression
/// is piecewise linear in s with breakpoints at f's knots and at t - (g's
/// knots), so probing those candidates (both one-sided limits) suffices.
double convolve_at(const PwlCurve& f, const PwlCurve& g, Time t) {
  double best = f.eval(0.0) + g.eval(t);  // s = 0
  auto probe = [&](Time s) {
    if (s < 0.0 || time_gt(s, t)) return;
    const Time r = t - s;
    // Both one-sided limits at the candidate (jumps on either side).
    best = std::min(best, f.eval(s) + g.eval(r));
    best = std::min(best, f.eval_left(s) + g.eval(r));
    best = std::min(best, f.eval(s) + g.eval_left(r));
  };
  for (const Knot& k : f.knots()) probe(k.t);
  for (const Knot& k : g.knots()) probe(t - k.t);
  probe(t);
  return best;
}

/// Evaluate sup_{0<=u<=H-t}{ f(t+u) - g(u) } exactly for one t.
double deconvolve_at(const PwlCurve& f, const PwlCurve& g, Time t) {
  const Time h = f.horizon();
  double best = f.eval(t) - g.eval(0.0);  // u = 0
  auto probe = [&](Time u) {
    if (u < 0.0 || time_gt(t + u, h)) return;
    best = std::max(best, f.eval(t + u) - g.eval(u));
    best = std::max(best, f.eval_left(t + u) - g.eval_left(u));
  };
  for (const Knot& k : g.knots()) probe(k.t);
  for (const Knot& k : f.knots()) probe(k.t - t);
  probe(h - t);
  return best;
}

/// Result grid: all pairwise candidate abscissae where the optimum can
/// switch -- sums (convolution) or differences (deconvolution) of knots.
std::vector<Time> result_grid(const PwlCurve& f, const PwlCurve& g,
                              bool sums) {
  std::vector<Time> grid;
  const Time h = f.horizon();
  grid.push_back(0.0);
  grid.push_back(h);
  for (const Knot& kf : f.knots()) {
    grid.push_back(kf.t);
    for (const Knot& kg : g.knots()) {
      const Time t = sums ? kf.t + kg.t : kf.t - kg.t;
      if (t > 0.0 && time_lt(t, h)) grid.push_back(t);
    }
  }
  for (const Knot& kg : g.knots()) grid.push_back(kg.t);
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end(),
                         [](Time a, Time b) { return time_eq(a, b); }),
             grid.end());
  while (!grid.empty() && grid.front() < 0.0) grid.erase(grid.begin());
  return grid;
}

}  // namespace

PwlCurve min_plus_convolution(const PwlCurve& f, const PwlCurve& g) {
  assert(time_eq(f.horizon(), g.horizon()));
  obs::KernelSink* sink = obs::kernel_sink();
  if (sink != nullptr) {
    sink->conv_ops.inc();
    sink->conv_operand_knots.observe(
        static_cast<double>(f.knot_count() + g.knot_count()));
  }
  std::vector<Knot> knots;
  for (Time t : result_grid(f, g, /*sums=*/true)) {
    const double v = convolve_at(f, g, t);
    knots.push_back({t, v, v});
  }
  // The value at a grid point is exact; between grid points the optimum
  // follows one linear regime, so linear interpolation is exact too. Jumps
  // in operands can create jumps in the result; re-probe the left limits.
  PwlCurve result(std::move(knots));
  if (sink != nullptr) {
    sink->conv_result_knots.observe(static_cast<double>(result.knot_count()));
  }
  return result;
}

PwlCurve min_plus_deconvolution(const PwlCurve& f, const PwlCurve& g) {
  assert(time_eq(f.horizon(), g.horizon()));
  obs::KernelSink* sink = obs::kernel_sink();
  if (sink != nullptr) {
    sink->deconv_ops.inc();
    sink->conv_operand_knots.observe(
        static_cast<double>(f.knot_count() + g.knot_count()));
  }
  std::vector<Knot> knots;
  for (Time t : result_grid(f, g, /*sums=*/false)) {
    const double v = deconvolve_at(f, g, t);
    knots.push_back({t, v, v});
  }
  PwlCurve result(std::move(knots));
  if (sink != nullptr) {
    sink->conv_result_knots.observe(static_cast<double>(result.knot_count()));
  }
  return result;
}

}  // namespace rta
