#include "curve/algebra.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "curve/curve_arena.hpp"
#include "curve/kernel_hooks.hpp"

namespace rta {

namespace {

// The pointwise kernels walk the flat knot arrays directly: grids come from
// a linear merge of the contiguous time arrays, evaluations from monotone
// SegmentCursors, and results are assembled in the thread-local CurveArena
// (one canonicalization pass, no per-curve vector<Knot> churn). Values and
// grid contents match the legacy knot-walking implementation bit for bit
// (tests/test_curve_kernels.cpp).

/// Sorted union of the knot abscissae of two curves (tolerance-deduplicated)
/// by linear merge of the already-sorted time arrays.
void merged_grid(const CurveView& a, const CurveView& b,
                 std::vector<Time>& out) {
  out.clear();
  out.reserve(a.n + b.n);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.n || j < b.n) {
    Time t = 0.0;
    if (j >= b.n || (i < a.n && a.t[i] <= b.t[j])) {
      t = a.t[i++];
    } else {
      t = b.t[j++];
    }
    if (out.empty() || !time_eq(out.back(), t)) out.push_back(t);
  }
}

/// Insert the crossing instants of (a - b) into the grid so that pointwise
/// min/max stay piecewise linear between consecutive grid points.
void insert_crossings(const CurveView& a, const CurveView& b,
                      std::vector<Time>& grid) {
  std::vector<Time> crossings;
  SegmentCursor ar(a);
  SegmentCursor br(b);
  SegmentCursor al(a);
  SegmentCursor bl(b);
  for (std::size_t i = 0; i + 1 < grid.size(); ++i) {
    const Time u = grid[i];
    const Time v = grid[i + 1];
    const double du = flat_eval(a, u, ar) - flat_eval(b, u, br);  // right
    const double dv =
        flat_eval_left(a, v, al) - flat_eval_left(b, v, bl);  // left
    if ((du > kValueEps && dv < -kValueEps) ||
        (du < -kValueEps && dv > kValueEps)) {
      const Time tc = u + (v - u) * (du / (du - dv));
      if (time_lt(u, tc) && time_lt(tc, v)) crossings.push_back(tc);
    }
  }
  if (crossings.empty()) return;
  grid.insert(grid.end(), crossings.begin(), crossings.end());
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end(),
                         [](Time x, Time y) { return time_eq(x, y); }),
             grid.end());
}

template <typename Op>
PwlCurve combine(const PwlCurve& a, const PwlCurve& b, Op op,
                 bool needs_crossings) {
  assert(time_eq(a.horizon(), b.horizon()));
  const CurveView av = a.view();
  const CurveView bv = b.view();
  std::vector<Time>& grid = tls_grid_scratch();
  merged_grid(av, bv, grid);
  if (needs_crossings) insert_crossings(av, bv, grid);
  CurveArena& arena = tls_curve_arena();
  arena.clear();
  arena.reserve(grid.size());
  SegmentCursor al(av);
  SegmentCursor ar(av);
  SegmentCursor bl(bv);
  SegmentCursor br(bv);
  for (Time t : grid) {
    const double left = op(flat_eval_left(av, t, al), flat_eval_left(bv, t, bl));
    const double right = op(flat_eval(av, t, ar), flat_eval(bv, t, br));
    arena.push(t, left, right);
  }
  PwlCurve result(arena.finalize());
  if (curve::KernelHooks* hooks = curve::kernel_hooks()) {
    hooks->on_pointwise(result.knot_count());
  }
  return result;
}

}  // namespace

PwlCurve curve_add(const PwlCurve& a, const PwlCurve& b) {
  return combine(a, b, [](double x, double y) { return x + y; }, false);
}

PwlCurve curve_sub(const PwlCurve& a, const PwlCurve& b) {
  return combine(a, b, [](double x, double y) { return x - y; }, false);
}

PwlCurve curve_min(const PwlCurve& a, const PwlCurve& b) {
  return combine(a, b, [](double x, double y) { return std::min(x, y); },
                 true);
}

PwlCurve curve_max(const PwlCurve& a, const PwlCurve& b) {
  return combine(a, b, [](double x, double y) { return std::max(x, y); },
                 true);
}

PwlCurve curve_scale(const PwlCurve& a, double factor) {
  const CurveView v = a.view();
  CurveArena& arena = tls_curve_arena();
  arena.clear();
  arena.reserve(v.n);
  for (std::size_t i = 0; i < v.n; ++i) {
    arena.push(v.t[i], v.l[i] * factor, v.r[i] * factor);
  }
  return PwlCurve(arena.finalize());
}

PwlCurve curve_add_constant(const PwlCurve& a, double value) {
  const CurveView v = a.view();
  CurveArena& arena = tls_curve_arena();
  arena.clear();
  arena.reserve(v.n);
  for (std::size_t i = 0; i < v.n; ++i) {
    arena.push(v.t[i], v.l[i] + value, v.r[i] + value);
  }
  return PwlCurve(arena.finalize());
}

PwlCurve curve_clamp_min(const PwlCurve& a, double floor_value) {
  return curve_max(a, PwlCurve::constant(a.horizon(), floor_value));
}

PwlCurve curve_shift_right(const PwlCurve& a, Time dt) {
  assert(dt >= 0.0);
  if (time_eq(dt, 0.0)) return a;  // O(1): shares storage
  const Time horizon = a.horizon();
  const double v0 = a.eval(0.0);
  const CurveView v = a.view();
  CurveArena& arena = tls_curve_arena();
  arena.clear();
  arena.reserve(v.n + 2);
  arena.push(0.0, v0, v0);
  if (time_lt(dt, horizon)) {
    // a's value at 0 holds on [0, dt); at dt the shifted curve starts.
    arena.push(dt, v0, v0);
    for (std::size_t i = 0; i < v.n; ++i) {
      const Time t = v.t[i] + dt;
      if (time_ge(t, horizon)) {
        arena.push(horizon, a.eval_left(horizon - dt), a.eval(horizon - dt));
        break;
      }
      arena.push(t, v.l[i], v.r[i]);
    }
    if (!time_ge(v.t[v.n - 1] + dt, horizon)) {
      arena.push(horizon, a.end_value(), a.end_value());
    }
  } else {
    arena.push(horizon, v0, v0);
  }
  return PwlCurve(arena.finalize());
}

PwlCurve curve_running_max(const PwlCurve& a) {
  const CurveView v = a.view();
  CurveArena& arena = tls_curve_arena();
  arena.clear();
  arena.reserve(v.n * 2);
  double cur = v.r[0];
  arena.push(0.0, cur, cur);
  for (std::size_t i = 0; i + 1 < v.n; ++i) {
    const Time t0 = v.t[i];
    const Time t1 = v.t[i + 1];
    const double v0 = v.r[i];
    const double v1 = v.l[i + 1];
    // Segment from (t0, v0) to (t1, v1).
    if (v1 > cur + kValueEps) {
      if (v0 < cur - kValueEps) {
        // Flat until the segment rises through the current max.
        const Time tc = t0 + (t1 - t0) * ((cur - v0) / (v1 - v0));
        arena.push(tc, cur, cur);
      }
      cur = v1;
    }
    // Value of M just before the jump at t1 equals cur (already >= v1).
    const double before = cur;
    cur = std::max(cur, v.r[i + 1]);
    arena.push(t1, before, cur);
  }
  return PwlCurve(arena.finalize());
}

PwlCurve curve_right_running_min(const PwlCurve& a) {
  assert(a.is_continuous());
  const Time h = a.horizon();
  // Reflect: g(u) = -a(h - u). A knot (t, l, r) of `a` becomes a knot
  // (h - t, -r, -l) of g (the approach direction flips, so left and right
  // swap and negate). Segments map onto segments.
  const CurveView v = a.view();
  CurveArena& arena = tls_curve_arena();
  arena.clear();
  arena.reserve(v.n);
  for (std::size_t i = v.n; i-- > 0;) {
    arena.push(h - v.t[i], -v.r[i], -v.l[i]);
  }
  // The reflected first knot sits at u = 0; its left limit is pinned to its
  // right value by finalize().
  const PwlCurve m = curve_running_max(PwlCurve(arena.finalize()));
  // Reflect back: R(t) = -M(h - t).
  const CurveView mv = m.view();
  arena.clear();
  arena.reserve(mv.n);
  for (std::size_t i = mv.n; i-- > 0;) {
    arena.push(h - mv.t[i], -mv.r[i], -mv.l[i]);
  }
  return PwlCurve(arena.finalize());
}

PwlCurve curve_sum(const std::vector<PwlCurve>& curves, Time horizon) {
  PwlCurve acc = PwlCurve::zero(horizon);
  for (const PwlCurve& c : curves) acc = curve_add(acc, c);
  return acc;
}

Time curve_first_crossing(const PwlCurve& a, double y) {
  const CurveView v = a.view();
  for (std::size_t i = 0; i < v.n; ++i) {
    // At the knot itself (right-continuous value).
    if (v.r[i] >= y - kValueEps) return v.t[i];
    if (i + 1 >= v.n) break;
    // Within the open segment towards the next knot's left limit.
    const double v0 = v.r[i];
    const double v1 = v.l[i + 1];
    if (v1 >= y - kValueEps && v1 > v0 + kValueEps) {
      const double frac = (y - v0) / (v1 - v0);
      return v.t[i] + std::clamp(frac, 0.0, 1.0) * (v.t[i + 1] - v.t[i]);
    }
  }
  return kTimeInfinity;
}

PwlCurve curve_crossing_counts(const PwlCurve& a, double tau) {
  assert(tau > 0.0);
  std::vector<Time> jumps;
  for (long long k = 1;; ++k) {
    const Time t = curve_first_crossing(a, static_cast<double>(k) * tau);
    if (std::isinf(t)) break;
    jumps.push_back(t);
  }
  // First crossings of increasing levels are nondecreasing in time for any
  // curve, so `jumps` is sorted as PwlCurve::step requires.
  return PwlCurve::step(a.horizon(), jumps);
}

PwlCurve curve_floor_div(const PwlCurve& s, double tau) {
  assert(tau > 0.0);
  assert(s.is_nondecreasing());
  const long long total = std::max<long long>(
      0, tolerant_floor(s.end_value() / tau));
  std::vector<Time> jumps;
  jumps.reserve(static_cast<std::size_t>(total));
  for (long long k = 1; k <= total; ++k) {
    const Time t = s.pseudo_inverse(static_cast<double>(k) * tau);
    assert(!std::isinf(t));
    jumps.push_back(t);
  }
  return PwlCurve::step(s.horizon(), jumps);
}

}  // namespace rta
