#include "curve/algebra.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/kernel_sink.hpp"

namespace rta {

namespace {

/// Sorted union of the knot abscissae of two curves (tolerance-deduplicated).
std::vector<Time> merged_grid(const PwlCurve& a, const PwlCurve& b) {
  std::vector<Time> grid;
  grid.reserve(a.knot_count() + b.knot_count());
  for (const Knot& k : a.knots()) grid.push_back(k.t);
  for (const Knot& k : b.knots()) grid.push_back(k.t);
  std::sort(grid.begin(), grid.end());
  std::vector<Time> out;
  out.reserve(grid.size());
  for (Time t : grid) {
    if (out.empty() || !time_eq(out.back(), t)) out.push_back(t);
  }
  return out;
}

/// Insert the crossing instants of (a - b) into the grid so that pointwise
/// min/max stay piecewise linear between consecutive grid points.
void insert_crossings(const PwlCurve& a, const PwlCurve& b,
                      std::vector<Time>& grid) {
  std::vector<Time> crossings;
  for (std::size_t i = 0; i + 1 < grid.size(); ++i) {
    const Time u = grid[i];
    const Time v = grid[i + 1];
    const double du = a.eval(u) - b.eval(u);            // right values at u
    const double dv = a.eval_left(v) - b.eval_left(v);  // left values at v
    if ((du > kValueEps && dv < -kValueEps) ||
        (du < -kValueEps && dv > kValueEps)) {
      const Time tc = u + (v - u) * (du / (du - dv));
      if (time_lt(u, tc) && time_lt(tc, v)) crossings.push_back(tc);
    }
  }
  if (crossings.empty()) return;
  grid.insert(grid.end(), crossings.begin(), crossings.end());
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end(),
                         [](Time x, Time y) { return time_eq(x, y); }),
             grid.end());
}

template <typename Op>
PwlCurve combine(const PwlCurve& a, const PwlCurve& b, Op op,
                 bool needs_crossings) {
  assert(time_eq(a.horizon(), b.horizon()));
  std::vector<Time> grid = merged_grid(a, b);
  if (needs_crossings) insert_crossings(a, b, grid);
  std::vector<Knot> knots;
  knots.reserve(grid.size());
  for (Time t : grid) {
    knots.push_back({t, op(a.eval_left(t), b.eval_left(t)),
                     op(a.eval(t), b.eval(t))});
  }
  PwlCurve result(std::move(knots));
  if (obs::KernelSink* sink = obs::kernel_sink()) {
    sink->pointwise_ops.inc();
    sink->pointwise_result_knots.observe(
        static_cast<double>(result.knot_count()));
  }
  return result;
}

}  // namespace

PwlCurve curve_add(const PwlCurve& a, const PwlCurve& b) {
  return combine(a, b, [](double x, double y) { return x + y; }, false);
}

PwlCurve curve_sub(const PwlCurve& a, const PwlCurve& b) {
  return combine(a, b, [](double x, double y) { return x - y; }, false);
}

PwlCurve curve_min(const PwlCurve& a, const PwlCurve& b) {
  return combine(a, b, [](double x, double y) { return std::min(x, y); },
                 true);
}

PwlCurve curve_max(const PwlCurve& a, const PwlCurve& b) {
  return combine(a, b, [](double x, double y) { return std::max(x, y); },
                 true);
}

PwlCurve curve_scale(const PwlCurve& a, double factor) {
  std::vector<Knot> knots = a.knots();
  for (Knot& k : knots) {
    k.left *= factor;
    k.right *= factor;
  }
  return PwlCurve(std::move(knots));
}

PwlCurve curve_add_constant(const PwlCurve& a, double value) {
  std::vector<Knot> knots = a.knots();
  for (Knot& k : knots) {
    k.left += value;
    k.right += value;
  }
  return PwlCurve(std::move(knots));
}

PwlCurve curve_clamp_min(const PwlCurve& a, double floor_value) {
  return curve_max(a, PwlCurve::constant(a.horizon(), floor_value));
}

PwlCurve curve_shift_right(const PwlCurve& a, Time dt) {
  assert(dt >= 0.0);
  if (time_eq(dt, 0.0)) return a;
  const Time horizon = a.horizon();
  const double v0 = a.eval(0.0);
  std::vector<Knot> knots;
  knots.reserve(a.knot_count() + 2);
  knots.push_back({0.0, v0, v0});
  if (time_lt(dt, horizon)) {
    // a's value at 0 holds on [0, dt); at dt the shifted curve starts.
    knots.push_back({dt, v0, v0});
    for (const Knot& k : a.knots()) {
      const Time t = k.t + dt;
      if (time_ge(t, horizon)) {
        knots.push_back({horizon, a.eval_left(horizon - dt),
                         a.eval(horizon - dt)});
        break;
      }
      knots.push_back({t, k.left, k.right});
    }
    if (!time_ge(a.knots().back().t + dt, horizon)) {
      knots.push_back({horizon, a.end_value(), a.end_value()});
    }
  } else {
    knots.push_back({horizon, v0, v0});
  }
  return PwlCurve(std::move(knots));
}

PwlCurve curve_running_max(const PwlCurve& a) {
  const auto& ks = a.knots();
  std::vector<Knot> out;
  out.reserve(ks.size() * 2);
  double cur = ks.front().right;
  out.push_back({0.0, cur, cur});
  for (std::size_t i = 0; i + 1 < ks.size(); ++i) {
    const Time t0 = ks[i].t;
    const Time t1 = ks[i + 1].t;
    const double v0 = ks[i].right;
    const double v1 = ks[i + 1].left;
    // Segment from (t0, v0) to (t1, v1).
    if (v1 > cur + kValueEps) {
      if (v0 < cur - kValueEps) {
        // Flat until the segment rises through the current max.
        const Time tc = t0 + (t1 - t0) * ((cur - v0) / (v1 - v0));
        out.push_back({tc, cur, cur});
      }
      cur = v1;
    }
    // Value of M just before the jump at t1 equals cur (already >= v1).
    const double before = cur;
    cur = std::max(cur, ks[i + 1].right);
    out.push_back({t1, before, cur});
  }
  return PwlCurve(std::move(out));
}

PwlCurve curve_right_running_min(const PwlCurve& a) {
  assert(a.is_continuous());
  const Time h = a.horizon();
  // Reflect: g(u) = -a(h - u). A knot (t, l, r) of `a` becomes a knot
  // (h - t, -r, -l) of g (the approach direction flips, so left and right
  // swap and negate). Segments map onto segments.
  const auto& ks = a.knots();
  std::vector<Knot> gk;
  gk.reserve(ks.size());
  for (std::size_t i = ks.size(); i-- > 0;) {
    gk.push_back({h - ks[i].t, -ks[i].right, -ks[i].left});
  }
  // The reflected first knot sits at u = 0; pin its left to its right.
  const PwlCurve m = curve_running_max(PwlCurve(std::move(gk)));
  // Reflect back: R(t) = -M(h - t).
  const auto& mk = m.knots();
  std::vector<Knot> rk;
  rk.reserve(mk.size());
  for (std::size_t i = mk.size(); i-- > 0;) {
    rk.push_back({h - mk[i].t, -mk[i].right, -mk[i].left});
  }
  return PwlCurve(std::move(rk));
}

PwlCurve curve_sum(const std::vector<PwlCurve>& curves, Time horizon) {
  PwlCurve acc = PwlCurve::zero(horizon);
  for (const PwlCurve& c : curves) acc = curve_add(acc, c);
  return acc;
}

Time curve_first_crossing(const PwlCurve& a, double y) {
  const auto& ks = a.knots();
  for (std::size_t i = 0; i < ks.size(); ++i) {
    // At the knot itself (right-continuous value).
    if (ks[i].right >= y - kValueEps) return ks[i].t;
    if (i + 1 == ks.size()) break;
    // Within the open segment towards the next knot's left limit.
    const double v0 = ks[i].right;
    const double v1 = ks[i + 1].left;
    if (v1 >= y - kValueEps && v1 > v0 + kValueEps) {
      const double frac = (y - v0) / (v1 - v0);
      return ks[i].t + std::clamp(frac, 0.0, 1.0) * (ks[i + 1].t - ks[i].t);
    }
  }
  return kTimeInfinity;
}

PwlCurve curve_crossing_counts(const PwlCurve& a, double tau) {
  assert(tau > 0.0);
  std::vector<Time> jumps;
  for (long long k = 1;; ++k) {
    const Time t = curve_first_crossing(a, static_cast<double>(k) * tau);
    if (std::isinf(t)) break;
    jumps.push_back(t);
  }
  // First crossings of increasing levels are nondecreasing in time for any
  // curve, so `jumps` is sorted as PwlCurve::step requires.
  return PwlCurve::step(a.horizon(), jumps);
}

PwlCurve curve_floor_div(const PwlCurve& s, double tau) {
  assert(tau > 0.0);
  assert(s.is_nondecreasing());
  const long long total = std::max<long long>(
      0, tolerant_floor(s.end_value() / tau));
  std::vector<Time> jumps;
  jumps.reserve(static_cast<std::size_t>(total));
  for (long long k = 1; k <= total; ++k) {
    const Time t = s.pseudo_inverse(static_cast<double>(k) * tau);
    assert(!std::isinf(t));
    jumps.push_back(t);
  }
  return PwlCurve::step(s.horizon(), jumps);
}

}  // namespace rta
