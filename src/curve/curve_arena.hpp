// Flat structure-of-arrays storage for piecewise-linear curves.
//
// CurveData is the immutable backing store of a finalized curve: breakpoint
// times, left limits and right values live in ONE contiguous buffer laid out
//
//   t[0..n) | left[0..n) | right[0..n),
//
// with the structural hash of the exact knot bits computed once at
// construction. PwlCurve holds a shared_ptr<const CurveData>, so curve
// copies are O(1) handle copies and the CurveCache hashes and compares
// curves in O(1) (cached hash, pointer fast path, memcmp fallback).
//
// CurveArena is the reusable scratch builder the curve kernels assemble
// results in: push (t, left, right) triples, then finalize() -- which runs
// the exact canonicalization pipeline of the PwlCurve knot constructor
// (anchor at t = 0, merge tolerance-equal abscissae, drop collinear
// continuous interior knots, pin the first left limit) and copies the
// result into a tight CurveData. Reusing one thread-local arena keeps the
// hot kernels free of per-curve vector<Knot> allocation churn. The arena is
// leaf-only scratch: push and finalize with no other curve operation in
// between (every kernel in curve/ obeys this; finalize() leaves the arena
// cleared for the next use).
//
// CurveView + the flat_eval* helpers are the evaluation substrate shared by
// PwlCurve and the kernels. They replicate the knot-based eval/eval_left
// semantics branch for branch, so results are bit-identical to the legacy
// implementation (proven by tests/test_curve_kernels.cpp against
// curve/reference.hpp).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/time.hpp"

namespace rta {

/// Tolerance used when comparing curve *values* (as opposed to times).
inline constexpr double kValueEps = 1e-7;

/// Immutable SoA storage of one finalized curve. Always holds n >= 1 knots
/// with strictly increasing times starting at 0.
class CurveData {
 public:
  /// Takes a buffer of exactly 3 * n doubles (t | left | right) and caches
  /// the structural hash.
  CurveData(std::vector<double> buf, std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] const double* times() const { return buf_.data(); }
  [[nodiscard]] const double* lefts() const { return buf_.data() + n_; }
  [[nodiscard]] const double* rights() const {
    return buf_.data() + 2 * n_;
  }

  /// Order-sensitive hash of the exact knot bits, computed once. Equal
  /// storage implies equal hash; unequal hash implies unequal storage.
  [[nodiscard]] std::uint64_t hash() const { return hash_; }

  /// Exact (bitwise) storage equality, with hash/size early-outs.
  [[nodiscard]] static bool identical(const CurveData& a, const CurveData& b);

  /// Shared storage of the default {(0, 0, 0)} curve.
  [[nodiscard]] static const std::shared_ptr<const CurveData>& zero_knot();

 private:
  std::vector<double> buf_;
  std::size_t n_;
  std::uint64_t hash_;
};

/// Non-owning flat view of a curve's arrays; valid while the backing
/// CurveData (i.e. any PwlCurve sharing it) is alive.
struct CurveView {
  const double* t = nullptr;
  const double* l = nullptr;
  const double* r = nullptr;
  std::size_t n = 0;
};

/// Index of the last knot with t_i <= q, with tolerance snapping forward to
/// a knot q is epsilon-below. Exact replica of the legacy
/// PwlCurve::segment_index.
[[nodiscard]] inline std::size_t flat_segment_index(const CurveView& v,
                                                    Time q) {
  const std::size_t ub = static_cast<std::size_t>(
      std::upper_bound(v.t, v.t + v.n, q) - v.t);
  std::size_t i = (ub > 0) ? ub - 1 : 0;
  if (i + 1 < v.n && time_eq(q, v.t[i + 1])) ++i;
  return i;
}

/// Incremental replacement for flat_segment_index when queries move mostly
/// in one direction (the kernels' probe loops): the unsnapped base index is
/// maintained by local steps instead of a binary search per query. Correct
/// for arbitrary query sequences (it walks either way), amortized O(1) for
/// monotone ones; always returns exactly flat_segment_index's result.
class SegmentCursor {
 public:
  explicit SegmentCursor(const CurveView& v) : v_(v) {}

  [[nodiscard]] std::size_t index(Time q) {
    while (base_ + 1 < v_.n && v_.t[base_ + 1] <= q) ++base_;
    while (base_ > 0 && v_.t[base_] > q) --base_;
    std::size_t i = base_;
    if (i + 1 < v_.n && time_eq(q, v_.t[i + 1])) ++i;
    return i;
  }

 private:
  CurveView v_;
  std::size_t base_ = 0;
};

/// f(q), right-continuous, given any callable returning segment_index(q).
/// Branch ladder identical to the legacy PwlCurve::eval.
template <typename Seg>
[[nodiscard]] inline double flat_eval_with(const CurveView& v, Time q,
                                           Seg&& seg) {
  if (q <= 0.0) return v.r[0];
  if (time_ge(q, v.t[v.n - 1])) return v.r[v.n - 1];
  const std::size_t i = seg(q);
  if (time_eq(q, v.t[i])) return v.r[i];
  const double frac = (q - v.t[i]) / (v.t[i + 1] - v.t[i]);
  return v.r[i] + frac * (v.l[i + 1] - v.r[i]);
}

/// lim_{s -> q-} f(s); branch ladder identical to the legacy eval_left.
template <typename Seg>
[[nodiscard]] inline double flat_eval_left_with(const CurveView& v, Time q,
                                                Seg&& seg) {
  if (q <= 0.0 || time_eq(q, 0.0)) return v.r[0];
  if (time_gt(q, v.t[v.n - 1])) return v.r[v.n - 1];
  const std::size_t i = seg(q);
  if (time_eq(q, v.t[i])) return v.l[i];
  const double frac = (q - v.t[i]) / (v.t[i + 1] - v.t[i]);
  return v.r[i] + frac * (v.l[i + 1] - v.r[i]);
}

[[nodiscard]] inline double flat_eval(const CurveView& v, Time q) {
  return flat_eval_with(v, q,
                        [&](Time x) { return flat_segment_index(v, x); });
}

[[nodiscard]] inline double flat_eval_left(const CurveView& v, Time q) {
  return flat_eval_left_with(
      v, q, [&](Time x) { return flat_segment_index(v, x); });
}

[[nodiscard]] inline double flat_eval(const CurveView& v, Time q,
                                      SegmentCursor& cur) {
  return flat_eval_with(v, q, [&](Time x) { return cur.index(x); });
}

[[nodiscard]] inline double flat_eval_left(const CurveView& v, Time q,
                                           SegmentCursor& cur) {
  return flat_eval_left_with(v, q, [&](Time x) { return cur.index(x); });
}

/// Reusable SoA builder for curve results. See the file comment for the
/// leaf-only usage discipline.
class CurveArena {
 public:
  void clear() {
    t_.clear();
    l_.clear();
    r_.clear();
  }

  void reserve(std::size_t n) {
    t_.reserve(n);
    l_.reserve(n);
    r_.reserve(n);
  }

  [[nodiscard]] std::size_t size() const { return t_.size(); }
  [[nodiscard]] bool empty() const { return t_.empty(); }

  void push(Time t, double left, double right) {
    t_.push_back(t);
    l_.push_back(left);
    r_.push_back(right);
  }

  [[nodiscard]] Time back_t() const { return t_.back(); }
  void set_back_right(double v) { r_.back() = v; }

  /// Canonicalize (anchor, merge, slim, pin) and copy into a tight
  /// CurveData; the arena is left cleared. Bit-identical to constructing a
  /// PwlCurve from the equivalent knot vector.
  [[nodiscard]] std::shared_ptr<const CurveData> finalize();

 private:
  std::vector<double> t_, l_, r_;
};

/// Thread-local scratch arena for kernel results (leaf-only use).
[[nodiscard]] CurveArena& tls_curve_arena();

/// Thread-local scratch grid for kernel candidate abscissae.
[[nodiscard]] std::vector<Time>& tls_grid_scratch();

}  // namespace rta
