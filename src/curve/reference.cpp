// Verbatim transplants of the pre-SoA curve kernels (see reference.hpp).
// Structure, tolerance decisions and accumulation order are intentionally
// unchanged from the historical implementations; only the obs counters were
// dropped (the oracle must not perturb kernel telemetry).
#include "curve/reference.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rta::legacyref {

namespace {

/// Merge knots whose abscissae coincide within tolerance: keep the first
/// left limit and the last right value (jumps compose).
std::vector<Knot> normalize_knots(std::vector<Knot> knots) {
  assert(!knots.empty());
  std::vector<Knot> out;
  out.reserve(knots.size());
  for (const Knot& k : knots) {
    if (!out.empty() && time_eq(out.back().t, k.t)) {
      out.back().right = k.right;
    } else {
      assert(out.empty() || k.t > out.back().t);
      out.push_back(k);
    }
  }
  // Drop interior knots that are collinear and continuous: knot i is
  // redundant if left == right and it lies on the segment between its
  // neighbours.
  if (out.size() > 2) {
    std::vector<Knot> slim;
    slim.reserve(out.size());
    slim.push_back(out.front());
    for (std::size_t i = 1; i + 1 < out.size(); ++i) {
      const Knot& prev = slim.back();
      const Knot& cur = out[i];
      const Knot& next = out[i + 1];
      if (std::fabs(cur.left - cur.right) <= kValueEps) {
        const double span = next.t - prev.t;
        const double expect =
            prev.right + (next.left - prev.right) * ((cur.t - prev.t) / span);
        if (std::fabs(cur.right - expect) <= kValueEps) continue;  // redundant
      }
      slim.push_back(cur);
    }
    slim.push_back(out.back());
    out = std::move(slim);
  }
  return out;
}

/// Legacy PwlCurve::segment_index.
std::size_t segment_index(const Curve& knots, Time t) {
  // Last knot with t_i <= t, with tolerance snapping to nearby knots.
  auto it = std::upper_bound(
      knots.begin(), knots.end(), t,
      [](Time value, const Knot& k) { return value < k.t; });
  std::size_t i = (it == knots.begin())
                      ? 0
                      : static_cast<std::size_t>(it - knots.begin() - 1);
  // Snap forward: t epsilon-below knot i+1 counts as being at knot i+1.
  if (i + 1 < knots.size() && time_eq(t, knots[i + 1].t)) ++i;
  return i;
}

/// Legacy merged_grid (algebra.cpp).
std::vector<Time> merged_grid(const Curve& a, const Curve& b) {
  std::vector<Time> grid;
  grid.reserve(a.size() + b.size());
  for (const Knot& k : a) grid.push_back(k.t);
  for (const Knot& k : b) grid.push_back(k.t);
  std::sort(grid.begin(), grid.end());
  std::vector<Time> out;
  out.reserve(grid.size());
  for (Time t : grid) {
    if (out.empty() || !time_eq(out.back(), t)) out.push_back(t);
  }
  return out;
}

/// Legacy insert_crossings (algebra.cpp).
void insert_crossings(const Curve& a, const Curve& b,
                      std::vector<Time>& grid) {
  std::vector<Time> crossings;
  for (std::size_t i = 0; i + 1 < grid.size(); ++i) {
    const Time u = grid[i];
    const Time v = grid[i + 1];
    const double du = eval(a, u) - eval(b, u);            // right values at u
    const double dv = eval_left(a, v) - eval_left(b, v);  // left values at v
    if ((du > kValueEps && dv < -kValueEps) ||
        (du < -kValueEps && dv > kValueEps)) {
      const Time tc = u + (v - u) * (du / (du - dv));
      if (time_lt(u, tc) && time_lt(tc, v)) crossings.push_back(tc);
    }
  }
  if (crossings.empty()) return;
  grid.insert(grid.end(), crossings.begin(), crossings.end());
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end(),
                         [](Time x, Time y) { return time_eq(x, y); }),
             grid.end());
}

/// Legacy combine (algebra.cpp).
template <typename Op>
Curve combine(const Curve& a, const Curve& b, Op op, bool needs_crossings) {
  assert(time_eq(horizon(a), horizon(b)));
  std::vector<Time> grid = merged_grid(a, b);
  if (needs_crossings) insert_crossings(a, b, grid);
  std::vector<Knot> knots;
  knots.reserve(grid.size());
  for (Time t : grid) {
    knots.push_back({t, op(eval_left(a, t), eval_left(b, t)),
                     op(eval(a, t), eval(b, t))});
  }
  return make_curve(std::move(knots));
}

/// Legacy convolve_at (minplus.cpp).
double convolve_at(const Curve& f, const Curve& g, Time t) {
  double best = eval(f, 0.0) + eval(g, t);  // s = 0
  auto probe = [&](Time s) {
    if (s < 0.0 || time_gt(s, t)) return;
    const Time r = t - s;
    // Both one-sided limits at the candidate (jumps on either side).
    best = std::min(best, eval(f, s) + eval(g, r));
    best = std::min(best, eval_left(f, s) + eval(g, r));
    best = std::min(best, eval(f, s) + eval_left(g, r));
  };
  for (const Knot& k : f) probe(k.t);
  for (const Knot& k : g) probe(t - k.t);
  probe(t);
  return best;
}

/// Legacy deconvolve_at (minplus.cpp).
double deconvolve_at(const Curve& f, const Curve& g, Time t) {
  const Time h = horizon(f);
  double best = eval(f, t) - eval(g, 0.0);  // u = 0
  auto probe = [&](Time u) {
    if (u < 0.0 || time_gt(t + u, h)) return;
    best = std::max(best, eval(f, t + u) - eval(g, u));
    best = std::max(best, eval_left(f, t + u) - eval_left(g, u));
  };
  for (const Knot& k : g) probe(k.t);
  for (const Knot& k : f) probe(k.t - t);
  probe(h - t);
  return best;
}

/// Legacy result_grid (minplus.cpp).
std::vector<Time> result_grid(const Curve& f, const Curve& g, bool sums) {
  std::vector<Time> grid;
  const Time h = horizon(f);
  grid.push_back(0.0);
  grid.push_back(h);
  for (const Knot& kf : f) {
    grid.push_back(kf.t);
    for (const Knot& kg : g) {
      const Time t = sums ? kf.t + kg.t : kf.t - kg.t;
      if (t > 0.0 && time_lt(t, h)) grid.push_back(t);
    }
  }
  for (const Knot& kg : g) grid.push_back(kg.t);
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end(),
                         [](Time a, Time b) { return time_eq(a, b); }),
             grid.end());
  while (!grid.empty() && grid.front() < 0.0) grid.erase(grid.begin());
  return grid;
}

}  // namespace

Curve make_curve(std::vector<Knot> knots) {
  assert(!knots.empty());
  if (knots.empty()) return {{0.0, 0.0, 0.0}};
  // Anchor the curve at t = 0.
  if (!time_eq(knots.front().t, 0.0)) {
    assert(knots.front().t > 0.0);
    knots.insert(knots.begin(),
                 Knot{0.0, knots.front().left, knots.front().left});
  } else {
    knots.front().t = 0.0;
  }
  Curve out = normalize_knots(std::move(knots));
  // First knot: the left limit is meaningless; pin it to the value.
  out.front().left = out.front().right;
  return out;
}

Time horizon(const Curve& c) { return c.back().t; }

double end_value(const Curve& c) { return c.back().right; }

double eval(const Curve& c, Time t) {
  if (t <= 0.0) return c.front().right;
  if (time_ge(t, horizon(c))) return c.back().right;
  const std::size_t i = segment_index(c, t);
  const Knot& a = c[i];
  if (time_eq(t, a.t)) return a.right;
  const Knot& b = c[i + 1];
  const double frac = (t - a.t) / (b.t - a.t);
  return a.right + frac * (b.left - a.right);
}

double eval_left(const Curve& c, Time t) {
  if (t <= 0.0 || time_eq(t, 0.0)) return c.front().right;
  if (time_gt(t, horizon(c))) return c.back().right;
  const std::size_t i = segment_index(c, t);
  const Knot& a = c[i];
  if (time_eq(t, a.t)) return a.left;
  const Knot& b = c[i + 1];
  const double frac = (t - a.t) / (b.t - a.t);
  return a.right + frac * (b.left - a.right);
}

Time pseudo_inverse(const Curve& c, double y) {
  if (y <= c.front().right + kValueEps) return 0.0;
  if (y > c.back().right + kValueEps) return kTimeInfinity;
  auto it = std::lower_bound(
      c.begin(), c.end(), y,
      [](const Knot& k, double value) { return k.right < value - kValueEps; });
  if (it == c.end()) return kTimeInfinity;
  const std::size_t i = static_cast<std::size_t>(it - c.begin());
  if (i == 0) return 0.0;
  const Knot& a = c[i - 1];
  const Knot& b = c[i];
  if (y <= b.left + kValueEps) {
    const double rise = b.left - a.right;
    if (rise <= kValueEps) return b.t;  // flat segment: first >= y at b.t
    const double frac = (y - a.right) / rise;
    return a.t + std::clamp(frac, 0.0, 1.0) * (b.t - a.t);
  }
  // y lies inside the jump at b: the first instant with f >= y is b.t.
  return b.t;
}

Curve add(const Curve& a, const Curve& b) {
  return combine(a, b, [](double x, double y) { return x + y; }, false);
}

Curve sub(const Curve& a, const Curve& b) {
  return combine(a, b, [](double x, double y) { return x - y; }, false);
}

Curve min(const Curve& a, const Curve& b) {
  return combine(a, b, [](double x, double y) { return std::min(x, y); },
                 true);
}

Curve max(const Curve& a, const Curve& b) {
  return combine(a, b, [](double x, double y) { return std::max(x, y); },
                 true);
}

Curve scale(const Curve& a, double factor) {
  std::vector<Knot> knots = a;
  for (Knot& k : knots) {
    k.left *= factor;
    k.right *= factor;
  }
  return make_curve(std::move(knots));
}

Curve add_constant(const Curve& a, double value) {
  std::vector<Knot> knots = a;
  for (Knot& k : knots) {
    k.left += value;
    k.right += value;
  }
  return make_curve(std::move(knots));
}

Curve clamp_min(const Curve& a, double floor_value) {
  return max(a, constant(horizon(a), floor_value));
}

Curve shift_right(const Curve& a, Time dt) {
  assert(dt >= 0.0);
  if (time_eq(dt, 0.0)) return a;
  const Time h = horizon(a);
  const double v0 = eval(a, 0.0);
  std::vector<Knot> knots;
  knots.reserve(a.size() + 2);
  knots.push_back({0.0, v0, v0});
  if (time_lt(dt, h)) {
    // a's value at 0 holds on [0, dt); at dt the shifted curve starts.
    knots.push_back({dt, v0, v0});
    for (const Knot& k : a) {
      const Time t = k.t + dt;
      if (time_ge(t, h)) {
        knots.push_back({h, eval_left(a, h - dt), eval(a, h - dt)});
        break;
      }
      knots.push_back({t, k.left, k.right});
    }
    if (!time_ge(a.back().t + dt, h)) {
      knots.push_back({h, end_value(a), end_value(a)});
    }
  } else {
    knots.push_back({h, v0, v0});
  }
  return make_curve(std::move(knots));
}

Curve running_max(const Curve& a) {
  std::vector<Knot> out;
  out.reserve(a.size() * 2);
  double cur = a.front().right;
  out.push_back({0.0, cur, cur});
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    const Time t0 = a[i].t;
    const Time t1 = a[i + 1].t;
    const double v0 = a[i].right;
    const double v1 = a[i + 1].left;
    // Segment from (t0, v0) to (t1, v1).
    if (v1 > cur + kValueEps) {
      if (v0 < cur - kValueEps) {
        // Flat until the segment rises through the current max.
        const Time tc = t0 + (t1 - t0) * ((cur - v0) / (v1 - v0));
        out.push_back({tc, cur, cur});
      }
      cur = v1;
    }
    // Value of M just before the jump at t1 equals cur (already >= v1).
    const double before = cur;
    cur = std::max(cur, a[i + 1].right);
    out.push_back({t1, before, cur});
  }
  return make_curve(std::move(out));
}

Curve convolution(const Curve& f, const Curve& g) {
  assert(time_eq(horizon(f), horizon(g)));
  std::vector<Knot> knots;
  for (Time t : result_grid(f, g, /*sums=*/true)) {
    const double v = convolve_at(f, g, t);
    knots.push_back({t, v, v});
  }
  return make_curve(std::move(knots));
}

Curve deconvolution(const Curve& f, const Curve& g) {
  assert(time_eq(horizon(f), horizon(g)));
  std::vector<Knot> knots;
  for (Time t : result_grid(f, g, /*sums=*/false)) {
    const double v = deconvolve_at(f, g, t);
    knots.push_back({t, v, v});
  }
  return make_curve(std::move(knots));
}

Curve service_transform(const Curve& availability, const Curve& workload,
                        Time lag) {
  assert(lag >= 0.0);
  // M(u) = max_{0<=s<=u}( A(s) - c(s^-) ); see transforms.cpp for the
  // semantics discussion. Same operator sequence as the production path.
  Curve m = running_max(sub(availability, workload));
  m = clamp_min(m, 0.0);
  if (lag > 0.0) m = shift_right(m, lag);
  Curve s = sub(availability, m);
  s = clamp_min(s, 0.0);
  if (lag > 0.0 && time_lt(lag, horizon(s))) {
    const double big =
        std::fabs(end_value(s)) + end_value(availability) + 1.0;
    s = min(s, make_curve({{0.0, 0.0, 0.0},
                           {lag, 0.0, big},
                           {horizon(s), big, big}}));
  }
  return s;
}

Curve step(Time horizon, const std::vector<Time>& jump_times,
           double step_height) {
  assert(horizon > 0.0);
  assert(std::is_sorted(jump_times.begin(), jump_times.end()));
  std::vector<Knot> knots;
  knots.reserve(jump_times.size() + 2);
  knots.push_back({0.0, 0.0, 0.0});
  double level = 0.0;
  for (Time t : jump_times) {
    if (time_gt(t, horizon)) break;
    const Time tt = std::max<Time>(t, 0.0);
    if (!knots.empty() && time_eq(knots.back().t, tt)) {
      level += step_height;
      knots.back().right = level;
    } else {
      const double before = level;
      level += step_height;
      knots.push_back({tt, before, level});
    }
  }
  if (!time_eq(knots.back().t, horizon)) {
    knots.push_back({horizon, level, level});
  }
  return make_curve(std::move(knots));
}

Curve constant(Time horizon, double value) {
  assert(horizon > 0.0);
  return make_curve({{0.0, value, value}, {horizon, value, value}});
}

}  // namespace rta::legacyref
