// Pointwise algebra on piecewise-linear curves.
//
// All binary operations require both operands to share the same horizon
// (asserted); analyzers construct every curve of a system on one common
// analysis horizon. Results are exact: min/max insert segment-crossing
// knots, so no operation loses information.
#pragma once

#include <vector>

#include "curve/pwl_curve.hpp"

namespace rta {

/// a + b.
[[nodiscard]] PwlCurve curve_add(const PwlCurve& a, const PwlCurve& b);

/// a - b (may be non-monotone).
[[nodiscard]] PwlCurve curve_sub(const PwlCurve& a, const PwlCurve& b);

/// Pointwise min(a, b).
[[nodiscard]] PwlCurve curve_min(const PwlCurve& a, const PwlCurve& b);

/// Pointwise max(a, b).
[[nodiscard]] PwlCurve curve_max(const PwlCurve& a, const PwlCurve& b);

/// factor * a.
[[nodiscard]] PwlCurve curve_scale(const PwlCurve& a, double factor);

/// a + value.
[[nodiscard]] PwlCurve curve_add_constant(const PwlCurve& a, double value);

/// max(a, floor_value) -- e.g. clamping intermediates to be nonnegative.
[[nodiscard]] PwlCurve curve_clamp_min(const PwlCurve& a, double floor_value);

/// g(t) = a(t - dt) for t >= dt, and a(0) for t < dt (dt >= 0). The horizon
/// is preserved; the tail of `a` beyond horizon - dt is discarded.
[[nodiscard]] PwlCurve curve_shift_right(const PwlCurve& a, Time dt);

/// Running maximum M(t) = max_{0 <= s <= t} a(s) (includes left limits, so a
/// downward jump does not lower M).
[[nodiscard]] PwlCurve curve_running_max(const PwlCurve& a);

/// Right running minimum R(t) = inf_{t <= s <= horizon} a(s): the sound
/// monotone tightening of an *upper* bound on a nondecreasing function.
/// Implemented by reflecting the curve and reusing curve_running_max.
/// Exact for continuous curves; at a jump of `a` the reflection additionally
/// admits the left limit, so restrict use to continuous curves (asserted).
[[nodiscard]] PwlCurve curve_right_running_min(const PwlCurve& a);

/// Sum of a set of curves (zero curve of `horizon` if the set is empty).
[[nodiscard]] PwlCurve curve_sum(const std::vector<PwlCurve>& curves,
                                 Time horizon);

/// Theorem 2 / Lemmas 1-2: counting curve f(t) = floor(S(t) / tau) as a unit
/// step curve. S must be nondecreasing; tau > 0. Uses a tolerant floor so a
/// service level epsilon below k*tau still counts k completions.
[[nodiscard]] PwlCurve curve_floor_div(const PwlCurve& s, double tau);

/// First instant t with a(t) >= y (value tolerance applied), or kTimeInfinity
/// if the level is never reached within the horizon. Works on non-monotone
/// curves (unlike pseudo_inverse); for nondecreasing curves it coincides with
/// pseudo_inverse.
[[nodiscard]] Time curve_first_crossing(const PwlCurve& a, double y);

/// Counting curve with a unit jump at the first instant a(t) >= k*tau, for
/// k = 1, 2, ...; the non-monotone-safe analogue of curve_floor_div, used to
/// turn *upper* service bounds into next-hop arrival-count upper bounds.
[[nodiscard]] PwlCurve curve_crossing_counts(const PwlCurve& a, double tau);

}  // namespace rta
