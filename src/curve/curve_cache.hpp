// Memoization layer for expensive curve operations.
//
// The fixed-point analyzers recompute the same min-plus products and
// pseudo-inverses on every refinement round; this cache keys them by the
// structural hash of the exact knot bits, which PwlCurve now caches at
// construction (keying is O(1)). Hits are verified with exact (bitwise)
// storage comparison -- shared-pointer equality, then the cached hashes,
// then memcmp of the flat arrays -- before a stored result is returned,
// so a hash collision degrades to a recomputation, never to a wrong answer:
// every value handed out is bit-identical to what the direct computation
// would produce. That property is what lets the cached engine pass the
// differential harness (tests/test_differential_engine.cpp) unchanged.
//
// Thread-safe: entries live in mutex-protected shards selected by hash, so
// the parallel engine's workers can share one cache. Each shard's maps are
// GUARDED_BY its mutex (util/thread_annotations.hpp); a Clang
// -Wthread-safety build proves every map access holds the right shard lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "curve/pwl_curve.hpp"
#include "util/thread_annotations.hpp"

namespace rta {

/// Exact (bitwise) knot-storage equality: the collision-fallback comparison.
/// Stricter than PwlCurve::approx_equal -- two curves are identical exactly
/// when recomputing any operation on them yields bit-identical results.
/// O(1) for curves sharing storage or with differing cached hashes.
[[nodiscard]] bool curves_identical(const PwlCurve& a, const PwlCurve& b);

/// Hit/miss accounting for one CurveCache.
struct CurveCacheStats {
  std::uint64_t conv_hits = 0;    ///< convolution / deconvolution hits
  std::uint64_t conv_misses = 0;  ///< convolution / deconvolution misses
  std::uint64_t pinv_hits = 0;    ///< pseudo-inverse hits (per level / y)
  std::uint64_t pinv_misses = 0;  ///< pseudo-inverse misses
  std::uint64_t collisions = 0;   ///< hash matched but operands differed
  std::uint64_t verifies = 0;     ///< knot-for-knot candidate comparisons

  [[nodiscard]] std::uint64_t hits() const { return conv_hits + pinv_hits; }
  [[nodiscard]] std::uint64_t misses() const {
    return conv_misses + pinv_misses;
  }
};

class CurveCache {
 public:
  CurveCache() = default;

  /// Testing hook: keys become structural_hash(c) & hash_mask, so a small
  /// mask forces collisions and exercises the exact-comparison fallback.
  explicit CurveCache(std::uint64_t hash_mask) : hash_mask_(hash_mask) {}

  CurveCache(const CurveCache&) = delete;
  CurveCache& operator=(const CurveCache&) = delete;

  /// Order-sensitive structural hash of the exact knot bits.
  [[nodiscard]] static std::uint64_t structural_hash(const PwlCurve& c);

  /// Memoized min_plus_convolution(f, g).
  [[nodiscard]] PwlCurve convolution(const PwlCurve& f, const PwlCurve& g);

  /// Memoized min_plus_deconvolution(f, g).
  [[nodiscard]] PwlCurve deconvolution(const PwlCurve& f, const PwlCurve& g);

  /// Pseudo-inverses of `c` at the integer levels 1..count (index m - 1
  /// holds c.pseudo_inverse(m)): the access pattern of the bounds engine
  /// (latest/earliest m-th arrivals, Eq. 12). The returned snapshot is
  /// immutable; later extensions of the table do not touch it.
  [[nodiscard]] std::shared_ptr<const std::vector<Time>> level_inverses(
      const PwlCurve& c, long long count);

  /// Memoized c.pseudo_inverse(y) for arbitrary levels.
  [[nodiscard]] Time pseudo_inverse(const PwlCurve& c, double y);

  [[nodiscard]] CurveCacheStats stats() const;

  /// Drop all entries (counters are kept).
  void clear();

 private:
  /// Memoized results of one binary operation on one operand pair. Operands
  /// are O(1) handles to the shared flat storage (collision fallback
  /// compares storage bitwise).
  struct BinaryEntry {
    PwlCurve f, g;  ///< exact operands, for collision fallback
    PwlCurve result;
  };
  /// Memoized pseudo-inverses of one curve.
  struct UnaryEntry {
    PwlCurve curve;  ///< exact operand, for collision fallback
    std::shared_ptr<const std::vector<Time>> levels;  ///< pinv(1..n)
    std::unordered_map<std::uint64_t, Time> at_y;     ///< pinv keyed by bits(y)
  };
  struct Shard {
    Mutex mutex;
    std::unordered_map<std::uint64_t, std::vector<BinaryEntry>> conv
        RTA_GUARDED_BY(mutex);
    std::unordered_map<std::uint64_t, std::vector<BinaryEntry>> deconv
        RTA_GUARDED_BY(mutex);
    std::unordered_map<std::uint64_t, std::vector<UnaryEntry>> unary
        RTA_GUARDED_BY(mutex);
  };
  static constexpr std::size_t kShardCount = 16;  // power of two

  [[nodiscard]] std::uint64_t key(const PwlCurve& c) const {
    return structural_hash(c) & hash_mask_;
  }
  [[nodiscard]] Shard& shard_for(std::uint64_t k) {
    return shards_[(k >> 4) % kShardCount];
  }

  /// Entry for `c` in the right shard, created on demand; counts a collision
  /// for every same-key entry holding a different curve.
  UnaryEntry& unary_entry(Shard& shard, std::uint64_t k, const PwlCurve& c)
      RTA_REQUIRES(shard.mutex);

  [[nodiscard]] PwlCurve binary_op(
      std::unordered_map<std::uint64_t, std::vector<BinaryEntry>> Shard::*map,
      const PwlCurve& f, const PwlCurve& g,
      PwlCurve (*compute)(const PwlCurve&, const PwlCurve&));

  std::uint64_t hash_mask_ = ~0ull;
  Shard shards_[kShardCount];
  std::atomic<std::uint64_t> conv_hits_{0}, conv_misses_{0};
  std::atomic<std::uint64_t> pinv_hits_{0}, pinv_misses_{0};
  std::atomic<std::uint64_t> collisions_{0}, verifies_{0};
};

}  // namespace rta
