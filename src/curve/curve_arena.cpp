#include "curve/curve_arena.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "util/rng.hpp"

namespace rta {

namespace {

std::uint64_t mix(std::uint64_t h, double v) {
  return splitmix64(h ^ std::bit_cast<std::uint64_t>(v));
}

/// Same formula (seed, knot order, per-field mix) the CurveCache historically
/// used, so cache keys are unchanged by the SoA rewrite.
std::uint64_t hash_knots(const double* t, const double* l, const double* r,
                         std::size_t n) {
  std::uint64_t h = 0x9E3779B97F4A7C15ull ^ n;
  for (std::size_t i = 0; i < n; ++i) {
    h = mix(h, t[i]);
    h = mix(h, l[i]);
    h = mix(h, r[i]);
  }
  return h;
}

}  // namespace

CurveData::CurveData(std::vector<double> buf, std::size_t n)
    : buf_(std::move(buf)),
      n_(n),
      hash_(hash_knots(times(), lefts(), rights(), n)) {
  assert(n_ >= 1);
  assert(buf_.size() == 3 * n_);
}

bool CurveData::identical(const CurveData& a, const CurveData& b) {
  if (&a == &b) return true;
  if (a.n_ != b.n_ || a.hash_ != b.hash_) return false;
  return std::memcmp(a.buf_.data(), b.buf_.data(),
                     3 * a.n_ * sizeof(double)) == 0;
}

const std::shared_ptr<const CurveData>& CurveData::zero_knot() {
  static const std::shared_ptr<const CurveData> instance =
      std::make_shared<const CurveData>(std::vector<double>{0.0, 0.0, 0.0},
                                        1);
  return instance;
}

std::shared_ptr<const CurveData> CurveArena::finalize() {
  assert(!t_.empty());
  if (t_.empty()) push(0.0, 0.0, 0.0);

  // Anchor the curve at t = 0 (legacy constructor step 1).
  if (!time_eq(t_.front(), 0.0)) {
    assert(t_.front() > 0.0);
    const double fl = l_.front();
    t_.insert(t_.begin(), 0.0);
    l_.insert(l_.begin(), fl);
    r_.insert(r_.begin(), fl);
  } else {
    t_.front() = 0.0;
  }

  // Merge knots whose abscissae coincide within tolerance: keep the first
  // left limit and the last right value (jumps compose). In-place compaction
  // (the write index never passes the read index).
  std::size_t w = 0;
  const std::size_t n = t_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (w > 0 && time_eq(t_[w - 1], t_[i])) {
      r_[w - 1] = r_[i];
    } else {
      assert(w == 0 || t_[i] > t_[w - 1]);
      t_[w] = t_[i];
      l_[w] = l_[i];
      r_[w] = r_[i];
      ++w;
    }
  }

  // Drop interior knots that are collinear and continuous: knot i is
  // redundant if left == right and it lies on the segment between the last
  // kept knot and its successor. Second in-place compaction pass.
  if (w > 2) {
    std::size_t s = 1;
    for (std::size_t i = 1; i + 1 < w; ++i) {
      const double cur_l = l_[i];
      const double cur_r = r_[i];
      if (std::fabs(cur_l - cur_r) <= kValueEps) {
        const double prev_t = t_[s - 1];
        const double prev_r = r_[s - 1];
        const double span = t_[i + 1] - prev_t;
        const double expect =
            prev_r + (l_[i + 1] - prev_r) * ((t_[i] - prev_t) / span);
        if (std::fabs(cur_r - expect) <= kValueEps) continue;  // redundant
      }
      t_[s] = t_[i];
      l_[s] = cur_l;
      r_[s] = cur_r;
      ++s;
    }
    t_[s] = t_[w - 1];
    l_[s] = l_[w - 1];
    r_[s] = r_[w - 1];
    w = s + 1;
  }

  // First knot: the left limit is meaningless; pin it to the value.
  l_[0] = r_[0];

  std::vector<double> buf(3 * w);
  std::memcpy(buf.data(), t_.data(), w * sizeof(double));
  std::memcpy(buf.data() + w, l_.data(), w * sizeof(double));
  std::memcpy(buf.data() + 2 * w, r_.data(), w * sizeof(double));
  clear();
  return std::make_shared<const CurveData>(std::move(buf), w);
}

CurveArena& tls_curve_arena() {
  thread_local CurveArena arena;
  return arena;
}

std::vector<Time>& tls_grid_scratch() {
  thread_local std::vector<Time> grid;
  return grid;
}

}  // namespace rta
