// Service-function transforms: the operator kernel behind Theorems 3, 5-9.
//
// All of the paper's service-function results instantiate one operator,
//
//   S(t) = min_{0 <= s <= t - lag} { A(t) - A(s) + c(s^-) }        (lag >= 0)
//        = A(t) - max_{0 <= s <= t - lag} ( A(s) - c(s^-) ),
//
// where A is an availability curve (processor time not consumed by
// higher-priority work) and c is a cumulative workload curve. The min is
// taken with *left limits* of c -- see DESIGN.md "Semantics note" for why the
// paper's right-continuous c would be vacuous at s = t.
//
//   * Theorem 3 (SPP, exact):    lag = 0, A = t - sum of hp service.
//   * Theorem 5 (SPNP, lower):   lag = b (blocking), A = B of Eq. 17.
//   * Theorem 6 (SPNP, upper):   lag = 0, A = B of Eq. 19.
//   * Theorem 7 (FCFS busy time): lag = 0, A = t, c = total workload G.
#pragma once

#include <vector>

#include "curve/algebra.hpp"
#include "curve/pwl_curve.hpp"

namespace rta {

/// The core operator: S(t) = min_{0<=s<=t-lag}{ A(t) - A(s) + c(s^-) } for
/// t > lag, and 0 for t <= lag. A must be nondecreasing with A(0) = 0;
/// c must be nondecreasing. The result is nondecreasing and nonnegative.
[[nodiscard]] PwlCurve service_transform(const PwlCurve& availability,
                                         const PwlCurve& workload,
                                         Time lag = 0.0);

/// Availability A(t) = t - sum of the given (service) curves, clamped to be
/// nonnegative and nondecreasing is NOT enforced here -- callers pass curves
/// whose summed slope never exceeds 1, which keeps A nondecreasing. Asserted.
[[nodiscard]] PwlCurve availability_minus(Time horizon,
                                          const std::vector<PwlCurve>& consumed);

/// Monotone tightening of a *lower* bound on a nondecreasing function:
/// sup_{s<=t} lb(s) is still a lower bound and is nondecreasing.
[[nodiscard]] PwlCurve tighten_lower_bound(const PwlCurve& lb);

}  // namespace rta
