#include "curve/arrival.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rta {

ArrivalSequence::ArrivalSequence(std::vector<Time> releases)
    : releases_(std::move(releases)) {
  assert(std::is_sorted(releases_.begin(), releases_.end()));
  assert(releases_.empty() || releases_.front() >= 0.0);
}

ArrivalSequence ArrivalSequence::periodic(Time period, Time window,
                                          Time offset) {
  assert(period > 0.0);
  std::vector<Time> rel;
  for (Time t = offset; time_le(t, window); t += period) rel.push_back(t);
  return ArrivalSequence(std::move(rel));
}

ArrivalSequence ArrivalSequence::bursty_eq27(double x, Time window) {
  assert(x > 0.0 && x < 1.0);
  std::vector<Time> rel;
  for (std::size_t m = 1;; ++m) {
    const double dm = static_cast<double>(m - 1);
    const Time t = std::sqrt(x * x + dm * dm) / x - 1.0;
    if (time_gt(t, window)) break;
    rel.push_back(clamp_nonnegative(t));
  }
  return ArrivalSequence(std::move(rel));
}

ArrivalSequence ArrivalSequence::jittered_periodic(Time period, Time jitter,
                                                   Time window, Rng& rng) {
  assert(period > 0.0);
  assert(jitter >= 0.0);
  std::vector<Time> rel;
  for (Time base = 0.0; time_le(base, window); base += period) {
    rel.push_back(base + (jitter > 0.0 ? rng.uniform(0.0, jitter) : 0.0));
  }
  std::sort(rel.begin(), rel.end());
  while (!rel.empty() && time_gt(rel.back(), window + jitter)) rel.pop_back();
  return ArrivalSequence(std::move(rel));
}

ArrivalSequence ArrivalSequence::burst_then_periodic(std::size_t burst,
                                                     Time min_gap, Time period,
                                                     Time window) {
  assert(min_gap > 0.0);
  assert(period >= min_gap);
  std::vector<Time> rel;
  Time t = 0.0;
  for (std::size_t i = 0; i < burst && time_le(t, window); ++i) {
    rel.push_back(t);
    t += min_gap;
  }
  // Steady phase: one period after the last burst release, so the head
  // burst is exactly `burst` arrivals (conforming to a leaky bucket with
  // that burst size and rate 1/period).
  if (!rel.empty()) {
    for (Time next = rel.back() + period; time_le(next, window);
         next += period) {
      rel.push_back(next);
    }
  }
  return ArrivalSequence(std::move(rel));
}

ArrivalSequence ArrivalSequence::poisson(double rate, Time window, Rng& rng) {
  assert(rate > 0.0);
  std::vector<Time> rel;
  for (Time t = rng.exponential(1.0 / rate); time_le(t, window);
       t += rng.exponential(1.0 / rate)) {
    rel.push_back(t);
  }
  return ArrivalSequence(std::move(rel));
}

Time ArrivalSequence::min_inter_arrival() const {
  if (releases_.size() < 2) return kTimeInfinity;
  Time best = kTimeInfinity;
  for (std::size_t i = 1; i < releases_.size(); ++i) {
    best = std::min(best, releases_[i] - releases_[i - 1]);
  }
  return best;
}

PwlCurve ArrivalSequence::to_curve(Time horizon) const {
  return PwlCurve::step(horizon, releases_);
}

}  // namespace rta
