#include "curve/kernel_hooks.hpp"

namespace rta::curve {

namespace detail {
thread_local KernelHooks* tl_kernel_hooks = nullptr;
}  // namespace detail

}  // namespace rta::curve
