// Thread-local instrumentation hook interface for the curve kernels.
//
// The min-plus and pointwise-algebra kernels are the innermost hot paths of
// the analysis; threading an observer through their free-function signatures
// would be invasive, and unconditional counters would tax the (default)
// unobserved runs. Instead the kernels consult one thread-local pointer:
//
//   if (curve::KernelHooks* h = curve::kernel_hooks()) h->on_pinv();
//
// The interface lives in the curve layer so the kernels depend on nothing
// above them; the metrics-backed implementation (obs::KernelSink) lives in
// the obs layer and is installed around each unit of work via
// KernelHooksScope, so pool workers and the calling thread are all covered.
// With no observer configured the pointer stays null and the kernels pay one
// thread-local load and branch -- no atomics, no virtual dispatch (the
// "zero-cost when disabled" contract; the <= 2% ceiling is checked against
// bench/micro_analysis).
#pragma once

#include <cstddef>

namespace rta::curve {

/// Events the kernels report. Implementations must be cheap and reentrant:
/// calls can arrive from any pool worker the scope was installed on.
class KernelHooks {
 public:
  virtual ~KernelHooks() = default;

  /// A min-plus convolution started; `operand_knots` is |f| + |g|.
  virtual void on_conv(std::size_t operand_knots) = 0;
  /// A min-plus deconvolution started; `operand_knots` is |f| + |g|.
  virtual void on_deconv(std::size_t operand_knots) = 0;
  /// A (de)convolution finished with `result_knots` knots.
  virtual void on_conv_result(std::size_t result_knots) = 0;
  /// A pointwise merge (curve_min/max/add/sub) produced `result_knots` knots.
  virtual void on_pointwise(std::size_t result_knots) = 0;
  /// A PwlCurve::pseudo_inverse evaluation ran.
  virtual void on_pinv() = 0;
};

namespace detail {
extern thread_local KernelHooks* tl_kernel_hooks;
}  // namespace detail

/// The calling thread's hooks, or null when kernel instrumentation is off.
[[nodiscard]] inline KernelHooks* kernel_hooks() {
  return detail::tl_kernel_hooks;
}

/// Installs `hooks` (may be null) for the scope's lifetime, restoring the
/// previous hooks on exit; nests correctly with inline/recursive execution.
class KernelHooksScope {
 public:
  explicit KernelHooksScope(KernelHooks* hooks)
      : prev_(detail::tl_kernel_hooks) {
    detail::tl_kernel_hooks = hooks;
  }
  ~KernelHooksScope() { detail::tl_kernel_hooks = prev_; }

  KernelHooksScope(const KernelHooksScope&) = delete;
  KernelHooksScope& operator=(const KernelHooksScope&) = delete;

 private:
  KernelHooks* prev_;
};

}  // namespace rta::curve
