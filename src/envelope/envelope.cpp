#include "envelope/envelope.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "curve/algebra.hpp"

namespace rta {

ArrivalEnvelope::ArrivalEnvelope(PwlCurve curve, double tail_rate)
    : curve_(std::move(curve)), tail_rate_(tail_rate) {
  assert(curve_.is_nondecreasing());
  assert(tail_rate_ >= 0.0);
}

ArrivalEnvelope ArrivalEnvelope::leaky_bucket(double burst, double rate,
                                              Time span) {
  assert(burst >= 0.0);
  assert(rate >= 0.0);
  const double end = burst + rate * span;
  return ArrivalEnvelope(PwlCurve({{0.0, burst, burst}, {span, end, end}}),
                         rate);
}

ArrivalEnvelope ArrivalEnvelope::periodic(Time period, Time span,
                                          Time jitter) {
  assert(period > 0.0);
  assert(jitter >= 0.0);
  // alpha(delta) = ceil((delta + jitter)/period), with alpha(0) >= 1 (a
  // window containing one release). Jump k -> k+1 at delta = k*period -
  // jitter (for positive abscissae).
  std::vector<Time> jumps;
  const long long base = tolerant_ceil(jitter / period);  // alpha(0)
  for (long long k = base;; ++k) {
    const Time at = static_cast<double>(k) * period - jitter;
    if (time_gt(at, span)) break;
    if (at <= 0.0) continue;
    jumps.push_back(at);
  }
  PwlCurve steps = PwlCurve::step(span, jumps);
  // Lift by the window-of-zero-length count max(1, ceil(jitter/period)).
  const double floor_count =
      std::max<double>(1.0, static_cast<double>(base));
  return ArrivalEnvelope(curve_add_constant(steps, floor_count),
                         1.0 / period);
}

ArrivalEnvelope ArrivalEnvelope::from_trace(const ArrivalSequence& trace,
                                            Time span) {
  const auto& rel = trace.releases();
  if (rel.empty()) {
    return ArrivalEnvelope(PwlCurve::zero(std::max<Time>(span, 1.0)), 0.0);
  }
  // Candidate window lengths: a_j - a_i (window starting at an arrival).
  // alpha(delta) = max over i of #{j >= i : a_j <= a_i + delta}; as a
  // function of delta this is a staircase whose jumps lie at the pairwise
  // differences. Collect (difference, count) maxima.
  const std::size_t n = rel.size();
  // max_count[d] built as: for each pair (i, j), window length a_j - a_i
  // admits count j - i + 1. The envelope at delta is the max count over
  // pairs with difference <= delta. Equivalently: for each count c, the
  // minimal difference achieving it: gap(c) = min_i (a_{i+c-1} - a_i).
  std::vector<Time> jumps;  // jump to count c happens at gap(c)
  for (std::size_t c = 2; c <= n; ++c) {
    Time best = kTimeInfinity;
    for (std::size_t i = 0; i + c - 1 < n; ++i) {
      best = std::min(best, rel[i + c - 1] - rel[i]);
    }
    if (time_gt(best, span)) break;
    jumps.push_back(clamp_nonnegative(best));
  }
  // jumps is nondecreasing by construction (gap(c) grows with c).
  PwlCurve steps = PwlCurve::step(span, jumps);
  PwlCurve curve = curve_add_constant(steps, 1.0);  // alpha(0) = 1 (or more)
  // Tail: densest observed long-run rate, conservatively the max over
  // suffix counts of (c - 1) / gap(c); fall back to 1/min-gap for pairs.
  double rate = 0.0;
  for (std::size_t c = 2; c <= n; ++c) {
    Time best = kTimeInfinity;
    for (std::size_t i = 0; i + c - 1 < n; ++i) {
      best = std::min(best, rel[i + c - 1] - rel[i]);
    }
    if (best > 0.0 && std::isfinite(best)) {
      rate = std::max(rate, static_cast<double>(c - 1) / best);
    }
  }
  return ArrivalEnvelope(std::move(curve), rate);
}

double ArrivalEnvelope::eval(Time delta) const {
  if (delta <= 0.0) return curve_.eval(0.0);
  if (time_le(delta, span())) return curve_.eval(delta);
  return curve_.end_value() + tail_rate_ * (delta - span());
}

PwlCurve ArrivalEnvelope::workload(double exec_time) const {
  return curve_scale(curve_, exec_time);
}

bool ArrivalEnvelope::dominated_by(const ArrivalEnvelope& other) const {
  const Time common = std::min(span(), other.span());
  // Rebuild both on the common span and compare exactly via curve_max
  // (which inserts segment crossings): a <= b iff max(a, b) == b.
  auto restrict = [&](const ArrivalEnvelope& e) {
    const CurveView v = e.curve().view();
    std::vector<Knot> ks;
    for (std::size_t i = 0; i < v.n; ++i) {
      if (time_gt(v.t[i], common)) break;
      ks.push_back({v.t[i], v.l[i], v.r[i]});
    }
    if (ks.empty() || !time_eq(ks.back().t, common)) {
      ks.push_back({common, e.curve().eval_left(common), e.eval(common)});
    }
    return PwlCurve(std::move(ks));
  };
  const PwlCurve a = restrict(*this);
  const PwlCurve b = restrict(other);
  if (!curve_max(a, b).approx_equal(b)) return false;
  return tail_rate_ <= other.rate() + kValueEps;
}

bool ArrivalEnvelope::admits(const ArrivalSequence& trace) const {
  const auto& rel = trace.releases();
  for (std::size_t i = 0; i < rel.size(); ++i) {
    for (std::size_t j = i; j < rel.size(); ++j) {
      const Time delta = rel[j] - rel[i];
      const double count = static_cast<double>(j - i + 1);
      if (count > eval(delta) + kValueEps) return false;
    }
  }
  return true;
}

ArrivalEnvelope ArrivalEnvelope::with_jitter(Time extra_jitter) const {
  assert(extra_jitter >= 0.0);
  if (time_eq(extra_jitter, 0.0)) return *this;
  // alpha'(delta) = alpha(delta + J): shift the curve left and extend with
  // the tail.
  std::vector<Knot> knots;
  const Time s = span();
  knots.push_back({0.0, eval(extra_jitter), eval(extra_jitter)});
  const CurveView v = curve_.view();
  for (std::size_t i = 0; i < v.n; ++i) {
    const Time t = v.t[i] - extra_jitter;
    if (t <= 0.0) continue;
    if (time_gt(t, s)) break;
    knots.push_back({t, v.l[i], v.r[i]});
  }
  if (knots.back().t < s) {
    const double end = eval(s + extra_jitter);
    knots.push_back({s, end, end});
  }
  return ArrivalEnvelope(PwlCurve(std::move(knots)), tail_rate_);
}

}  // namespace rta
