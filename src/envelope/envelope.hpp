// Interval-domain arrival envelopes (arrival curves in the sense of Cruz
// [20,21], the calculus the paper builds on).
//
// An envelope alpha upper-bounds the arrivals of a subjob in ANY time window
// by its length: f_arr(t + delta) - f_arr(t) <= alpha(delta). Envelope-based
// analysis is therefore *trace-independent*: a bound derived from alpha
// holds for every release trace conforming to it -- the strongest reading of
// the paper's "arbitrary job arrival patterns".
//
// Envelopes are represented by a piecewise-linear curve on [0, span] plus a
// long-run tail rate for window lengths beyond the span.
#pragma once

#include <cstddef>

#include "curve/arrival.hpp"
#include "curve/pwl_curve.hpp"
#include "util/time.hpp"

namespace rta {

class ArrivalEnvelope {
 public:
  /// Envelope from an explicit curve (nondecreasing, counts) and tail rate
  /// (arrivals per time unit for windows beyond the curve's horizon).
  ArrivalEnvelope(PwlCurve curve, double tail_rate);

  /// Leaky bucket: alpha(delta) = burst + rate * delta (delta > 0), and
  /// alpha(0) = burst (a batch of `burst` simultaneous releases is allowed).
  static ArrivalEnvelope leaky_bucket(double burst, double rate, Time span);

  /// Periodic with release jitter: alpha(delta) = ceil((delta + jitter) /
  /// period), the classical staircase (jitter = 0 gives plain periodic).
  static ArrivalEnvelope periodic(Time period, Time span, Time jitter = 0.0);

  /// Tightest staircase envelope of a finite trace: alpha(delta) =
  /// max_i #{ j : a_i <= a_j <= a_i + delta }. O(n^2) in the release count.
  /// The tail rate is the densest long-run rate observed. Note: this bounds
  /// the given trace only; use a model envelope for trace-independent
  /// guarantees.
  static ArrivalEnvelope from_trace(const ArrivalSequence& trace, Time span);

  /// alpha(delta); linear tail extension beyond the span.
  [[nodiscard]] double eval(Time delta) const;

  /// Long-run arrival rate (the tail slope).
  [[nodiscard]] double rate() const { return tail_rate_; }

  /// Maximum batch size alpha(0).
  [[nodiscard]] double burst() const { return curve_.eval(0.0); }

  [[nodiscard]] Time span() const { return curve_.horizon(); }
  [[nodiscard]] const PwlCurve& curve() const { return curve_; }

  /// Workload envelope alpha(delta) * tau as a curve on [0, span].
  [[nodiscard]] PwlCurve workload(double exec_time) const;

  /// True if this envelope is everywhere <= other (tighter or equal), over
  /// the common span and tails.
  [[nodiscard]] bool dominated_by(const ArrivalEnvelope& other) const;

  /// True if `trace` conforms to this envelope (every window within the
  /// trace respects alpha).
  [[nodiscard]] bool admits(const ArrivalSequence& trace) const;

  /// Envelope for the next hop after a stage with worst-case local delay d
  /// and best-case delay bc: releases shift by [bc, d], so
  /// alpha'(delta) = alpha(delta + (d - bc)) -- classical jitter
  /// propagation. Returns an envelope with the same span.
  [[nodiscard]] ArrivalEnvelope with_jitter(Time extra_jitter) const;

 private:
  PwlCurve curve_;
  double tail_rate_ = 0.0;
};

}  // namespace rta
