#include "envelope/envelope_analysis.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "analysis/order.hpp"
#include "curve/algebra.hpp"

namespace rta {

namespace {

/// Slope of the final segment of a curve (its tail behavior).
double end_slope(const PwlCurve& c) {
  const CurveView v = c.view();
  if (v.n < 2) return 0.0;
  return (v.l[v.n - 1] - v.r[v.n - 2]) / (v.t[v.n - 1] - v.t[v.n - 2]);
}

/// Workload envelope alpha(D) * tau materialized on [0, full_span]: the
/// envelope's curve up to its span, then its tail rate -- keeping the true
/// long-run slope visible to the stability check in horizontal_deviation.
PwlCurve workload_on(const ArrivalEnvelope& env, double tau, Time full_span) {
  std::vector<Knot> knots;
  const CurveView v = env.curve().view();
  for (std::size_t i = 0; i < v.n; ++i) {
    if (time_gt(v.t[i], full_span)) break;
    knots.push_back({v.t[i], v.l[i] * tau, v.r[i] * tau});
  }
  if (knots.empty()) knots.push_back({0.0, 0.0, 0.0});
  if (!time_eq(knots.back().t, full_span)) {
    const double end = env.eval(full_span) * tau;
    knots.push_back({full_span, end, end});
  }
  return PwlCurve(std::move(knots));
}

}  // namespace

Time horizontal_deviation(const PwlCurve& alpha_workload, const PwlCurve& beta,
                          Time cap) {
  // Tail stability: if the demand's long-run slope strictly exceeds the
  // service slope the deviation grows without bound. (Equal slopes keep it
  // constant past the horizon, so the endpoint candidates below cover it.)
  if (alpha_workload.end_value() > kValueEps &&
      end_slope(alpha_workload) > end_slope(beta) + 1e-12) {
    return kTimeInfinity;
  }

  // Candidate window lengths: knots of the demand curve and the preimages of
  // the service curve's knot values (kinks of beta^{-1} compose in).
  std::vector<Time> candidates;
  candidates.push_back(0.0);
  const CurveView av = alpha_workload.view();
  for (std::size_t i = 0; i < av.n; ++i) candidates.push_back(av.t[i]);
  const CurveView bv = beta.view();
  for (std::size_t i = 0; i < bv.n; ++i) {
    const Time d = curve_first_crossing(alpha_workload, bv.r[i]);
    if (std::isfinite(d)) candidates.push_back(d);
  }

  Time worst = 0.0;
  for (Time d : candidates) {
    if (time_gt(d, alpha_workload.horizon())) continue;
    const double demand = alpha_workload.eval(d);
    if (demand <= kValueEps) continue;
    const Time completion = curve_first_crossing(beta, demand);
    if (std::isinf(completion)) return kTimeInfinity;
    worst = std::max(worst, completion - d);
    if (worst > cap) return kTimeInfinity;
  }
  return worst;
}

EnvelopeResult EnvelopeAnalyzer::analyze(
    const System& system, const std::vector<ArrivalEnvelope>& envelopes) const {
  EnvelopeResult result;
  if (static_cast<int>(envelopes.size()) != system.job_count()) {
    result.error = "need exactly one envelope per job";
    return result;
  }
  const auto problems = system.validate();
  if (!problems.empty()) {
    result.error = "invalid system: " + problems.front();
    return result;
  }
  const auto order_opt = topological_order(system);
  if (!order_opt) {
    result.error = "cyclic dependency graph; envelope analysis requires an "
                   "acyclic system";
    return result;
  }

  Time span = config_.span;
  if (span <= 0.0) {
    for (const ArrivalEnvelope& e : envelopes) {
      span = std::max(span, e.span());
    }
    span = std::max<Time>(span, 1.0);
  }
  const Time cap = config_.divergence_factor * span;
  const Time beta_span = span + cap;

  // Per-subjob envelope at its hop (jitter-propagated along the chain).
  std::map<std::pair<int, int>, std::optional<ArrivalEnvelope>> hop_env;
  std::map<std::pair<int, int>, Time> local_bound;
  for (int k = 0; k < system.job_count(); ++k) {
    hop_env[{k, 0}] = envelopes[k];
  }

  auto subjob_envelope =
      [&](SubjobRef r) -> const std::optional<ArrivalEnvelope>& {
    return hop_env.at({r.job, r.hop});
  };

  for (const SubjobRef& ref : *order_opt) {
    if (local_bound.count({ref.job, ref.hop})) continue;
    const Subjob& sj = system.subjob(ref);
    const int p = sj.processor;

    if (system.scheduler(p) == SchedulerKind::kFcfs) {
      // Aggregate FIFO: one delay bound for every subjob on the processor.
      PwlCurve aggregate = PwlCurve::zero(beta_span);
      bool unknown = false;
      for (const SubjobRef& r : system.subjobs_on(p)) {
        const auto& env = subjob_envelope(r);
        if (!env) {
          unknown = true;
          break;
        }
        aggregate = curve_add(
            aggregate,
            workload_on(*env, system.subjob(r).exec_time, beta_span));
      }
      const Time d =
          unknown ? kTimeInfinity
                  : horizontal_deviation(aggregate,
                                         PwlCurve::identity(beta_span), cap);
      for (const SubjobRef& r : system.subjobs_on(p)) {
        if (local_bound.count({r.job, r.hop})) continue;
        if (!subjob_envelope(r)) continue;  // predecessor diverged
        local_bound[{r.job, r.hop}] = d;
        const int next = r.hop + 1;
        if (next < static_cast<int>(system.job(r.job).chain.size())) {
          const double tau = system.subjob(r).exec_time;
          hop_env[{r.job, next}] =
              std::isinf(d) ? std::nullopt
                            : std::make_optional(subjob_envelope(r)->with_jitter(
                                  std::max<Time>(0.0, d - tau)));
        }
      }
      continue;
    }

    // Static priority (SPP: b = 0; SPNP: Eq. 15 blocking).
    const auto& env = subjob_envelope(ref);
    Time d = kTimeInfinity;
    if (env) {
      const bool preemptive = system.scheduler(p) == SchedulerKind::kSpp;
      const double b = preemptive ? 0.0 : system.blocking_time(ref);
      PwlCurve interference = PwlCurve::zero(beta_span);
      bool unknown = false;
      for (const SubjobRef& hp :
           system.higher_priority_on(p, sj.priority)) {
        const auto& hp_env = subjob_envelope(hp);
        if (!hp_env) {
          unknown = true;
          break;
        }
        interference = curve_add(
            interference,
            workload_on(*hp_env, system.subjob(hp).exec_time, beta_span));
      }
      if (!unknown) {
        PwlCurve beta = curve_sub(PwlCurve::identity(beta_span), interference);
        if (b > 0.0) beta = curve_add_constant(beta, -b);
        // A strict service curve may be replaced by its running max: any
        // window of length D contains every shorter window, so the max over
        // shorter lengths is also guaranteed.
        beta = curve_running_max(curve_clamp_min(beta, 0.0));
        d = horizontal_deviation(workload_on(*env, sj.exec_time, beta_span),
                                 beta, cap);
      }
    }
    local_bound[{ref.job, ref.hop}] = d;
    const int next = ref.hop + 1;
    if (next < static_cast<int>(system.job(ref.job).chain.size())) {
      hop_env[{ref.job, next}] =
          (env && std::isfinite(d))
              ? std::make_optional(
                    env->with_jitter(std::max<Time>(0.0, d - sj.exec_time)))
              : std::nullopt;
    }
  }

  result.ok = true;
  result.jobs.resize(system.job_count());
  for (int k = 0; k < system.job_count(); ++k) {
    EnvelopeJobReport& report = result.jobs[k];
    Time total = 0.0;
    for (int h = 0; h < static_cast<int>(system.job(k).chain.size()); ++h) {
      const Time d = local_bound.at({k, h});
      report.hop_bounds.push_back(d);
      total += d;
    }
    report.wcrt = total;
    report.schedulable =
        std::isfinite(total) && time_le(total, system.job(k).deadline);
  }
  return result;
}

EnvelopeResult EnvelopeAnalyzer::analyze_from_traces(
    const System& system) const {
  std::vector<ArrivalEnvelope> envelopes;
  Time span = config_.span;
  if (span <= 0.0) span = std::max<Time>(system.last_release(), 1.0);
  envelopes.reserve(system.job_count());
  for (int k = 0; k < system.job_count(); ++k) {
    envelopes.push_back(
        ArrivalEnvelope::from_trace(system.job(k).arrivals, span));
  }
  return analyze(system, envelopes);
}

}  // namespace rta
