// Trace-independent end-to-end analysis from arrival envelopes.
//
// Where §4 of the paper analyzes one concrete release trace, this module
// derives bounds that hold for EVERY trace conforming to per-job arrival
// envelopes (curve/envelope.hpp) -- the interval-domain counterpart built on
// the same Cruz-style calculus the paper cites [20, 21]:
//
//   * each subjob on a priority processor receives the strict service curve
//       beta(D) = max(0, D - b - sum_hp alpha_hp(D) * tau_hp),
//     where b is the Eq. 15 blocking (0 under SPP) and alpha_hp are the
//     higher-priority subjobs' envelopes at this hop;
//   * a FCFS processor serves the aggregate FIFO, so every subjob on it sees
//       beta(D) = D   against   the aggregate workload sum_i alpha_i tau_i;
//   * the local response bound is the horizontal deviation
//       d = sup_{D >= 0} ( beta^{-1}( alpha(D) tau ) - D ),
//     infinite when the long-run rates leave no slack;
//   * hop j's delay jitter (d_j - tau_j) widens the next hop's envelope:
//       alpha_{j+1}(D) = alpha_j(D + d_j - tau_j)   (classical propagation);
//   * end-to-end: d_k = sum_j d_{k,j}, as in Theorem 4.
//
// Results are generally looser than the finite-trace analysis (they cover
// all conforming traces, including adversarial phasings), and must dominate
// it on any conforming trace -- a property the tests check against both the
// trace analyzers and the simulator.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "envelope/envelope.hpp"
#include "model/system.hpp"

namespace rta {

/// Per-job result of the envelope analysis.
struct EnvelopeJobReport {
  Time wcrt = 0.0;  ///< end-to-end bound over all conforming traces
  bool schedulable = false;
  std::vector<Time> hop_bounds;  ///< local d_{k,j}
};

struct EnvelopeResult {
  bool ok = false;
  std::string error;
  std::vector<EnvelopeJobReport> jobs;

  [[nodiscard]] bool all_schedulable() const {
    if (!ok) return false;
    for (const auto& j : jobs) {
      if (!j.schedulable) return false;
    }
    return true;
  }
};

/// Configuration for the envelope analysis.
struct EnvelopeConfig {
  /// Interval span the curves are evaluated on; 0 picks automatically from
  /// the envelopes' spans.
  Time span = 0.0;
  /// Local bounds above this many spans are reported as infinity.
  double divergence_factor = 4.0;
};

class EnvelopeAnalyzer {
 public:
  explicit EnvelopeAnalyzer(EnvelopeConfig config = {}) : config_(config) {}

  /// Analyze `system` with one arrival envelope per job (for its first
  /// hop), in job order. Requires an acyclic dependency graph.
  [[nodiscard]] EnvelopeResult analyze(
      const System& system, const std::vector<ArrivalEnvelope>& envelopes) const;

  /// Convenience: derive each job's envelope empirically from its release
  /// trace (ArrivalEnvelope::from_trace) and analyze.
  [[nodiscard]] EnvelopeResult analyze_from_traces(const System& system) const;

  [[nodiscard]] static const char* name() { return "Envelope"; }

 private:
  EnvelopeConfig config_;
};

/// Horizontal deviation sup_D ( beta^{-1}(alpha_workload(D)) - D ), the
/// classical delay bound; `alpha_workload` and `beta` share a span.
/// Returns kTimeInfinity when the deviation exceeds `cap`.
[[nodiscard]] Time horizontal_deviation(const PwlCurve& alpha_workload,
                                        const PwlCurve& beta, Time cap);

}  // namespace rta
