// Span-based tracer with Chrome trace_event JSON export.
//
// The engine opens a Span around each phase / wavefront unit / refinement
// round; spans nest per thread (RAII), so every thread's event stream is a
// properly bracketed sequence of 'B'/'E' duration events plus 'i' instants.
// Events land in per-thread buffers (one uncontended mutex each -- spans are
// coarse-grained, so a lock per event is cheap), and to_chrome_json() merges
// the buffers into a file that chrome://tracing and Perfetto open directly.
//
// Timestamps are microseconds since the tracer's construction, from
// std::chrono::steady_clock, nudged so that successive events of one thread
// are strictly increasing (scripts/check_trace.py enforces this).
//
// A Span is movable but must begin and end on the same thread (it captures
// its thread's buffer). All Span/instant entry points accept a null tracer
// via the *_if helpers and become no-ops, which is how the engine stays
// zero-cost when no sink is configured.
//
// Locking protocol (annotated in trace.cpp, proved by -Wthread-safety on
// Clang): each ThreadBuf's timestamp/event state is guarded by its own
// mutex; the buffer registry and tid counter are guarded by the tracer's
// mutex. A ThreadBuf's tid is written once at creation and immutable after.
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace rta::obs {

/// One exported trace event (a subset of the Chrome trace_event model).
struct TraceEvent {
  std::string name;
  char phase = 'i';   ///< 'B' begin, 'E' end, 'i' instant
  double ts_us = 0.0; ///< microseconds since tracer construction
  int tid = 0;
  std::string args;   ///< preformatted JSON object text, "" for none
};

class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// RAII duration event. Default-constructed spans are inert.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { swap(other); }
    Span& operator=(Span&& other) noexcept {
      finish();
      swap(other);
      return *this;
    }
    ~Span() { finish(); }

    /// Attach args JSON (e.g. "{\"rounds\": 3}") to the closing event --
    /// for values only known when the span ends.
    void annotate(std::string args_json) { end_args_ = std::move(args_json); }

    /// Emit the 'E' event now (idempotent).
    void finish();

   private:
    friend class Tracer;
    Span(Tracer* tracer, void* buf, std::string name)
        : tracer_(tracer), buf_(buf), name_(std::move(name)) {}
    void swap(Span& other) noexcept {
      std::swap(tracer_, other.tracer_);
      std::swap(buf_, other.buf_);
      std::swap(name_, other.name_);
      std::swap(end_args_, other.end_args_);
    }

    Tracer* tracer_ = nullptr;
    void* buf_ = nullptr;  ///< ThreadBuf* of the opening thread
    std::string name_;
    std::string end_args_;
  };

  /// Open a span on the calling thread ('B' emitted immediately).
  [[nodiscard]] Span span(std::string name, std::string args_json = {});

  /// Point event on the calling thread.
  void instant(std::string name, std::string args_json = {});

  /// Null-safe helpers: the disabled path costs one branch.
  [[nodiscard]] static Span span_if(Tracer* tracer, std::string name,
                                    std::string args_json = {}) {
    return tracer != nullptr ? tracer->span(std::move(name),
                                            std::move(args_json))
                             : Span();
  }
  static void instant_if(Tracer* tracer, std::string name,
                         std::string args_json = {}) {
    if (tracer != nullptr) tracer->instant(std::move(name),
                                           std::move(args_json));
  }

  /// Microseconds since construction (the spans' clock).
  [[nodiscard]] double now_us() const;

  /// Every recorded event, grouped by tid, in per-thread order (for tests).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  [[nodiscard]] std::string to_chrome_json() const;

  /// Structured JSONL event log: one {"ts_us", "tid", "ph", "name"[, "args"]}
  /// object per line, in the same per-thread order as events(). Meant for
  /// line-oriented tooling (grep, jq) where the Chrome format's enclosing
  /// array gets in the way.
  [[nodiscard]] std::string to_jsonl() const;

 private:
  struct Impl;
  void emit(char phase, void* buf, const std::string& name,
            const std::string& args);
  [[nodiscard]] void* local_buf();

  std::chrono::steady_clock::time_point t0_;
  Impl* impl_;
};

}  // namespace rta::obs
