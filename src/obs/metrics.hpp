// Lock-cheap metrics registry: counters, gauges, and fixed-bucket
// histograms for the analysis engine's instrumentation layer.
//
// Hot-path design: counters and histograms write to per-thread shards (one
// slab of relaxed atomics per thread per registry), so concurrent writers
// never contend; snapshot() aggregates the slabs under the registry mutex.
// Gauges are registry-level cells (they are only touched on cold paths:
// once per refinement round, once per analyze() call). Registration interns
// names under the mutex and is idempotent, so call sites can re-resolve
// handles freely; the handles themselves are trivially copyable and their
// operations are wait-free apart from a slab's one-time creation.
//
// Zero-cost contract: nothing in this file runs unless a call site holds a
// handle into a live registry. The engine guards every instrumentation
// site on its configured sink (see obs/observer.hpp and
// obs/kernel_sink.hpp), so an unobserved analysis performs no atomic
// operations on behalf of this layer.
//
// Naming convention (relied on by tests and docs/observability.md): metrics
// whose value is derived from wall-clock time end in "_us" (microseconds)
// or "_ns"; every other metric is deterministic for a fixed system at
// threads = 1.
//
// Locking protocol (annotated in metrics.cpp, proved by -Wthread-safety on
// Clang): registration tables, gauge cells' ownership, and slab structure
// are guarded by the registry mutex; slab cells themselves are relaxed
// atomics published through each slab's `ready` counter, which is why the
// hot path takes no lock.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rta::obs {

class MetricsRegistry;

/// Monotone event count. Copyable handle; inert when default-constructed.
class Counter {
 public:
  Counter() = default;

  /// True when resolved from a registry: add/inc land in that registry.
  /// Default-constructed handles are inert (every write is dropped) -- call
  /// sites that must not lose data can assert on this.
  [[nodiscard]] bool bound() const { return registry_ != nullptr; }

  void add(std::uint64_t n = 1) const;
  void inc() const { add(1); }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}

  MetricsRegistry* registry_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Last-write-wins value with an optional high-water-mark style of use.
class Gauge {
 public:
  Gauge() = default;

  /// True when resolved from a registry (see Counter::bound).
  [[nodiscard]] bool bound() const { return cell_ != nullptr; }

  void set(double v) const;         ///< last write wins
  void record_max(double v) const;  ///< keep the maximum seen

 private:
  friend class MetricsRegistry;
  explicit Gauge(void* cell) : cell_(cell) {}
  void* cell_ = nullptr;  ///< GaugeCell*, stable for the registry lifetime
};

/// Fixed-bucket histogram: counts per bucket plus count/sum/max.
class Histogram {
 public:
  Histogram() = default;

  /// True when resolved from a registry (see Counter::bound).
  [[nodiscard]] bool bound() const { return registry_ != nullptr; }

  void observe(double v) const;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, std::uint32_t first_slot,
            const std::vector<double>* bounds)
      : registry_(registry), first_slot_(first_slot), bounds_(bounds) {}

  MetricsRegistry* registry_ = nullptr;
  std::uint32_t first_slot_ = 0;
  const std::vector<double>* bounds_ = nullptr;  ///< registry-owned, stable
};

/// Aggregated view of one histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< bucket upper bounds; +inf implied
  std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;

  bool operator==(const HistogramSnapshot&) const = default;

  /// Estimate the q-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket holding rank ceil(q * count). The first bucket interpolates
  /// from 0; the overflow bucket interpolates up to the observed max. An
  /// empty histogram returns 0. The estimate is only as precise as the
  /// bucket layout: it always lands inside the bucket that contains the
  /// exact sample quantile (tests/test_obs.cpp checks this against a
  /// brute-force oracle).
  [[nodiscard]] double quantile(double q) const;
};

/// Point-in-time aggregation over every thread's shard.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Flat metrics JSON (the --metrics-json format; see
  /// docs/observability.md).
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolve (registering on first use) a metric by name. Re-resolving an
  /// existing name returns an equivalent handle; resolving an existing name
  /// as a different kind is a programming error (asserted).
  [[nodiscard]] Counter counter(const std::string& name);
  [[nodiscard]] Gauge gauge(const std::string& name);
  [[nodiscard]] Histogram histogram(const std::string& name,
                                    const std::vector<double>& bounds);

  /// Canonical exponential bucket layout for knot counts (1, 2, 4, ...,
  /// 4096); shared by every kernel histogram so their snapshots compare.
  [[nodiscard]] static const std::vector<double>& knot_buckets();

  /// Canonical exponential latency layout in microseconds (10us .. ~40ms);
  /// shared by the service's request/read/mutate histograms.
  [[nodiscard]] static const std::vector<double>& latency_buckets_us();

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  friend class Counter;
  friend class Histogram;

  struct Impl;
  void add_to_slot(std::uint32_t slot, std::uint64_t n);
  void cas_sum_slot(std::uint32_t slot, double v);
  void cas_max_slot(std::uint32_t slot, double v);

  Impl* impl_;
};

}  // namespace rta::obs
