#include "obs/metrics.hpp"

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdio>
#include <deque>
#include <memory>
#include <utility>

#include "util/thread_annotations.hpp"

namespace rta::obs {

namespace {

/// Unique id per registry instance, so the thread-local slab cache can tell
/// a new registry apart from a destroyed one that happened to be reallocated
/// at the same address.
std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

double bits_to_double(std::uint64_t b) { return std::bit_cast<double>(b); }
std::uint64_t double_to_bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

enum class MetricKind { kCounter, kHistogram };

struct GaugeCell {
  std::atomic<std::uint64_t> bits{double_to_bits(0.0)};
};

/// One thread's private cells. Structure (cell count) only changes under the
/// registry mutex and only at the hands of the owning thread; the cells are
/// relaxed atomics so snapshot() can read them from another thread. A deque
/// keeps cell addresses stable across growth.
struct Slab {
  std::deque<std::atomic<std::uint64_t>> cells;
  std::atomic<std::size_t> ready{0};  ///< cells constructed so far
};

struct MetricsRegistry::Impl {
  struct Desc {
    MetricKind kind;
    std::string name;
    std::uint32_t first_slot = 0;
    std::uint32_t n_slots = 1;
    std::vector<double> bounds;  ///< histograms only
  };

  std::uint64_t uid = next_registry_uid();
  mutable Mutex mutex;
  std::deque<Desc> descs RTA_GUARDED_BY(mutex);  // stable addresses
  std::map<std::string, std::size_t> by_name
      RTA_GUARDED_BY(mutex);  // name -> index into descs
  std::uint32_t slot_count RTA_GUARDED_BY(mutex) = 0;
  std::deque<std::pair<std::string, std::unique_ptr<GaugeCell>>> gauges
      RTA_GUARDED_BY(mutex);
  std::map<std::string, GaugeCell*> gauges_by_name RTA_GUARDED_BY(mutex);
  std::vector<std::unique_ptr<Slab>> slabs RTA_GUARDED_BY(mutex);

  /// The calling thread's slab, created/grown on demand.
  Slab* local_slab(std::uint32_t min_slots) {
    thread_local std::vector<std::pair<std::uint64_t, Slab*>> cache;
    Slab* slab = nullptr;
    for (auto& [id, s] : cache) {
      if (id == uid) {
        slab = s;
        break;
      }
    }
    if (slab == nullptr) {
      MutexLock lock(mutex);
      slabs.push_back(std::make_unique<Slab>());
      slab = slabs.back().get();
      cache.emplace_back(uid, slab);
    }
    if (slab->ready.load(std::memory_order_relaxed) < min_slots) {
      MutexLock lock(mutex);
      while (slab->cells.size() < slot_count) slab->cells.emplace_back(0);
      slab->ready.store(slab->cells.size(), std::memory_order_release);
    }
    return slab;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry::~MetricsRegistry() { delete impl_; }

Counter MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(impl_->mutex);
  auto it = impl_->by_name.find(name);
  if (it != impl_->by_name.end()) {
    const Impl::Desc& d = impl_->descs[it->second];
    assert(d.kind == MetricKind::kCounter);
    return Counter(this, d.first_slot);
  }
  Impl::Desc d;
  d.kind = MetricKind::kCounter;
  d.name = name;
  d.first_slot = impl_->slot_count;
  d.n_slots = 1;
  impl_->slot_count += 1;
  impl_->by_name.emplace(name, impl_->descs.size());
  impl_->descs.push_back(std::move(d));
  return Counter(this, impl_->descs.back().first_slot);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     const std::vector<double>& bounds) {
  MutexLock lock(impl_->mutex);
  auto it = impl_->by_name.find(name);
  if (it != impl_->by_name.end()) {
    const Impl::Desc& d = impl_->descs[it->second];
    assert(d.kind == MetricKind::kHistogram);
    return Histogram(this, d.first_slot, &d.bounds);
  }
  Impl::Desc d;
  d.kind = MetricKind::kHistogram;
  d.name = name;
  d.bounds = bounds;
  d.first_slot = impl_->slot_count;
  // Layout: per-bucket counts (bounds + overflow), then sum bits, max bits.
  d.n_slots = static_cast<std::uint32_t>(bounds.size() + 1 + 2);
  impl_->slot_count += d.n_slots;
  impl_->by_name.emplace(name, impl_->descs.size());
  impl_->descs.push_back(std::move(d));
  const Impl::Desc& stored = impl_->descs.back();
  return Histogram(this, stored.first_slot, &stored.bounds);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(impl_->mutex);
  auto it = impl_->gauges_by_name.find(name);
  if (it != impl_->gauges_by_name.end()) return Gauge(it->second);
  assert(impl_->by_name.find(name) == impl_->by_name.end());
  impl_->gauges.emplace_back(name, std::make_unique<GaugeCell>());
  GaugeCell* cell = impl_->gauges.back().second.get();
  impl_->gauges_by_name.emplace(name, cell);
  return Gauge(cell);
}

const std::vector<double>& MetricsRegistry::knot_buckets() {
  static const std::vector<double> buckets = {1,  2,   4,   8,    16,   32,  64,
                                              128, 256, 512, 1024, 2048, 4096};
  return buckets;
}

const std::vector<double>& MetricsRegistry::latency_buckets_us() {
  // 10us .. ~40ms, exponential. One shared layout for every service latency
  // histogram (request/read/mutate) so their snapshots compare bucket by
  // bucket.
  static const std::vector<double> buckets = [] {
    std::vector<double> b;
    for (double edge = 10.0; edge <= 50000.0; edge *= 2.0) b.push_back(edge);
    return b;
  }();
  return buckets;
}

void MetricsRegistry::add_to_slot(std::uint32_t slot, std::uint64_t n) {
  Slab* slab = impl_->local_slab(slot + 1);
  slab->cells[slot].fetch_add(n, std::memory_order_relaxed);
}

void MetricsRegistry::cas_max_slot(std::uint32_t slot, double v) {
  Slab* slab = impl_->local_slab(slot + 1);
  std::atomic<std::uint64_t>& cell = slab->cells[slot];
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (bits_to_double(cur) < v &&
         !cell.compare_exchange_weak(cur, double_to_bits(v),
                                     std::memory_order_relaxed)) {
  }
}

void Counter::add(std::uint64_t n) const {
  if (registry_ != nullptr) registry_->add_to_slot(slot_, n);
}

void Gauge::set(double v) const {
  if (cell_ != nullptr) {
    static_cast<GaugeCell*>(cell_)->bits.store(double_to_bits(v),
                                               std::memory_order_relaxed);
  }
}

void Gauge::record_max(double v) const {
  if (cell_ == nullptr) return;
  std::atomic<std::uint64_t>& bits = static_cast<GaugeCell*>(cell_)->bits;
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (bits_to_double(cur) < v &&
         !bits.compare_exchange_weak(cur, double_to_bits(v),
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::observe(double v) const {
  if (registry_ == nullptr) return;
  std::size_t bucket = bounds_->size();  // overflow bucket
  for (std::size_t i = 0; i < bounds_->size(); ++i) {
    if (v <= (*bounds_)[i]) {
      bucket = i;
      break;
    }
  }
  registry_->add_to_slot(first_slot_ + static_cast<std::uint32_t>(bucket), 1);
  // Sum and max live in the two slots after the buckets, as double bits
  // (uncontended CAS: the cells are thread-local by construction).
  const std::uint32_t sum_slot =
      first_slot_ + static_cast<std::uint32_t>(bounds_->size() + 1);
  registry_->cas_sum_slot(sum_slot, v);
  registry_->cas_max_slot(sum_slot + 1, v);
}

void MetricsRegistry::cas_sum_slot(std::uint32_t slot, double v) {
  Slab* slab = impl_->local_slab(slot + 1);
  std::atomic<std::uint64_t>& cell = slab->cells[slot];
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(cur, double_to_bits(bits_to_double(cur) + v),
                                     std::memory_order_relaxed)) {
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(impl_->mutex);
  auto slot_sum = [&](std::uint32_t slot) {
    std::uint64_t total = 0;
    for (const auto& slab : impl_->slabs) {
      if (slot < slab->ready.load(std::memory_order_acquire)) {
        total += slab->cells[slot].load(std::memory_order_relaxed);
      }
    }
    return total;
  };
  auto slot_sum_double = [&](std::uint32_t slot) {
    double total = 0.0;
    for (const auto& slab : impl_->slabs) {
      if (slot < slab->ready.load(std::memory_order_acquire)) {
        total +=
            bits_to_double(slab->cells[slot].load(std::memory_order_relaxed));
      }
    }
    return total;
  };
  auto slot_max_double = [&](std::uint32_t slot) {
    double m = 0.0;
    for (const auto& slab : impl_->slabs) {
      if (slot < slab->ready.load(std::memory_order_acquire)) {
        const double v =
            bits_to_double(slab->cells[slot].load(std::memory_order_relaxed));
        if (v > m) m = v;
      }
    }
    return m;
  };

  for (const Impl::Desc& d : impl_->descs) {
    if (d.kind == MetricKind::kCounter) {
      snap.counters[d.name] = slot_sum(d.first_slot);
    } else {
      HistogramSnapshot h;
      h.bounds = d.bounds;
      h.counts.resize(d.bounds.size() + 1);
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        h.counts[i] = slot_sum(d.first_slot + static_cast<std::uint32_t>(i));
        h.count += h.counts[i];
      }
      const std::uint32_t sum_slot =
          d.first_slot + static_cast<std::uint32_t>(d.bounds.size() + 1);
      h.sum = slot_sum_double(sum_slot);
      h.max = slot_max_double(sum_slot + 1);
      snap.histograms[d.name] = std::move(h);
    }
  }
  for (const auto& [name, cell] : impl_->gauges) {
    snap.gauges[name] = bits_to_double(cell->bits.load(std::memory_order_relaxed));
  }
  return snap;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t c = counts[i];
    if (c == 0) continue;
    const double prev = static_cast<double>(cum);
    cum += c;
    if (static_cast<double>(cum) >= target) {
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      // The overflow bucket has no upper edge; the observed max is the
      // tightest one available.
      double upper = i < bounds.size() ? bounds[i] : max;
      if (upper < lower) upper = lower;
      double frac = (target - prev) / static_cast<double>(c);
      if (frac > 1.0) frac = 1.0;
      return lower + frac * (upper - lower);
    }
  }
  return max;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": ";
    append_double(out, v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      append_double(out, h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "], \"count\": " + std::to_string(h.count) + ", \"sum\": ";
    append_double(out, h.sum);
    out += ", \"max\": ";
    append_double(out, h.max);
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace rta::obs
