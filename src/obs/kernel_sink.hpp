// Metrics-backed implementation of the curve kernels' instrumentation hooks.
//
// The hook mechanism itself (thread-local pointer, RAII install scope) lives
// in curve/kernel_hooks.hpp so the kernels never depend upward on obs. This
// file supplies the one production implementation: pre-resolved counter and
// histogram handles that the analyzers install around each unit of work via
// curve::KernelHooksScope.
//
// The counters land in per-thread registry shards (obs/metrics.hpp), so
// enabling them adds no contention.
#pragma once

#include "curve/kernel_hooks.hpp"
#include "obs/metrics.hpp"

namespace rta::obs {

/// Pre-resolved handles for everything the kernels record.
struct KernelSink : curve::KernelHooks {
  explicit KernelSink(MetricsRegistry& registry);

  void on_conv(std::size_t operand_knots) override {
    conv_ops.inc();
    conv_operand_knots.observe(static_cast<double>(operand_knots));
  }
  void on_deconv(std::size_t operand_knots) override {
    deconv_ops.inc();
    conv_operand_knots.observe(static_cast<double>(operand_knots));
  }
  void on_conv_result(std::size_t result_knots) override {
    conv_result_knots.observe(static_cast<double>(result_knots));
  }
  void on_pointwise(std::size_t result_knots) override {
    pointwise_ops.inc();
    pointwise_result_knots.observe(static_cast<double>(result_knots));
  }
  void on_pinv() override { pinv_ops.inc(); }

  Counter conv_ops;        ///< min-plus convolutions computed
  Counter deconv_ops;      ///< min-plus deconvolutions computed
  Counter pointwise_ops;   ///< curve_min/max/add/sub evaluations
  Counter pinv_ops;        ///< PwlCurve::pseudo_inverse evaluations
  Histogram conv_operand_knots;   ///< |f| + |g| entering a (de)convolution
  Histogram conv_result_knots;    ///< knots of a (de)convolution result
  Histogram pointwise_result_knots;  ///< knots of a pointwise-merge result
};

}  // namespace rta::obs
