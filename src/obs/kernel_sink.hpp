// Thread-local instrumentation hook for the curve kernels.
//
// The min-plus and pointwise-algebra kernels are the innermost hot paths of
// the analysis; threading an Observer through their free-function signatures
// would be invasive, and unconditional counters would tax the (default)
// unobserved runs. Instead the kernels consult one thread-local pointer:
//
//   if (obs::KernelSink* s = obs::kernel_sink()) s->conv_ops.inc();
//
// The analyzers install the sink around each unit of work (the bodies they
// hand to for_each_index) via KernelSinkScope, so pool workers and the
// calling thread are all covered. With no observer configured the pointer
// stays null and the kernels pay one thread-local load and branch -- no
// atomics (the "zero-cost when disabled" contract; the <= 2% ceiling is
// checked against bench/micro_analysis).
//
// The counters land in per-thread registry shards (obs/metrics.hpp), so
// enabling them adds no contention either.
#pragma once

#include "obs/metrics.hpp"

namespace rta::obs {

/// Pre-resolved handles for everything the kernels record.
struct KernelSink {
  explicit KernelSink(MetricsRegistry& registry);

  Counter conv_ops;        ///< min-plus convolutions computed
  Counter deconv_ops;      ///< min-plus deconvolutions computed
  Counter pointwise_ops;   ///< curve_min/max/add/sub evaluations
  Counter pinv_ops;        ///< PwlCurve::pseudo_inverse evaluations
  Histogram conv_operand_knots;   ///< |f| + |g| entering a (de)convolution
  Histogram conv_result_knots;    ///< knots of a (de)convolution result
  Histogram pointwise_result_knots;  ///< knots of a pointwise-merge result
};

namespace detail {
extern thread_local KernelSink* tl_kernel_sink;
}  // namespace detail

/// The calling thread's sink, or null when kernel instrumentation is off.
[[nodiscard]] inline KernelSink* kernel_sink() {
  return detail::tl_kernel_sink;
}

/// Installs `sink` (may be null) for the scope's lifetime, restoring the
/// previous sink on exit; nests correctly with inline/recursive execution.
class KernelSinkScope {
 public:
  explicit KernelSinkScope(KernelSink* sink) : prev_(detail::tl_kernel_sink) {
    detail::tl_kernel_sink = sink;
  }
  ~KernelSinkScope() { detail::tl_kernel_sink = prev_; }

  KernelSinkScope(const KernelSinkScope&) = delete;
  KernelSinkScope& operator=(const KernelSinkScope&) = delete;

 private:
  KernelSink* prev_;
};

}  // namespace rta::obs
