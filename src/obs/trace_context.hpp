// Deterministic request trace context.
//
// Every JSONL request line gets a trace_id: either propagated from a
// "trace_id" string field on the request itself, or minted here from the
// line number and the raw line bytes. Minting is a pure hash -- no clock,
// no randomness -- so the sequential runner and the concurrent scheduler
// stamp byte-identical ids onto their responses, which keeps trace_id
// inside the drivers' byte-identity contract (unlike latency_us).
//
// The id doubles as the span correlation key: the driver attaches it to the
// args of the per-request "service.request" span, so a Chrome trace or the
// JSONL event log can be joined against the response stream
// (scripts/check_trace.py --responses does exactly that).
#pragma once

#include <cstdint>
#include <string>

namespace rta::obs {

/// Mint a 16-hex-character trace id from a request's line number and raw
/// bytes. FNV-1a over the bytes, mixed with the line number through a
/// splitmix64 finalizer: two byte-identical lines at different line numbers
/// (coalescing duplicates) still get distinct ids.
[[nodiscard]] inline std::string mint_trace_id(int line_no,
                                               const std::string& raw) {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (char c : raw) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  std::uint64_t z = h + 0x9e3779b97f4a7c15ull *
                            (static_cast<std::uint64_t>(line_no) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  std::string out(16, '0');
  static const char* kHex = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[z & 0xf];
    z >>= 4;
  }
  return out;
}

}  // namespace rta::obs
