// The engine's observability sink: a pair of non-owning pointers carried by
// AnalysisConfig. Both default to null, which disables the entire
// instrumentation layer -- every call site guards on these pointers, so an
// unobserved analysis performs no tracing or metric atomics (the zero-cost
// contract verified by tests/test_obs.cpp and bench/micro_analysis).
//
// Deliberately header-only and dependency-free: AnalysisConfig lives in
// analysis/result.hpp, which many translation units include; they only need
// the two pointers, not the metrics/tracer machinery.
#pragma once

namespace rta::obs {

class MetricsRegistry;
class Tracer;

/// Where an analyzer reports what it does. The pointees must outlive every
/// analyzer configured with them.
struct Observer {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;

  [[nodiscard]] bool enabled() const {
    return metrics != nullptr || tracer != nullptr;
  }
};

}  // namespace rta::obs
