#include "obs/kernel_sink.hpp"

namespace rta::obs {

KernelSink::KernelSink(MetricsRegistry& registry)
    : conv_ops(registry.counter("kernel.conv_ops")),
      deconv_ops(registry.counter("kernel.deconv_ops")),
      pointwise_ops(registry.counter("kernel.pointwise_ops")),
      pinv_ops(registry.counter("kernel.pinv_ops")),
      conv_operand_knots(registry.histogram("kernel.conv_operand_knots",
                                            MetricsRegistry::knot_buckets())),
      conv_result_knots(registry.histogram("kernel.conv_result_knots",
                                           MetricsRegistry::knot_buckets())),
      pointwise_result_knots(
          registry.histogram("kernel.pointwise_result_knots",
                             MetricsRegistry::knot_buckets())) {}

}  // namespace rta::obs
