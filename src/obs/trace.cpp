#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <memory>

#include "util/thread_annotations.hpp"

namespace rta::obs {

namespace {

std::uint64_t next_tracer_uid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

/// Per-(thread, tracer) event buffer. Appends come only from the owning
/// thread; the mutex makes export from another thread safe and is otherwise
/// uncontended.
struct ThreadBuf {
  int tid = 0;  ///< written once at creation, then immutable
  Mutex mutex;
  double last_ts RTA_GUARDED_BY(mutex) = -1.0;
  std::vector<TraceEvent> events RTA_GUARDED_BY(mutex);
};

struct Tracer::Impl {
  std::uint64_t uid = next_tracer_uid();
  Mutex mutex;
  std::vector<std::unique_ptr<ThreadBuf>> bufs RTA_GUARDED_BY(mutex);
  int next_tid RTA_GUARDED_BY(mutex) = 0;
};

Tracer::Tracer() : t0_(std::chrono::steady_clock::now()), impl_(new Impl) {}

Tracer::~Tracer() { delete impl_; }

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

void* Tracer::local_buf() {
  thread_local std::vector<std::pair<std::uint64_t, ThreadBuf*>> cache;
  for (auto& [id, buf] : cache) {
    if (id == impl_->uid) return buf;
  }
  MutexLock lock(impl_->mutex);
  impl_->bufs.push_back(std::make_unique<ThreadBuf>());
  ThreadBuf* buf = impl_->bufs.back().get();
  buf->tid = impl_->next_tid++;
  cache.emplace_back(impl_->uid, buf);
  return buf;
}

void Tracer::emit(char phase, void* buf_ptr, const std::string& name,
                  const std::string& args) {
  ThreadBuf* buf = static_cast<ThreadBuf*>(buf_ptr);
  double ts = now_us();
  MutexLock lock(buf->mutex);
  // Strictly increasing timestamps per thread (nudge by 1 ns on clock ties).
  if (ts <= buf->last_ts) ts = buf->last_ts + 0.001;
  buf->last_ts = ts;
  buf->events.push_back({name, phase, ts, buf->tid, args});
}

Tracer::Span Tracer::span(std::string name, std::string args_json) {
  void* buf = local_buf();
  emit('B', buf, name, args_json);
  return Span(this, buf, std::move(name));
}

void Tracer::Span::finish() {
  if (tracer_ == nullptr) return;
  tracer_->emit('E', buf_, name_, end_args_);
  tracer_ = nullptr;
}

void Tracer::instant(std::string name, std::string args_json) {
  emit('i', local_buf(), name, args_json);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> all;
  MutexLock lock(impl_->mutex);
  for (const auto& buf : impl_->bufs) {
    MutexLock buf_lock(buf->mutex);
    all.insert(all.end(), buf->events.begin(), buf->events.end());
  }
  return all;
}

std::string Tracer::to_chrome_json() const {
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  for (const TraceEvent& e : events()) {
    if (!first) out += ",\n";
    first = false;
    char head[96];
    std::snprintf(head, sizeof(head),
                  "{\"ph\": \"%c\", \"ts\": %.3f, \"pid\": 1, \"tid\": %d",
                  e.phase, e.ts_us, e.tid);
    out += head;
    out += ", \"cat\": \"rta\", \"name\": \"";
    json_escape_into(out, e.name);
    out += "\"";
    if (e.phase == 'i') out += ", \"s\": \"t\"";
    if (!e.args.empty()) {
      out += ", \"args\": ";
      out += e.args;
    }
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string Tracer::to_jsonl() const {
  std::string out;
  for (const TraceEvent& e : events()) {
    char head[96];
    std::snprintf(head, sizeof(head),
                  "{\"ts_us\": %.3f, \"tid\": %d, \"ph\": \"%c\", \"name\": \"",
                  e.ts_us, e.tid, e.phase);
    out += head;
    json_escape_into(out, e.name);
    out += "\"";
    if (!e.args.empty()) {
      out += ", \"args\": ";
      out += e.args;
    }
    out += "}\n";
  }
  return out;
}

}  // namespace rta::obs
