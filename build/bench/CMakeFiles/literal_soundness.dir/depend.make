# Empty dependencies file for literal_soundness.
# This may be replaced when dependencies are built.
