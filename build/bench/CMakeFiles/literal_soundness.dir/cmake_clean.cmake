file(REMOVE_RECURSE
  "CMakeFiles/literal_soundness.dir/literal_soundness.cpp.o"
  "CMakeFiles/literal_soundness.dir/literal_soundness.cpp.o.d"
  "literal_soundness"
  "literal_soundness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/literal_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
