# Empty compiler generated dependencies file for fig1_arrivals.
# This may be replaced when dependencies are built.
