file(REMOVE_RECURSE
  "CMakeFiles/fig1_arrivals.dir/fig1_arrivals.cpp.o"
  "CMakeFiles/fig1_arrivals.dir/fig1_arrivals.cpp.o.d"
  "fig1_arrivals"
  "fig1_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
