file(REMOVE_RECURSE
  "CMakeFiles/fig4_aperiodic.dir/fig4_aperiodic.cpp.o"
  "CMakeFiles/fig4_aperiodic.dir/fig4_aperiodic.cpp.o.d"
  "fig4_aperiodic"
  "fig4_aperiodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_aperiodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
