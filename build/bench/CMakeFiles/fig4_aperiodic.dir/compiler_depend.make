# Empty compiler generated dependencies file for fig4_aperiodic.
# This may be replaced when dependencies are built.
