# Empty dependencies file for micro_curve.
# This may be replaced when dependencies are built.
