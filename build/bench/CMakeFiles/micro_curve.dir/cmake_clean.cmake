file(REMOVE_RECURSE
  "CMakeFiles/micro_curve.dir/micro_curve.cpp.o"
  "CMakeFiles/micro_curve.dir/micro_curve.cpp.o.d"
  "micro_curve"
  "micro_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
