# Empty compiler generated dependencies file for tightness_vs_stages.
# This may be replaced when dependencies are built.
