file(REMOVE_RECURSE
  "CMakeFiles/tightness_vs_stages.dir/tightness_vs_stages.cpp.o"
  "CMakeFiles/tightness_vs_stages.dir/tightness_vs_stages.cpp.o.d"
  "tightness_vs_stages"
  "tightness_vs_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tightness_vs_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
