# Empty dependencies file for sync_protocols.
# This may be replaced when dependencies are built.
