file(REMOVE_RECURSE
  "CMakeFiles/sync_protocols.dir/sync_protocols.cpp.o"
  "CMakeFiles/sync_protocols.dir/sync_protocols.cpp.o.d"
  "sync_protocols"
  "sync_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
