file(REMOVE_RECURSE
  "CMakeFiles/ablation_spp.dir/ablation_spp.cpp.o"
  "CMakeFiles/ablation_spp.dir/ablation_spp.cpp.o.d"
  "ablation_spp"
  "ablation_spp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
