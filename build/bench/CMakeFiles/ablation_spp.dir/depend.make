# Empty dependencies file for ablation_spp.
# This may be replaced when dependencies are built.
