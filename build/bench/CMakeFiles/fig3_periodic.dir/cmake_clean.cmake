file(REMOVE_RECURSE
  "CMakeFiles/fig3_periodic.dir/fig3_periodic.cpp.o"
  "CMakeFiles/fig3_periodic.dir/fig3_periodic.cpp.o.d"
  "fig3_periodic"
  "fig3_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
