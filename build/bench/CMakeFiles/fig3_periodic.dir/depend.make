# Empty dependencies file for fig3_periodic.
# This may be replaced when dependencies are built.
