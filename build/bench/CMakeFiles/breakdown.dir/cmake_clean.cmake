file(REMOVE_RECURSE
  "CMakeFiles/breakdown.dir/breakdown.cpp.o"
  "CMakeFiles/breakdown.dir/breakdown.cpp.o.d"
  "breakdown"
  "breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
