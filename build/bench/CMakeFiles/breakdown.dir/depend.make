# Empty dependencies file for breakdown.
# This may be replaced when dependencies are built.
