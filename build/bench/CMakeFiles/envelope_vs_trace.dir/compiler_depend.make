# Empty compiler generated dependencies file for envelope_vs_trace.
# This may be replaced when dependencies are built.
