file(REMOVE_RECURSE
  "CMakeFiles/envelope_vs_trace.dir/envelope_vs_trace.cpp.o"
  "CMakeFiles/envelope_vs_trace.dir/envelope_vs_trace.cpp.o.d"
  "envelope_vs_trace"
  "envelope_vs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envelope_vs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
