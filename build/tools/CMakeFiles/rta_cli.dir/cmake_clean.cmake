file(REMOVE_RECURSE
  "CMakeFiles/rta_cli.dir/rta_cli.cpp.o"
  "CMakeFiles/rta_cli.dir/rta_cli.cpp.o.d"
  "rta_cli"
  "rta_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rta_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
