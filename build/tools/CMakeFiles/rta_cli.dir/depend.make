# Empty dependencies file for rta_cli.
# This may be replaced when dependencies are built.
