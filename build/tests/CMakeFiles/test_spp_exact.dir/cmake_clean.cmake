file(REMOVE_RECURSE
  "CMakeFiles/test_spp_exact.dir/test_spp_exact.cpp.o"
  "CMakeFiles/test_spp_exact.dir/test_spp_exact.cpp.o.d"
  "test_spp_exact"
  "test_spp_exact.pdb"
  "test_spp_exact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spp_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
