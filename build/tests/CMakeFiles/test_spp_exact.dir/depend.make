# Empty dependencies file for test_spp_exact.
# This may be replaced when dependencies are built.
