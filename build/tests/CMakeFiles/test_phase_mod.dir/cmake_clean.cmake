file(REMOVE_RECURSE
  "CMakeFiles/test_phase_mod.dir/test_phase_mod.cpp.o"
  "CMakeFiles/test_phase_mod.dir/test_phase_mod.cpp.o.d"
  "test_phase_mod"
  "test_phase_mod.pdb"
  "test_phase_mod[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_mod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
