# Empty compiler generated dependencies file for test_phase_mod.
# This may be replaced when dependencies are built.
