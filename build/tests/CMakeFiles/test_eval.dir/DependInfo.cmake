
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_eval.cpp" "tests/CMakeFiles/test_eval.dir/test_eval.cpp.o" "gcc" "tests/CMakeFiles/test_eval.dir/test_eval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/rta_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rta_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rta_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rta_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rta_model.dir/DependInfo.cmake"
  "/root/repo/build/src/curve/CMakeFiles/rta_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/rta_io.dir/DependInfo.cmake"
  "/root/repo/build/src/envelope/CMakeFiles/rta_envelope.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
