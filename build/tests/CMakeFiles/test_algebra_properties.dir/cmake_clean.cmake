file(REMOVE_RECURSE
  "CMakeFiles/test_algebra_properties.dir/test_algebra_properties.cpp.o"
  "CMakeFiles/test_algebra_properties.dir/test_algebra_properties.cpp.o.d"
  "test_algebra_properties"
  "test_algebra_properties.pdb"
  "test_algebra_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algebra_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
