# Empty dependencies file for test_algebra_properties.
# This may be replaced when dependencies are built.
