# Empty compiler generated dependencies file for test_arrival.
# This may be replaced when dependencies are built.
