file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_common.dir/test_analysis_common.cpp.o"
  "CMakeFiles/test_analysis_common.dir/test_analysis_common.cpp.o.d"
  "test_analysis_common"
  "test_analysis_common.pdb"
  "test_analysis_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
