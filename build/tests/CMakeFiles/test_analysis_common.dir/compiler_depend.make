# Empty compiler generated dependencies file for test_analysis_common.
# This may be replaced when dependencies are built.
