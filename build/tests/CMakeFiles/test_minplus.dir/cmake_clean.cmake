file(REMOVE_RECURSE
  "CMakeFiles/test_minplus.dir/test_minplus.cpp.o"
  "CMakeFiles/test_minplus.dir/test_minplus.cpp.o.d"
  "test_minplus"
  "test_minplus.pdb"
  "test_minplus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
