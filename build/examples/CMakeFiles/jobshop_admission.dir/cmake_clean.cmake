file(REMOVE_RECURSE
  "CMakeFiles/jobshop_admission.dir/jobshop_admission.cpp.o"
  "CMakeFiles/jobshop_admission.dir/jobshop_admission.cpp.o.d"
  "jobshop_admission"
  "jobshop_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobshop_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
