# Empty compiler generated dependencies file for jobshop_admission.
# This may be replaced when dependencies are built.
