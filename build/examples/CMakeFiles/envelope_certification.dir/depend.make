# Empty dependencies file for envelope_certification.
# This may be replaced when dependencies are built.
