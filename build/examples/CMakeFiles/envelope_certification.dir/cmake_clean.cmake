file(REMOVE_RECURSE
  "CMakeFiles/envelope_certification.dir/envelope_certification.cpp.o"
  "CMakeFiles/envelope_certification.dir/envelope_certification.cpp.o.d"
  "envelope_certification"
  "envelope_certification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envelope_certification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
