file(REMOVE_RECURSE
  "CMakeFiles/bursty_multimedia.dir/bursty_multimedia.cpp.o"
  "CMakeFiles/bursty_multimedia.dir/bursty_multimedia.cpp.o.d"
  "bursty_multimedia"
  "bursty_multimedia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursty_multimedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
