# Empty dependencies file for bursty_multimedia.
# This may be replaced when dependencies are built.
