# Empty compiler generated dependencies file for network_links.
# This may be replaced when dependencies are built.
