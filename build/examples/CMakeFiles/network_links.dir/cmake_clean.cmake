file(REMOVE_RECURSE
  "CMakeFiles/network_links.dir/network_links.cpp.o"
  "CMakeFiles/network_links.dir/network_links.cpp.o.d"
  "network_links"
  "network_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
