file(REMOVE_RECURSE
  "CMakeFiles/revisit_loop.dir/revisit_loop.cpp.o"
  "CMakeFiles/revisit_loop.dir/revisit_loop.cpp.o.d"
  "revisit_loop"
  "revisit_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revisit_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
