# Empty compiler generated dependencies file for revisit_loop.
# This may be replaced when dependencies are built.
