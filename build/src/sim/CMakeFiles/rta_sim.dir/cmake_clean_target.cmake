file(REMOVE_RECURSE
  "librta_sim.a"
)
