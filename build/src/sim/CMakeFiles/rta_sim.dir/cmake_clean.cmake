file(REMOVE_RECURSE
  "CMakeFiles/rta_sim.dir/invariants.cpp.o"
  "CMakeFiles/rta_sim.dir/invariants.cpp.o.d"
  "CMakeFiles/rta_sim.dir/simulator.cpp.o"
  "CMakeFiles/rta_sim.dir/simulator.cpp.o.d"
  "librta_sim.a"
  "librta_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rta_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
