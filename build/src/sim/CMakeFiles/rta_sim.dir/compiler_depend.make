# Empty compiler generated dependencies file for rta_sim.
# This may be replaced when dependencies are built.
