# Empty compiler generated dependencies file for rta_workload.
# This may be replaced when dependencies are built.
