file(REMOVE_RECURSE
  "librta_workload.a"
)
