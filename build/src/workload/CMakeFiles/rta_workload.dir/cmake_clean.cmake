file(REMOVE_RECURSE
  "CMakeFiles/rta_workload.dir/jobshop.cpp.o"
  "CMakeFiles/rta_workload.dir/jobshop.cpp.o.d"
  "librta_workload.a"
  "librta_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rta_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
