file(REMOVE_RECURSE
  "CMakeFiles/rta_envelope.dir/envelope.cpp.o"
  "CMakeFiles/rta_envelope.dir/envelope.cpp.o.d"
  "CMakeFiles/rta_envelope.dir/envelope_analysis.cpp.o"
  "CMakeFiles/rta_envelope.dir/envelope_analysis.cpp.o.d"
  "librta_envelope.a"
  "librta_envelope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rta_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
