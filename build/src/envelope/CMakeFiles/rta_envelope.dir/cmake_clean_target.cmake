file(REMOVE_RECURSE
  "librta_envelope.a"
)
