# Empty compiler generated dependencies file for rta_envelope.
# This may be replaced when dependencies are built.
