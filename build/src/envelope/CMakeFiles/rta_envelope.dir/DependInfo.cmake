
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/envelope/envelope.cpp" "src/envelope/CMakeFiles/rta_envelope.dir/envelope.cpp.o" "gcc" "src/envelope/CMakeFiles/rta_envelope.dir/envelope.cpp.o.d"
  "/root/repo/src/envelope/envelope_analysis.cpp" "src/envelope/CMakeFiles/rta_envelope.dir/envelope_analysis.cpp.o" "gcc" "src/envelope/CMakeFiles/rta_envelope.dir/envelope_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/rta_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rta_model.dir/DependInfo.cmake"
  "/root/repo/build/src/curve/CMakeFiles/rta_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rta_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
