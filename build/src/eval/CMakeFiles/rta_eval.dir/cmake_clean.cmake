file(REMOVE_RECURSE
  "CMakeFiles/rta_eval.dir/admission.cpp.o"
  "CMakeFiles/rta_eval.dir/admission.cpp.o.d"
  "CMakeFiles/rta_eval.dir/breakdown.cpp.o"
  "CMakeFiles/rta_eval.dir/breakdown.cpp.o.d"
  "CMakeFiles/rta_eval.dir/validation.cpp.o"
  "CMakeFiles/rta_eval.dir/validation.cpp.o.d"
  "librta_eval.a"
  "librta_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rta_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
