file(REMOVE_RECURSE
  "librta_eval.a"
)
