# Empty compiler generated dependencies file for rta_eval.
# This may be replaced when dependencies are built.
