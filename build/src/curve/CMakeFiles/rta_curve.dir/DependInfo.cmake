
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/curve/algebra.cpp" "src/curve/CMakeFiles/rta_curve.dir/algebra.cpp.o" "gcc" "src/curve/CMakeFiles/rta_curve.dir/algebra.cpp.o.d"
  "/root/repo/src/curve/arrival.cpp" "src/curve/CMakeFiles/rta_curve.dir/arrival.cpp.o" "gcc" "src/curve/CMakeFiles/rta_curve.dir/arrival.cpp.o.d"
  "/root/repo/src/curve/minplus.cpp" "src/curve/CMakeFiles/rta_curve.dir/minplus.cpp.o" "gcc" "src/curve/CMakeFiles/rta_curve.dir/minplus.cpp.o.d"
  "/root/repo/src/curve/pwl_curve.cpp" "src/curve/CMakeFiles/rta_curve.dir/pwl_curve.cpp.o" "gcc" "src/curve/CMakeFiles/rta_curve.dir/pwl_curve.cpp.o.d"
  "/root/repo/src/curve/transforms.cpp" "src/curve/CMakeFiles/rta_curve.dir/transforms.cpp.o" "gcc" "src/curve/CMakeFiles/rta_curve.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
