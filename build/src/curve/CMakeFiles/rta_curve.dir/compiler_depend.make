# Empty compiler generated dependencies file for rta_curve.
# This may be replaced when dependencies are built.
