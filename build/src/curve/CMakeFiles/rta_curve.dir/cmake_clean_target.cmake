file(REMOVE_RECURSE
  "librta_curve.a"
)
