file(REMOVE_RECURSE
  "CMakeFiles/rta_curve.dir/algebra.cpp.o"
  "CMakeFiles/rta_curve.dir/algebra.cpp.o.d"
  "CMakeFiles/rta_curve.dir/arrival.cpp.o"
  "CMakeFiles/rta_curve.dir/arrival.cpp.o.d"
  "CMakeFiles/rta_curve.dir/minplus.cpp.o"
  "CMakeFiles/rta_curve.dir/minplus.cpp.o.d"
  "CMakeFiles/rta_curve.dir/pwl_curve.cpp.o"
  "CMakeFiles/rta_curve.dir/pwl_curve.cpp.o.d"
  "CMakeFiles/rta_curve.dir/transforms.cpp.o"
  "CMakeFiles/rta_curve.dir/transforms.cpp.o.d"
  "librta_curve.a"
  "librta_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rta_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
