file(REMOVE_RECURSE
  "CMakeFiles/rta_analysis.dir/bounds.cpp.o"
  "CMakeFiles/rta_analysis.dir/bounds.cpp.o.d"
  "CMakeFiles/rta_analysis.dir/common.cpp.o"
  "CMakeFiles/rta_analysis.dir/common.cpp.o.d"
  "CMakeFiles/rta_analysis.dir/holistic.cpp.o"
  "CMakeFiles/rta_analysis.dir/holistic.cpp.o.d"
  "CMakeFiles/rta_analysis.dir/iterative.cpp.o"
  "CMakeFiles/rta_analysis.dir/iterative.cpp.o.d"
  "CMakeFiles/rta_analysis.dir/order.cpp.o"
  "CMakeFiles/rta_analysis.dir/order.cpp.o.d"
  "CMakeFiles/rta_analysis.dir/phase_mod.cpp.o"
  "CMakeFiles/rta_analysis.dir/phase_mod.cpp.o.d"
  "CMakeFiles/rta_analysis.dir/spp_exact.cpp.o"
  "CMakeFiles/rta_analysis.dir/spp_exact.cpp.o.d"
  "CMakeFiles/rta_analysis.dir/utilization.cpp.o"
  "CMakeFiles/rta_analysis.dir/utilization.cpp.o.d"
  "librta_analysis.a"
  "librta_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rta_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
