
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bounds.cpp" "src/analysis/CMakeFiles/rta_analysis.dir/bounds.cpp.o" "gcc" "src/analysis/CMakeFiles/rta_analysis.dir/bounds.cpp.o.d"
  "/root/repo/src/analysis/common.cpp" "src/analysis/CMakeFiles/rta_analysis.dir/common.cpp.o" "gcc" "src/analysis/CMakeFiles/rta_analysis.dir/common.cpp.o.d"
  "/root/repo/src/analysis/holistic.cpp" "src/analysis/CMakeFiles/rta_analysis.dir/holistic.cpp.o" "gcc" "src/analysis/CMakeFiles/rta_analysis.dir/holistic.cpp.o.d"
  "/root/repo/src/analysis/iterative.cpp" "src/analysis/CMakeFiles/rta_analysis.dir/iterative.cpp.o" "gcc" "src/analysis/CMakeFiles/rta_analysis.dir/iterative.cpp.o.d"
  "/root/repo/src/analysis/order.cpp" "src/analysis/CMakeFiles/rta_analysis.dir/order.cpp.o" "gcc" "src/analysis/CMakeFiles/rta_analysis.dir/order.cpp.o.d"
  "/root/repo/src/analysis/phase_mod.cpp" "src/analysis/CMakeFiles/rta_analysis.dir/phase_mod.cpp.o" "gcc" "src/analysis/CMakeFiles/rta_analysis.dir/phase_mod.cpp.o.d"
  "/root/repo/src/analysis/spp_exact.cpp" "src/analysis/CMakeFiles/rta_analysis.dir/spp_exact.cpp.o" "gcc" "src/analysis/CMakeFiles/rta_analysis.dir/spp_exact.cpp.o.d"
  "/root/repo/src/analysis/utilization.cpp" "src/analysis/CMakeFiles/rta_analysis.dir/utilization.cpp.o" "gcc" "src/analysis/CMakeFiles/rta_analysis.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rta_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rta_model.dir/DependInfo.cmake"
  "/root/repo/build/src/curve/CMakeFiles/rta_curve.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
