# Empty compiler generated dependencies file for rta_analysis.
# This may be replaced when dependencies are built.
