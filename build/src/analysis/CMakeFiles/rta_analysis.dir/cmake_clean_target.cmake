file(REMOVE_RECURSE
  "librta_analysis.a"
)
