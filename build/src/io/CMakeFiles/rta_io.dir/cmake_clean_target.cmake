file(REMOVE_RECURSE
  "librta_io.a"
)
