# Empty dependencies file for rta_io.
# This may be replaced when dependencies are built.
