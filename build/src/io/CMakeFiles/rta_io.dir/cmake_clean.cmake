file(REMOVE_RECURSE
  "CMakeFiles/rta_io.dir/curve_csv.cpp.o"
  "CMakeFiles/rta_io.dir/curve_csv.cpp.o.d"
  "CMakeFiles/rta_io.dir/system_text.cpp.o"
  "CMakeFiles/rta_io.dir/system_text.cpp.o.d"
  "CMakeFiles/rta_io.dir/trace_csv.cpp.o"
  "CMakeFiles/rta_io.dir/trace_csv.cpp.o.d"
  "librta_io.a"
  "librta_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rta_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
