# Empty dependencies file for rta_model.
# This may be replaced when dependencies are built.
