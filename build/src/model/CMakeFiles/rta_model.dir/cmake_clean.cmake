file(REMOVE_RECURSE
  "CMakeFiles/rta_model.dir/priority.cpp.o"
  "CMakeFiles/rta_model.dir/priority.cpp.o.d"
  "CMakeFiles/rta_model.dir/system.cpp.o"
  "CMakeFiles/rta_model.dir/system.cpp.o.d"
  "librta_model.a"
  "librta_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rta_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
