file(REMOVE_RECURSE
  "librta_model.a"
)
