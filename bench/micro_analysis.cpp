// Microbenchmarks of the analyzers (google-benchmark): cost scaling with
// job count and stage count, per method, plus the discrete-event simulator
// for reference.
#include <benchmark/benchmark.h>

#include "analysis/bounds.hpp"
#include "analysis/holistic.hpp"
#include "analysis/iterative.hpp"
#include "analysis/spp_exact.hpp"
#include "model/priority.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "workload/jobshop.hpp"

namespace rta {
namespace {

System make_system(std::size_t stages, std::size_t jobs, SchedulerKind kind,
                   ArrivalPattern pattern = ArrivalPattern::kPeriodic) {
  JobShopConfig cfg;
  cfg.stages = stages;
  cfg.processors_per_stage = 2;
  cfg.jobs = jobs;
  cfg.pattern = pattern;
  cfg.utilization = 0.5;
  cfg.window_periods = 6.0;
  cfg.min_rate = 0.15;
  cfg.scheduler = kind;
  Rng rng(12345);
  System sys = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(sys);
  return sys;
}

void BM_ExactSppByJobs(benchmark::State& state) {
  const System sys = make_system(3, state.range(0), SchedulerKind::kSpp);
  const ExactSppAnalyzer analyzer;
  for (auto _ : state) benchmark::DoNotOptimize(analyzer.analyze(sys));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExactSppByJobs)->RangeMultiplier(2)->Range(2, 16)->Complexity();

void BM_ExactSppByStages(benchmark::State& state) {
  const System sys = make_system(state.range(0), 6, SchedulerKind::kSpp);
  const ExactSppAnalyzer analyzer;
  for (auto _ : state) benchmark::DoNotOptimize(analyzer.analyze(sys));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExactSppByStages)->DenseRange(1, 6, 1)->Complexity();

void BM_SpnpBoundsByJobs(benchmark::State& state) {
  const System sys = make_system(3, state.range(0), SchedulerKind::kSpnp);
  const BoundsAnalyzer analyzer;
  for (auto _ : state) benchmark::DoNotOptimize(analyzer.analyze(sys));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpnpBoundsByJobs)->RangeMultiplier(2)->Range(2, 16)->Complexity();

void BM_FcfsBoundsByJobs(benchmark::State& state) {
  const System sys = make_system(3, state.range(0), SchedulerKind::kFcfs);
  const BoundsAnalyzer analyzer;
  for (auto _ : state) benchmark::DoNotOptimize(analyzer.analyze(sys));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FcfsBoundsByJobs)->RangeMultiplier(2)->Range(2, 16)->Complexity();

void BM_HolisticByJobs(benchmark::State& state) {
  const System sys = make_system(3, state.range(0), SchedulerKind::kSpp);
  const HolisticAnalyzer analyzer;
  for (auto _ : state) benchmark::DoNotOptimize(analyzer.analyze(sys));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HolisticByJobs)->RangeMultiplier(2)->Range(2, 16)->Complexity();

void BM_IterativeOnAcyclic(benchmark::State& state) {
  const System sys = make_system(3, state.range(0), SchedulerKind::kSpnp);
  const IterativeBoundsAnalyzer analyzer;
  for (auto _ : state) benchmark::DoNotOptimize(analyzer.analyze(sys));
}
BENCHMARK(BM_IterativeOnAcyclic)->RangeMultiplier(2)->Range(2, 8);

void BM_SimulatorByJobs(benchmark::State& state) {
  const System sys = make_system(3, state.range(0), SchedulerKind::kSpp);
  const Time horizon = default_horizon(sys, AnalysisConfig{});
  for (auto _ : state) benchmark::DoNotOptimize(simulate(sys, horizon));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SimulatorByJobs)->RangeMultiplier(2)->Range(2, 16)->Complexity();

// Observability overhead trio: identical analysis with no sink (the
// default configuration -- the null-sink path the <= 2% overhead budget in
// docs/observability.md refers to), with a metrics registry attached, and
// with metrics plus tracer. Compare their per-iteration times to read off
// the cost of instrumentation.
void BM_BoundsObsOff(benchmark::State& state) {
  const System sys = make_system(3, 8, SchedulerKind::kSpnp);
  const BoundsAnalyzer analyzer;
  for (auto _ : state) benchmark::DoNotOptimize(analyzer.analyze(sys));
}
BENCHMARK(BM_BoundsObsOff);

void BM_BoundsObsMetrics(benchmark::State& state) {
  const System sys = make_system(3, 8, SchedulerKind::kSpnp);
  obs::MetricsRegistry registry;
  AnalysisConfig cfg;
  cfg.observer.metrics = &registry;
  const BoundsAnalyzer analyzer(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(analyzer.analyze(sys));
}
BENCHMARK(BM_BoundsObsMetrics);

void BM_BoundsObsMetricsAndTrace(benchmark::State& state) {
  const System sys = make_system(3, 8, SchedulerKind::kSpnp);
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  AnalysisConfig cfg;
  cfg.observer.metrics = &registry;
  cfg.observer.tracer = &tracer;
  const BoundsAnalyzer analyzer(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(analyzer.analyze(sys));
}
BENCHMARK(BM_BoundsObsMetricsAndTrace);

void BM_BurstyWorkloadAnalysis(benchmark::State& state) {
  const System sys = make_system(3, 6, SchedulerKind::kSpp,
                                 ArrivalPattern::kAperiodic);
  const ExactSppAnalyzer analyzer;
  for (auto _ : state) benchmark::DoNotOptimize(analyzer.analyze(sys));
}
BENCHMARK(BM_BurstyWorkloadAnalysis);

}  // namespace
}  // namespace rta

BENCHMARK_MAIN();
