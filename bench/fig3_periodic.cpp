// Figure 3 reproduction: admission probability vs system utilization for
// PERIODIC job arrivals (Eq. 25/26), comparing SPP/Exact, SPP/S&L, SPNP/App
// and FCFS/App on job shops.
//
// Panel grid (column-major labels (a)-(f), as in the paper): the number of
// stages grows top to bottom {1, 2, 4}, the end-to-end deadline (a multiple
// of the job's period) grows left to right {2, 4}.
//
// Expected shape (paper §5.2): SPP/Exact >= SPP/S&L >= {SPNP/App, FCFS/App};
// SPP/Exact == SPP/S&L on the single-stage panels; the gap widens with the
// stage count; everything improves with the larger deadline.
//
// Flags: --trials N (default 60)   --step U (default 0.2)
//        --jobs N (default 8)      --procs N (default 2, per stage)
//        --seed S                  --out FILE.csv (default fig3_periodic.csv)
//        --window P (generation window, in max periods; default 6)
#include <cstdio>

#include "bench/bench_util.hpp"
#include "util/options.hpp"

using namespace rta;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::size_t trials = opts.get_int("trials", 60);
  const double step = opts.get_double("step", 0.2);
  const std::size_t jobs = opts.get_int("jobs", 8);
  const std::size_t procs = opts.get_int("procs", 2);
  const std::uint64_t seed = opts.get_int("seed", 42);
  const double window = opts.get_double("window", 6.0);
  const std::string out = opts.get("out", "fig3_periodic.csv");

  const std::vector<std::size_t> stage_rows = {1, 2, 4};
  const std::vector<double> deadline_cols = {2.0, 4.0};
  const std::vector<double> grid = bench::utilization_grid(0.1, 1.7, step);
  const std::vector<Method> methods = {Method::kSppExact, Method::kSppSL,
                                       Method::kSpnpApp, Method::kFcfsApp};

  std::printf("Figure 3: admission probability vs utilization, periodic "
              "arrivals (Eq. 25/26)\n");
  std::printf("trials/point = %zu, jobs = %zu, processors/stage = %zu, "
              "seed = %llu\n",
              trials, jobs, procs, static_cast<unsigned long long>(seed));

  CsvWriter csv({"panel", "utilization", "method", "admission_probability",
                 "ci95_half_width", "trials"});

  // Column-major labels: (a),(b),(c) = first column (deadline 2x), rows =
  // stages 1,2,4; (d),(e),(f) = second column (deadline 4x).
  const char* labels[2][3] = {{"a", "b", "c"}, {"d", "e", "f"}};

  for (std::size_t col = 0; col < deadline_cols.size(); ++col) {
    for (std::size_t row = 0; row < stage_rows.size(); ++row) {
      AdmissionConfig cfg;
      cfg.shop.stages = stage_rows[row];
      cfg.shop.processors_per_stage = procs;
      cfg.shop.jobs = jobs;
      cfg.shop.pattern = ArrivalPattern::kPeriodic;
      cfg.shop.deadline.period_multiple = deadline_cols[col];
      cfg.shop.window_periods = window;
      cfg.shop.min_rate = 0.1;
      cfg.utilizations = grid;
      cfg.methods = methods;
      cfg.trials = trials;
      cfg.seed = seed;
      const auto points = run_admission_experiment(cfg);

      char desc[128];
      std::snprintf(desc, sizeof(desc),
                    "stages = %zu, deadline = %.0f x period",
                    stage_rows[row], deadline_cols[col]);
      bench::print_panel(std::string("fig3(") + labels[col][row] + ")", desc,
                         grid, methods, points, &csv);
    }
  }

  if (csv.write_file(out)) {
    std::printf("\nwrote %s (%zu rows)\n", out.c_str(), csv.row_count());
  }
  return 0;
}
