// Extra experiment: breakdown utilization per analysis method.
//
// For each stage count, draws random job sets and bisects the utilization
// knob to the largest value each method still admits. The method ordering of
// Figures 3/4 collapses into mean breakdown utilizations: SPP/Exact admits
// the most load; SPP/S&L trails it by an amount growing with the stage
// count; SPNP/App and FCFS/App sit far lower.
//
// Flags: --systems N (default 25)  --jobs N (default 6)  --seed S
//        --aperiodic (use Eq. 27 arrivals; drops SPP/S&L)  --out FILE.csv
#include <cstdio>

#include "eval/breakdown.hpp"
#include "util/csv.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"

using namespace rta;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::size_t systems = opts.get_int("systems", 25);
  const std::size_t jobs = opts.get_int("jobs", 6);
  const std::uint64_t seed = opts.get_int("seed", 31);
  const bool aperiodic = opts.get_bool("aperiodic", false);
  const std::string out = opts.get("out", "breakdown.csv");

  std::vector<Method> methods = {Method::kSppExact, Method::kSppSL,
                                 Method::kSpnpApp, Method::kFcfsApp};
  if (aperiodic) {
    methods = {Method::kSppExact, Method::kSpnpApp, Method::kFcfsApp};
  }

  std::printf("Mean breakdown utilization (knob units) per method, %s "
              "arrivals, %zu systems/cell\n\n",
              aperiodic ? "bursty (Eq. 27)" : "periodic", systems);
  std::printf("%7s", "stages");
  for (Method m : methods) std::printf("  %10s", method_name(m));
  std::printf("\n");

  CsvWriter csv({"stages", "method", "mean_breakdown", "min_breakdown",
                 "max_breakdown"});

  for (std::size_t stages : {1ul, 2ul, 4ul}) {
    std::printf("%7zu", stages);
    for (Method method : methods) {
      RunningStats stats;
      for (std::uint64_t s = 1; s <= systems; ++s) {
        JobShopConfig shop;
        shop.stages = stages;
        shop.processors_per_stage = 2;
        shop.jobs = jobs;
        shop.pattern = aperiodic ? ArrivalPattern::kAperiodic
                                 : ArrivalPattern::kPeriodic;
        shop.deadline.period_multiple = 2.0;
        shop.deadline.mean = 4.0;
        shop.deadline.variance = 16.0;
        shop.window_periods = 6.0;
        shop.min_rate = 0.15;
        stats.add(breakdown_utilization(shop, method, seed * 100 + s));
      }
      std::printf("  %10.3f", stats.mean());
      csv.add(stages, std::string(method_name(method)), stats.mean(),
              stats.min(), stats.max());
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  if (csv.write_file(out)) std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
