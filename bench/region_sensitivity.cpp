// Parametric region sensitivity: incremental RegionAnalyzer probing vs. a
// fresh full analysis per probe, on the Fig. 3 periodic job shop (stages 4,
// 2 processors per stage, 8 jobs, utilization 0.7, SPP with PDM priorities
// -- the same configuration as service_admission.cpp).
//
// The benched scenario is the service's what_if_region flow: admit a batch
// of light candidate jobs at lowest priority (service_admission.cpp's
// online-admission shape), then sweep each newcomer's headroom -- how far
// can its execution demand scale, how many simultaneous burst releases can
// it absorb, before the shop stops being schedulable. A region query
// binary-searches that boundary and answers every probe through the
// admission session's dirty-closure path: clone the committed session,
// remove the target once, then each probe is what_if(transformed target).
// A lowest-priority newcomer's dirty closure is just its own subjobs, so
// this is where incremental probing pays hardest. A second query class
// sweeps the original (established, mid-priority) jobs, whose closures
// span most of the shop -- reported alongside as the honest worst case.
//
// The primary baseline is the literal fresh-per-point analysis a naive
// capacity planner runs (`rta_cli analyze` per grid point): the *same*
// bisection, each probe answered by RegionAnalyzer::apply_axes + a brand
// new BoundsAnalyzer pass with nothing carried over. A second, generous
// baseline keeps one long-lived BoundsAnalyzer across all probes so its
// CurveCache amortizes (the service_admission.cpp convention); it is
// reported alongside but the acceptance bar applies to fresh-per-point.
//
// All paths probe identical parameter values in identical order, so their
// boundaries must agree exactly: empty/open flags, feasible/infeasible
// endpoints bit-for-bit, and probe counts. A mismatch aborts the bench
// (the determinism contract of docs/api.md; tests/test_region.cpp
// certifies the same equivalence per probe).
//
// Output: a per-query latency table on stdout and BENCH_region.json with
// median/p90/max latencies per path, the median speedups per query class,
// and the fraction of probes answered on the incremental dirty-closure
// path. The acceptance bar is a >= 3x median speedup over fresh-per-point
// on the candidate sweeps.
//
// Flags: --repeats N (default 3)   --stages N (default 4)
//        --procs N (default 2, per stage)  --jobs N (default 8)
//        --candidates N (default 8, admitted before querying)
//        --util U (default 0.7)    --seed S (default 42)
//        --threads N (default 1)   --tolerance T (default 0.001)
//        --out FILE (default BENCH_region.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "service/region.hpp"
#include "model/priority.hpp"
#include "service/admission_session.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "workload/jobshop.hpp"

using namespace rta;

namespace {

System make_base(const Options& opts, std::uint64_t seed) {
  JobShopConfig cfg;
  cfg.stages = static_cast<std::size_t>(opts.get_int("stages", 4));
  cfg.processors_per_stage =
      static_cast<std::size_t>(opts.get_int("procs", 2));
  cfg.jobs = static_cast<std::size_t>(opts.get_int("jobs", 8));
  cfg.pattern = ArrivalPattern::kPeriodic;
  cfg.utilization = opts.get_double("util", 0.7);
  cfg.window_periods = 4.0;
  cfg.deadline.period_multiple = 4.0;
  cfg.scheduler = SchedulerKind::kSpp;
  Rng rng(seed);
  System system = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(system);
  return system;
}

/// Candidate jobs in the style of online admission requests: short chains,
/// modest demand, lowest priority on every processor they visit (the same
/// shape service_admission.cpp admits).
std::vector<Job> make_candidates(const System& base, std::size_t count,
                                 std::uint64_t seed) {
  const RngFactory factory(seed ^ 0xAD317ull);
  std::vector<Job> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng = factory.stream(static_cast<std::uint64_t>(i));
    Job job;
    job.name = "cand" + std::to_string(i);
    const int hops = rng.uniform_int(1, 3);
    double exec_total = 0.0;
    for (int h = 0; h < hops; ++h) {
      Subjob s;
      s.processor = rng.uniform_int(0, base.processor_count() - 1);
      s.exec_time = rng.uniform(0.02, 0.12);
      exec_total += s.exec_time;
      job.chain.push_back(s);
    }
    const Time period = rng.uniform(2.0, 6.0);
    const Time window = std::max<Time>(base.last_release(), 4.0 * period);
    job.arrivals = ArrivalSequence::periodic(period, window);
    job.deadline = exec_total * rng.uniform(6.0, 20.0) + period;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// The baseline planner: RegionAnalyzer's exact bisection schedule, each
/// probe answered by apply_axes + a full analysis of the transformed
/// system -- through `warm` when given (one analyzer retained across every
/// probe and query), else through a brand new BoundsAnalyzer per probe
/// (the literal fresh-per-point planner). Mirrors RegionAnalyzer::bisect
/// so that, given equal per-probe verdicts (the determinism contract), the
/// search trajectories -- and therefore the reported boundaries and probe
/// counts -- are identical.
RegionBoundary fresh_bisect(const System& base, const RegionQuery& query,
                            const AnalysisConfig& analysis,
                            BoundsAnalyzer* warm, bool* failed) {
  const RegionAxis& axis = query.axes[0];
  const bool integral = axis.param == RegionParam::kBurst;
  RegionBoundary b;
  auto probe = [&](double v) {
    System sys;
    std::string error;
    if (!RegionAnalyzer::apply_axes(base, query, {v}, sys, error)) {
      *failed = true;
      return false;
    }
    AnalysisResult r;
    if (warm != nullptr) {
      r = warm->analyze(sys);
    } else {
      BoundsAnalyzer fresh(analysis);
      r = fresh.analyze(sys);
    }
    if (!r.ok) {
      *failed = true;
      return false;
    }
    ++b.probes;
    return r.all_schedulable();
  };
  if (!probe(axis.lo)) {
    b.empty = !*failed;
    b.infeasible = axis.lo;
    return b;
  }
  b.feasible = axis.lo;
  if (probe(axis.hi)) {
    b.open = !*failed;
    b.feasible = axis.hi;
    return b;
  }
  if (*failed) return b;
  b.infeasible = axis.hi;
  for (int iter = 0; iter < 64; ++iter) {
    const double gap = b.infeasible - b.feasible;
    if (integral ? gap <= 1.0 : gap <= query.tolerance) break;
    const double mid = integral
                           ? std::floor(0.5 * (b.feasible + b.infeasible))
                           : 0.5 * (b.feasible + b.infeasible);
    if (!(mid > b.feasible) || !(mid < b.infeasible)) break;
    if (probe(mid)) {
      b.feasible = mid;
    } else {
      b.infeasible = mid;
    }
    if (*failed) break;
  }
  return b;
}

bool boundaries_equal(const RegionBoundary& a, const RegionBoundary& c) {
  return a.empty == c.empty && a.open == c.open && a.probes == c.probes &&
         (a.empty || a.feasible == c.feasible) &&
         (a.open || a.infeasible == c.infeasible);
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

const char* boundary_note(const RegionBoundary& b, char* buf,
                          std::size_t len) {
  if (b.empty) {
    std::snprintf(buf, len, "empty");
  } else if (b.open) {
    std::snprintf(buf, len, "open@%g", b.feasible);
  } else {
    std::snprintf(buf, len, "%.6g", b.feasible);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const int repeats = static_cast<int>(opts.get_int("repeats", 3));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const int threads = static_cast<int>(opts.get_int("threads", 1));
  const double tolerance = opts.get_double("tolerance", 1e-3);
  const std::string out = opts.get("out", "BENCH_region.json");

  const System base = make_base(opts, seed);
  const std::size_t candidate_count =
      static_cast<std::size_t>(opts.get_int("candidates", 8));

  // The committed shop a planner sweeps: the Fig. 3 base plus admitted
  // lowest-priority newcomers (the service's admit -> what_if_region flow).
  System committed = base;
  for (Job job : make_candidates(base, candidate_count, seed)) {
    service::assign_lowest_priorities(committed, job);
    committed.add_job(std::move(job));
  }

  // Both paths pin the same horizon, so every probe (and the boundary
  // equality check) is horizon-for-horizon.
  service::SessionConfig session_cfg;
  session_cfg.analysis.threads = threads;
  session_cfg.analysis.use_curve_cache = true;
  session_cfg.analysis.horizon = default_horizon(committed, AnalysisConfig{});

  RegionAnalyzer region(committed, session_cfg);  // long-lived, like service
  BoundsAnalyzer warm(session_cfg.analysis);  // generous: cache amortizes

  // One exec_scale and one burst query per target: the two capacity
  // questions a planner sweeps ("how much heavier can this job get", "how
  // many simultaneous releases can it absorb"). Candidate sweeps are the
  // service scenario and carry the acceptance bar; established-job sweeps
  // are the worst case (their dirty closures span most of the shop).
  struct QueryRun {
    RegionQuery query;
    std::string label;
    bool candidate = false;
    RegionBoundary boundary;
    double incr_us = -1.0;
    double fresh_us = -1.0;
    double warm_us = -1.0;
    int probes = 0;
    int incremental_probes = 0;
  };
  std::vector<QueryRun> queries;
  for (int j = 0; j < committed.job_count(); ++j) {
    for (const RegionParam param :
         {RegionParam::kExecScale, RegionParam::kBurst}) {
      QueryRun run;
      RegionAxis axis;
      axis.param = param;
      axis.scope = RegionScope::kJob;
      region_default_bracket(param, axis.lo, axis.hi);
      run.query.target = committed.job(j).name;
      run.query.axes.push_back(axis);
      run.query.tolerance = tolerance;
      run.candidate = j >= base.job_count();
      run.label = run.query.target + "/" + region_param_name(param);
      queries.push_back(std::move(run));
    }
  }

  std::printf("Region boundary search on the Fig. 3 job shop "
              "(%d established + %zu admitted jobs, %d processors, "
              "util %.2f, threads %d), %zu queries, best of %d repeats\n",
              base.job_count(), candidate_count, base.processor_count(),
              opts.get_double("util", 0.7), threads, queries.size(),
              repeats);

  using Clock = std::chrono::steady_clock;
  for (int rep = 0; rep < repeats; ++rep) {
    for (QueryRun& run : queries) {
      const Clock::time_point i0 = Clock::now();
      const RegionResult r = region.run(run.query);
      const std::chrono::duration<double, std::micro> i_us =
          Clock::now() - i0;
      if (!r.ok) {
        std::fprintf(stderr, "FATAL: query %s failed: %s\n",
                     run.label.c_str(), r.error.c_str());
        return 1;
      }

      bool failed = false;
      const Clock::time_point f0 = Clock::now();
      const RegionBoundary fresh = fresh_bisect(
          committed, r.query, session_cfg.analysis, nullptr, &failed);
      const std::chrono::duration<double, std::micro> f_us =
          Clock::now() - f0;
      bool warm_failed = false;
      const Clock::time_point w0 = Clock::now();
      const RegionBoundary warmed = fresh_bisect(
          committed, r.query, session_cfg.analysis, &warm, &warm_failed);
      const std::chrono::duration<double, std::micro> w_us =
          Clock::now() - w0;
      if (failed || warm_failed) {
        std::fprintf(stderr, "FATAL: baseline for %s failed\n",
                     run.label.c_str());
        return 1;
      }
      if (!boundaries_equal(r.boundary, fresh) ||
          !boundaries_equal(r.boundary, warmed)) {
        std::fprintf(stderr,
                     "FATAL: query %s boundary diverges from a baseline "
                     "-- determinism contract violated\n",
                     run.label.c_str());
        return 1;
      }
      if (rep == 0) {
        run.boundary = r.boundary;
        run.probes = r.probes;
        run.incremental_probes = r.incremental_probes;
      }
      if (run.incr_us < 0.0 || i_us.count() < run.incr_us) {
        run.incr_us = i_us.count();
      }
      if (run.fresh_us < 0.0 || f_us.count() < run.fresh_us) {
        run.fresh_us = f_us.count();
      }
      if (run.warm_us < 0.0 || w_us.count() < run.warm_us) {
        run.warm_us = w_us.count();
      }
    }
  }

  std::vector<double> incr_us, fresh_us, warm_us;
  std::vector<double> cand_speedups, cand_warm_speedups, est_speedups;
  int total_probes = 0;
  int total_incremental = 0;
  char note[32];
  std::printf("\n%18s %6s %9s %7s %12s %12s %12s %9s\n", "query", "class",
              "boundary", "probes", "fresh_us", "warm_us", "region_us",
              "speedup");
  for (const QueryRun& run : queries) {
    const double speedup =
        run.incr_us > 0.0 ? run.fresh_us / run.incr_us : 0.0;
    std::printf("%18s %6s %9s %7d %12.1f %12.1f %12.1f %8.1fx\n",
                run.label.c_str(), run.candidate ? "cand" : "estab",
                boundary_note(run.boundary, note, sizeof(note)), run.probes,
                run.fresh_us, run.warm_us, run.incr_us, speedup);
    incr_us.push_back(run.incr_us);
    fresh_us.push_back(run.fresh_us);
    warm_us.push_back(run.warm_us);
    if (run.candidate) {
      cand_speedups.push_back(speedup);
      cand_warm_speedups.push_back(
          run.incr_us > 0.0 ? run.warm_us / run.incr_us : 0.0);
    } else {
      est_speedups.push_back(speedup);
    }
    total_probes += run.probes;
    total_incremental += run.incremental_probes;
  }
  const double median_speedup = percentile(cand_speedups, 0.5);
  const double warm_median_speedup = percentile(cand_warm_speedups, 0.5);
  const double established_median_speedup = percentile(est_speedups, 0.5);
  const double incr_fraction =
      total_probes > 0
          ? static_cast<double>(total_incremental) / total_probes
          : 0.0;
  std::printf("\nfresh per point:  median %.1f us, p90 %.1f us, max %.1f us\n",
              percentile(fresh_us, 0.5), percentile(fresh_us, 0.9),
              *std::max_element(fresh_us.begin(), fresh_us.end()));
  std::printf("warm analyzer:    median %.1f us, p90 %.1f us, max %.1f us\n",
              percentile(warm_us, 0.5), percentile(warm_us, 0.9),
              *std::max_element(warm_us.begin(), warm_us.end()));
  std::printf("region analyzer:  median %.1f us, p90 %.1f us, max %.1f us\n",
              percentile(incr_us, 0.5), percentile(incr_us, 0.9),
              *std::max_element(incr_us.begin(), incr_us.end()));
  std::printf("candidate sweeps: median %.2fx vs fresh-per-point, %.2fx vs "
              "warm; established sweeps: %.2fx "
              "(%d/%d probes incremental overall)\n",
              median_speedup, warm_median_speedup,
              established_median_speedup, total_incremental, total_probes);
  if (median_speedup < 3.0) {
    std::fprintf(stderr,
                 "WARNING: candidate median speedup %.2fx below the 3x "
                 "acceptance bar\n",
                 median_speedup);
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"region_sensitivity\",\n");
  std::fprintf(f,
               "  \"scenario\": \"fig3_periodic_jobshop\",\n"
               "  \"baseline\": \"same bisection, brand new BoundsAnalyzer "
               "per probe (fresh-per-point; warm = one analyzer retained "
               "across probes); pinned horizon\",\n");
  std::fprintf(f,
               "  \"stages\": %lld, \"processors_per_stage\": %lld, "
               "\"jobs\": %lld, \"utilization\": %g, \"threads\": %d,\n",
               opts.get_int("stages", 4), opts.get_int("procs", 2),
               opts.get_int("jobs", 8), opts.get_double("util", 0.7),
               threads);
  std::fprintf(f,
               "  \"candidates\": %zu, \"queries\": %zu, \"repeats\": %d, "
               "\"tolerance\": %g,\n",
               candidate_count, queries.size(), repeats, tolerance);
  std::fprintf(f, "  \"total_probes\": %d,\n", total_probes);
  std::fprintf(f, "  \"incremental_probes\": %d,\n", total_incremental);
  std::fprintf(f, "  \"incremental_fraction\": %.3f,\n", incr_fraction);
  std::fprintf(f,
               "  \"fresh_us\": {\"median\": %.3f, \"p90\": %.3f, "
               "\"max\": %.3f},\n",
               percentile(fresh_us, 0.5), percentile(fresh_us, 0.9),
               *std::max_element(fresh_us.begin(), fresh_us.end()));
  std::fprintf(f,
               "  \"warm_us\": {\"median\": %.3f, \"p90\": %.3f, "
               "\"max\": %.3f},\n",
               percentile(warm_us, 0.5), percentile(warm_us, 0.9),
               *std::max_element(warm_us.begin(), warm_us.end()));
  std::fprintf(f,
               "  \"region_us\": {\"median\": %.3f, \"p90\": %.3f, "
               "\"max\": %.3f},\n",
               percentile(incr_us, 0.5), percentile(incr_us, 0.9),
               *std::max_element(incr_us.begin(), incr_us.end()));
  std::fprintf(f,
               "  \"speedup_class\": \"candidate sweeps (the admit -> "
               "what_if_region service flow); established sweeps reported "
               "separately\",\n");
  std::fprintf(f, "  \"median_speedup\": %.3f,\n", median_speedup);
  std::fprintf(f, "  \"p90_speedup\": %.3f,\n",
               percentile(cand_speedups, 0.9));
  std::fprintf(f, "  \"warm_median_speedup\": %.3f,\n", warm_median_speedup);
  std::fprintf(f, "  \"established_median_speedup\": %.3f,\n",
               established_median_speedup);
  std::fprintf(f, "  \"speedup_bar\": 3.0,\n");
  std::fprintf(f,
               "  \"determinism\": \"every query's boundary (flags, "
               "endpoints, probe count) identical between the incremental "
               "path and the fresh-per-probe baseline\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
