// Extra experiment: WHERE does SPP/S&L lose against SPP/Exact?
//
// The paper attributes the gap to S&L "implicitly overestimating the subjob
// arrivals", compounding per stage (§5.2). This bench isolates the
// mechanism: for stage counts 1..6 it reports the mean ratio of each
// method's bound to the simulated worst response on identical systems. The
// exact method stays at 1.0; the holistic ratio should grow with the stage
// count; the per-hop-summation methods (SPNP/FCFS bounds) grow faster.
//
// Flags: --systems N (default 40)  --jobs N (default 6)  --util U (def 0.5)
//        --seed S  --out FILE.csv
#include <cmath>
#include <cstdio>

#include "eval/validation.hpp"
#include "model/priority.hpp"
#include "util/csv.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "workload/jobshop.hpp"

using namespace rta;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::size_t systems = opts.get_int("systems", 40);
  const std::size_t jobs = opts.get_int("jobs", 6);
  const double util = opts.get_double("util", 0.5);
  const std::uint64_t seed = opts.get_int("seed", 13);
  const std::string out = opts.get("out", "tightness_vs_stages.csv");

  const std::vector<Method> methods = {Method::kSppExact, Method::kSppSL,
                                       Method::kSppApp, Method::kSpnpApp,
                                       Method::kFcfsApp};

  std::printf("Bound tightness (bound / simulated worst) vs stage count\n");
  std::printf("%zu systems per cell, jobs=%zu, utilization=%.2f, periodic "
              "arrivals\n\n",
              systems, jobs, util);
  std::printf("%7s", "stages");
  for (Method m : methods) std::printf("  %10s", method_name(m));
  std::printf("\n");

  CsvWriter csv({"stages", "method", "mean_tightness", "p95_tightness"});

  for (std::size_t stages = 1; stages <= 6; ++stages) {
    std::printf("%7zu", stages);
    for (Method method : methods) {
      RunningStats stats;
      std::vector<double> ratios;
      for (std::uint64_t s = 1; s <= systems; ++s) {
        JobShopConfig cfg;
        cfg.stages = stages;
        cfg.processors_per_stage = 2;
        cfg.jobs = jobs;
        cfg.pattern = ArrivalPattern::kPeriodic;
        cfg.utilization = util;
        cfg.window_periods = 6.0;
        cfg.min_rate = 0.15;
        cfg.scheduler = method_scheduler(method);
        Rng rng(seed * 1000 + s);
        System sys = generate_jobshop(cfg, rng);
        assign_proportional_deadline_monotonic(sys);
        const ValidationReport rep =
            validate_method(method, sys, AnalysisConfig{});
        if (!rep.analysis_ok) continue;
        for (const JobValidation& jv : rep.jobs) {
          if (!std::isfinite(jv.analyzed_bound) ||
              !std::isfinite(jv.simulated_worst) ||
              jv.simulated_worst <= 1e-9) {
            continue;
          }
          stats.add(jv.analyzed_bound / jv.simulated_worst);
          ratios.push_back(jv.analyzed_bound / jv.simulated_worst);
        }
      }
      std::printf("  %10.3f", stats.mean());
      csv.add(stages, std::string(method_name(method)), stats.mean(),
              quantile(ratios, 0.95));
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("\n(SPP/Exact is 1.0 by construction; growth with stages shows "
              "each method's per-hop compounding)\n");
  if (csv.write_file(out)) std::printf("wrote %s\n", out.c_str());
  return 0;
}
