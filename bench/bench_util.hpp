// Shared helpers for the figure-reproduction benches: admission-table
// formatting and CSV emission.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "eval/experiment.hpp"  // AdmissionPoint
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace rta::bench {

/// Print one panel as a column-per-method table, paper-style, and append
/// rows to a CSV writer (panel, utilization, method, probability, ci).
inline void print_panel(const std::string& panel_id,
                        const std::string& panel_desc,
                        const std::vector<double>& utilizations,
                        const std::vector<Method>& methods,
                        const std::vector<AdmissionPoint>& points,
                        CsvWriter* csv) {
  std::printf("\n--- %s: %s ---\n", panel_id.c_str(), panel_desc.c_str());
  std::printf("%12s", "util");
  for (Method m : methods) std::printf("  %10s", method_name(m));
  std::printf("\n");
  for (std::size_t ui = 0; ui < utilizations.size(); ++ui) {
    std::printf("%12.2f", utilizations[ui]);
    for (std::size_t mi = 0; mi < methods.size(); ++mi) {
      const AdmissionPoint& p = points[ui * methods.size() + mi];
      std::printf("  %10.3f", p.probability());
      if (csv) {
        csv->add(panel_id, utilizations[ui],
                 std::string(method_name(p.method)), p.probability(),
                 wilson_half_width(p.admitted, p.trials), p.trials);
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

inline std::vector<double> utilization_grid(double lo, double hi,
                                            double step) {
  std::vector<double> grid;
  for (double u = lo; u <= hi + 1e-9; u += step) grid.push_back(u);
  return grid;
}

}  // namespace rta::bench
