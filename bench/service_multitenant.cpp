// Multi-tenant admission serving: N independent tenants (default 1000),
// each a committed clone of one prototype AdmissionSession on a tiny job
// shop, driven through the ShardedScheduler at shard widths 1, 2, and
// hardware against a sequential per-tenant baseline.
//
// The bench is a determinism proof first and a throughput report second:
//
//  * Identity phase. One global stream (~6k requests by default) random-
//    interleaves every tenant's request sequence. For each shard width the
//    sharded responses are split back per tenant, stripped of latency_us,
//    and digest-compared against THAT tenant's sequential reference run
//    (run_request_stream on its own session, its lines alone). Any
//    mismatch on any tenant at any width is FATAL -- the per-tenant
//    byte-identity contract of docs/api.md "Multi-tenant serving".
//    The sequential baseline timing is the sum of those per-tenant runs:
//    exactly the work a one-session-at-a-time front end would do.
//
//  * Hot-tenant phase. One tenant floods (long bursts per pump window)
//    while every other tenant trickles, with tenant_max_inflight bounding
//    the per-window queue. Sheds MUST land on the hot tenant only: a
//    single rejected request on any quiet tenant is FATAL (backpressure
//    isolation), and the quiet tenants' responses must still match their
//    solo references byte for byte.
//
// Tenant construction cost is part of the story: all tenants clone one
// committed prototype, so the base analysis runs ONCE no matter how many
// tenants serve (the clone shares the prototype's curve cache). The bench
// reports the prototype analysis time and the amortized per-tenant clone
// time alongside the serving numbers.
//
// Output: BENCH_multitenant.json (baseline: bench/baselines/, regenerated
// with the CI smoke parameters --tenants 64 --requests-per-tenant 4).
//
// Flags: --tenants N (default 1000)  --requests-per-tenant N (default 6)
//        --stages N (default 2)      --procs N (default 2, per stage)
//        --jobs N (default 3)        --util U (default 0.4)
//        --repeats N (default 2)     --seed S (default 42)
//        --hot-bursts N (default 8)  --hot-burst-len N (default 24)
//        --out FILE (default BENCH_multitenant.json)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"
#include "model/priority.hpp"
#include "service/admission_session.hpp"
#include "service/request_runner.hpp"
#include "service/sharded_scheduler.hpp"
#include "service/tenant_registry.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "workload/jobshop.hpp"

using namespace rta;

namespace {

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

System make_base(const Options& opts, std::uint64_t seed) {
  JobShopConfig cfg;
  cfg.stages = static_cast<std::size_t>(opts.get_int("stages", 2));
  cfg.processors_per_stage =
      static_cast<std::size_t>(opts.get_int("procs", 2));
  cfg.jobs = static_cast<std::size_t>(opts.get_int("jobs", 3));
  cfg.pattern = ArrivalPattern::kPeriodic;
  cfg.utilization = opts.get_double("util", 0.4);
  cfg.window_periods = 4.0;
  cfg.deadline.period_multiple = 3.0;
  cfg.scheduler = SchedulerKind::kSpp;
  Rng rng(seed);
  System system = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(system);
  return system;
}

std::string tenant_name(int i) {
  std::string name = "tenant-";
  name += std::to_string(i);
  return name;
}

/// One random request line for tenant `name`: the service mix (reads
/// heavy, some admits/removes, occasional malformed salt).
std::string random_line(Rng& rng, const std::string& name, const System& base,
                        int serial) {
  const std::string prefix = "{\"tenant\": \"" + name + "\", ";
  if (rng.uniform_int(0, 24) == 0) return prefix + "\"op\": \"frobnicate\"}";
  const double r = rng.uniform(0.0, 1.0);
  if (r < 0.4) return prefix + "\"op\": \"query\"}";
  std::ostringstream job;
  job << "\"job\": {\"name\": \"" << name << "_c" << serial
      << "\", \"deadline\": " << rng.uniform(8.0, 30.0)
      << ", \"chain\": [{\"processor\": "
      << rng.uniform_int(0, base.processor_count() - 1)
      << ", \"exec\": " << rng.uniform(0.02, 0.1)
      << "}], \"arrivals\": [0, 9, 18, 27, 36, 45, 54, 63]}";
  if (r < 0.75) return prefix + "\"op\": \"what_if\", " + job.str() + "}";
  if (r < 0.9) return prefix + "\"op\": \"admit\", " + job.str() + "}";
  return prefix + "\"op\": \"remove\", \"name\": \"" + name + "_c" +
         std::to_string(rng.uniform_int(0, serial + 2)) + "\"}";
}

std::string strip_latency(const std::string& responses) {
  static const std::regex kLatency(",\"latency_us\":[^,}]+");
  return std::regex_replace(responses, kLatency, "");
}

std::uint64_t bytes_digest(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Split a multi-tenant response stream into per-tenant digests of the
/// latency-stripped bytes, keyed by the "tenant" echo.
std::map<std::string, std::uint64_t> per_tenant_digests(
    const std::string& responses) {
  std::map<std::string, std::string> buckets;
  std::istringstream lines(responses);
  std::string line;
  while (std::getline(lines, line)) {
    const json::ParseResult doc = json::parse(line);
    std::string tenant;
    if (doc.ok) {
      if (const json::Value* t = doc.value.find("tenant"); t != nullptr) {
        tenant = t->as_string();
      }
    }
    buckets[tenant] += strip_latency(line) + "\n";
  }
  std::map<std::string, std::uint64_t> digests;
  for (const auto& [tenant, bytes] : buckets) {
    digests[tenant] = bytes_digest(bytes);
  }
  return digests;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const int tenants = static_cast<int>(opts.get_int("tenants", 1000));
  const int per_tenant = static_cast<int>(opts.get_int("requests-per-tenant", 6));
  const int repeats = static_cast<int>(opts.get_int("repeats", 2));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const std::string out = opts.get("out", "BENCH_multitenant.json");

  const System base = make_base(opts, seed);
  service::SessionConfig session_cfg;
  session_cfg.analysis.horizon = default_horizon(base, AnalysisConfig{});

  // One prototype carries the one and only base analysis; every tenant is a
  // committed clone sharing its curve cache.
  const Clock::time_point proto0 = Clock::now();
  service::AdmissionSession prototype(base, session_cfg);
  const double prototype_us = micros_since(proto0);
  if (!prototype.last().ok) {
    std::fprintf(stderr, "base analysis failed: %s\n",
                 prototype.last().error.c_str());
    return 1;
  }

  // Per-tenant request sequences and the random global interleaving.
  const RngFactory factory(seed ^ 0x7E4A47ull);
  std::vector<std::vector<std::string>> streams(
      static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    Rng rng = factory.stream(static_cast<std::uint64_t>(t));
    const std::string name = tenant_name(t);
    for (int i = 0; i < per_tenant; ++i) {
      streams[static_cast<std::size_t>(t)].push_back(
          random_line(rng, name, base, i));
    }
  }
  std::string global_stream;
  {
    Rng rng = factory.stream(0xFEEDull);
    std::vector<int> cursor(static_cast<std::size_t>(tenants), 0);
    std::vector<int> open(static_cast<std::size_t>(tenants));
    for (int t = 0; t < tenants; ++t) open[static_cast<std::size_t>(t)] = t;
    while (!open.empty()) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(open.size()) - 1));
      const int t = open[pick];
      global_stream +=
          streams[static_cast<std::size_t>(t)]
                 [static_cast<std::size_t>(cursor[static_cast<std::size_t>(t)]++)];
      global_stream += "\n";
      if (cursor[static_cast<std::size_t>(t)] == per_tenant) {
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
  }
  const int total_requests = tenants * per_tenant;

  std::printf("Multi-tenant serving: %d tenants x %d requests "
              "(%d total) on a %d-job / %d-processor base, best of %d\n",
              tenants, per_tenant, total_requests, base.job_count(),
              base.processor_count(), repeats);

  // ---- Sequential per-tenant baseline (and the reference digests) -------
  double seq_best_us = -1.0;
  double clone_total_us = 0.0;
  std::map<std::string, std::uint64_t> reference;
  for (int rep = 0; rep < repeats; ++rep) {
    std::map<std::string, std::uint64_t> digests;
    const Clock::time_point t0 = Clock::now();
    double clone_us = 0.0;
    for (int t = 0; t < tenants; ++t) {
      const Clock::time_point c0 = Clock::now();
      const std::unique_ptr<service::AdmissionSession> session =
          prototype.clone_committed();
      clone_us += micros_since(c0);
      std::ostringstream in_text;
      for (const std::string& line : streams[static_cast<std::size_t>(t)]) {
        in_text << line << "\n";
      }
      std::istringstream in(in_text.str());
      std::ostringstream responses;
      service::run_request_stream(*session, in, responses);
      digests[tenant_name(t)] = bytes_digest(strip_latency(responses.str()));
    }
    const double us = micros_since(t0);
    if (rep == 0) {
      reference = digests;
      clone_total_us = clone_us;
    } else if (digests != reference) {
      std::fprintf(stderr,
                   "FATAL: sequential reference differs across repeats\n");
      return 1;
    }
    if (seq_best_us < 0.0 || us < seq_best_us) seq_best_us = us;
  }
  std::printf("  prototype analysis %.1f us, %d clones %.1f us total "
              "(%.2f us/tenant)\n",
              prototype_us, tenants, clone_total_us,
              clone_total_us / std::max(1, tenants));
  std::printf("  %-16s %12.1f us  %10.1f req/s\n", "sequential", seq_best_us,
              seq_best_us > 0.0 ? 1e6 * total_requests / seq_best_us : 0.0);

  // ---- Sharded runs: widths 1, 2, hardware ------------------------------
  struct ShardRun {
    const char* label;
    int shards;
    double best_us = -1.0;
    service::ShardedStats stats;
  };
  std::vector<ShardRun> runs = {
      {"shards=1", 1, -1.0, {}},
      {"shards=2", 2, -1.0, {}},
      {"shards=hw", 0, -1.0, {}},
  };
  for (ShardRun& run : runs) {
    for (int rep = 0; rep < repeats; ++rep) {
      service::TenantRegistry registry;
      for (int t = 0; t < tenants; ++t) {
        registry.add(tenant_name(t), prototype.clone_committed());
      }
      service::ShardedOptions sharded;
      sharded.shards = run.shards;
      std::istringstream in(global_stream);
      std::ostringstream responses;
      const Clock::time_point t0 = Clock::now();
      const service::ShardedStats stats =
          service::run_sharded_stream(registry, in, responses, sharded);
      const double us = micros_since(t0);
      if (rep == 0) run.stats = stats;
      if (stats.shed != 0 || stats.unrouted != 0) {
        std::fprintf(stderr, "FATAL: %s shed/unrouted in the identity phase\n",
                     run.label);
        return 1;
      }
      const std::map<std::string, std::uint64_t> digests =
          per_tenant_digests(responses.str());
      for (const auto& [tenant, digest] : reference) {
        const auto it = digests.find(tenant);
        if (it == digests.end() || it->second != digest) {
          std::fprintf(stderr,
                       "FATAL: %s responses for %s diverge from the "
                       "sequential reference -- per-tenant byte-identity "
                       "contract violated\n",
                       run.label, tenant.c_str());
          return 1;
        }
      }
      if (run.best_us < 0.0 || us < run.best_us) run.best_us = us;
    }
    std::printf("  %-16s %12.1f us  %10.1f req/s  %5.2fx  (%llu pumps)\n",
                run.label, run.best_us,
                run.best_us > 0.0 ? 1e6 * total_requests / run.best_us : 0.0,
                run.best_us > 0.0 ? seq_best_us / run.best_us : 0.0,
                static_cast<unsigned long long>(run.stats.pumps));
  }

  // ---- Hot-tenant phase: sheds must land on the hot tenant only ---------
  const int hot_bursts = static_cast<int>(opts.get_int("hot-bursts", 8));
  const int hot_burst_len =
      static_cast<int>(opts.get_int("hot-burst-len", 24));
  const int quiet_tenants = std::min(tenants, 16);
  std::string hot_stream;
  std::vector<std::vector<std::string>> quiet_streams(
      static_cast<std::size_t>(quiet_tenants));
  {
    Rng rng = factory.stream(0xB0057ull);
    for (int b = 0; b < hot_bursts; ++b) {
      for (int i = 0; i < hot_burst_len; ++i) {
        hot_stream += "{\"tenant\": \"hot\", \"op\": \"query\"}\n";
      }
      for (int q = 0; q < quiet_tenants; ++q) {
        const std::string line = random_line(rng, tenant_name(q), base, b);
        quiet_streams[static_cast<std::size_t>(q)].push_back(line);
        hot_stream += line + "\n";
      }
    }
  }
  service::TenantRegistry hot_registry;
  hot_registry.add("hot", prototype.clone_committed());
  for (int q = 0; q < quiet_tenants; ++q) {
    hot_registry.add(tenant_name(q), prototype.clone_committed());
  }
  service::ShardedOptions hot_opts;
  hot_opts.shards = 2;
  hot_opts.tenant_max_inflight = 4;
  hot_opts.pump_lines = hot_burst_len + quiet_tenants;  // one burst per window
  std::ostringstream hot_out;
  service::ShardedScheduler hot_scheduler(hot_registry, hot_out, hot_opts);
  {
    std::istringstream hot_in(hot_stream);
    std::string line;
    while (std::getline(hot_in, line)) hot_scheduler.submit_line(line);
    hot_scheduler.finish();
  }
  const service::ShardedStats hot_stats = hot_scheduler.stats();
  const int hot_rejected =
      hot_scheduler.tenant_stats(hot_registry.find("hot")).rejected;
  if (hot_rejected == 0) {
    std::fprintf(stderr,
                 "FATAL: hot tenant never shed -- the phase exercised "
                 "nothing\n");
    return 1;
  }
  if (static_cast<std::uint64_t>(hot_rejected) != hot_stats.shed) {
    std::fprintf(stderr,
                 "FATAL: %llu sheds total but %d on the hot tenant -- "
                 "backpressure leaked onto quiet tenants\n",
                 static_cast<unsigned long long>(hot_stats.shed),
                 hot_rejected);
    return 1;
  }
  // Every quiet tenant: zero sheds AND byte-identical to its solo run.
  const std::map<std::string, std::uint64_t> hot_digests =
      per_tenant_digests(hot_out.str());
  for (int q = 0; q < quiet_tenants; ++q) {
    const std::string name = tenant_name(q);
    if (hot_scheduler.tenant_stats(hot_registry.find(name)).rejected != 0) {
      std::fprintf(stderr,
                   "FATAL: quiet tenant %s was shed -- backpressure "
                   "isolation violated\n",
                   name.c_str());
      return 1;
    }
    const std::unique_ptr<service::AdmissionSession> session =
        prototype.clone_committed();
    std::ostringstream in_text;
    for (const std::string& line : quiet_streams[static_cast<std::size_t>(q)]) {
      in_text << line << "\n";
    }
    std::istringstream in(in_text.str());
    std::ostringstream responses;
    service::run_request_stream(*session, in, responses);
    const auto it = hot_digests.find(name);
    if (it == hot_digests.end() ||
        it->second != bytes_digest(strip_latency(responses.str()))) {
      std::fprintf(stderr,
                   "FATAL: quiet tenant %s diverges from its solo reference "
                   "under hot-tenant load\n",
                   name.c_str());
      return 1;
    }
  }
  std::printf("  hot-tenant phase: %llu sheds, all on the hot tenant; "
              "%d quiet tenants byte-identical to their solo runs\n",
              static_cast<unsigned long long>(hot_stats.shed), quiet_tenants);

  // ---- Report -----------------------------------------------------------
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"service_multitenant\",\n");
  std::fprintf(f,
               "  \"baseline\": \"per-tenant sequential run_request_stream, "
               "one committed clone per tenant\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"tenants\": %d, \"requests_per_tenant\": %d, "
               "\"total_requests\": %d, \"repeats\": %d,\n",
               tenants, per_tenant, total_requests, repeats);
  std::fprintf(f, "  \"prototype_analysis_us\": %.1f,\n", prototype_us);
  std::fprintf(f, "  \"clone_us_per_tenant\": %.3f,\n",
               clone_total_us / std::max(1, tenants));
  std::fprintf(f, "  \"sequential_us\": %.1f,\n", seq_best_us);
  std::fprintf(f, "  \"sharded\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::fprintf(f,
                 "    {\"shards\": %d, \"us\": %.1f, \"speedup\": %.3f, "
                 "\"pumps\": %llu}%s\n",
                 runs[i].shards, runs[i].best_us,
                 runs[i].best_us > 0.0 ? seq_best_us / runs[i].best_us : 0.0,
                 static_cast<unsigned long long>(runs[i].stats.pumps),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"hot_phase\": {\"sheds\": %llu, "
               "\"all_on_hot_tenant\": true, \"quiet_tenants\": %d, "
               "\"quiet_identical_to_solo\": true},\n",
               static_cast<unsigned long long>(hot_stats.shed),
               quiet_tenants);
  std::fprintf(f,
               "  \"determinism\": \"per-tenant responses byte-identical "
               "modulo latency_us to each tenant's sequential solo run, at "
               "shard widths 1/2/hw (digest-checked, FATAL on mismatch)\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
