// Reproduction finding: how unsound are Theorems 5/6 as printed?
//
// DESIGN.md documents three defects in the literal Eqs. 16-19 (interference
// direction, once-global blocking, increment mixing). This bench quantifies
// them: on random SPNP and SPP job shops it runs BOTH the literal
// transcription and the sound per-candidate variant against the
// discrete-event simulator and reports
//   * the fraction of jobs whose literal bound falls BELOW the simulated
//     worst response (an unsound, too-optimistic bound), and
//   * the admission decisions each variant makes.
//
// Flags: --systems N (default 60)  --util U (default 0.6)  --seed S
//        --stages N (default 3)    --jobs N (default 6)    --out FILE.csv
#include <cmath>
#include <cstdio>

#include "eval/validation.hpp"
#include "model/priority.hpp"
#include "util/csv.hpp"
#include "util/options.hpp"
#include "workload/jobshop.hpp"

using namespace rta;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::size_t systems = opts.get_int("systems", 60);
  const double util = opts.get_double("util", 0.6);
  const std::size_t stages = opts.get_int("stages", 3);
  const std::size_t jobs = opts.get_int("jobs", 6);
  const std::uint64_t seed = opts.get_int("seed", 11);
  const std::string out = opts.get("out", "literal_soundness.csv");

  std::printf("Theorems 5/6 as printed vs the sound per-candidate variant\n");
  std::printf("%zu random shops, stages=%zu, jobs=%zu, utilization=%.2f\n\n",
              systems, stages, jobs, util);

  CsvWriter csv({"scheduler", "variant", "jobs_checked", "violations",
                 "violation_fraction", "mean_bound_over_observed"});

  std::printf("%-6s %-9s %8s %11s %10s %10s\n", "sched", "variant", "jobs",
              "violations", "viol.frac", "mean b/o");
  for (SchedulerKind kind : {SchedulerKind::kSpnp, SchedulerKind::kSpp}) {
    for (BoundsVariant variant :
         {BoundsVariant::kPaperLiteral, BoundsVariant::kSound}) {
      std::size_t checked = 0, violations = 0;
      double ratio_sum = 0.0;
      std::size_t ratio_n = 0;
      for (std::uint64_t s = 1; s <= systems; ++s) {
        JobShopConfig cfg;
        cfg.stages = stages;
        cfg.processors_per_stage = 2;
        cfg.jobs = jobs;
        cfg.pattern =
            (s % 2) ? ArrivalPattern::kPeriodic : ArrivalPattern::kAperiodic;
        cfg.utilization = util;
        cfg.window_periods = 6.0;
        cfg.min_rate = 0.15;
        cfg.scheduler = kind;
        Rng rng(seed * 100 + s);
        System sys = generate_jobshop(cfg, rng);
        assign_proportional_deadline_monotonic(sys);

        AnalysisConfig ac;
        ac.bounds_variant = variant;
        const Method method = kind == SchedulerKind::kSpnp
                                  ? Method::kSpnpApp
                                  : Method::kSppApp;
        const ValidationReport rep = validate_method(method, sys, ac);
        if (!rep.analysis_ok) continue;
        for (const JobValidation& jv : rep.jobs) {
          ++checked;
          if (std::isinf(jv.analyzed_bound)) continue;
          if (std::isinf(jv.simulated_worst) ||
              jv.analyzed_bound < jv.simulated_worst - 1e-6) {
            ++violations;
          } else if (jv.simulated_worst > 1e-9) {
            ratio_sum += jv.analyzed_bound / jv.simulated_worst;
            ++ratio_n;
          }
        }
      }
      const char* vname =
          variant == BoundsVariant::kPaperLiteral ? "literal" : "sound";
      const double frac = checked ? static_cast<double>(violations) /
                                        static_cast<double>(checked)
                                  : 0.0;
      const double mean_ratio =
          ratio_n ? ratio_sum / static_cast<double>(ratio_n) : 0.0;
      std::printf("%-6s %-9s %8zu %11zu %10.3f %10.3f\n", to_string(kind),
                  vname, checked, violations, frac, mean_ratio);
      csv.add(std::string(to_string(kind)), std::string(vname), checked,
              violations, frac, mean_ratio);
    }
  }

  std::printf("\n(violations = jobs whose bound fell below the simulated "
              "worst response; the sound variant must show 0)\n");
  if (csv.write_file(out)) std::printf("wrote %s\n", out.c_str());
  return 0;
}
