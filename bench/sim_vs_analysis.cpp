// Validation bench: analysis bounds vs simulated worst-case response times
// on random job shops, per method. Reports, for each method, how often the
// bound held (it must always hold), and the tightness distribution
// (bound / observed ratio).
//
// Flags: --systems N (default 40)  --stages N (default 3)  --jobs N (def. 5)
//        --util U (default 0.5)    --seed S                --out FILE.csv
#include <cmath>
#include <cstdio>

#include "eval/validation.hpp"
#include "model/priority.hpp"
#include "util/csv.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "workload/jobshop.hpp"

using namespace rta;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::size_t systems = opts.get_int("systems", 40);
  const std::size_t stages = opts.get_int("stages", 3);
  const std::size_t jobs = opts.get_int("jobs", 5);
  const double util = opts.get_double("util", 0.5);
  const std::uint64_t seed = opts.get_int("seed", 7);
  const std::string out = opts.get("out", "sim_vs_analysis.csv");

  std::printf("Analysis bounds vs simulation: %zu random shops "
              "(stages=%zu, jobs=%zu, utilization=%.2f)\n",
              systems, stages, jobs, util);

  const std::vector<std::pair<Method, ArrivalPattern>> cases = {
      {Method::kSppExact, ArrivalPattern::kPeriodic},
      {Method::kSppExact, ArrivalPattern::kAperiodic},
      {Method::kSppApp, ArrivalPattern::kAperiodic},
      {Method::kSppSL, ArrivalPattern::kPeriodic},
      {Method::kSpnpApp, ArrivalPattern::kPeriodic},
      {Method::kSpnpApp, ArrivalPattern::kAperiodic},
      {Method::kFcfsApp, ArrivalPattern::kPeriodic},
      {Method::kFcfsApp, ArrivalPattern::kAperiodic},
  };

  CsvWriter csv({"method", "pattern", "systems", "jobs_checked",
                 "bound_violations", "mean_tightness", "max_tightness"});

  std::printf("\n%10s %10s %8s %10s %11s %11s %11s\n", "method", "pattern",
              "systems", "jobs", "violations", "mean b/o", "max b/o");
  for (const auto& [method, pattern] : cases) {
    RunningStats tightness;
    std::size_t checked = 0;
    std::size_t violations = 0;
    for (std::uint64_t s = 1; s <= systems; ++s) {
      JobShopConfig cfg;
      cfg.stages = stages;
      cfg.processors_per_stage = 2;
      cfg.jobs = jobs;
      cfg.pattern = pattern;
      cfg.utilization = util;
      cfg.window_periods = 6.0;
      cfg.min_rate = 0.15;
      cfg.scheduler = method_scheduler(method);
      Rng rng(seed * 1000 + s);
      System sys = generate_jobshop(cfg, rng);
      assign_proportional_deadline_monotonic(sys);

      const ValidationReport rep =
          validate_method(method, sys, AnalysisConfig{});
      if (!rep.analysis_ok) continue;
      for (const JobValidation& jv : rep.jobs) {
        ++checked;
        if (std::isinf(jv.analyzed_bound)) continue;
        if (std::isinf(jv.simulated_worst) ||
            jv.analyzed_bound < jv.simulated_worst - 1e-6) {
          ++violations;
          continue;
        }
        if (jv.simulated_worst > 1e-9) {
          tightness.add(jv.analyzed_bound / jv.simulated_worst);
        }
      }
    }
    const char* pat =
        pattern == ArrivalPattern::kPeriodic ? "periodic" : "aperiodic";
    std::printf("%10s %10s %8zu %10zu %11zu %11.3f %11.3f\n",
                method_name(method), pat, systems, checked, violations,
                tightness.mean(), tightness.max());
    csv.add(std::string(method_name(method)), std::string(pat), systems,
            checked, violations, tightness.mean(), tightness.max());
  }

  std::printf("\n(b/o = analyzed bound / observed worst response; SPP/Exact "
              "must sit at 1.000; violations must be 0 everywhere)\n");
  if (csv.write_file(out)) std::printf("wrote %s\n", out.c_str());
  return 0;
}
