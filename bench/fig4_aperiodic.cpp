// Figure 4 reproduction: admission probability vs system utilization for
// APERIODIC/bursty job arrivals (Eq. 27/28), comparing SPP/Exact, SPNP/App
// and FCFS/App (SPP/S&L is omitted, as in the paper -- it applies to
// periodic arrivals only).
//
// Panel grid: deadline ~ Gamma(mean, variance) scaled by the job's
// asymptotic period. The variance grows top to bottom, the mean grows left
// to right (the paper's exponential corresponds to variance = mean^2).
//
// Expected shape (paper §5.2): performance improves with larger deadline
// means; changing the variance has little effect; SPP/Exact dominates.
//
// Flags: --trials N (default 60)   --step U (default 0.2)
//        --jobs N (default 8)      --procs N (default 2)
//        --stages N (default 4)    --seed S
//        --window P (default 6)    --out FILE.csv
#include <cstdio>

#include "bench/bench_util.hpp"
#include "util/options.hpp"

using namespace rta;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::size_t trials = opts.get_int("trials", 60);
  const double step = opts.get_double("step", 0.2);
  const std::size_t jobs = opts.get_int("jobs", 8);
  const std::size_t procs = opts.get_int("procs", 2);
  const std::size_t stages = opts.get_int("stages", 4);
  const std::uint64_t seed = opts.get_int("seed", 42);
  const double window = opts.get_double("window", 6.0);
  const std::string out = opts.get("out", "fig4_aperiodic.csv");

  // Rows: variance factor v in variance = v * mean^2 (v = 1 is the paper's
  // exponential); columns: mean (in periods).
  const std::vector<double> variance_rows = {0.5, 1.0, 2.0};
  const std::vector<double> mean_cols = {3.0, 6.0};
  const std::vector<double> grid = bench::utilization_grid(0.1, 1.7, step);
  const std::vector<Method> methods = {Method::kSppExact, Method::kSpnpApp,
                                       Method::kFcfsApp};

  std::printf("Figure 4: admission probability vs utilization, aperiodic "
              "bursty arrivals (Eq. 27/28)\n");
  std::printf("trials/point = %zu, stages = %zu, jobs = %zu, "
              "processors/stage = %zu, seed = %llu\n",
              trials, stages, jobs, procs,
              static_cast<unsigned long long>(seed));

  CsvWriter csv({"panel", "utilization", "method", "admission_probability",
                 "ci95_half_width", "trials"});
  const char* labels[2][3] = {{"a", "b", "c"}, {"d", "e", "f"}};

  for (std::size_t col = 0; col < mean_cols.size(); ++col) {
    for (std::size_t row = 0; row < variance_rows.size(); ++row) {
      AdmissionConfig cfg;
      cfg.shop.stages = stages;
      cfg.shop.processors_per_stage = procs;
      cfg.shop.jobs = jobs;
      cfg.shop.pattern = ArrivalPattern::kAperiodic;
      cfg.shop.deadline.mean = mean_cols[col];
      cfg.shop.deadline.variance =
          variance_rows[row] * mean_cols[col] * mean_cols[col];
      cfg.shop.window_periods = window;
      cfg.shop.min_rate = 0.1;
      cfg.utilizations = grid;
      cfg.methods = methods;
      cfg.trials = trials;
      cfg.seed = seed;
      const auto points = run_admission_experiment(cfg);

      char desc[160];
      std::snprintf(desc, sizeof(desc),
                    "deadline ~ Gamma(mean = %.0f periods, variance = "
                    "%.1f mean^2)",
                    mean_cols[col], variance_rows[row]);
      bench::print_panel(std::string("fig4(") + labels[col][row] + ")", desc,
                         grid, methods, points, &csv);
    }
  }

  if (csv.write_file(out)) {
    std::printf("\nwrote %s (%zu rows)\n", out.c_str(), csv.row_count());
  }
  return 0;
}
