// Microbenchmarks of the curve-algebra substrate (google-benchmark):
// the operators that dominate analysis cost.
#include <benchmark/benchmark.h>

#include "curve/algebra.hpp"
#include "curve/arrival.hpp"
#include "curve/transforms.hpp"
#include "util/rng.hpp"

namespace rta {
namespace {

PwlCurve make_step(int jumps, Time horizon, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Time> times;
  times.reserve(jumps);
  for (int i = 0; i < jumps; ++i) times.push_back(rng.uniform(0.0, horizon));
  std::sort(times.begin(), times.end());
  return PwlCurve::step(horizon, times);
}

void BM_StepConstruction(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<Time> times;
  for (int i = 0; i < jumps; ++i) times.push_back(rng.uniform(0.0, 100.0));
  std::sort(times.begin(), times.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(PwlCurve::step(100.0, times));
  }
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_StepConstruction)->Range(16, 1024)->Complexity();

void BM_CurveAdd(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const PwlCurve a = make_step(jumps, 100.0, 1);
  const PwlCurve b = make_step(jumps, 100.0, 2);
  for (auto _ : state) benchmark::DoNotOptimize(curve_add(a, b));
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_CurveAdd)->Range(16, 1024)->Complexity();

void BM_CurveMinWithCrossings(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const PwlCurve a = make_step(jumps, 100.0, 3);
  const PwlCurve b = PwlCurve::line(100.0, a.end_value() / 100.0);
  for (auto _ : state) benchmark::DoNotOptimize(curve_min(a, b));
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_CurveMinWithCrossings)->Range(16, 1024)->Complexity();

void BM_RunningMax(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const PwlCurve f =
      curve_sub(PwlCurve::identity(100.0), make_step(jumps, 100.0, 4));
  for (auto _ : state) benchmark::DoNotOptimize(curve_running_max(f));
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_RunningMax)->Range(16, 1024)->Complexity();

void BM_ServiceTransform(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const PwlCurve c = curve_scale(make_step(jumps, 100.0, 5), 0.05);
  const PwlCurve avail = PwlCurve::identity(100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service_transform(avail, c));
  }
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_ServiceTransform)->Range(16, 1024)->Complexity();

void BM_FloorDiv(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const PwlCurve c = curve_scale(make_step(jumps, 100.0, 6), 0.05);
  const PwlCurve s = service_transform(PwlCurve::identity(100.0), c);
  for (auto _ : state) benchmark::DoNotOptimize(curve_floor_div(s, 0.05));
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_FloorDiv)->Range(16, 1024)->Complexity();

void BM_PseudoInverse(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const PwlCurve a = make_step(jumps, 100.0, 7);
  double level = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.pseudo_inverse(level));
    level = (level >= a.end_value()) ? 1.0 : level + 1.0;
  }
}
BENCHMARK(BM_PseudoInverse)->Range(16, 1024);

void BM_ArrivalGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ArrivalSequence::bursty_eq27(0.3, static_cast<double>(state.range(0))));
  }
}
BENCHMARK(BM_ArrivalGeneration)->Range(64, 4096);

}  // namespace
}  // namespace rta

BENCHMARK_MAIN();
