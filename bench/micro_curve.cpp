// Microbenchmarks of the curve-algebra substrate (google-benchmark):
// the operators that dominate analysis cost.
//
// Two modes:
//   * default: the usual google-benchmark CLI, now including Legacy* twins
//     that run the knot-walking reference kernels (curve/reference.hpp) so
//     `--benchmark_filter=Add` prints flat-vs-legacy side by side;
//   * `--out FILE`: a self-timed flat-vs-legacy comparison harness that
//     writes FILE as JSON (BENCH_curve.json in CI) with ns/op for both
//     implementations and the speedup per kernel.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "curve/algebra.hpp"
#include "curve/arrival.hpp"
#include "curve/minplus.hpp"
#include "curve/reference.hpp"
#include "curve/transforms.hpp"
#include "util/rng.hpp"

namespace rta {
namespace {

PwlCurve make_step(int jumps, Time horizon, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Time> times;
  times.reserve(jumps);
  for (int i = 0; i < jumps; ++i) times.push_back(rng.uniform(0.0, horizon));
  std::sort(times.begin(), times.end());
  return PwlCurve::step(horizon, times);
}

void BM_StepConstruction(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<Time> times;
  for (int i = 0; i < jumps; ++i) times.push_back(rng.uniform(0.0, 100.0));
  std::sort(times.begin(), times.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(PwlCurve::step(100.0, times));
  }
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_StepConstruction)->Range(16, 1024)->Complexity();

void BM_CurveAdd(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const PwlCurve a = make_step(jumps, 100.0, 1);
  const PwlCurve b = make_step(jumps, 100.0, 2);
  for (auto _ : state) benchmark::DoNotOptimize(curve_add(a, b));
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_CurveAdd)->Range(16, 1024)->Complexity();

void BM_LegacyCurveAdd(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const legacyref::Curve a = make_step(jumps, 100.0, 1).knots();
  const legacyref::Curve b = make_step(jumps, 100.0, 2).knots();
  for (auto _ : state) benchmark::DoNotOptimize(legacyref::add(a, b));
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_LegacyCurveAdd)->Range(16, 1024)->Complexity();

void BM_CurveMinWithCrossings(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const PwlCurve a = make_step(jumps, 100.0, 3);
  const PwlCurve b = PwlCurve::line(100.0, a.end_value() / 100.0);
  for (auto _ : state) benchmark::DoNotOptimize(curve_min(a, b));
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_CurveMinWithCrossings)->Range(16, 1024)->Complexity();

void BM_RunningMax(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const PwlCurve f =
      curve_sub(PwlCurve::identity(100.0), make_step(jumps, 100.0, 4));
  for (auto _ : state) benchmark::DoNotOptimize(curve_running_max(f));
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_RunningMax)->Range(16, 1024)->Complexity();

void BM_LegacyRunningMax(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const legacyref::Curve f =
      curve_sub(PwlCurve::identity(100.0), make_step(jumps, 100.0, 4)).knots();
  for (auto _ : state) benchmark::DoNotOptimize(legacyref::running_max(f));
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_LegacyRunningMax)->Range(16, 1024)->Complexity();

void BM_ServiceTransform(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const PwlCurve c = curve_scale(make_step(jumps, 100.0, 5), 0.05);
  const PwlCurve avail = PwlCurve::identity(100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service_transform(avail, c));
  }
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_ServiceTransform)->Range(16, 1024)->Complexity();

void BM_LegacyServiceTransform(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const legacyref::Curve c =
      curve_scale(make_step(jumps, 100.0, 5), 0.05).knots();
  const legacyref::Curve avail = PwlCurve::identity(100.0).knots();
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacyref::service_transform(avail, c));
  }
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_LegacyServiceTransform)->Range(16, 1024)->Complexity();

void BM_Convolution(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const PwlCurve f = curve_scale(make_step(jumps, 100.0, 8), 0.4);
  const PwlCurve g = curve_scale(make_step(jumps, 100.0, 9), 0.6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_plus_convolution(f, g));
  }
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_Convolution)->Range(16, 128)->Complexity();

void BM_LegacyConvolution(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const legacyref::Curve f = curve_scale(make_step(jumps, 100.0, 8), 0.4).knots();
  const legacyref::Curve g = curve_scale(make_step(jumps, 100.0, 9), 0.6).knots();
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacyref::convolution(f, g));
  }
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_LegacyConvolution)->Range(16, 128)->Complexity();

void BM_FloorDiv(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const PwlCurve c = curve_scale(make_step(jumps, 100.0, 6), 0.05);
  const PwlCurve s = service_transform(PwlCurve::identity(100.0), c);
  for (auto _ : state) benchmark::DoNotOptimize(curve_floor_div(s, 0.05));
  state.SetComplexityN(jumps);
}
BENCHMARK(BM_FloorDiv)->Range(16, 1024)->Complexity();

void BM_PseudoInverse(benchmark::State& state) {
  const int jumps = static_cast<int>(state.range(0));
  const PwlCurve a = make_step(jumps, 100.0, 7);
  double level = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.pseudo_inverse(level));
    level = (level >= a.end_value()) ? 1.0 : level + 1.0;
  }
}
BENCHMARK(BM_PseudoInverse)->Range(16, 1024);

void BM_ArrivalGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ArrivalSequence::bursty_eq27(0.3, static_cast<double>(state.range(0))));
  }
}
BENCHMARK(BM_ArrivalGeneration)->Range(64, 4096);

}  // namespace
}  // namespace rta

// ---------------------------------------------------------------------------
// Self-timed flat-vs-legacy harness (`--out FILE`): the CI smoke run. Each
// kernel is timed as best-of-repeats ns/op for the production (flat SoA)
// implementation and the transplanted legacy knot-walking reference on
// identical inputs, and the pairs land in a JSON report.

namespace rta::curvebench {
namespace {

struct KernelResult {
  std::string name;
  int knots = 0;
  double flat_ns = 0.0;
  double legacy_ns = 0.0;
};

template <typename F>
double ns_per_op(F&& body, int iters, int repeats) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) body();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(iters);
    best = std::min(best, ns);
  }
  return best;
}

std::vector<KernelResult> run_comparison() {
  std::vector<KernelResult> out;
  constexpr int kRepeats = 5;

  const auto probe_grid = [](Time horizon, int n) {
    Rng rng(42);
    std::vector<Time> ts;
    ts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) ts.push_back(rng.uniform(0.0, horizon));
    std::sort(ts.begin(), ts.end());
    return ts;
  };

  for (const int n : {256, 1024}) {
    const PwlCurve a = make_step(n, 100.0, 1);
    const PwlCurve b = make_step(n, 100.0, 2);
    const legacyref::Curve ra = a.knots();
    const legacyref::Curve rb = b.knots();

    {
      KernelResult k{"eval_sweep", n, 0.0, 0.0};
      const std::vector<Time> ts = probe_grid(100.0, 512);
      k.flat_ns = ns_per_op(
          [&] {
            for (Time t : ts) benchmark::DoNotOptimize(a.eval(t));
          },
          200, kRepeats);
      k.legacy_ns = ns_per_op(
          [&] {
            for (Time t : ts) benchmark::DoNotOptimize(legacyref::eval(ra, t));
          },
          200, kRepeats);
      out.push_back(k);
    }
    {
      KernelResult k{"pseudo_inverse_sweep", n, 0.0, 0.0};
      std::vector<double> levels;
      for (int i = 0; i < 256; ++i) {
        levels.push_back(a.end_value() * static_cast<double>(i) / 256.0);
      }
      k.flat_ns = ns_per_op(
          [&] {
            for (double y : levels) benchmark::DoNotOptimize(a.pseudo_inverse(y));
          },
          200, kRepeats);
      k.legacy_ns = ns_per_op(
          [&] {
            for (double y : levels) {
              benchmark::DoNotOptimize(legacyref::pseudo_inverse(ra, y));
            }
          },
          200, kRepeats);
      out.push_back(k);
    }
    {
      KernelResult k{"pointwise_add", n, 0.0, 0.0};
      k.flat_ns = ns_per_op([&] { benchmark::DoNotOptimize(curve_add(a, b)); },
                            100, kRepeats);
      k.legacy_ns = ns_per_op(
          [&] { benchmark::DoNotOptimize(legacyref::add(ra, rb)); }, 100,
          kRepeats);
      out.push_back(k);
    }
    {
      KernelResult k{"min_with_crossings", n, 0.0, 0.0};
      const PwlCurve line = PwlCurve::line(100.0, a.end_value() / 100.0);
      const legacyref::Curve rline = line.knots();
      k.flat_ns = ns_per_op(
          [&] { benchmark::DoNotOptimize(curve_min(a, line)); }, 100, kRepeats);
      k.legacy_ns = ns_per_op(
          [&] { benchmark::DoNotOptimize(legacyref::min(ra, rline)); }, 100,
          kRepeats);
      out.push_back(k);
    }
    {
      KernelResult k{"running_max", n, 0.0, 0.0};
      const PwlCurve f = curve_sub(PwlCurve::identity(100.0), a);
      const legacyref::Curve rf = f.knots();
      k.flat_ns = ns_per_op(
          [&] { benchmark::DoNotOptimize(curve_running_max(f)); }, 100,
          kRepeats);
      k.legacy_ns = ns_per_op(
          [&] { benchmark::DoNotOptimize(legacyref::running_max(rf)); }, 100,
          kRepeats);
      out.push_back(k);
    }
    {
      KernelResult k{"min_scan_service_transform", n, 0.0, 0.0};
      const PwlCurve c = curve_scale(a, 0.05);
      const PwlCurve avail = PwlCurve::identity(100.0);
      const legacyref::Curve rc = c.knots();
      const legacyref::Curve ravail = avail.knots();
      k.flat_ns = ns_per_op(
          [&] { benchmark::DoNotOptimize(service_transform(avail, c)); }, 20,
          kRepeats);
      k.legacy_ns = ns_per_op(
          [&] {
            benchmark::DoNotOptimize(legacyref::service_transform(ravail, rc));
          },
          20, kRepeats);
      out.push_back(k);
    }
  }

  // Min-plus kernels scale superlinearly; keep operand sizes envelope-like.
  for (const int n : {32, 96}) {
    const PwlCurve f = curve_scale(make_step(n, 100.0, 8), 0.4);
    const PwlCurve g = curve_scale(make_step(n, 100.0, 9), 0.6);
    const legacyref::Curve rf = f.knots();
    const legacyref::Curve rg = g.knots();
    {
      KernelResult k{"minplus_convolution", n, 0.0, 0.0};
      k.flat_ns = ns_per_op(
          [&] { benchmark::DoNotOptimize(min_plus_convolution(f, g)); }, 10,
          kRepeats);
      k.legacy_ns = ns_per_op(
          [&] { benchmark::DoNotOptimize(legacyref::convolution(rf, rg)); },
          10, kRepeats);
      out.push_back(k);
    }
    {
      KernelResult k{"minplus_deconvolution", n, 0.0, 0.0};
      k.flat_ns = ns_per_op(
          [&] { benchmark::DoNotOptimize(min_plus_deconvolution(f, g)); }, 10,
          kRepeats);
      k.legacy_ns = ns_per_op(
          [&] { benchmark::DoNotOptimize(legacyref::deconvolution(rf, rg)); },
          10, kRepeats);
      out.push_back(k);
    }
  }
  return out;
}

int run_and_write(const std::string& path) {
  const std::vector<KernelResult> results = run_comparison();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"micro_curve\",\n");
  std::fprintf(f, "  \"compare\": \"flat_soa_vs_legacy_knots\",\n");
  std::fprintf(f, "  \"kernels\": [\n");
  std::printf("%-28s %6s %14s %14s %9s\n", "kernel", "knots", "flat ns/op",
              "legacy ns/op", "speedup");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const KernelResult& k = results[i];
    const double speedup = k.legacy_ns / k.flat_ns;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"knots\": %d, "
                 "\"flat_ns_per_op\": %.1f, \"legacy_ns_per_op\": %.1f, "
                 "\"speedup\": %.3f}%s\n",
                 k.name.c_str(), k.knots, k.flat_ns, k.legacy_ns, speedup,
                 i + 1 < results.size() ? "," : "");
    std::printf("%-28s %6d %14.1f %14.1f %8.2fx\n", k.name.c_str(), k.knots,
                k.flat_ns, k.legacy_ns, speedup);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace rta::curvebench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--out" && i + 1 < argc) {
      return rta::curvebench::run_and_write(argv[i + 1]);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
