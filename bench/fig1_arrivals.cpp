// Figure 1 reproduction: arrival functions of the first subjob for a
// periodic pattern (Eq. 25) and the paper's bursty aperiodic pattern
// (Eq. 27), printed as step-function samples and released-instant tables.
//
// Flags: --x RATE (default 0.5)  --window T (default 12)  --out FILE.csv
#include <cstdio>

#include "curve/arrival.hpp"
#include "util/csv.hpp"
#include "util/options.hpp"

using namespace rta;

namespace {

void print_sequence(const char* name, const ArrivalSequence& seq,
                    Time window, CsvWriter* csv) {
  std::printf("\n%s arrivals (t_m):", name);
  for (std::size_t m = 1; m <= seq.count(); ++m) {
    std::printf(" %.3f", seq.release(m));
  }
  std::printf("\n%s f_arr(t) samples:\n  t   :", name);
  const PwlCurve f = seq.to_curve(window);
  for (double t = 0.0; t <= window + 1e-9; t += window / 12.0) {
    std::printf(" %6.2f", t);
  }
  std::printf("\n  f(t):");
  for (double t = 0.0; t <= window + 1e-9; t += window / 12.0) {
    std::printf(" %6.0f", f.eval(t));
    if (csv) csv->add(std::string(name), t, f.eval(t));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const double x = opts.get_double("x", 0.5);
  const Time window = opts.get_double("window", 12.0);
  const std::string out = opts.get("out", "fig1_arrivals.csv");

  std::printf("Figure 1: arrival functions of the first subjob (x = %.2f, "
              "period 1/x = %.2f)\n", x, 1.0 / x);

  CsvWriter csv({"pattern", "t", "arrivals"});
  print_sequence("periodic (Eq.25)",
                 ArrivalSequence::periodic(1.0 / x, window), window, &csv);
  print_sequence("bursty (Eq.27)", ArrivalSequence::bursty_eq27(x, window),
                 window, &csv);

  // The defining property: the bursty pattern front-loads its releases.
  const ArrivalSequence p = ArrivalSequence::periodic(1.0 / x, window);
  const ArrivalSequence b = ArrivalSequence::bursty_eq27(x, window);
  std::printf("\nwithin [0, %.1f]: periodic releases %zu instances, bursty "
              "releases %zu\n",
              window, p.count(), b.count());

  if (csv.write_file(out)) {
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
