// Scaling study for the parallel, memoizing analysis engine: analyze a batch
// of Fig. 3 (periodic) and Fig. 4 (aperiodic) job-shop systems with the
// iterative fixed-point engine, sweeping the worker count from 1 up to the
// hardware concurrency (and at least 8, the paper-reproduction reference
// point), with the curve cache on. The baseline is the serial, uncached
// engine -- exactly what `rta_cli analyze` runs by default -- so "speedup"
// reads as end-to-end analysis-time reduction, not kernel-only time.
//
// Every configuration's results are checksummed against the baseline; a
// mismatch aborts the bench, so a reported speedup is always a speedup of
// the SAME arithmetic (the engine's determinism contract).
//
// Output: a human-readable table on stdout and BENCH_parallel.json with one
// entry per (scenario, threads) point: wall seconds (best of --repeats),
// speedup vs baseline, and the analyzer's cache hit/miss counters.
//
// Flags: --systems N (default 24)  --repeats N (default 3)
//        --stages N (default 4)    --procs N (default 2, per stage)
//        --jobs N (default 8)      --util U (default 0.7)
//        --seed S (default 42)     --out FILE (default BENCH_parallel.json)
//        --max-threads N (default max(hardware, 8))
#include <bit>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "analysis/iterative.hpp"
#include "model/priority.hpp"
#include "obs/metrics.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "workload/jobshop.hpp"

using namespace rta;

namespace {

struct Scenario {
  std::string name;
  ArrivalPattern pattern;
};

struct Point {
  int threads = 1;
  bool cache = false;
  double seconds = 0.0;
  double speedup = 1.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  /// Per-phase engine breakdown from the metrics registry (last repeat):
  /// wall time inside processor passes vs. arrival propagation.
  std::uint64_t pass_time_us = 0;
  std::uint64_t propagate_time_us = 0;
  std::uint64_t passes_run = 0;
  std::uint64_t passes_skipped = 0;
};

std::vector<System> make_systems(const Options& opts, ArrivalPattern pattern,
                                 std::size_t count, std::uint64_t seed) {
  JobShopConfig cfg;
  cfg.stages = static_cast<std::size_t>(opts.get_int("stages", 4));
  cfg.processors_per_stage =
      static_cast<std::size_t>(opts.get_int("procs", 2));
  cfg.jobs = static_cast<std::size_t>(opts.get_int("jobs", 8));
  cfg.pattern = pattern;
  cfg.utilization = opts.get_double("util", 0.7);
  cfg.window_periods = 4.0;
  cfg.deadline.period_multiple = 4.0;
  cfg.scheduler = SchedulerKind::kSpp;

  const RngFactory factory(seed);
  std::vector<System> systems;
  systems.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng = factory.stream(static_cast<std::uint64_t>(i));
    System system = generate_jobshop(cfg, rng);
    assign_proportional_deadline_monotonic(system);
    systems.push_back(std::move(system));
  }
  return systems;
}

/// Order-sensitive digest of every reported bound; bitwise equality of the
/// digests across configurations is the determinism check.
std::uint64_t result_digest(std::uint64_t h, const AnalysisResult& r) {
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(r.ok ? 1u : 0u);
  for (const JobReport& j : r.jobs) {
    mix(std::bit_cast<std::uint64_t>(j.wcrt));
    for (const SubjobReport& hop : j.hops) {
      mix(std::bit_cast<std::uint64_t>(hop.local_bound));
    }
  }
  return h;
}

/// Analyze the whole batch through one analyzer (so the cache amortizes
/// across systems, as it does in the admission experiments); returns the
/// best-of-repeats wall time and the digest of the last repeat.
Point run_config(const std::vector<System>& systems, int threads, bool cache,
                 int repeats, std::uint64_t* digest_out) {
  Point point;
  point.threads = threads;
  point.cache = cache;
  point.seconds = -1.0;
  for (int rep = 0; rep < repeats; ++rep) {
    // Every repeat carries the same metrics sink, so the timing comparison
    // across thread counts stays apples-to-apples (the sink's overhead is
    // bounded by the micro_analysis null-sink budget anyway).
    obs::MetricsRegistry registry;
    AnalysisConfig cfg;
    cfg.threads = threads;
    cfg.use_curve_cache = cache;
    cfg.observer.metrics = &registry;
    IterativeBoundsAnalyzer analyzer(cfg);
    std::uint64_t digest = 0xC0FFEEull;
    const auto start = std::chrono::steady_clock::now();
    for (const System& system : systems) {
      digest = result_digest(digest, analyzer.analyze(system));
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (point.seconds < 0.0 || elapsed.count() < point.seconds) {
      point.seconds = elapsed.count();
    }
    *digest_out = digest;
    if (analyzer.curve_cache() != nullptr) {
      const CurveCacheStats stats = analyzer.curve_cache()->stats();
      point.cache_hits = stats.hits();
      point.cache_misses = stats.misses();
    }
    const obs::MetricsSnapshot snap = registry.snapshot();
    auto counter = [&](const char* name) -> std::uint64_t {
      const auto it = snap.counters.find(name);
      return it == snap.counters.end() ? 0u : it->second;
    };
    point.pass_time_us = counter("iterative.pass_time_us");
    point.propagate_time_us = counter("iterative.propagate_time_us");
    point.passes_run = counter("iterative.passes_run");
    point.passes_skipped = counter("iterative.passes_skipped");
  }
  const std::uint64_t lookups = point.cache_hits + point.cache_misses;
  point.cache_hit_rate =
      lookups > 0 ? static_cast<double>(point.cache_hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  return point;
}

void write_json(const std::string& path, const Options& opts,
                std::size_t system_count, int repeats,
                const std::vector<std::pair<Scenario, std::vector<Point>>>&
                    scenarios) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"parallel_scaling\",\n");
  std::fprintf(f, "  \"engine\": \"iterative\",\n");
  std::fprintf(f,
               "  \"baseline\": {\"threads\": 1, \"cache\": false, "
               "\"note\": \"serial uncached engine; speedup is relative to "
               "this\"},\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"systems_per_scenario\": %zu,\n", system_count);
  std::fprintf(f, "  \"repeats\": %d,\n", repeats);
  std::fprintf(f, "  \"stages\": %lld, \"processors_per_stage\": %lld, "
               "\"jobs\": %lld, \"utilization\": %g,\n",
               opts.get_int("stages", 4), opts.get_int("procs", 2),
               opts.get_int("jobs", 8), opts.get_double("util", 0.7));
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const auto& [scenario, points] = scenarios[s];
    std::fprintf(f, "    {\n      \"name\": \"%s\",\n      \"points\": [\n",
                 scenario.name.c_str());
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::fprintf(f,
                   "        {\"threads\": %d, \"cache\": %s, "
                   "\"seconds\": %.6f, \"speedup\": %.3f, "
                   "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                   "\"cache_hit_rate\": %.4f, "
                   "\"phase_us\": {\"processor_passes\": %llu, "
                   "\"propagation\": %llu}, "
                   "\"passes_run\": %llu, \"passes_skipped\": %llu}%s\n",
                   p.threads, p.cache ? "true" : "false", p.seconds, p.speedup,
                   static_cast<unsigned long long>(p.cache_hits),
                   static_cast<unsigned long long>(p.cache_misses),
                   p.cache_hit_rate,
                   static_cast<unsigned long long>(p.pass_time_us),
                   static_cast<unsigned long long>(p.propagate_time_us),
                   static_cast<unsigned long long>(p.passes_run),
                   static_cast<unsigned long long>(p.passes_skipped),
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n    }%s\n",
                 s + 1 < scenarios.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::size_t system_count =
      static_cast<std::size_t>(opts.get_int("systems", 24));
  const int repeats = static_cast<int>(opts.get_int("repeats", 3));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const std::string out = opts.get("out", "BENCH_parallel.json");

  const unsigned hw = std::thread::hardware_concurrency();
  const long long max_threads =
      opts.get_int("max-threads", hw > 8 ? static_cast<long long>(hw) : 8);
  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != max_threads) {
    thread_counts.push_back(static_cast<int>(max_threads));
  }

  std::printf("Parallel scaling: iterative engine on %zu job-shop systems "
              "per scenario, best of %d repeats (hardware threads: %u)\n",
              system_count, repeats, hw);

  const std::vector<Scenario> scenario_defs = {
      {"fig3_periodic_jobshop", ArrivalPattern::kPeriodic},
      {"fig4_aperiodic_jobshop", ArrivalPattern::kAperiodic},
  };

  std::vector<std::pair<Scenario, std::vector<Point>>> results;
  for (const Scenario& scenario : scenario_defs) {
    const std::vector<System> systems =
        make_systems(opts, scenario.pattern, system_count, seed);

    std::uint64_t baseline_digest = 0;
    Point baseline =
        run_config(systems, 1, false, repeats, &baseline_digest);
    baseline.speedup = 1.0;

    std::printf("\n--- %s ---\n", scenario.name.c_str());
    std::printf("%8s %6s %10s %8s %12s %12s %6s %10s %10s\n", "threads",
                "cache", "seconds", "speedup", "cache_hits", "cache_miss",
                "hit%", "pass_ms", "prop_ms");
    std::printf("%8d %6s %10.4f %8.2f %12s %12s %6s %10.1f %10.1f\n", 1,
                "off", baseline.seconds, 1.0, "-", "-", "-",
                static_cast<double>(baseline.pass_time_us) / 1000.0,
                static_cast<double>(baseline.propagate_time_us) / 1000.0);

    std::vector<Point> points;
    points.push_back(baseline);
    for (const int threads : thread_counts) {
      std::uint64_t digest = 0;
      Point p = run_config(systems, threads, true, repeats, &digest);
      if (digest != baseline_digest) {
        std::fprintf(stderr,
                     "FATAL: results at threads=%d diverge from the serial "
                     "baseline -- determinism contract violated\n",
                     threads);
        return 1;
      }
      p.speedup = baseline.seconds / p.seconds;
      std::printf("%8d %6s %10.4f %8.2f %12llu %12llu %5.0f%% %10.1f %10.1f\n",
                  threads, "on", p.seconds, p.speedup,
                  static_cast<unsigned long long>(p.cache_hits),
                  static_cast<unsigned long long>(p.cache_misses),
                  100.0 * p.cache_hit_rate,
                  static_cast<double>(p.pass_time_us) / 1000.0,
                  static_cast<double>(p.propagate_time_us) / 1000.0);
      points.push_back(p);
    }
    results.emplace_back(scenario, std::move(points));
  }

  write_json(out, opts, system_count, repeats, results);
  return 0;
}
