// Single-job admission latency: incremental AdmissionSession vs. full
// re-analysis, on the Fig. 3 periodic job shop (stages 4, 2 processors per
// stage, 8 jobs, utilization 0.7, SPP with PDM priorities -- the same
// configuration as parallel_scaling.cpp).
//
// The baseline is what a naive admission controller does: rebuild the
// candidate system and run a fresh full BoundsAnalyzer pass per request --
// with a long-lived analyzer, so its ThreadPool and CurveCache amortize
// (a generous baseline). The service answers the same requests through one
// AdmissionSession with a pinned horizon, recomputing only the dirty
// closure of the candidate job.
//
// Every candidate's bounds are checked bit-identical between the two paths
// before any timing is reported; a mismatch aborts the bench (the service's
// determinism contract, tests/test_service.cpp).
//
// A second phase drives a read-heavy polling stream (default 400 requests,
// 90% read-only: clients re-probing pending candidates between
// reconfigurations) through the sequential reference runner and through the
// batching RequestScheduler at parallel_reads 1, 2, and hardware. The
// scheduler's wins here are read coalescing (identical probes in a batch
// run once) and batch-amortized barriers; fan-out adds on top on multicore
// hosts. Every configuration's responses are digest-checked byte-identical
// (modulo latency_us) against the sequential run before any throughput
// number is reported.
//
// A third phase re-runs the scheduler pr=2 stream with the full
// observability path attached (per-request span trees, latency histograms,
// one live stats snapshot + Prometheus render inside the timer) and
// reports the overhead against the observer-off run; the bar is <= 5%.
//
// Output: a per-candidate latency table on stdout and BENCH_service.json
// with median/p90/max latencies per path, the median speedup, the
// stream-phase throughput per scheduler configuration, and the
// observability overhead fraction. The acceptance bars are a >= 2x median
// speedup for single-job admits, a >= 2x stream throughput for the
// scheduler over the sequential runner, and <= 5% observability overhead.
//
// Flags: --candidates N (default 40)  --repeats N (default 5)
//        --stages N (default 4)       --procs N (default 2, per stage)
//        --jobs N (default 8)         --util U (default 0.7)
//        --seed S (default 42)        --threads N (default 1)
//        --stream-requests N (default 400)  --stream-repeats N (default 2)
//        --out FILE (default BENCH_service.json)
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/bounds.hpp"
#include "io/json.hpp"
#include "model/priority.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/admission_session.hpp"
#include "service/metrics_export.hpp"
#include "service/request_runner.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "workload/jobshop.hpp"

using namespace rta;

namespace {

System make_base(const Options& opts, std::uint64_t seed) {
  JobShopConfig cfg;
  cfg.stages = static_cast<std::size_t>(opts.get_int("stages", 4));
  cfg.processors_per_stage =
      static_cast<std::size_t>(opts.get_int("procs", 2));
  cfg.jobs = static_cast<std::size_t>(opts.get_int("jobs", 8));
  cfg.pattern = ArrivalPattern::kPeriodic;
  cfg.utilization = opts.get_double("util", 0.7);
  cfg.window_periods = 4.0;
  cfg.deadline.period_multiple = 4.0;
  cfg.scheduler = SchedulerKind::kSpp;
  Rng rng(seed);
  System system = generate_jobshop(cfg, rng);
  assign_proportional_deadline_monotonic(system);
  return system;
}

/// Candidate jobs in the style of online admission requests: short chains,
/// modest demand, lowest priority on every processor they visit.
std::vector<Job> make_candidates(const System& base, std::size_t count,
                                 std::uint64_t seed) {
  const RngFactory factory(seed ^ 0xAD317ull);
  std::vector<Job> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng = factory.stream(static_cast<std::uint64_t>(i));
    Job job;
    job.name = "cand" + std::to_string(i);
    const int hops = rng.uniform_int(1, 3);
    double exec_total = 0.0;
    for (int h = 0; h < hops; ++h) {
      Subjob s;
      s.processor = rng.uniform_int(0, base.processor_count() - 1);
      s.exec_time = rng.uniform(0.02, 0.12);
      exec_total += s.exec_time;
      job.chain.push_back(s);
    }
    const Time period = rng.uniform(2.0, 6.0);
    const Time window = std::max<Time>(base.last_release(), 4.0 * period);
    job.arrivals = ArrivalSequence::periodic(period, window);
    job.deadline = exec_total * rng.uniform(6.0, 20.0) + period;
    service::assign_lowest_priorities(base, job);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::uint64_t result_digest(const AnalysisResult& r) {
  std::uint64_t h = 0xC0FFEEull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(r.ok ? 1u : 0u);
  for (const JobReport& j : r.jobs) {
    mix(std::bit_cast<std::uint64_t>(j.wcrt));
    for (const SubjobReport& hop : j.hops) {
      mix(std::bit_cast<std::uint64_t>(hop.local_bound));
    }
  }
  return h;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

struct PathStats {
  double median_us = 0.0;
  double p90_us = 0.0;
  double max_us = 0.0;
};

PathStats summarize(const std::vector<double>& per_candidate_us) {
  PathStats s;
  s.median_us = percentile(per_candidate_us, 0.5);
  s.p90_us = percentile(per_candidate_us, 0.9);
  s.max_us = *std::max_element(per_candidate_us.begin(),
                               per_candidate_us.end());
  return s;
}

/// Serialize a request line with no explicit priorities and no explicit id,
/// so every driver applies the same lowest-priority / auto-id policy.
std::string job_request_line(const std::string& op, const Job& job) {
  json::Value req;
  req.set("op", op);
  json::Value jv;
  jv.set("name", job.name);
  jv.set("deadline", job.deadline);
  json::Value::Array chain;
  for (const Subjob& s : job.chain) {
    json::Value hop;
    hop.set("processor", s.processor);
    hop.set("exec", s.exec_time);
    chain.push_back(std::move(hop));
  }
  jv.set("chain", json::Value(std::move(chain)));
  json::Value::Array arrivals;
  for (Time t : job.arrivals.releases()) arrivals.push_back(json::Value(t));
  jv.set("arrivals", json::Value(std::move(arrivals)));
  req.set("job", std::move(jv));
  return req.dump();
}

/// Read-heavy polling stream: each block of 20 requests opens with one
/// admit and its matching remove (coalesced into one mutation batch), then
/// 18 read-only requests that re-probe a working set of three candidates
/// plus a status query -- the polling shape online admission traffic takes
/// (clients re-checking pending candidates between reconfigurations) and
/// the one the scheduler's read coalescing exploits. Read fraction 90%.
std::string build_stream(const System& base, int n, std::uint64_t seed,
                         double* read_fraction_out) {
  const std::vector<Job> pool = make_candidates(
      base, static_cast<std::size_t>(std::max(n, 1)), seed ^ 0x57AEull);
  std::ostringstream out;
  int reads = 0;
  std::vector<std::string> probes;
  for (int i = 0; i < n; ++i) {
    const int slot = i % 20;
    if (slot == 0) {
      Job job = pool[static_cast<std::size_t>(i)];
      job.name = "stream_adm" + std::to_string(i);
      out << job_request_line("admit", job) << "\n";
      // Refresh the working set probed through the rest of this block.
      probes.clear();
      for (int c = 1; c <= 3; ++c) {
        probes.push_back(job_request_line(
            "what_if", pool[static_cast<std::size_t>((i + c) % n)]));
      }
      probes.push_back("{\"op\": \"query\"}");
    } else if (slot == 1) {
      out << "{\"op\": \"remove\", \"name\": \"stream_adm" << (i - 1)
          << "\"}\n";
    } else {
      out << probes[static_cast<std::size_t>(slot) % probes.size()] << "\n";
      ++reads;
    }
  }
  if (read_fraction_out != nullptr && n > 0) {
    *read_fraction_out = static_cast<double>(reads) / n;
  }
  return out.str();
}

/// Drop the (timing-dependent) latency_us field so response payloads can be
/// compared byte-for-byte across drivers.
std::string strip_latency(const std::string& responses) {
  static const std::regex kLatency(",\"latency_us\":[^,}]+");
  return std::regex_replace(responses, kLatency, "");
}

std::uint64_t bytes_digest(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::size_t candidate_count =
      static_cast<std::size_t>(opts.get_int("candidates", 40));
  const int repeats = static_cast<int>(opts.get_int("repeats", 5));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const int threads = static_cast<int>(opts.get_int("threads", 1));
  const std::string out = opts.get("out", "BENCH_service.json");

  const System base = make_base(opts, seed);
  const std::vector<Job> candidates =
      make_candidates(base, candidate_count, seed);

  // Both paths pin the same horizon, so the comparison (and the bit-identity
  // check) is horizon-for-horizon.
  AnalysisConfig analysis;
  analysis.threads = threads;
  analysis.use_curve_cache = true;
  analysis.horizon = default_horizon(base, AnalysisConfig{});

  service::SessionConfig session_cfg;
  session_cfg.analysis = analysis;
  service::AdmissionSession session(base, session_cfg);
  if (!session.last().ok) {
    std::fprintf(stderr, "base analysis failed: %s\n",
                 session.last().error.c_str());
    return 1;
  }
  BoundsAnalyzer full(analysis);  // long-lived: pool and cache amortize

  std::printf("Single-job admission latency on the Fig. 3 job shop "
              "(%d jobs, %d processors, util %.2f, threads %d), "
              "%zu candidates, best of %d repeats\n",
              base.job_count(), base.processor_count(),
              opts.get_double("util", 0.7), threads, candidate_count,
              repeats);

  std::vector<double> full_us(candidate_count, -1.0);
  std::vector<double> incr_us(candidate_count, -1.0);
  std::vector<int> dirty(candidate_count, 0);
  int total_subjobs = 0;
  int incremental_hits = 0;

  using Clock = std::chrono::steady_clock;
  for (int rep = 0; rep < repeats; ++rep) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      System candidate_system = base;  // rebuild outside the timer: generous
      candidate_system.add_job(candidates[i]);

      const Clock::time_point f0 = Clock::now();
      const AnalysisResult full_result = full.analyze(candidate_system);
      const std::chrono::duration<double, std::micro> f_us =
          Clock::now() - f0;

      const Clock::time_point s0 = Clock::now();
      const service::Decision d = session.what_if(candidates[i]);
      const std::chrono::duration<double, std::micro> s_us =
          Clock::now() - s0;

      if (!d.ok || !full_result.ok ||
          result_digest(full_result) != result_digest(d.analysis)) {
        std::fprintf(stderr,
                     "FATAL: candidate %zu diverges from full re-analysis "
                     "-- determinism contract violated\n",
                     i);
        return 1;
      }
      if (full_us[i] < 0.0 || f_us.count() < full_us[i]) {
        full_us[i] = f_us.count();
      }
      if (incr_us[i] < 0.0 || s_us.count() < incr_us[i]) {
        incr_us[i] = s_us.count();
      }
      if (rep == 0) {
        dirty[i] = d.dirty_subjobs;
        total_subjobs = d.total_subjobs;
        if (d.incremental) ++incremental_hits;
      }
    }
  }

  const PathStats fs = summarize(full_us);
  const PathStats is = summarize(incr_us);
  const double median_speedup =
      is.median_us > 0.0 ? fs.median_us / is.median_us : 0.0;

  std::vector<double> per_candidate_speedup(candidate_count, 0.0);
  std::printf("\n%10s %6s %12s %12s %9s\n", "candidate", "dirty", "full_us",
              "session_us", "speedup");
  for (std::size_t i = 0; i < candidate_count; ++i) {
    per_candidate_speedup[i] =
        incr_us[i] > 0.0 ? full_us[i] / incr_us[i] : 0.0;
    std::printf("%10zu %6d %12.1f %12.1f %8.1fx\n", i, dirty[i], full_us[i],
                incr_us[i], per_candidate_speedup[i]);
  }
  std::printf("\nfull re-analysis:  median %.1f us, p90 %.1f us, max %.1f us\n",
              fs.median_us, fs.p90_us, fs.max_us);
  std::printf("admission session: median %.1f us, p90 %.1f us, max %.1f us\n",
              is.median_us, is.p90_us, is.max_us);
  std::printf("median speedup: %.2fx (%d/%zu candidates incremental)\n",
              median_speedup, incremental_hits, candidate_count);
  if (median_speedup < 2.0) {
    std::fprintf(stderr,
                 "WARNING: median speedup %.2fx below the 2x acceptance "
                 "bar\n",
                 median_speedup);
  }

  // ---- Stream phase: sequential runner vs. RequestScheduler ------------
  const int stream_requests =
      static_cast<int>(opts.get_int("stream-requests", 400));
  const int stream_repeats =
      static_cast<int>(opts.get_int("stream-repeats", 2));
  double read_fraction = 0.0;
  const std::string stream =
      build_stream(base, stream_requests, seed, &read_fraction);

  struct StreamRun {
    const char* label;
    bool scheduled;
    int parallel_reads;  // meaningful when scheduled
    double best_us = -1.0;
    std::uint64_t digest = 0;
    service::RunnerStats stats;
  };
  std::vector<StreamRun> runs = {
      {"sequential", false, 1, -1.0, 0, {}},
      {"scheduler pr=1", true, 1, -1.0, 0, {}},
      {"scheduler pr=2", true, 2, -1.0, 0, {}},
      {"scheduler pr=hw", true, 0, -1.0, 0, {}},
  };

  std::printf("\nStream phase: %d requests, %.0f%% read-only, best of %d "
              "repeats\n",
              stream_requests, 100.0 * read_fraction, stream_repeats);
  for (StreamRun& run : runs) {
    for (int rep = 0; rep < stream_repeats; ++rep) {
      service::AdmissionSession stream_session(base, session_cfg);
      std::istringstream in(stream);
      std::ostringstream responses;
      service::StreamOptions stream_opts;
      stream_opts.parallel_reads = run.parallel_reads;
      const Clock::time_point t0 = Clock::now();
      const service::RunnerStats stats =
          run.scheduled
              ? service::run_request_stream(stream_session, in, responses,
                                            stream_opts)
              : service::run_request_stream(stream_session, in, responses);
      const std::chrono::duration<double, std::micro> us = Clock::now() - t0;
      const std::uint64_t digest = bytes_digest(strip_latency(responses.str()));
      if (rep == 0) {
        run.digest = digest;
        run.stats = stats;
      } else if (digest != run.digest) {
        std::fprintf(stderr, "FATAL: %s responses differ across repeats\n",
                     run.label);
        return 1;
      }
      if (run.best_us < 0.0 || us.count() < run.best_us) {
        run.best_us = us.count();
      }
    }
    if (run.digest != runs[0].digest || run.stats.requests != runs[0].stats.requests ||
        run.stats.errors != runs[0].stats.errors) {
      std::fprintf(stderr,
                   "FATAL: %s responses diverge from the sequential runner "
                   "-- determinism contract violated\n",
                   run.label);
      return 1;
    }
    const double speedup =
        run.best_us > 0.0 ? runs[0].best_us / run.best_us : 0.0;
    std::printf("  %-16s %10.1f us  %8.1f req/s  %5.2fx  "
                "(%d responses, %d errors, %d coalesced)\n",
                run.label, run.best_us,
                run.best_us > 0.0 ? 1e6 * stream_requests / run.best_us : 0.0,
                speedup, run.stats.requests, run.stats.errors,
                run.stats.coalesced);
  }
  double stream_best_speedup = 0.0;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    stream_best_speedup = std::max(
        stream_best_speedup,
        runs[i].best_us > 0.0 ? runs[0].best_us / runs[i].best_us : 0.0);
  }
  if (stream_best_speedup < 2.0) {
    std::fprintf(stderr,
                 "WARNING: stream speedup %.2fx below the 2x acceptance "
                 "bar\n",
                 stream_best_speedup);
  }

  // ---- Observability overhead phase ------------------------------------
  // Re-run the scheduler pr=2 stream with a MetricsRegistry and Tracer
  // attached (per-request span trees, latency histograms) plus one live
  // stats snapshot and Prometheus render inside the timer -- the full
  // introspection path `serve --metrics-prom` exercises. The acceptance
  // bar is <= 5% overhead against the observer-off pr=2 run above, and
  // the responses must stay byte-identical: observability never changes
  // what the service answers.
  double obs_best_us = -1.0;
  std::uint64_t obs_digest = 0;
  std::size_t obs_prom_bytes = 0;
  for (int rep = 0; rep < stream_repeats; ++rep) {
    obs::MetricsRegistry registry;
    obs::Tracer tracer;
    service::SessionConfig obs_cfg = session_cfg;
    obs_cfg.analysis.observer = obs::Observer{&registry, &tracer};
    service::AdmissionSession stream_session(base, obs_cfg);
    std::istringstream in(stream);
    std::ostringstream responses;
    service::StreamOptions stream_opts;
    stream_opts.parallel_reads = 2;
    const Clock::time_point t0 = Clock::now();
    service::run_request_stream(stream_session, in, responses, stream_opts);
    const std::string prom = service::to_prometheus_text(registry.snapshot());
    const std::chrono::duration<double, std::micro> us = Clock::now() - t0;
    obs_prom_bytes = prom.size();
    const std::uint64_t digest = bytes_digest(strip_latency(responses.str()));
    if (rep == 0) {
      obs_digest = digest;
    } else if (digest != obs_digest) {
      std::fprintf(stderr,
                   "FATAL: observer-on responses differ across repeats\n");
      return 1;
    }
    if (obs_best_us < 0.0 || us.count() < obs_best_us) {
      obs_best_us = us.count();
    }
  }
  if (obs_digest != runs[0].digest) {
    std::fprintf(stderr,
                 "FATAL: observer-on responses diverge from the sequential "
                 "runner -- observability changed the answers\n");
    return 1;
  }
  const double obs_overhead_fraction =
      runs[2].best_us > 0.0 ? obs_best_us / runs[2].best_us - 1.0 : 0.0;
  std::printf("\nObservability overhead (tracing + metrics + stats render, "
              "scheduler pr=2):\n");
  std::printf("  observer off %10.1f us, observer on %10.1f us: %+.1f%% "
              "(%zu-byte Prometheus render)\n",
              runs[2].best_us, obs_best_us, 100.0 * obs_overhead_fraction,
              obs_prom_bytes);
  if (obs_overhead_fraction > 0.05) {
    std::fprintf(stderr,
                 "WARNING: observability overhead %.1f%% above the 5%% "
                 "acceptance bar\n",
                 100.0 * obs_overhead_fraction);
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"service_admission\",\n");
  std::fprintf(f,
               "  \"scenario\": \"fig3_periodic_jobshop\",\n"
               "  \"baseline\": \"fresh full BoundsAnalyzer pass per "
               "candidate (long-lived analyzer, pinned horizon)\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"stages\": %lld, \"processors_per_stage\": %lld, "
               "\"jobs\": %lld, \"utilization\": %g, \"threads\": %d,\n",
               opts.get_int("stages", 4), opts.get_int("procs", 2),
               opts.get_int("jobs", 8), opts.get_double("util", 0.7),
               threads);
  std::fprintf(f, "  \"candidates\": %zu, \"repeats\": %d,\n",
               candidate_count, repeats);
  std::fprintf(f, "  \"total_subjobs\": %d,\n", total_subjobs);
  std::fprintf(f, "  \"incremental_candidates\": %d,\n", incremental_hits);
  std::fprintf(f,
               "  \"full_us\": {\"median\": %.3f, \"p90\": %.3f, "
               "\"max\": %.3f},\n",
               fs.median_us, fs.p90_us, fs.max_us);
  std::fprintf(f,
               "  \"session_us\": {\"median\": %.3f, \"p90\": %.3f, "
               "\"max\": %.3f},\n",
               is.median_us, is.p90_us, is.max_us);
  std::fprintf(f, "  \"median_speedup\": %.3f,\n", median_speedup);
  std::fprintf(f, "  \"p90_speedup\": %.3f,\n",
               percentile(per_candidate_speedup, 0.9));
  std::fprintf(f,
               "  \"stream_requests\": %d, \"stream_read_fraction\": %.3f, "
               "\"stream_repeats\": %d,\n",
               stream_requests, read_fraction, stream_repeats);
  std::fprintf(f, "  \"stream_sequential_us\": %.1f,\n", runs[0].best_us);
  std::fprintf(f, "  \"stream_scheduler\": [\n");
  for (std::size_t i = 1; i < runs.size(); ++i) {
    std::fprintf(f,
                 "    {\"parallel_reads\": %d, \"us\": %.1f, "
                 "\"speedup\": %.3f, \"coalesced\": %d}%s\n",
                 runs[i].parallel_reads, runs[i].best_us,
                 runs[i].best_us > 0.0 ? runs[0].best_us / runs[i].best_us
                                       : 0.0,
                 runs[i].stats.coalesced, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"stream_best_speedup\": %.3f,\n", stream_best_speedup);
  std::fprintf(f, "  \"stream_digest_identical\": true,\n");
  std::fprintf(f,
               "  \"obs_stream_us\": %.1f, \"obs_overhead_fraction\": %.4f, "
               "\"obs_overhead_bar\": 0.05, \"obs_prom_bytes\": %zu,\n",
               obs_best_us, obs_overhead_fraction, obs_prom_bytes);
  std::fprintf(f,
               "  \"determinism\": \"every candidate's bounds bit-identical "
               "between paths; stream responses byte-identical modulo "
               "latency_us across all drivers (digest-checked)\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
