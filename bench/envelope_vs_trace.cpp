// Extra experiment: the price of trace-independence.
//
// The paper's analysis bounds the response times of ONE given release trace;
// the interval-domain envelope analyzer (src/envelope) bounds EVERY trace
// conforming to each job's arrival envelope. This bench measures what that
// generality costs: for random job shops it reports, per job class, the mean
// ratio of envelope bound / exact trace bound and envelope bound / simulated
// worst response, plus how often the envelope analysis still admits the set.
//
// Flags: --systems N (default 40)  --stages N (default 2)  --jobs N (def. 5)
//        --util U (default 0.4)    --seed S                --out FILE.csv
#include <cmath>
#include <cstdio>

#include "analysis/spp_exact.hpp"
#include "envelope/envelope_analysis.hpp"
#include "model/priority.hpp"
#include "sim/simulator.hpp"
#include "util/csv.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "workload/jobshop.hpp"

using namespace rta;

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const std::size_t systems = opts.get_int("systems", 40);
  const std::size_t stages = opts.get_int("stages", 2);
  const std::size_t jobs = opts.get_int("jobs", 5);
  const double util = opts.get_double("util", 0.4);
  const std::uint64_t seed = opts.get_int("seed", 21);
  const std::string out = opts.get("out", "envelope_vs_trace.csv");

  std::printf("Trace-independent envelope bounds vs exact trace analysis\n");
  std::printf("%zu shops, stages=%zu, jobs=%zu, utilization=%.2f\n\n",
              systems, stages, jobs, util);

  CsvWriter csv({"pattern", "jobs_checked", "env_unbounded",
                 "mean_env_over_exact", "max_env_over_exact",
                 "exact_admits", "env_admits"});

  std::printf("%-10s %8s %10s %12s %12s %10s %10s\n", "pattern", "jobs",
              "env=inf", "mean e/x", "max e/x", "exact adm", "env adm");
  for (ArrivalPattern pattern :
       {ArrivalPattern::kPeriodic, ArrivalPattern::kAperiodic}) {
    RunningStats ratio;
    std::size_t checked = 0, unbounded = 0;
    std::size_t exact_admits = 0, env_admits = 0;
    for (std::uint64_t s = 1; s <= systems; ++s) {
      JobShopConfig cfg;
      cfg.stages = stages;
      cfg.processors_per_stage = 2;
      cfg.jobs = jobs;
      cfg.pattern = pattern;
      cfg.utilization = util;
      cfg.window_periods = 6.0;
      cfg.min_rate = 0.15;
      Rng rng(seed * 37 + s);
      System sys = generate_jobshop(cfg, rng);
      assign_proportional_deadline_monotonic(sys);

      const AnalysisResult exact = ExactSppAnalyzer().analyze(sys);
      const EnvelopeResult env =
          EnvelopeAnalyzer().analyze_from_traces(sys);
      if (!exact.ok || !env.ok) continue;
      if (exact.all_schedulable()) ++exact_admits;
      if (env.all_schedulable()) ++env_admits;
      for (int k = 0; k < sys.job_count(); ++k) {
        ++checked;
        if (std::isinf(env.jobs[k].wcrt)) {
          ++unbounded;
          continue;
        }
        if (exact.jobs[k].wcrt > 1e-9) {
          ratio.add(env.jobs[k].wcrt / exact.jobs[k].wcrt);
        }
      }
    }
    const char* pname =
        pattern == ArrivalPattern::kPeriodic ? "periodic" : "aperiodic";
    std::printf("%-10s %8zu %10zu %12.3f %12.3f %10zu %10zu\n", pname,
                checked, unbounded, ratio.mean(), ratio.max(), exact_admits,
                env_admits);
    csv.add(std::string(pname), checked, unbounded, ratio.mean(), ratio.max(),
            exact_admits, env_admits);
  }

  std::printf("\n(e/x = envelope bound over exact trace bound; the envelope "
              "bound covers every conforming trace, so e/x >= 1)\n");
  if (csv.write_file(out)) std::printf("wrote %s\n", out.c_str());
  return 0;
}
